//! Property-based soundness check for the precision layer: a cycle the
//! feasibility analysis scores `Infeasible` must never be confirmed by a
//! Phase II trial — on any program, under several seeds.
//!
//! The generator builds programs in *stages*: every thread of stage `k`
//! is spawned and joined before stage `k + 1` starts, so lock-order
//! inversions that span stages are separated by fork/join happens-before
//! edges (exactly what the partial-order check proves infeasible), while
//! inversions within a stage stay live. Mixing both shapes exercises the
//! `Infeasible` verdict against real executions.

use std::sync::Arc;

use deadlock_fuzzer::prelude::*;
use df_igoodlock::FeasibilityVerdict;
use proptest::prelude::*;

/// A staged program spec: `stages[k][t]` is the list of (outer, inner)
/// nested acquisitions of thread `t` in stage `k`.
#[derive(Clone, Debug)]
struct Spec {
    locks: usize,
    stages: Vec<Vec<Vec<(usize, usize)>>>,
}

fn arb_spec() -> impl Strategy<Value = Spec> {
    (2usize..5)
        .prop_flat_map(|locks| {
            let pair = (0..locks, 0..locks)
                .prop_filter_map("distinct", |(a, b)| (a != b).then_some((a, b)));
            let thread = prop::collection::vec(pair, 1..3);
            let stage = prop::collection::vec(thread, 1..3);
            (Just(locks), prop::collection::vec(stage, 1..3))
        })
        .prop_map(|(locks, stages)| Spec { locks, stages })
}

fn build(spec: Spec) -> deadlock_fuzzer::ProgramRef {
    Arc::new(Named::new("staged", move |ctx: &TCtx| {
        let locks: Vec<_> = (0..spec.locks)
            .map(|_| ctx.new_lock(Label::new("staged.newLock")))
            .collect();
        for (k, stage) in spec.stages.iter().enumerate() {
            let mut handles = Vec::new();
            for (t, pairs) in stage.iter().enumerate() {
                let locks = locks.clone();
                let pairs = pairs.clone();
                handles.push(ctx.spawn(
                    Label::new("staged.spawn"),
                    &format!("s{k}w{t}"),
                    move |ctx| {
                        for (i, &(outer, inner)) in pairs.iter().enumerate() {
                            let go = ctx.lock(
                                &locks[outer],
                                Label::new(&format!("staged.outer:{k}:{i}:{outer}")),
                            );
                            let gi = ctx.lock(
                                &locks[inner],
                                Label::new(&format!("staged.inner:{k}:{i}:{inner}")),
                            );
                            ctx.work(1);
                            drop(gi);
                            drop(go);
                        }
                    },
                ));
            }
            // The stage barrier: every cross-stage inversion is ordered
            // by these joins, which is what makes it infeasible.
            for h in &handles {
                ctx.join(h, Label::new("staged.join"));
            }
        }
    }))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Soundness: no trial ever confirms a cycle scored `Infeasible`.
    /// Each infeasible-scored cycle gets a real Phase II campaign under
    /// two seed bases — if the partial-order check were wrong anywhere,
    /// the active scheduler (which maximizes the reproduction chance)
    /// would be the first to prove it.
    #[test]
    fn infeasible_verdicts_are_never_confirmed(spec in arb_spec()) {
        let program = build(spec);
        let fuzzer = DeadlockFuzzer::from_ref(
            program,
            Config::default().with_feasibility(true).with_confirm_trials(4),
        );
        let p1 = fuzzer.phase1();
        prop_assert_eq!(p1.feasibility.len(), p1.abstract_cycles.len());
        for (cycle, judgement) in p1.abstract_cycles.iter().zip(&p1.feasibility) {
            if judgement.verdict != FeasibilityVerdict::Infeasible {
                continue;
            }
            prop_assert_eq!(judgement.score, 0.0);
            let prob = fuzzer
                .estimate_probability(cycle, 4)
                .expect("trials > 0");
            prop_assert!(
                prob.matched == 0,
                "a trial confirmed an Infeasible-scored cycle: {}",
                cycle
            );
        }
    }

    /// The adaptive allocator inherits that soundness operationally: it
    /// spends zero trials on `Infeasible` cycles and still reaches the
    /// same confirmed set as the uniform campaign on the same seeds.
    #[test]
    fn adaptive_pruning_preserves_the_confirmed_set(spec in arb_spec()) {
        let program = build(spec);
        let config = |adaptive: bool| {
            Config::default()
                .with_feasibility(true)
                .with_adaptive_trials(adaptive)
                .with_confirm_trials(4)
        };
        let uniform = DeadlockFuzzer::from_ref(program.clone(), config(false)).run();
        let adaptive = DeadlockFuzzer::from_ref(program, config(true)).run();
        let confirmed = |r: &deadlock_fuzzer::Report| {
            r.confirmations
                .iter()
                .filter(|c| c.confirmed)
                .map(|c| c.cycle_index)
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(confirmed(&uniform), confirmed(&adaptive));
        for c in &adaptive.confirmations {
            let infeasible = matches!(
                c.feasibility.as_ref().map(|j| j.verdict),
                Some(FeasibilityVerdict::Infeasible)
            );
            if infeasible {
                prop_assert!(c.probability.trials == 0, "pruned cycles spend nothing");
                prop_assert!(!c.confirmed);
            }
        }
    }
}
