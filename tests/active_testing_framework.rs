//! Capstone integration test: one program, two bug classes, one
//! framework. A program containing both a lock-order deadlock and a data
//! race is analyzed by both checkers — each predicts and then *creates*
//! its bug, confirming the paper's framing of DeadlockFuzzer as one
//! instance of a general active-testing recipe.

use deadlock_fuzzer::prelude::*;
use df_fuzzer::{predict_races, RaceStrategy, SimpleRandomChecker};
use df_runtime::VirtualRuntime;

fn label(s: &str) -> Label {
    Label::new(s)
}

/// A job queue whose workers (a) take the queue and stats locks in
/// opposite orders — a deadlock — and (b) bump an unguarded counter — a
/// race.
fn buggy_service(ctx: &TCtx) {
    let queue_lock = ctx.new_lock(label("Service.queueLock"));
    let stats_lock = ctx.new_lock(label("Service.statsLock"));
    let processed = ctx.new_var(label("Service.processedCount"));

    let submitter = ctx.spawn(label("Service.startSubmitter"), "submitter", move |ctx| {
        ctx.work(6);
        // submit(): queue → stats.
        let gq = ctx.lock(&queue_lock, label("Service.submit: queue"));
        let gs = ctx.lock(&stats_lock, label("Service.submit: stats"));
        ctx.write(
            &processed,
            label("Service.submit: bump (unguarded by contract)"),
        );
        drop(gs);
        drop(gq);
    });
    let reporter = ctx.spawn(label("Service.startReporter"), "reporter", move |ctx| {
        // report(): stats → queue (the inversion).
        let gs = ctx.lock(&stats_lock, label("Service.report: stats"));
        let gq = ctx.lock(&queue_lock, label("Service.report: queue"));
        drop(gq);
        drop(gs);
        ctx.work(4);
        // Racy read of the counter, outside any lock.
        ctx.read(&processed, label("Service.report: racy read"));
    });
    ctx.join(&submitter, label("Service.join"));
    ctx.join(&reporter, label("Service.join"));
}

#[test]
fn deadlock_checker_confirms_the_inversion() {
    let fuzzer = DeadlockFuzzer::with_config(
        Named::new("buggy-service", buggy_service),
        Config::default().with_confirm_trials(8),
    );
    let report = fuzzer.run();
    assert_eq!(report.potential_count(), 1, "the queue/stats inversion");
    assert_eq!(report.confirmed_count(), 1);
    assert_eq!(report.confirmations[0].probability.matched, 8);
}

#[test]
fn race_checker_confirms_the_unguarded_counter() {
    let rt = VirtualRuntime::new(RunConfig::default());
    let observed = rt.run(Box::new(SimpleRandomChecker::with_seed(2)), buggy_service);
    let candidates = predict_races(&observed.trace);
    // The submit-side write holds both locks; the report-side read holds
    // none → disjoint locksets → exactly one candidate.
    assert_eq!(candidates.len(), 1, "{candidates:?}");
    let mut confirmed = 0;
    for seed in 0..6 {
        let (strategy, witness) = RaceStrategy::new(candidates[0].clone(), seed);
        let _ = rt.run(Box::new(strategy), buggy_service);
        let got = witness.lock().take();
        if got.is_some() {
            confirmed += 1;
        }
    }
    assert!(confirmed >= 5, "race confirms nearly always: {confirmed}/6");
}

#[test]
fn the_two_checkers_report_disjoint_bugs() {
    // The race is invisible to iGoodlock (no lock cycle) and the deadlock
    // is invisible to the lockset analysis (no conflicting access pair) —
    // each checker sees exactly its own bug class.
    let rt = VirtualRuntime::new(RunConfig::default());
    let observed = rt.run(Box::new(SimpleRandomChecker::with_seed(2)), buggy_service);
    let races = predict_races(&observed.trace);
    for c in &races {
        let t = c.to_string();
        assert!(
            t.contains("processedCount") || t.contains("bump") || t.contains("racy read"),
            "race candidates only concern the counter: {t}"
        );
    }
}
