//! Invariants tying the observability counters to the scheduler's
//! semantics: the metrics are only trustworthy if they move in lockstep
//! with what the paper says the scheduler does.

use deadlock_fuzzer::{Config, DeadlockFuzzer};
use df_fuzzer::DirectedStrategy;
use df_obs::Obs;
use df_runtime::{RunConfig, VirtualRuntime};

/// Runs the full pipeline over `program` and returns the counters plus
/// the length of the first confirmed cycle.
fn confirmed_run(
    program: deadlock_fuzzer::ProgramRef,
    trials: u32,
) -> (df_obs::CounterSnapshot, usize) {
    let obs = Obs::new();
    let fuzzer = DeadlockFuzzer::from_ref(
        program,
        Config::default()
            .with_confirm_trials(trials)
            .with_obs(obs.clone()),
    );
    let report = fuzzer.run();
    let confirmed = report
        .confirmations
        .iter()
        .find(|c| c.confirmed)
        .expect("at least one confirmed cycle");
    (obs.counters().snapshot(), confirmed.cycle.len())
}

#[test]
fn confirming_a_cycle_pauses_at_least_cycle_length_threads() {
    // To create a deadlock of length n the active scheduler parks the
    // cycle's threads at their inner acquires (§2.3); over a campaign
    // that confirms the cycle, the pause counter must reach at least n.
    let (counters, cycle_len) = confirmed_run(df_benchmarks::figure1::program(true), 4);
    assert_eq!(cycle_len, 2);
    assert!(
        counters.threads_paused >= cycle_len as u64,
        "paused {} < cycle length {cycle_len}",
        counters.threads_paused
    );
    assert!(counters.acquires_observed > 0);
    assert!(counters.cycles_found >= 1);
}

#[test]
fn confirming_the_philosopher_ring_pauses_at_least_ring_size_threads() {
    let (counters, cycle_len) = confirmed_run(df_benchmarks::dining_philosophers::program(3), 6);
    assert_eq!(cycle_len, 3);
    assert!(
        counters.threads_paused >= cycle_len as u64,
        "paused {} < cycle length {cycle_len}",
        counters.threads_paused
    );
}

#[test]
fn live_detector_counters_flow_into_the_metrics_document() {
    // df-lock's online wait-for-graph detector shares the same Obs
    // handle as the rest of the pipeline, so a live (natively
    // scheduled) tracked execution must surface its counters through
    // the exact `--metrics-out` document schema: one wait edge per
    // contended acquire, one detection for the forced two-lock cycle,
    // and the timeout that dissolved it.
    use std::sync::{Arc, Barrier};
    use std::time::Duration;

    use df_lock::{DeadlockHandler, TrackedMutex, Tracker, TrackerConfig};

    let obs = Obs::new();
    let tracker = Tracker::new(
        TrackerConfig::default()
            .with_obs(obs.clone())
            .with_handler(DeadlockHandler::Callback(Arc::new(|_| {}))),
    );
    let a = Arc::new(TrackedMutex::with_tracker(&tracker, ()));
    let b = Arc::new(TrackedMutex::with_tracker(&tracker, ()));
    let barrier = Arc::new(Barrier::new(2));

    let (a1, b1, bar) = (Arc::clone(&a), Arc::clone(&b), Arc::clone(&barrier));
    let t1 = tracker.spawn("metrics a->b", move || {
        let held = a1.lock().unwrap();
        bar.wait();
        let _ = b1.try_lock_for(Duration::from_secs(2));
        drop(held);
    });
    let (a2, b2, bar) = (Arc::clone(&a), Arc::clone(&b), barrier);
    let t2 = tracker.spawn("metrics b->a", move || {
        let held = b2.lock().unwrap();
        bar.wait();
        let _ = a2.try_lock_for(Duration::from_secs(2));
        drop(held);
    });
    t1.join().unwrap();
    t2.join().unwrap();

    let snapshot = obs.counters().snapshot();
    assert_eq!(snapshot.wfg_cycles_detected, 1);
    assert!(snapshot.wfg_edges >= 2, "both contended waits counted");
    assert!(snapshot.lock_timeouts >= 1, "at least one thread gave up");
    assert_eq!(snapshot.poisoned_recovered, 0);
    assert!(
        snapshot.acquires_observed >= 2,
        "live acquisitions feed the shared acquire counter"
    );

    // The document `dfz --metrics-out` writes carries the same keys
    // with the same values.
    let doc = serde_json::to_string(&obs.metrics("native-tracked")).expect("serialize metrics");
    for pair in [
        format!("\"wfg_edges\":{}", snapshot.wfg_edges),
        "\"wfg_cycles_detected\":1".to_string(),
        format!("\"lock_timeouts\":{}", snapshot.lock_timeouts),
        "\"poisoned_recovered\":0".to_string(),
    ] {
        assert!(
            doc.contains(&pair),
            "metrics document missing {pair}: {doc}"
        );
    }
}

#[test]
fn spill_backpressure_flows_into_the_metrics_document() {
    // A deliberately starved ring — two slots in front of a writer that
    // dawdles on every batch — must apply backpressure, and the stall
    // count must surface through the same `--metrics-out` schema as
    // every other counter.
    use std::io::Write;
    use std::time::Duration;

    use df_events::{
        AnySpillSink, EventKind, EventSink, Label, ObjKind, SpillConfig, ThreadId, Trace,
        TraceFormat,
    };

    /// Sleeps on every write so the drain loop cannot keep up.
    struct SlowSink;
    impl Write for SlowSink {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            std::thread::sleep(Duration::from_millis(2));
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    let mut trace = Trace::new();
    let t0 = ThreadId::new(0);
    let main = trace
        .objects_mut()
        .create(ObjKind::Thread, Label::new("<main>"), None, vec![]);
    trace.bind_thread(t0, main);
    let lock = trace
        .objects_mut()
        .create(ObjKind::Lock, Label::new("slow:1"), None, vec![]);
    for _ in 0..256 {
        trace.push(
            t0,
            EventKind::acquire(
                lock,
                Label::new("slow:2"),
                vec![],
                vec![Label::new("slow:2")],
            ),
        );
        trace.push(t0, EventKind::release(lock, Label::new("slow:3")));
    }

    let config = SpillConfig::with_format(TraceFormat::Binary)
        .with_ring(2)
        .with_batch_bytes(1)
        .with_flush_interval(Duration::from_millis(1));
    let mut sink = AnySpillSink::new(SlowSink, &config).expect("spill sink");
    for (thread, obj) in trace.thread_objs() {
        sink.on_thread_bound(thread, obj);
    }
    for event in trace.events() {
        sink.on_event(event);
    }
    sink.on_finish(&trace);
    sink.close().expect("seal spill");
    let waits = sink.backpressure_waits();
    assert!(
        waits >= 1,
        "a two-slot ring over a sleeping writer must stall at least once"
    );

    let obs = Obs::new();
    obs.counters().add_spill_backpressure_waits(waits);
    let snapshot = obs.counters().snapshot();
    assert_eq!(snapshot.spill_backpressure_waits, waits);
    let doc = serde_json::to_string(&obs.metrics("ring-spill")).expect("serialize metrics");
    let pair = format!("\"spill_backpressure_waits\":{waits}");
    assert!(
        doc.contains(&pair),
        "metrics document missing {pair}: {doc}"
    );
}

#[test]
fn directed_replay_of_a_recorded_schedule_never_thrashes() {
    // Thrashing is the active scheduler's escape hatch for wrong pauses
    // (§2.3). A directed replay makes no speculative pauses at all, so
    // replaying a recorded schedule must report zero thrash events — and
    // must take exactly the recorded decisions.
    use df_events::Label;
    use df_runtime::{LockRef, TCtx};

    fn body(l1: LockRef, l2: LockRef) -> impl FnOnce(&TCtx) + Send + 'static {
        move |ctx: &TCtx| {
            let g1 = ctx.lock(&l1, Label::new("Replay.first"));
            let g2 = ctx.lock(&l2, Label::new("Replay.second"));
            drop(g2);
            drop(g1);
        }
    }
    fn program(ctx: &TCtx) {
        let a = ctx.new_lock(Label::new("Replay.newA"));
        let b = ctx.new_lock(Label::new("Replay.newB"));
        let t1 = ctx.spawn(Label::new("Replay.spawn1"), "t1", body(a, b));
        let t2 = ctx.spawn(Label::new("Replay.spawn2"), "t2", body(b, a));
        ctx.join(&t1, Label::new("Replay.join"));
        ctx.join(&t2, Label::new("Replay.join"));
    }

    let (strategy, record) = DirectedStrategy::new(vec![]);
    let recorded = VirtualRuntime::new(RunConfig::default()).run(Box::new(strategy), program);
    let prefix = record.lock().clone();
    assert!(!prefix.choices.is_empty());

    let obs = Obs::new();
    let (replay, replay_record) = DirectedStrategy::new(prefix.choices.clone());
    let replayed = VirtualRuntime::new(RunConfig::default().with_obs(obs.clone()))
        .run(Box::new(replay), program);

    let counters = obs.counters().snapshot();
    assert_eq!(counters.thrash_events, 0, "directed replay thrashed");
    assert_eq!(replay_record.lock().choices, prefix.choices);
    assert_eq!(replay_record.lock().branching, prefix.branching);
    assert_eq!(
        recorded.outcome.deadlock().is_some(),
        replayed.outcome.deadlock().is_some()
    );
    assert!(
        counters.acquires_observed >= 4,
        "both threads take two locks"
    );
}
