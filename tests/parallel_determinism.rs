//! The parallel trial engine's contract: `jobs = 1` and `jobs = N`
//! campaigns are the *same experiment*. Verdicts, trial tallies, rolled-up
//! counters, and even the trace bytes must agree — only wall-clock fields
//! may differ. Cancellation (`stop_on_first`) must likewise report exactly
//! the sequential prefix regardless of worker count.

use deadlock_fuzzer::prelude::*;

/// Everything a `ProbabilityReport` asserts about an experiment, minus
/// its wall-clock fields.
#[allow(clippy::type_complexity)]
fn logical_fields(
    p: &ProbabilityReport,
) -> (u32, u32, u32, f64, f64, bool, f64, f64, f64, u32, String) {
    (
        p.trials,
        p.deadlocks,
        p.matched,
        p.probability,
        p.deadlock_rate,
        p.truncated,
        p.avg_thrashes,
        p.avg_yields,
        p.avg_steps,
        p.retries,
        p.outcomes.to_string(),
    )
}

#[test]
fn full_pipeline_is_jobs_invariant_down_to_the_trace_bytes() {
    let campaign = |jobs: usize| {
        let obs = df_obs::Obs::with_memory_sink();
        let fuzzer = DeadlockFuzzer::from_ref(
            df_benchmarks::figure1::program(true),
            Config::default()
                .with_phase1_seed(0)
                .with_phase2_seed_base(400)
                .with_confirm_trials(6)
                .with_jobs(jobs)
                .with_obs(obs.clone()),
        );
        let report = fuzzer.run();
        obs.flush();
        (
            report,
            obs.trace_contents().expect("memory sink present"),
            obs.counters().snapshot(),
        )
    };
    let (r1, trace1, c1) = campaign(1);
    let (r4, trace4, c4) = campaign(4);

    assert_eq!(r1.confirmed_count(), r4.confirmed_count());
    assert_eq!(r1.confirmations.len(), r4.confirmations.len());
    for (a, b) in r1.confirmations.iter().zip(&r4.confirmations) {
        assert_eq!(a.cycle.to_string(), b.cycle.to_string());
        assert_eq!(a.confirmed, b.confirmed);
        assert_eq!(a.error, b.error);
        assert_eq!(
            logical_fields(&a.probability),
            logical_fields(&b.probability),
            "cycle #{} diverged between jobs=1 and jobs=4",
            a.cycle_index
        );
    }
    assert!(trace1.contains("\"CheckRealDeadlock\""), "{trace1}");
    assert_eq!(trace1, trace4, "trace bytes drifted under parallelism");
    assert_eq!(c1, c4, "campaign counters drifted under parallelism");
}

#[test]
fn ring_buffered_binary_spill_is_jobs_invariant() {
    // Same contract as above, with the high-throughput trace path in the
    // loop: the observation run spills df-trace binary v2 through the
    // SPSC ring writer, and the spilled bytes — produced on a separate
    // writer thread — must come out identical under jobs=1 and jobs=4,
    // as must the rolled-up counters (including the backpressure
    // counter, which a generously sized ring pins at zero).
    use std::io::Write;
    use std::sync::{Arc, Mutex};

    use deadlock_fuzzer::events::{
        read_trace_bytes, AnySpillSink, SinkHandle, SpillConfig, TraceFormat, TRACE_BINARY_MAGIC,
    };

    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);
    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    let campaign = |jobs: usize| {
        let obs = df_obs::Obs::new();
        let spill = SpillConfig::with_format(TraceFormat::Binary).with_ring(1 << 15);
        let fuzzer = DeadlockFuzzer::from_ref(
            df_benchmarks::figure1::program(true),
            Config::default()
                .with_phase1_seed(0)
                .with_phase2_seed_base(400)
                .with_confirm_trials(4)
                .with_jobs(jobs)
                .with_spill(spill)
                .with_obs(obs.clone()),
        );
        let buf = SharedBuf::default();
        let sink = Arc::new(Mutex::new(
            AnySpillSink::new(buf.clone(), &spill).expect("spill sink"),
        ));
        let result = fuzzer.observe(SinkHandle::none().with(sink.clone()), false);
        let outcome = format!("{:?}", result.outcome);
        let mut guard = sink.lock().expect("sink mutex");
        let (events, bytes) = guard.close().expect("seal spill");
        let waits = guard.backpressure_waits();
        drop(guard);
        obs.counters().add_spill_backpressure_waits(waits);
        let report = fuzzer.run();
        let spilled = buf.0.lock().unwrap().clone();
        assert_eq!(spilled.len() as u64, bytes, "jobs={jobs}");
        (
            spilled,
            events,
            (outcome, report.confirmed_count()),
            obs.counters().snapshot(),
        )
    };

    let (spill1, events1, verdicts1, c1) = campaign(1);
    let (spill4, events4, verdicts4, c4) = campaign(4);

    assert!(spill1.starts_with(&TRACE_BINARY_MAGIC));
    assert_eq!(
        spill1, spill4,
        "ring-spilled bytes drifted under parallelism"
    );
    assert_eq!(events1, events4);
    assert!(events1 > 0);
    assert_eq!(verdicts1, verdicts4);
    let decoded = read_trace_bytes(&spill1).expect("spill decodes");
    assert_eq!(decoded.events().len() as u64, events1);
    assert_eq!(
        c1.spill_backpressure_waits, 0,
        "a 32768-slot ring must never stall this workload"
    );
    assert_eq!(c1, c4, "campaign counters drifted under parallelism");
}

#[test]
fn phase1_join_is_jobs_invariant_across_modes() {
    // The Phase I parallel join matrix: phase1_jobs ∈ {1, 2, 4} ×
    // {offline, streamed} × {hb off, hb on}, skipping streamed+hb
    // (rejected by Config::validate — the filter needs the full trace).
    // Within each mode, every jobs value must produce byte-identical
    // cycle reports, identical join stats, identical trace bytes, and
    // identical counters — except the two scheduling counters
    // (join_tasks_executed / join_steal_waits), which measure how the
    // work was chunked and legitimately vary with the worker count.
    let run = |phase1_jobs: usize, stream: bool, hb: bool| {
        let obs = df_obs::Obs::with_memory_sink();
        let fuzzer = DeadlockFuzzer::from_ref(
            df_benchmarks::dining_philosophers::program(12),
            Config::default()
                .with_phase1_seed(7)
                .with_stream_phase1(stream)
                .with_hb_filter(hb)
                .with_phase1_jobs(phase1_jobs)
                .with_obs(obs.clone()),
        );
        let report = fuzzer.phase1();
        obs.flush();
        let cycle_bytes = serde_json::to_string(&report.cycles).expect("cycles serialize");
        let abstracts: Vec<String> = report
            .abstract_cycles
            .iter()
            .map(ToString::to_string)
            .collect();
        let mut counters = obs.counters().snapshot();
        counters.join_tasks_executed = 0;
        counters.join_steal_waits = 0;
        (
            cycle_bytes,
            abstracts,
            format!("{:?}", report.stats),
            report.relation_size,
            obs.trace_contents().expect("memory sink present"),
            counters,
        )
    };
    for (stream, hb) in [(false, false), (false, true), (true, false)] {
        let base = run(1, stream, hb);
        assert!(
            base.3 >= 8,
            "the workload must be large enough to exercise the indexed join: {}",
            base.3
        );
        for jobs in [2, 4] {
            assert_eq!(
                base,
                run(jobs, stream, hb),
                "phase1_jobs={jobs} stream={stream} hb={hb}"
            );
        }
    }
}

#[test]
fn seed_driven_program_variation_is_jobs_invariant() {
    // The synchronized-maps model varies which worker is delayed from
    // trial to trial. That variation is derived from `TCtx::run_seed`
    // (never from ambient state), so a trial's result depends only on its
    // seed — not on how many trials ran before it on the same worker.
    // This is the benchmark where an order-dependent program would break
    // jobs-invariance first (its matched/unmatched mix is ≈ 50/50).
    let campaign = |jobs: usize| {
        let fuzzer = DeadlockFuzzer::from_ref(
            df_benchmarks::maps::program(),
            Config::default().with_jobs(jobs),
        );
        let p1 = fuzzer.phase1();
        p1.abstract_cycles
            .iter()
            .take(4)
            .map(|c| logical_fields(&fuzzer.estimate_probability(c, 5).expect("trials > 0")))
            .collect::<Vec<_>>()
    };
    assert_eq!(campaign(1), campaign(4));
}

#[test]
fn adaptive_allocation_is_jobs_invariant() {
    // The adaptive allocator hands out trial batches from pure sequential
    // logic, and each batch reports the deterministic sequential prefix
    // of its trials — so which cycles run, how many trials each gets, and
    // every per-cycle tally must be byte-identical at jobs=1 and jobs=4,
    // with and without a campaign-wide trial budget. The synchronized-maps
    // model is the stress case: many cycles, a ≈50/50 matched mix, and
    // feasibility verdicts in play.
    for trial_budget in [None, Some(10)] {
        let campaign = |jobs: usize| {
            let obs = df_obs::Obs::new();
            let fuzzer = DeadlockFuzzer::from_ref(
                df_benchmarks::maps::program(),
                Config::default()
                    .with_phase1_seed(3)
                    .with_phase2_seed_base(900)
                    .with_confirm_trials(6)
                    .with_feasibility(true)
                    .with_adaptive_trials(true)
                    .with_trial_budget(trial_budget)
                    .with_jobs(jobs)
                    .with_obs(obs.clone()),
            );
            let report = fuzzer.run();
            let cycles: Vec<_> = report
                .confirmations
                .iter()
                .map(|c| {
                    (
                        c.cycle_index,
                        c.confirmed,
                        c.error.clone(),
                        format!("{:?}", c.feasibility),
                        logical_fields(&c.probability),
                    )
                })
                .collect();
            let snap = obs.counters().snapshot();
            (cycles, snap.trials_saved, snap.cycles_pruned_infeasible)
        };
        assert_eq!(
            campaign(1),
            campaign(4),
            "adaptive allocation drifted under parallelism (budget {trial_budget:?})"
        );
    }
}

#[test]
fn cancellation_reports_the_sequential_prefix() {
    // With stop_on_first, a parallel campaign may *run* trials past the
    // first confirming one, but it must never *report* them: the tally is
    // exactly the prefix up to and including the first match, as if the
    // trials had run one by one.
    for jobs in [1, 4] {
        let fuzzer = DeadlockFuzzer::from_ref(
            df_benchmarks::figure1::program(false),
            Config::default().with_jobs(jobs).with_stop_on_first(true),
        );
        let p1 = fuzzer.phase1();
        let prob = fuzzer
            .estimate_probability(&p1.abstract_cycles[0], 16)
            .expect("trials > 0");
        // Figure 1's deadlock is created with probability 1, so the very
        // first trial confirms and the report covers exactly one trial.
        assert_eq!(prob.trials, 1, "jobs={jobs}");
        assert_eq!(prob.matched, 1, "jobs={jobs}");
        assert_eq!(prob.probability, 1.0, "jobs={jobs}");
    }
}

#[test]
fn trial_pool_preserves_trial_identity() {
    // The pool hands out trial indices; results must land in index order
    // with nothing lost, duplicated, or renamed by worker scheduling.
    for workers in [1, 3, 8] {
        let pool = TrialPool::new(workers);
        let out = pool.run_trials(32, |i| i * i, |_| false);
        assert_eq!(out, (0..32).map(|i| i * i).collect::<Vec<_>>());
    }
}
