//! Determinism guarantees: same seed, same schedule, same verdicts —
//! the property the probability experiments rest on.

use deadlock_fuzzer::prelude::*;

#[test]
fn phase1_is_deterministic_per_seed() {
    let run = |seed| {
        let fuzzer = DeadlockFuzzer::from_ref(
            df_benchmarks::logging::program(),
            Config::default().with_phase1_seed(seed),
        );
        let p1 = fuzzer.phase1();
        (
            p1.cycle_count(),
            p1.relation_size,
            p1.abstract_cycles
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>(),
        )
    };
    assert_eq!(run(3), run(3));
    assert_eq!(
        run(0).0,
        run(7).0,
        "cycle count is schedule-independent here"
    );
}

#[test]
fn phase2_is_deterministic_per_seed() {
    let fuzzer = DeadlockFuzzer::from_ref(df_benchmarks::dbcp::program(), Config::default());
    let p1 = fuzzer.phase1();
    let cycle = &p1.abstract_cycles[0];
    let a = fuzzer.phase2(cycle, 99);
    let b = fuzzer.phase2(cycle, 99);
    assert_eq!(a.deadlocked(), b.deadlocked());
    assert_eq!(a.matched_target, b.matched_target);
    assert_eq!(a.steps, b.steps);
    assert_eq!(a.thrashes, b.thrashes);
    assert_eq!(
        a.witness.map(|w| w.threads()),
        b.witness.map(|w| w.threads())
    );
}

#[test]
fn golden_trace_is_byte_identical_across_runs() {
    // The observability layer must not perturb determinism: two full
    // pipeline runs of Figure 1 under the virtual runtime with the same
    // seeds produce byte-identical JSONL traces. Every event carries
    // logical data only (step counters, thread ids, abstractions) —
    // wall-clock time lives in the metrics file, never in the trace.
    let run = || {
        let obs = df_obs::Obs::with_memory_sink();
        let fuzzer = DeadlockFuzzer::from_ref(
            df_benchmarks::figure1::program(true),
            Config::default()
                .with_phase1_seed(0)
                .with_phase2_seed_base(400)
                .with_confirm_trials(4)
                .with_obs(obs.clone()),
        );
        let report = fuzzer.run();
        assert!(report.confirmed_count() >= 1, "{report}");
        obs.flush();
        obs.trace_contents().expect("memory sink present")
    };
    let first = run();
    let second = run();
    assert!(!first.is_empty());
    assert!(
        first.contains("\"CheckRealDeadlock\""),
        "trace records scheduler verdicts: {first}"
    );
    assert_eq!(first, second, "golden trace drifted between runs");
}

#[test]
fn abstractions_are_stable_across_phases() {
    // The whole point of §2.4: the cycle computed in Phase I must be
    // recognizable in a Phase II execution with a different schedule. If
    // abstraction stability broke, no cycle would ever be matched.
    let fuzzer = DeadlockFuzzer::from_ref(df_benchmarks::lists::program(), Config::default());
    let p1 = fuzzer.phase1();
    // Different phase-2 seeds → different schedules → same target still
    // matched.
    let mut matched = 0;
    for seed in [5, 55, 555] {
        if fuzzer.phase2(&p1.abstract_cycles[0], seed).matched_target {
            matched += 1;
        }
    }
    assert_eq!(matched, 3);
}
