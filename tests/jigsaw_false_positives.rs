//! Integration test for §5.4: iGoodlock imprecision on Jigsaw and why
//! Phase II matters.

use deadlock_fuzzer::prelude::*;

#[test]
fn igoodlock_overapproximates_and_fuzzer_separates() {
    let fuzzer = DeadlockFuzzer::from_ref(
        df_benchmarks::jigsaw::program(),
        Config::default().with_confirm_trials(8),
    );
    let report = fuzzer.run();

    // iGoodlock reports more cycles than DeadlockFuzzer confirms (paper:
    // 283 reported, 29 confirmed).
    assert!(report.potential_count() > report.confirmed_count());

    // The CachedThread.waitForRunner cycle is a §5.4 false positive: the
    // opposite-order thread starts only after the locks were released.
    for conf in &report.confirmations {
        if conf.cycle.to_string().contains("waitForRunner") {
            assert!(
                !conf.confirmed,
                "happens-before-guarded cycle must not be reproducible"
            );
            assert_eq!(conf.probability.matched, 0);
        }
    }

    // The Figure 3 factory/csList deadlocks are real and confirmed.
    let real_confirmed = report
        .confirmations
        .iter()
        .filter(|c| c.confirmed && c.cycle.to_string().contains("SocketClientFactory"))
        .count();
    assert!(real_confirmed >= 2, "got {real_confirmed}");
}

#[test]
fn both_figure3_contexts_are_distinguished() {
    // The paper: "Another similar deadlock occurs when a SocketClient
    // kills an idle connection. These also involve the same locks, but
    // are acquired at different program locations. iGoodlock provided
    // precise debugging information to distinguish between the two
    // contexts."
    let fuzzer = DeadlockFuzzer::from_ref(df_benchmarks::jigsaw::program(), Config::default());
    let p1 = fuzzer.phase1();
    let texts: Vec<String> = p1.abstract_cycles.iter().map(|c| c.to_string()).collect();
    assert!(
        texts
            .iter()
            .any(|t| t.contains("clientConnectionFinished:623")),
        "connection-finished context reported"
    );
    assert!(
        texts.iter().any(|t| t.contains("killIdleConnection:188")),
        "idle-kill context reported"
    );
}
