//! Integration test for the happens-before extension: fork/join-guarded
//! false positives are pruned while real cycles survive.

use deadlock_fuzzer::prelude::*;

#[test]
fn hb_filter_prunes_jigsaw_false_positive() {
    let plain =
        DeadlockFuzzer::from_ref(df_benchmarks::jigsaw::program(), Config::default()).phase1();
    let filtered = DeadlockFuzzer::from_ref(
        df_benchmarks::jigsaw::program(),
        Config::default().with_hb_filter(true),
    )
    .phase1();

    // The §5.4 CachedThread cycle is guarded by a spawn edge: the
    // opposite-order thread starts only after the first released its
    // locks.
    let has_fp = |cycles: &[deadlock_fuzzer::igoodlock::AbstractCycle]| {
        cycles
            .iter()
            .any(|c| c.to_string().contains("waitForRunner"))
    };
    assert!(has_fp(&plain.abstract_cycles), "unfiltered reports the FP");
    assert!(
        !has_fp(&filtered.abstract_cycles),
        "HB filter must prune the fork-guarded cycle"
    );
    assert!(filtered.stats.pruned_by_hb >= 1);

    // The real Figure 3 cycles survive (their threads are concurrent).
    let reals = |cycles: &[deadlock_fuzzer::igoodlock::AbstractCycle]| {
        cycles
            .iter()
            .filter(|c| c.to_string().contains("killClients"))
            .count()
    };
    assert_eq!(
        reals(&filtered.abstract_cycles),
        reals(&plain.abstract_cycles)
    );
}

#[test]
fn hb_filter_keeps_every_reproducible_cycle() {
    // Soundness of the filter on benchmarks where all cycles are real:
    // it must prune nothing.
    for program in [
        df_benchmarks::logging::program(),
        df_benchmarks::dbcp::program(),
        df_benchmarks::figure1::program(false),
    ] {
        let plain = DeadlockFuzzer::from_ref(program.clone(), Config::default()).phase1();
        let filtered =
            DeadlockFuzzer::from_ref(program, Config::default().with_hb_filter(true)).phase1();
        assert_eq!(plain.cycle_count(), filtered.cycle_count());
        assert_eq!(filtered.stats.pruned_by_hb, 0);
    }
}

#[test]
fn filtered_cycles_are_a_subset() {
    for program in [
        df_benchmarks::jigsaw::program(),
        df_benchmarks::maps::program(),
        df_benchmarks::lists::program(),
    ] {
        let plain = DeadlockFuzzer::from_ref(program.clone(), Config::default()).phase1();
        let filtered =
            DeadlockFuzzer::from_ref(program, Config::default().with_hb_filter(true)).phase1();
        let plain_set: Vec<String> = plain
            .abstract_cycles
            .iter()
            .map(|c| c.to_string())
            .collect();
        for c in &filtered.abstract_cycles {
            assert!(
                plain_set.contains(&c.to_string()),
                "filtered output must be a subset"
            );
        }
        assert_eq!(
            filtered.cycle_count() + filtered.stats.pruned_by_hb as usize,
            plain.cycle_count(),
            "pruned + kept = total"
        );
    }
}
