//! Ablation: what each abstraction can and cannot distinguish.
//!
//! The paper's §2.4 argues allocation sites are "too coarse-grained to
//! distinctly identify many objects" (the factory pattern) and motivates
//! `absO_k` and `absI_k`. Loop-allocated locks are the crispest case:
//! every fork of a dining-philosophers table comes from *one* `new`
//! statement, so the site abstraction (and `absO_k`, whose chain elements
//! are sites) collapses them all, while execution indexing separates them
//! by the statement's per-context occurrence counter.

use deadlock_fuzzer::abstraction::{AbstractionMode, Abstractor};
use deadlock_fuzzer::prelude::*;

const N: usize = 4;

fn philosophers() -> Named<impl deadlock_fuzzer::Program> {
    Named::new("philosophers", |ctx: &TCtx| {
        let forks: Vec<_> = (0..N)
            .map(|_| ctx.new_lock(Label::new("Table.layFork")))
            .collect();
        let mut seats = Vec::new();
        for p in 0..N {
            let left = forks[p];
            let right = forks[(p + 1) % N];
            seats.push(
                ctx.spawn(Label::new("Table.seat"), &format!("p{p}"), move |ctx| {
                    ctx.work(2);
                    let l = ctx.lock(&left, Label::new("Philosopher.left"));
                    let r = ctx.lock(&right, Label::new("Philosopher.right"));
                    ctx.work(1);
                    drop(r);
                    drop(l);
                }),
            );
        }
        for s in &seats {
            ctx.join(s, Label::new("Table.join"));
        }
    })
}

#[test]
fn exec_indexing_separates_loop_allocations_kobject_does_not() {
    let fuzzer = DeadlockFuzzer::from_ref(std::sync::Arc::new(philosophers()), Config::default());
    let p1 = fuzzer.phase1();
    assert_eq!(p1.cycle_count(), 1, "the full ring");
    let objects = p1.cycles[0].components();

    let exec = Abstractor::new(AbstractionMode::ExecIndex(10));
    let kobj = Abstractor::new(AbstractionMode::KObject(10));
    let site = Abstractor::new(AbstractionMode::Site);

    // Abstract the same concrete cycle under the three schemes: under
    // exec-indexing all N lock abstractions are distinct; under
    // k-object/site they collapse.
    let objects_table = p1.trace.objects();
    let exec_cycle = p1.cycles[0].abstract_with(objects_table, &exec);
    let kobj_cycle = p1.cycles[0].abstract_with(objects_table, &kobj);
    let site_cycle = p1.cycles[0].abstract_with(objects_table, &site);

    let distinct = |cycle: &deadlock_fuzzer::igoodlock::AbstractCycle| {
        let set: std::collections::HashSet<String> = cycle
            .components()
            .iter()
            .map(|c| c.lock.to_string())
            .collect();
        set.len()
    };
    assert_eq!(
        distinct(&exec_cycle),
        N,
        "execution indexing separates forks"
    );
    assert_eq!(
        distinct(&kobj_cycle),
        1,
        "k-object collapses loop allocations"
    );
    assert_eq!(distinct(&site_cycle), 1, "site abstraction collapses too");
    let _ = objects;
    let _ = fuzzer;
}

/// The §3 three-thread example, but with locks allocated in a loop and
/// threads spawned in a loop — so `absO_k` (whose chain elements are
/// allocation *sites*, no occurrence counters) collapses all of them,
/// while `absI_k` keeps them apart via the counters.
fn section3_loop_allocated() -> Named<impl deadlock_fuzzer::Program> {
    Named::new("section3-loop", |ctx: &TCtx| {
        let locks: Vec<_> = (0..3)
            .map(|_| ctx.new_lock(Label::new("Loop.newLock")))
            .collect();
        // (left, right, slow): t0 = (l0, l1) slow; t1 = (l1, l0);
        // t2 = (l1, l2) — the interloper sharing l1.
        let specs = [(0usize, 1usize, true), (1, 0, false), (1, 2, false)];
        let mut threads = Vec::new();
        for (i, &(a, b, slow)) in specs.iter().enumerate() {
            let left = locks[a];
            let right = locks[b];
            threads.push(ctx.spawn(
                Label::new("Loop.spawnWorker"),
                &format!("w{i}"),
                move |ctx| {
                    if slow {
                        ctx.work(8);
                    }
                    let l = ctx.lock(&left, Label::new("Worker.first"));
                    let r = ctx.lock(&right, Label::new("Worker.second"));
                    ctx.work(1);
                    drop(r);
                    drop(l);
                },
            ));
        }
        for t in &threads {
            ctx.join(t, Label::new("Loop.join"));
        }
    })
}

#[test]
fn exec_indexing_reproduces_section3_loop_kobject_degrades() {
    let trials = 20;
    let exact = DeadlockFuzzer::from_ref(
        std::sync::Arc::new(section3_loop_allocated()),
        Config::default().with_confirm_trials(trials),
    )
    .run();
    assert_eq!(exact.potential_count(), 1, "one (l0,l1) cycle");
    let pe = &exact.confirmations[0].probability;
    assert_eq!(pe.matched, trials, "exec indexing is exact: {pe:?}");
    assert_eq!(pe.avg_thrashes, 0.0);

    let coarse = DeadlockFuzzer::from_ref(
        std::sync::Arc::new(section3_loop_allocated()),
        Config::default()
            .with_mode(AbstractionMode::KObject(10))
            .with_confirm_trials(trials),
    )
    .run();
    let pc = &coarse.confirmations[0].probability;
    // With threads and locks collapsed, the interloper w2 gets paused at
    // `Worker.second` holding l1, starving w1 — thrashing and misses,
    // the §3 story.
    assert!(
        pc.matched < trials || pc.avg_thrashes > 0.0,
        "k-object must degrade when loop allocation erases identity: \
         exact={pe:?} coarse={pc:?}"
    );
}
