//! Indexed iGoodlock vs the naive oracle on *real* Phase I relations:
//! every Table 1 benchmark program — plus the three mode-aware models
//! (producer/consumer condvar, read-mostly rwlock cache and the
//! writer-starvation ring) — is observed under the simple random
//! scheduler, and the two join implementations must produce
//! byte-identical cycle reports (with and without the happens-before
//! filter) and an identical join shape.

use deadlock_fuzzer::fuzzer::SimpleRandomChecker;
use deadlock_fuzzer::igoodlock::{
    igoodlock_filtered, naive_igoodlock_filtered, HbFilter, IGoodlockOptions,
    LockDependencyRelation,
};
use deadlock_fuzzer::runtime::{RunConfig, VirtualRuntime};
use deadlock_fuzzer::ProgramRef;

fn suite() -> Vec<(String, ProgramRef)> {
    let mut programs: Vec<(String, ProgramRef)> = df_benchmarks::table1_suite()
        .into_iter()
        .map(|b| (b.name.to_string(), b.program))
        .collect();
    programs.push((
        "producer-consumer".into(),
        df_benchmarks::producer_consumer::program(),
    ));
    programs.push((
        "read-mostly-cache".into(),
        df_benchmarks::read_mostly_cache::program(),
    ));
    programs.push((
        "writer-starvation".into(),
        df_benchmarks::writer_starvation::program(3),
    ));
    programs
}

#[test]
fn indexed_matches_naive_on_benchmark_traces() {
    let mut relations_with_cycles = 0;
    for (name, program) in suite() {
        let bench_name = name.as_str();
        for seed in [7u64, 23] {
            let program = program.clone();
            let result = VirtualRuntime::new(RunConfig::default())
                .run(Box::new(SimpleRandomChecker::with_seed(seed)), move |ctx| {
                    program.run(ctx)
                });
            let relation = LockDependencyRelation::from_trace(&result.trace);
            let hb = HbFilter::from_trace(&result.trace);
            for hb_filter in [None, Some(&hb)] {
                for options in [
                    IGoodlockOptions::default(),
                    IGoodlockOptions::length_two_only(),
                ] {
                    let (ic, is) = igoodlock_filtered(&relation, hb_filter, &options);
                    let (nc, ns) = naive_igoodlock_filtered(&relation, hb_filter, &options);
                    assert_eq!(
                        serde_json::to_string(&ic).expect("serialize"),
                        serde_json::to_string(&nc).expect("serialize"),
                        "byte-identical cycle report for {} (seed {seed}, hb {}, {:?})",
                        bench_name,
                        hb_filter.is_some(),
                        options
                    );
                    assert_eq!(is.chains_built, ns.chains_built, "{bench_name}");
                    assert_eq!(is.iterations, ns.iterations, "{bench_name}");
                    assert_eq!(
                        is.chains_per_iteration, ns.chains_per_iteration,
                        "{bench_name}"
                    );
                    assert_eq!(is.truncated, ns.truncated, "{bench_name}");
                    assert_eq!(is.pruned_by_hb, ns.pruned_by_hb, "{bench_name}");
                    assert_eq!(is.peak_open_chains, ns.peak_open_chains, "{bench_name}");
                    if !ic.is_empty() {
                        relations_with_cycles += 1;
                    }
                }
            }
        }
    }
    assert!(
        relations_with_cycles > 0,
        "the suite must exercise cycle-producing relations"
    );
}
