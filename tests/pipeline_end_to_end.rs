//! End-to-end sweep over the whole Table 1 suite: cycle counts, clean
//! completions and confirmations match the models' designs.

use deadlock_fuzzer::prelude::*;
use df_benchmarks::table1_suite;

#[test]
fn table1_cycle_counts_match_designs() {
    for bench in table1_suite() {
        let fuzzer = DeadlockFuzzer::from_ref(bench.program.clone(), Config::default());
        let p1 = fuzzer.phase1();
        if let Some(expected) = bench.expected_cycles {
            assert_eq!(
                p1.cycle_count(),
                expected,
                "benchmark {}: {:?}",
                bench.name,
                p1.run_outcome
            );
        } else {
            // Schedule-dependent count (Jigsaw): at least the Figure 3
            // cycles plus the §5.4 false positive.
            assert!(p1.cycle_count() >= 4, "benchmark {}", bench.name);
        }
    }
}

#[test]
fn deadlock_free_benchmarks_stay_clean_under_more_seeds() {
    for bench in table1_suite() {
        if bench.expected_cycles != Some(0) {
            continue;
        }
        for seed in [0, 11, 42] {
            let fuzzer = DeadlockFuzzer::from_ref(
                bench.program.clone(),
                Config::default().with_phase1_seed(seed),
            );
            let p1 = fuzzer.phase1();
            assert!(
                p1.run_outcome.is_completed(),
                "{} seed {seed}: {:?}",
                bench.name,
                p1.run_outcome
            );
            assert_eq!(p1.cycle_count(), 0, "{} seed {seed}", bench.name);
        }
    }
}

#[test]
fn library_benchmarks_confirm_all_real_cycles() {
    // Logging and DBCP: every reported cycle is real and reproduced with
    // probability 1 (Table 1).
    for bench in [
        df_benchmarks::logging::benchmark(),
        df_benchmarks::dbcp::benchmark(),
    ] {
        let fuzzer = DeadlockFuzzer::from_ref(
            bench.program.clone(),
            Config::default().with_confirm_trials(6),
        );
        let report = fuzzer.run();
        assert_eq!(
            report.confirmed_count(),
            bench.expected_real.unwrap(),
            "{}",
            bench.name
        );
        for conf in &report.confirmations {
            assert_eq!(
                conf.probability.matched, 6,
                "{} cycle {}: {:?}",
                bench.name, conf.cycle_index, conf.probability
            );
        }
    }
}

#[test]
fn all_variants_run_on_swing() {
    // Every Figure 2 variant must at least execute without wedging, and
    // the default variant must confirm the caret deadlock.
    for variant in Variant::ALL {
        let fuzzer = DeadlockFuzzer::from_ref(
            df_benchmarks::swing::program(),
            Config::default()
                .with_variant(variant)
                .with_confirm_trials(5),
        );
        let report = fuzzer.run();
        assert_eq!(report.potential_count(), 1, "{variant}");
        if variant == Variant::ContextExecIndex {
            assert_eq!(report.confirmed_count(), 1, "{variant}");
        }
    }
}

#[test]
fn phase2_overhead_is_bounded() {
    // Table 1: "the overhead of our active checker is within a factor of
    // six". Check a loose bound on schedule points (steps), which is
    // stable across machines, for the logging benchmark.
    let fuzzer = DeadlockFuzzer::from_ref(df_benchmarks::logging::program(), Config::default());
    let p1 = fuzzer.phase1();
    let baseline = {
        // A plain run's steps.
        let r = fuzzer.phase2(&deadlock_fuzzer::igoodlock::AbstractCycle::new(vec![]), 0);
        r.steps
    };
    let active = fuzzer.phase2(&p1.abstract_cycles[0], 0);
    assert!(active.deadlocked());
    // The biased run stops at the deadlock so it can even be shorter;
    // either way it must stay within a small factor.
    assert!(
        active.steps <= baseline * 6 + 100,
        "active {} vs baseline {baseline}",
        active.steps
    );
}
