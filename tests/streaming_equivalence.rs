//! Streaming Phase I vs the offline path on *real* Table 1 traces.
//!
//! The incremental [`RelationBuilder`] is the same code `from_trace`
//! delegates to, but this test does not take that on faith: every
//! benchmark program runs twice under the same scheduler seed — once
//! recording the full event vector, once with the builder attached as
//! an event sink and recording disabled — and the two relations must be
//! byte-identical, the cycle reports must match, and the streamed run
//! must never have materialized an event.

use std::sync::{Arc, Mutex};

use deadlock_fuzzer::fuzzer::SimpleRandomChecker;
use deadlock_fuzzer::igoodlock::{
    igoodlock, IGoodlockOptions, LockDependencyRelation, RelationBuilder,
};
use deadlock_fuzzer::runtime::{RunConfig, VirtualRuntime};
use deadlock_fuzzer::{Config, DeadlockFuzzer};

#[test]
fn streamed_relation_is_byte_identical_on_benchmark_traces() {
    let mut relations_with_cycles = 0;
    for bench in df_benchmarks::table1_suite() {
        for seed in [7u64, 23] {
            // Offline: record everything, build the relation post-hoc.
            let program = bench.program.clone();
            let recorded = VirtualRuntime::new(RunConfig::default().with_program_seed(seed))
                .run(Box::new(SimpleRandomChecker::with_seed(seed)), move |ctx| {
                    program.run(ctx)
                });
            let offline = LockDependencyRelation::from_trace(&recorded.trace);

            // Streaming: no event vector, the builder sees the live stream.
            let builder = Arc::new(Mutex::new(RelationBuilder::new()));
            let obs = df_obs::Obs::new();
            let program = bench.program.clone();
            let streamed_run = VirtualRuntime::new(
                RunConfig::default()
                    .with_program_seed(seed)
                    .with_record_trace(false)
                    .with_obs(obs.clone())
                    .with_event_sink(df_events::SinkHandle::single(builder.clone())),
            )
            .run(Box::new(SimpleRandomChecker::with_seed(seed)), move |ctx| {
                program.run(ctx)
            });
            let streamed = builder.lock().expect("builder sink").take();

            assert_eq!(
                serde_json::to_string(&offline).expect("serialize"),
                serde_json::to_string(&streamed).expect("serialize"),
                "byte-identical relation for {} (seed {seed})",
                bench.name
            );
            assert_eq!(
                igoodlock(&offline, &IGoodlockOptions::default()),
                igoodlock(&streamed, &IGoodlockOptions::default()),
                "identical cycle report for {} (seed {seed})",
                bench.name
            );

            // The streamed run really streamed: nothing materialized,
            // every event went through the sink.
            assert!(
                streamed_run.trace.events().is_empty(),
                "{}: streamed run must not materialize events",
                bench.name
            );
            let snap = obs.counters().snapshot();
            assert_eq!(
                snap.peak_trace_bytes, 0,
                "{}: streamed peak must stay at zero",
                bench.name
            );
            assert_eq!(
                snap.events_streamed,
                recorded.trace.events().len() as u64,
                "{}: sink must see the exact event count",
                bench.name
            );

            if !igoodlock(&offline, &IGoodlockOptions::default()).is_empty() {
                relations_with_cycles += 1;
            }
        }
    }
    assert!(
        relations_with_cycles > 0,
        "the suite must exercise cycle-producing relations"
    );
}

#[test]
fn streamed_pipeline_report_matches_offline() {
    for bench in df_benchmarks::table1_suite() {
        let offline = DeadlockFuzzer::from_ref(
            bench.program.clone(),
            Config::default().with_phase1_seed(11),
        )
        .phase1();
        let streamed = DeadlockFuzzer::from_ref(
            bench.program.clone(),
            Config::default()
                .with_phase1_seed(11)
                .with_stream_phase1(true),
        )
        .phase1();
        assert_eq!(
            offline.cycles, streamed.cycles,
            "{}: concrete cycles must match",
            bench.name
        );
        assert_eq!(
            serde_json::to_string(&offline.abstract_cycles).expect("serialize"),
            serde_json::to_string(&streamed.abstract_cycles).expect("serialize"),
            "{}: abstract cycles must be byte-identical",
            bench.name
        );
        assert_eq!(
            offline.relation_size, streamed.relation_size,
            "{}",
            bench.name
        );
        assert_eq!(
            offline.acquires_observed, streamed.acquires_observed,
            "{}",
            bench.name
        );
        assert!(
            streamed.trace.events().is_empty(),
            "{}: streamed report must carry no events",
            bench.name
        );
    }
}
