//! Golden serialization tests: the on-disk artifact formats and the
//! plain `Trace` JSON are pinned byte-for-byte against checked-in
//! fixtures under `tests/golden/`. Any change to the serde shape of
//! events, objects, or the artifact envelopes shows up here as a
//! readable diff — bump the format version and regenerate the fixtures
//! deliberately instead of drifting silently (readers of the old
//! version must keep rejecting, which the version-mismatch tests below
//! pin too).

use deadlock_fuzzer::events::{
    read_trace, write_trace, EventKind, Label, ObjKind, SpillError, ThreadId, Trace,
    TRACE_FORMAT_VERSION,
};
use deadlock_fuzzer::igoodlock::{
    read_relation, write_relation, LockDependencyRelation, RelationArtifactError,
    RELATION_FORMAT_VERSION,
};

/// The canonical two-lock trace behind every fixture: one thread takes
/// `a` then `b` nested, so the relation has exactly one dependency.
fn golden_trace() -> Trace {
    let mut trace = Trace::new();
    let t0 = ThreadId::new(0);
    let main = trace
        .objects_mut()
        .create(ObjKind::Thread, Label::new("<main>"), None, vec![]);
    trace.bind_thread(t0, main);
    let a = trace
        .objects_mut()
        .create(ObjKind::Lock, Label::new("main:3"), None, vec![]);
    let b = trace
        .objects_mut()
        .create(ObjKind::Lock, Label::new("main:4"), None, vec![]);
    trace.push(t0, EventKind::ThreadStart);
    trace.push(
        t0,
        EventKind::Acquire {
            lock: a,
            site: Label::new("main:5"),
            held: vec![],
            context: vec![Label::new("main:5")],
        },
    );
    trace.push(
        t0,
        EventKind::Acquire {
            lock: b,
            site: Label::new("main:6"),
            held: vec![a],
            context: vec![Label::new("main:5"), Label::new("main:6")],
        },
    );
    trace.push(
        t0,
        EventKind::Release {
            lock: b,
            site: Label::new("main:7"),
        },
    );
    trace.push(
        t0,
        EventKind::Release {
            lock: a,
            site: Label::new("main:8"),
        },
    );
    trace.push(t0, EventKind::ThreadExit);
    trace
}

const GOLDEN_TRACE_ARTIFACT: &str = include_str!("golden/trace.jsonl");
const GOLDEN_TRACE_JSON: &str = include_str!("golden/trace.json");
const GOLDEN_RELATION_ARTIFACT: &str = include_str!("golden/relation.json");

#[test]
fn trace_artifact_bytes_are_pinned() {
    let bytes = write_trace(Vec::new(), &golden_trace()).expect("write");
    assert_eq!(
        String::from_utf8(bytes).expect("utf8"),
        GOLDEN_TRACE_ARTIFACT,
        "df-trace artifact bytes drifted; bump TRACE_FORMAT_VERSION and \
         regenerate tests/golden/trace.jsonl"
    );
}

#[test]
fn trace_artifact_golden_round_trips() {
    let back = read_trace(GOLDEN_TRACE_ARTIFACT.as_bytes()).expect("read golden");
    assert_eq!(back, golden_trace());
}

#[test]
fn plain_trace_json_is_pinned_and_round_trips() {
    let json = serde_json::to_string_pretty(&golden_trace()).expect("serialize");
    assert_eq!(
        format!("{json}\n"),
        GOLDEN_TRACE_JSON,
        "plain Trace JSON drifted; regenerate tests/golden/trace.json"
    );
    let back: Trace = serde_json::from_str(GOLDEN_TRACE_JSON).expect("parse golden");
    assert_eq!(back, golden_trace());
}

#[test]
fn relation_artifact_bytes_are_pinned_and_round_trip() {
    let relation = LockDependencyRelation::from_trace(&golden_trace());
    assert_eq!(relation.len(), 1, "the golden trace has one dependency");
    let mut bytes = Vec::new();
    write_relation(&mut bytes, &relation).expect("write");
    assert_eq!(
        String::from_utf8(bytes).expect("utf8"),
        GOLDEN_RELATION_ARTIFACT,
        "df-relation artifact bytes drifted; bump RELATION_FORMAT_VERSION \
         and regenerate tests/golden/relation.json"
    );
    let back = read_relation(GOLDEN_RELATION_ARTIFACT.as_bytes()).expect("read golden");
    assert_eq!(
        serde_json::to_string(&back).expect("serialize"),
        serde_json::to_string(&relation).expect("serialize")
    );
}

/// Regenerates the fixtures after a deliberate format change:
/// `cargo test -p deadlock-fuzzer --test artifact_golden -- --ignored`.
#[test]
#[ignore = "writes tests/golden/; run explicitly after a format change"]
fn regenerate_goldens() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden");
    std::fs::create_dir_all(&dir).expect("create golden dir");
    let bytes = write_trace(Vec::new(), &golden_trace()).expect("write");
    std::fs::write(dir.join("trace.jsonl"), bytes).expect("write trace.jsonl");
    let json = serde_json::to_string_pretty(&golden_trace()).expect("serialize");
    std::fs::write(dir.join("trace.json"), format!("{json}\n")).expect("write trace.json");
    let relation = LockDependencyRelation::from_trace(&golden_trace());
    let mut bytes = Vec::new();
    write_relation(&mut bytes, &relation).expect("write");
    std::fs::write(dir.join("relation.json"), bytes).expect("write relation.json");
}

#[test]
fn version_bumped_goldens_are_rejected() {
    let bumped = GOLDEN_TRACE_ARTIFACT.replacen(
        &format!("\"version\":{TRACE_FORMAT_VERSION}"),
        &format!("\"version\":{}", TRACE_FORMAT_VERSION + 1),
        1,
    );
    assert!(matches!(
        read_trace(bumped.as_bytes()),
        Err(SpillError::VersionMismatch { .. })
    ));

    let bumped = GOLDEN_RELATION_ARTIFACT.replacen(
        &format!("\"version\":{RELATION_FORMAT_VERSION}"),
        &format!("\"version\":{}", RELATION_FORMAT_VERSION + 1),
        1,
    );
    assert!(matches!(
        read_relation(bumped.as_bytes()),
        Err(RelationArtifactError::VersionMismatch { .. })
    ));
}
