//! Golden serialization tests: the on-disk artifact formats and the
//! plain `Trace` JSON are pinned byte-for-byte against checked-in
//! fixtures under `tests/golden/`. Any change to the serde shape of
//! events, objects, or the artifact envelopes shows up here as a
//! readable diff — bump the format version and regenerate the fixtures
//! deliberately instead of drifting silently (readers of the old
//! version must keep rejecting, which the version-mismatch tests below
//! pin too).
//!
//! Two binary fixtures are checked in:
//!
//! * `trace.v2.bin` — a **frozen** version-2 artifact from before the
//!   mode-aware vocabulary landed. The current writer can no longer
//!   produce it (headers now say 3); the reader must keep accepting it
//!   forever, decoding to the exact same trace and JSONL bytes.
//! * `trace.v3.bin` — the current writer's output for a trace using
//!   the full mode-aware vocabulary (shared acquires, `TryAcquire`,
//!   condvar events), regenerated via `regenerate_goldens`.

use deadlock_fuzzer::events::{
    read_trace, read_trace_bytes, write_binary_trace, write_trace, EventKind, Label, ObjKind,
    SpillError, ThreadId, Trace, TRACE_BINARY_FORMAT_VERSION, TRACE_BINARY_MAGIC,
    TRACE_BINARY_MIN_FORMAT_VERSION, TRACE_FORMAT_VERSION,
};
use deadlock_fuzzer::igoodlock::{
    read_relation, write_relation, LockDependencyRelation, RelationArtifactError,
    RELATION_FORMAT_VERSION,
};
use proptest::prelude::*;

/// The canonical two-lock trace behind the v1/v2-era fixtures: one
/// thread takes `a` then `b` nested, so the relation has exactly one
/// dependency. Exclusive-only on purpose — its JSONL bytes must stay
/// identical to what the pre-mode vocabulary produced.
fn golden_trace() -> Trace {
    let mut trace = Trace::new();
    let t0 = ThreadId::new(0);
    let main = trace
        .objects_mut()
        .create(ObjKind::Thread, Label::new("<main>"), None, vec![]);
    trace.bind_thread(t0, main);
    let a = trace
        .objects_mut()
        .create(ObjKind::Lock, Label::new("main:3"), None, vec![]);
    let b = trace
        .objects_mut()
        .create(ObjKind::Lock, Label::new("main:4"), None, vec![]);
    trace.push(t0, EventKind::ThreadStart);
    trace.push(
        t0,
        EventKind::acquire(a, Label::new("main:5"), vec![], vec![Label::new("main:5")]),
    );
    trace.push(
        t0,
        EventKind::acquire(
            b,
            Label::new("main:6"),
            vec![a],
            vec![Label::new("main:5"), Label::new("main:6")],
        ),
    );
    trace.push(t0, EventKind::release(b, Label::new("main:7")));
    trace.push(t0, EventKind::release(a, Label::new("main:8")));
    trace.push(t0, EventKind::ThreadExit);
    trace
}

/// The mode-rich trace behind the v3 fixtures: a reader and a writer on
/// an rwlock (shared acquire/release, a failed exclusive try, a
/// successful shared try, a mode-tagged block) plus a condvar
/// wait/notify pair — every event kind the version-3 vocabulary added.
fn golden_trace_v3() -> Trace {
    let mut trace = Trace::new();
    let t0 = ThreadId::new(0);
    let t1 = ThreadId::new(1);
    let main = trace
        .objects_mut()
        .create(ObjKind::Thread, Label::new("<main>"), None, vec![]);
    trace.bind_thread(t0, main);
    let worker = trace.objects_mut().create_named(
        ObjKind::Thread,
        Label::new("main:2"),
        None,
        vec![],
        Some("worker".to_string()),
    );
    trace.bind_thread(t1, worker);
    let rw = trace
        .objects_mut()
        .create(ObjKind::Lock, Label::new("main:3"), None, vec![]);
    let m = trace
        .objects_mut()
        .create(ObjKind::Lock, Label::new("main:4"), None, vec![]);
    let cv = trace
        .objects_mut()
        .create(ObjKind::Plain, Label::new("main:5"), None, vec![]);
    trace.push(t0, EventKind::ThreadStart);
    trace.push(t1, EventKind::ThreadStart);
    trace.push(
        t0,
        EventKind::acquire(
            rw,
            Label::new("main:10"),
            vec![],
            vec![Label::new("main:10")],
        )
        .shared(),
    );
    trace.push(t1, EventKind::try_acquire(rw, Label::new("main:20"), false));
    trace.push(
        t1,
        EventKind::try_acquire(rw, Label::new("main:21"), true).shared(),
    );
    trace.push(t1, EventKind::release(rw, Label::new("main:22")).shared());
    trace.push(t1, EventKind::blocked(rw));
    trace.push(t0, EventKind::release(rw, Label::new("main:11")).shared());
    trace.push(t1, EventKind::unblocked(rw));
    trace.push(
        t1,
        EventKind::acquire(
            rw,
            Label::new("main:23"),
            vec![],
            vec![Label::new("main:23")],
        ),
    );
    trace.push(t1, EventKind::release(rw, Label::new("main:24")));
    trace.push(
        t0,
        EventKind::acquire(
            m,
            Label::new("main:12"),
            vec![],
            vec![Label::new("main:12")],
        ),
    );
    trace.push(t0, EventKind::cond_wait(cv, m, Label::new("main:13")));
    trace.push(t1, EventKind::cond_notify(cv, Label::new("main:25"), true));
    trace.push(t0, EventKind::release(m, Label::new("main:14")));
    trace.push(t1, EventKind::ThreadExit);
    trace.push(t0, EventKind::ThreadExit);
    trace
}

const GOLDEN_TRACE_ARTIFACT: &str = include_str!("golden/trace.jsonl");
const GOLDEN_TRACE_JSON: &str = include_str!("golden/trace.json");
const GOLDEN_RELATION_ARTIFACT: &str = include_str!("golden/relation.json");
const GOLDEN_TRACE_V2: &[u8] = include_bytes!("golden/trace.v2.bin");
const GOLDEN_TRACE_V3: &[u8] = include_bytes!("golden/trace.v3.bin");
const GOLDEN_TRACE_V3_JSONL: &str = include_str!("golden/trace.v3.jsonl");

/// Byte 15 of the binary preamble is the header's version varint.
const VERSION_OFFSET: usize = 15;

#[test]
fn trace_artifact_bytes_are_pinned() {
    let bytes = write_trace(Vec::new(), &golden_trace()).expect("write");
    assert_eq!(
        String::from_utf8(bytes).expect("utf8"),
        GOLDEN_TRACE_ARTIFACT,
        "df-trace artifact bytes drifted; bump TRACE_FORMAT_VERSION and \
         regenerate tests/golden/trace.jsonl"
    );
}

#[test]
fn trace_artifact_golden_round_trips() {
    let back = read_trace(GOLDEN_TRACE_ARTIFACT.as_bytes()).expect("read golden");
    assert_eq!(back, golden_trace());
}

#[test]
fn binary_v3_artifact_bytes_are_pinned() {
    let bytes = write_binary_trace(Vec::new(), &golden_trace_v3()).expect("write");
    assert_eq!(
        bytes, GOLDEN_TRACE_V3,
        "df-trace binary v3 artifact bytes drifted; bump \
         TRACE_BINARY_FORMAT_VERSION and regenerate tests/golden/trace.v3.bin"
    );
}

#[test]
fn mode_rich_jsonl_bytes_are_pinned_and_round_trip() {
    let bytes = write_trace(Vec::new(), &golden_trace_v3()).expect("write");
    assert_eq!(
        String::from_utf8(bytes).expect("utf8"),
        GOLDEN_TRACE_V3_JSONL,
        "mode-rich JSONL bytes drifted; regenerate tests/golden/trace.v3.jsonl"
    );
    let back = read_trace(GOLDEN_TRACE_V3_JSONL.as_bytes()).expect("read golden");
    assert_eq!(back, golden_trace_v3());
}

#[test]
fn binary_v2_golden_still_reads_and_matches_jsonl() {
    // Version-2 artifacts from before the mode-aware vocabulary stay
    // readable forever and analyze byte-identically.
    assert!(GOLDEN_TRACE_V2.starts_with(&TRACE_BINARY_MAGIC));
    assert_eq!(
        u32::from(GOLDEN_TRACE_V2[VERSION_OFFSET]),
        TRACE_BINARY_MIN_FORMAT_VERSION
    );
    let back = read_trace_bytes(GOLDEN_TRACE_V2).expect("read golden v2");
    assert_eq!(back, golden_trace());
    let jsonl = write_trace(Vec::new(), &back).expect("rewrite");
    assert_eq!(
        String::from_utf8(jsonl).expect("utf8"),
        GOLDEN_TRACE_ARTIFACT
    );
}

#[test]
fn exclusive_traces_encode_as_v2_plus_version_byte() {
    // The version-3 encoding is a strict superset: every v2 tag encodes
    // byte-identically, so re-writing the v2 golden's trace differs
    // from the frozen fixture in exactly one byte — the header version.
    let bytes = write_binary_trace(Vec::new(), &golden_trace()).expect("write");
    assert_eq!(bytes.len(), GOLDEN_TRACE_V2.len());
    assert_eq!(
        u32::from(bytes[VERSION_OFFSET]),
        TRACE_BINARY_FORMAT_VERSION
    );
    let diffs: Vec<usize> = bytes
        .iter()
        .zip(GOLDEN_TRACE_V2)
        .enumerate()
        .filter(|(_, (a, b))| a != b)
        .map(|(i, _)| i)
        .collect();
    assert_eq!(diffs, vec![VERSION_OFFSET]);
}

#[test]
fn version_bumped_binary_golden_is_rejected() {
    let mut bumped = GOLDEN_TRACE_V3.to_vec();
    assert_eq!(
        u32::from(bumped[VERSION_OFFSET]),
        TRACE_BINARY_FORMAT_VERSION
    );
    bumped[VERSION_OFFSET] += 1;
    assert!(matches!(
        read_trace_bytes(&bumped),
        Err(SpillError::VersionMismatch { .. })
    ));

    // Below the floor is just as dead as above the ceiling.
    let mut ancient = GOLDEN_TRACE_V2.to_vec();
    ancient[VERSION_OFFSET] = TRACE_BINARY_MIN_FORMAT_VERSION as u8 - 1;
    assert!(matches!(
        read_trace_bytes(&ancient),
        Err(SpillError::VersionMismatch { .. })
    ));
}

#[test]
fn v3_tags_under_a_v2_header_are_rejected() {
    // Downgrading the v3 golden's header must not smuggle mode-aware
    // tags past a v2 reader's expectations.
    let mut downgraded = GOLDEN_TRACE_V3.to_vec();
    downgraded[VERSION_OFFSET] = TRACE_BINARY_MIN_FORMAT_VERSION as u8;
    assert!(read_trace_bytes(&downgraded).is_err());
}

#[test]
fn plain_trace_json_is_pinned_and_round_trips() {
    let json = serde_json::to_string_pretty(&golden_trace()).expect("serialize");
    assert_eq!(
        format!("{json}\n"),
        GOLDEN_TRACE_JSON,
        "plain Trace JSON drifted; regenerate tests/golden/trace.json"
    );
    let back: Trace = serde_json::from_str(GOLDEN_TRACE_JSON).expect("parse golden");
    assert_eq!(back, golden_trace());
}

#[test]
fn relation_artifact_bytes_are_pinned_and_round_trip() {
    let relation = LockDependencyRelation::from_trace(&golden_trace());
    assert_eq!(relation.len(), 1, "the golden trace has one dependency");
    let mut bytes = Vec::new();
    write_relation(&mut bytes, &relation).expect("write");
    assert_eq!(
        String::from_utf8(bytes).expect("utf8"),
        GOLDEN_RELATION_ARTIFACT,
        "df-relation artifact bytes drifted; bump RELATION_FORMAT_VERSION \
         and regenerate tests/golden/relation.json"
    );
    let back = read_relation(GOLDEN_RELATION_ARTIFACT.as_bytes()).expect("read golden");
    assert_eq!(
        serde_json::to_string(&back).expect("serialize"),
        serde_json::to_string(&relation).expect("serialize")
    );
}

/// Regenerates the fixtures after a deliberate format change:
/// `cargo test -p deadlock-fuzzer --test artifact_golden -- --ignored`.
///
/// `trace.v2.bin` is intentionally NOT regenerated: it is a frozen
/// artifact of the retired version-2 writer, kept to pin read
/// compatibility.
#[test]
#[ignore = "writes tests/golden/; run explicitly after a format change"]
fn regenerate_goldens() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden");
    std::fs::create_dir_all(&dir).expect("create golden dir");
    let bytes = write_trace(Vec::new(), &golden_trace()).expect("write");
    std::fs::write(dir.join("trace.jsonl"), bytes).expect("write trace.jsonl");
    let json = serde_json::to_string_pretty(&golden_trace()).expect("serialize");
    std::fs::write(dir.join("trace.json"), format!("{json}\n")).expect("write trace.json");
    let relation = LockDependencyRelation::from_trace(&golden_trace());
    let mut bytes = Vec::new();
    write_relation(&mut bytes, &relation).expect("write");
    std::fs::write(dir.join("relation.json"), bytes).expect("write relation.json");
    let bytes = write_binary_trace(Vec::new(), &golden_trace_v3()).expect("write");
    std::fs::write(dir.join("trace.v3.bin"), bytes).expect("write trace.v3.bin");
    let bytes = write_trace(Vec::new(), &golden_trace_v3()).expect("write");
    std::fs::write(dir.join("trace.v3.jsonl"), bytes).expect("write trace.v3.jsonl");
}

/// Builds a structurally plausible trace from a generated op list:
/// two named threads, four locks, one condvar, a handful of interned
/// sites — enough variety to exercise every interesting encoder path
/// (string-table reuse, held/context vectors, shared modes, try
/// outcomes, condvar edges, empty traces).
fn trace_of_ops(ops: &[(u16, u16, u16)]) -> Trace {
    let mut trace = Trace::new();
    let spawn = Label::new("prop.spawn:1");
    for t in 0..2u32 {
        let obj = trace.objects_mut().create_named(
            ObjKind::Thread,
            spawn,
            None,
            vec![],
            Some(format!("prop-thread-{t}")),
        );
        trace.bind_thread(ThreadId::new(t), obj);
    }
    let locks: Vec<_> = (0..4)
        .map(|i| {
            trace.objects_mut().create(
                ObjKind::Lock,
                Label::new(&format!("prop.lock:{i}")),
                None,
                vec![],
            )
        })
        .collect();
    let cv = trace
        .objects_mut()
        .create(ObjKind::Plain, Label::new("prop.condvar:9"), None, vec![]);
    let sites = [
        Label::new("prop.site:10"),
        Label::new("prop.site:11"),
        Label::new("prop.site:12"),
    ];
    for &(op, lock, site_pick) in ops {
        let thread = ThreadId::new(u32::from(op) % 2);
        let lock_id = locks[usize::from(lock) % locks.len()];
        let other = locks[usize::from(lock.wrapping_add(1)) % locks.len()];
        let site = sites[usize::from(site_pick) % sites.len()];
        let kind = match op % 10 {
            0 => EventKind::acquire(lock_id, site, vec![], vec![site]),
            1 => EventKind::acquire(lock_id, site, vec![other], vec![sites[0], site]),
            2 => EventKind::release(lock_id, site),
            3 => EventKind::ThreadStart,
            4 => EventKind::Yield,
            5 => EventKind::blocked(lock_id),
            6 => EventKind::acquire(lock_id, site, vec![], vec![site]).shared(),
            7 => EventKind::release(lock_id, site).shared(),
            8 => {
                let kind = EventKind::try_acquire(lock_id, site, lock % 2 == 0);
                if site_pick % 2 == 0 {
                    kind.shared()
                } else {
                    kind
                }
            }
            _ => {
                if lock % 2 == 0 {
                    EventKind::cond_wait(cv, lock_id, site)
                } else {
                    EventKind::cond_notify(cv, site, site_pick % 2 == 0)
                }
            }
        };
        trace.push(thread, kind);
    }
    trace
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Satellite invariant of the binary path: for ANY event sequence —
    /// mode-aware vocabulary included — binary write → read → JSONL
    /// write produces byte-identical output to a direct JSONL write,
    /// and reading either encoding yields the same in-memory [`Trace`].
    #[test]
    fn any_trace_round_trips_binary_to_jsonl_byte_identically(
        ops in prop::collection::vec((0u16..256, 0u16..256, 0u16..256), 0..120)
    ) {
        let trace = trace_of_ops(&ops);
        let jsonl = write_trace(Vec::new(), &trace).expect("jsonl write");
        let binary = write_binary_trace(Vec::new(), &trace).expect("binary write");

        let from_binary = read_trace_bytes(&binary).expect("binary read");
        prop_assert_eq!(&from_binary, &trace);
        let rewritten = write_trace(Vec::new(), &from_binary).expect("rewrite");
        prop_assert_eq!(&rewritten, &jsonl);

        let from_jsonl = read_trace_bytes(&jsonl).expect("jsonl read");
        prop_assert_eq!(&from_jsonl, &from_binary);
    }

    /// Any truncation of a sealed binary artifact is rejected with an
    /// error — never a panic, never a silently short trace.
    #[test]
    fn truncated_binary_artifacts_are_always_rejected(
        ops in prop::collection::vec((0u16..256, 0u16..256, 0u16..256), 1..40),
        cut in 0usize..4096
    ) {
        let trace = trace_of_ops(&ops);
        let binary = write_binary_trace(Vec::new(), &trace).expect("binary write");
        let keep = cut % binary.len();
        prop_assert!(read_trace_bytes(&binary[..keep]).is_err());
    }
}

#[test]
fn version_bumped_goldens_are_rejected() {
    let bumped = GOLDEN_TRACE_ARTIFACT.replacen(
        &format!("\"version\":{TRACE_FORMAT_VERSION}"),
        &format!("\"version\":{}", TRACE_FORMAT_VERSION + 1),
        1,
    );
    assert!(matches!(
        read_trace(bumped.as_bytes()),
        Err(SpillError::VersionMismatch { .. })
    ));

    let bumped = GOLDEN_RELATION_ARTIFACT.replacen(
        &format!("\"version\":{RELATION_FORMAT_VERSION}"),
        &format!("\"version\":{}", RELATION_FORMAT_VERSION + 1),
        1,
    );
    assert!(matches!(
        read_relation(bumped.as_bytes()),
        Err(RelationArtifactError::VersionMismatch { .. })
    ));
}
