//! Golden serialization tests: the on-disk artifact formats and the
//! plain `Trace` JSON are pinned byte-for-byte against checked-in
//! fixtures under `tests/golden/`. Any change to the serde shape of
//! events, objects, or the artifact envelopes shows up here as a
//! readable diff — bump the format version and regenerate the fixtures
//! deliberately instead of drifting silently (readers of the old
//! version must keep rejecting, which the version-mismatch tests below
//! pin too).

use deadlock_fuzzer::events::{
    read_trace, read_trace_bytes, write_binary_trace, write_trace, EventKind, Label, ObjKind,
    SpillError, ThreadId, Trace, TRACE_BINARY_FORMAT_VERSION, TRACE_BINARY_MAGIC,
    TRACE_FORMAT_VERSION,
};
use deadlock_fuzzer::igoodlock::{
    read_relation, write_relation, LockDependencyRelation, RelationArtifactError,
    RELATION_FORMAT_VERSION,
};
use proptest::prelude::*;

/// The canonical two-lock trace behind every fixture: one thread takes
/// `a` then `b` nested, so the relation has exactly one dependency.
fn golden_trace() -> Trace {
    let mut trace = Trace::new();
    let t0 = ThreadId::new(0);
    let main = trace
        .objects_mut()
        .create(ObjKind::Thread, Label::new("<main>"), None, vec![]);
    trace.bind_thread(t0, main);
    let a = trace
        .objects_mut()
        .create(ObjKind::Lock, Label::new("main:3"), None, vec![]);
    let b = trace
        .objects_mut()
        .create(ObjKind::Lock, Label::new("main:4"), None, vec![]);
    trace.push(t0, EventKind::ThreadStart);
    trace.push(
        t0,
        EventKind::Acquire {
            lock: a,
            site: Label::new("main:5"),
            held: vec![],
            context: vec![Label::new("main:5")],
        },
    );
    trace.push(
        t0,
        EventKind::Acquire {
            lock: b,
            site: Label::new("main:6"),
            held: vec![a],
            context: vec![Label::new("main:5"), Label::new("main:6")],
        },
    );
    trace.push(
        t0,
        EventKind::Release {
            lock: b,
            site: Label::new("main:7"),
        },
    );
    trace.push(
        t0,
        EventKind::Release {
            lock: a,
            site: Label::new("main:8"),
        },
    );
    trace.push(t0, EventKind::ThreadExit);
    trace
}

const GOLDEN_TRACE_ARTIFACT: &str = include_str!("golden/trace.jsonl");
const GOLDEN_TRACE_JSON: &str = include_str!("golden/trace.json");
const GOLDEN_RELATION_ARTIFACT: &str = include_str!("golden/relation.json");
const GOLDEN_TRACE_V2: &[u8] = include_bytes!("golden/trace.v2.bin");

#[test]
fn trace_artifact_bytes_are_pinned() {
    let bytes = write_trace(Vec::new(), &golden_trace()).expect("write");
    assert_eq!(
        String::from_utf8(bytes).expect("utf8"),
        GOLDEN_TRACE_ARTIFACT,
        "df-trace artifact bytes drifted; bump TRACE_FORMAT_VERSION and \
         regenerate tests/golden/trace.jsonl"
    );
}

#[test]
fn trace_artifact_golden_round_trips() {
    let back = read_trace(GOLDEN_TRACE_ARTIFACT.as_bytes()).expect("read golden");
    assert_eq!(back, golden_trace());
}

#[test]
fn binary_artifact_bytes_are_pinned() {
    let bytes = write_binary_trace(Vec::new(), &golden_trace()).expect("write");
    assert_eq!(
        bytes, GOLDEN_TRACE_V2,
        "df-trace binary v2 artifact bytes drifted; bump \
         TRACE_BINARY_FORMAT_VERSION and regenerate tests/golden/trace.v2.bin"
    );
}

#[test]
fn binary_artifact_golden_round_trips_and_matches_jsonl() {
    assert!(GOLDEN_TRACE_V2.starts_with(&TRACE_BINARY_MAGIC));
    let back = read_trace_bytes(GOLDEN_TRACE_V2).expect("read golden v2");
    assert_eq!(back, golden_trace());
    // The two encodings are views of the same trace: decoding the binary
    // fixture and re-writing as JSONL reproduces the JSONL fixture.
    let jsonl = write_trace(Vec::new(), &back).expect("rewrite");
    assert_eq!(
        String::from_utf8(jsonl).expect("utf8"),
        GOLDEN_TRACE_ARTIFACT
    );
}

#[test]
fn version_bumped_binary_golden_is_rejected() {
    // Byte 15 of the preamble is the header's version varint.
    let mut bumped = GOLDEN_TRACE_V2.to_vec();
    assert_eq!(bumped[15], TRACE_BINARY_FORMAT_VERSION as u8);
    bumped[15] += 1;
    assert!(matches!(
        read_trace_bytes(&bumped),
        Err(SpillError::VersionMismatch { .. })
    ));
}

#[test]
fn plain_trace_json_is_pinned_and_round_trips() {
    let json = serde_json::to_string_pretty(&golden_trace()).expect("serialize");
    assert_eq!(
        format!("{json}\n"),
        GOLDEN_TRACE_JSON,
        "plain Trace JSON drifted; regenerate tests/golden/trace.json"
    );
    let back: Trace = serde_json::from_str(GOLDEN_TRACE_JSON).expect("parse golden");
    assert_eq!(back, golden_trace());
}

#[test]
fn relation_artifact_bytes_are_pinned_and_round_trip() {
    let relation = LockDependencyRelation::from_trace(&golden_trace());
    assert_eq!(relation.len(), 1, "the golden trace has one dependency");
    let mut bytes = Vec::new();
    write_relation(&mut bytes, &relation).expect("write");
    assert_eq!(
        String::from_utf8(bytes).expect("utf8"),
        GOLDEN_RELATION_ARTIFACT,
        "df-relation artifact bytes drifted; bump RELATION_FORMAT_VERSION \
         and regenerate tests/golden/relation.json"
    );
    let back = read_relation(GOLDEN_RELATION_ARTIFACT.as_bytes()).expect("read golden");
    assert_eq!(
        serde_json::to_string(&back).expect("serialize"),
        serde_json::to_string(&relation).expect("serialize")
    );
}

/// Regenerates the fixtures after a deliberate format change:
/// `cargo test -p deadlock-fuzzer --test artifact_golden -- --ignored`.
#[test]
#[ignore = "writes tests/golden/; run explicitly after a format change"]
fn regenerate_goldens() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden");
    std::fs::create_dir_all(&dir).expect("create golden dir");
    let bytes = write_trace(Vec::new(), &golden_trace()).expect("write");
    std::fs::write(dir.join("trace.jsonl"), bytes).expect("write trace.jsonl");
    let json = serde_json::to_string_pretty(&golden_trace()).expect("serialize");
    std::fs::write(dir.join("trace.json"), format!("{json}\n")).expect("write trace.json");
    let relation = LockDependencyRelation::from_trace(&golden_trace());
    let mut bytes = Vec::new();
    write_relation(&mut bytes, &relation).expect("write");
    std::fs::write(dir.join("relation.json"), bytes).expect("write relation.json");
    let bytes = write_binary_trace(Vec::new(), &golden_trace()).expect("write");
    std::fs::write(dir.join("trace.v2.bin"), bytes).expect("write trace.v2.bin");
}

/// Builds a structurally plausible trace from a generated op list:
/// two named threads, four locks, a handful of interned sites — enough
/// variety to exercise every interesting encoder path (string-table
/// reuse, held/context vectors, empty traces).
fn trace_of_ops(ops: &[(u16, u16, u16)]) -> Trace {
    let mut trace = Trace::new();
    let spawn = Label::new("prop.spawn:1");
    for t in 0..2u32 {
        let obj = trace.objects_mut().create_named(
            ObjKind::Thread,
            spawn,
            None,
            vec![],
            Some(format!("prop-thread-{t}")),
        );
        trace.bind_thread(ThreadId::new(t), obj);
    }
    let locks: Vec<_> = (0..4)
        .map(|i| {
            trace.objects_mut().create(
                ObjKind::Lock,
                Label::new(&format!("prop.lock:{i}")),
                None,
                vec![],
            )
        })
        .collect();
    let sites = [
        Label::new("prop.site:10"),
        Label::new("prop.site:11"),
        Label::new("prop.site:12"),
    ];
    for &(op, lock, site) in ops {
        let thread = ThreadId::new(u32::from(op) % 2);
        let lock_id = locks[usize::from(lock) % locks.len()];
        let other = locks[usize::from(lock.wrapping_add(1)) % locks.len()];
        let site = sites[usize::from(site) % sites.len()];
        let kind = match op % 6 {
            0 => EventKind::Acquire {
                lock: lock_id,
                site,
                held: vec![],
                context: vec![site],
            },
            1 => EventKind::Acquire {
                lock: lock_id,
                site,
                held: vec![other],
                context: vec![sites[0], site],
            },
            2 => EventKind::Release {
                lock: lock_id,
                site,
            },
            3 => EventKind::ThreadStart,
            4 => EventKind::Yield,
            _ => EventKind::Blocked { lock: lock_id },
        };
        trace.push(thread, kind);
    }
    trace
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Satellite invariant of the binary path: for ANY event sequence,
    /// binary write → read → JSONL write produces byte-identical output
    /// to a direct JSONL write, and reading either encoding yields the
    /// same in-memory [`Trace`].
    #[test]
    fn any_trace_round_trips_binary_to_jsonl_byte_identically(
        ops in prop::collection::vec((0u16..256, 0u16..256, 0u16..256), 0..120)
    ) {
        let trace = trace_of_ops(&ops);
        let jsonl = write_trace(Vec::new(), &trace).expect("jsonl write");
        let binary = write_binary_trace(Vec::new(), &trace).expect("binary write");

        let from_binary = read_trace_bytes(&binary).expect("binary read");
        prop_assert_eq!(&from_binary, &trace);
        let rewritten = write_trace(Vec::new(), &from_binary).expect("rewrite");
        prop_assert_eq!(&rewritten, &jsonl);

        let from_jsonl = read_trace_bytes(&jsonl).expect("jsonl read");
        prop_assert_eq!(&from_jsonl, &from_binary);
    }

    /// Any truncation of a sealed binary artifact is rejected with an
    /// error — never a panic, never a silently short trace.
    #[test]
    fn truncated_binary_artifacts_are_always_rejected(
        ops in prop::collection::vec((0u16..256, 0u16..256, 0u16..256), 1..40),
        cut in 0usize..4096
    ) {
        let trace = trace_of_ops(&ops);
        let binary = write_binary_trace(Vec::new(), &trace).expect("binary write");
        let keep = cut % binary.len();
        prop_assert!(read_trace_bytes(&binary[..keep]).is_err());
    }
}

#[test]
fn version_bumped_goldens_are_rejected() {
    let bumped = GOLDEN_TRACE_ARTIFACT.replacen(
        &format!("\"version\":{TRACE_FORMAT_VERSION}"),
        &format!("\"version\":{}", TRACE_FORMAT_VERSION + 1),
        1,
    );
    assert!(matches!(
        read_trace(bumped.as_bytes()),
        Err(SpillError::VersionMismatch { .. })
    ));

    let bumped = GOLDEN_RELATION_ARTIFACT.replacen(
        &format!("\"version\":{RELATION_FORMAT_VERSION}"),
        &format!("\"version\":{}", RELATION_FORMAT_VERSION + 1),
        1,
    );
    assert!(matches!(
        read_relation(bumped.as_bytes()),
        Err(RelationArtifactError::VersionMismatch { .. })
    ));
}
