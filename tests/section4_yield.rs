//! Integration test for §4: the yield optimization removes a whole class
//! of thrashings.

use deadlock_fuzzer::prelude::*;

#[test]
fn yield_optimization_beats_no_yields() {
    let trials = 25;
    let with_yields = DeadlockFuzzer::from_ref(
        df_benchmarks::section4::program(),
        Config::default().with_confirm_trials(trials),
    )
    .run();
    let without = DeadlockFuzzer::from_ref(
        df_benchmarks::section4::program(),
        Config::default()
            .with_yields(false)
            .with_confirm_trials(trials),
    )
    .run();
    assert_eq!(with_yields.potential_count(), 1);
    let py = &with_yields.confirmations[0].probability;
    let pn = &without.confirmations[0].probability;
    // With yields: the deadlock is certain (paper: "the real deadlock
    // will get created with probability 1").
    assert_eq!(py.deadlocks, trials, "{py:?}");
    // Without: the leading synchronized(l1) block of thread2 blocks
    // against the paused thread1 — thrash, and often a miss.
    assert!(
        pn.deadlocks < trials || pn.avg_thrashes > py.avg_thrashes,
        "no-yields must degrade: yields={py:?} noyields={pn:?}"
    );
}

#[test]
fn yield_stats_are_reported() {
    let fuzzer = DeadlockFuzzer::from_ref(df_benchmarks::section4::program(), Config::default());
    let p1 = fuzzer.phase1();
    let r = fuzzer.phase2(&p1.abstract_cycles[0], 7);
    assert!(r.deadlocked());
    assert!(
        r.yields > 0,
        "the §4 gate should fire on this program: {r:?}"
    );
}
