//! Property-based integration tests: random lock-order programs through
//! the whole pipeline.

use std::sync::Arc;

use deadlock_fuzzer::prelude::*;
use proptest::prelude::*;

/// A random program spec: `threads[t]` is a list of (outer, inner) lock
/// index pairs that thread `t` acquires in nested fashion, with work
/// gaps.
#[derive(Clone, Debug)]
struct Spec {
    locks: usize,
    threads: Vec<Vec<(usize, usize)>>,
}

fn arb_spec(ordered: bool) -> impl Strategy<Value = Spec> {
    (2usize..5)
        .prop_flat_map(move |locks| {
            let pair = (0..locks, 0..locks).prop_filter_map("distinct", move |(a, b)| {
                if a == b {
                    None
                } else if ordered {
                    Some((a.min(b), a.max(b)))
                } else {
                    Some((a, b))
                }
            });
            let thread = prop::collection::vec(pair, 1..3);
            (Just(locks), prop::collection::vec(thread, 1..4))
        })
        .prop_map(|(locks, threads)| Spec { locks, threads })
}

fn build(spec: Spec) -> deadlock_fuzzer::ProgramRef {
    Arc::new(Named::new("random", move |ctx: &TCtx| {
        let locks: Vec<_> = (0..spec.locks)
            .map(|_| ctx.new_lock(Label::new("random.newLock")))
            .collect();
        let mut handles = Vec::new();
        for (t, pairs) in spec.threads.iter().enumerate() {
            let locks = locks.clone();
            let pairs = pairs.clone();
            handles.push(
                ctx.spawn(Label::new("random.spawn"), &format!("w{t}"), move |ctx| {
                    for (i, &(outer, inner)) in pairs.iter().enumerate() {
                        let go = ctx.lock(
                            &locks[outer],
                            Label::new(&format!("random.outer:{i}:{outer}")),
                        );
                        let gi = ctx.lock(
                            &locks[inner],
                            Label::new(&format!("random.inner:{i}:{inner}")),
                        );
                        ctx.work(1);
                        drop(gi);
                        drop(go);
                        ctx.work(2);
                    }
                }),
            );
        }
        for h in &handles {
            ctx.join(h, Label::new("random.join"));
        }
    }))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Programs whose every nested acquisition respects the global lock
    /// order (low index before high index) can never deadlock: iGoodlock
    /// must report nothing and runs complete under several seeds.
    #[test]
    fn ordered_programs_are_deadlock_free(spec in arb_spec(true)) {
        let program = build(spec);
        for seed in [0u64, 9] {
            let fuzzer = DeadlockFuzzer::from_ref(
                program.clone(),
                Config::default().with_phase1_seed(seed),
            );
            let p1 = fuzzer.phase1();
            prop_assert!(p1.run_outcome.is_completed(), "{:?}", p1.run_outcome);
            prop_assert_eq!(p1.cycle_count(), 0);
        }
    }

    /// For arbitrary programs: every confirmed cycle comes with a valid
    /// witness — its components form a true hold/wait cycle. This is the
    /// "no false positives" half of the paper's claim, checked
    /// structurally.
    #[test]
    fn confirmed_cycles_have_valid_witnesses(spec in arb_spec(false)) {
        let program = build(spec);
        let fuzzer = DeadlockFuzzer::from_ref(
            program,
            Config::default().with_confirm_trials(3),
        );
        let p1 = fuzzer.phase1();
        for cycle in &p1.abstract_cycles {
            let r = fuzzer.phase2(cycle, 17);
            if let Some(w) = &r.witness {
                let n = w.components.len();
                prop_assert!(n >= 2);
                for i in 0..n {
                    let next = &w.components[(i + 1) % n];
                    prop_assert!(
                        next.holding.contains(&w.components[i].waiting_for),
                        "component {i} waits for a lock the next one holds"
                    );
                }
                // Threads and locks pairwise distinct.
                let mut ts: Vec<_> = w.components.iter().map(|c| c.thread).collect();
                ts.sort();
                ts.dedup();
                prop_assert_eq!(ts.len(), n);
            }
        }
    }

    /// Fault injection never breaks the campaign: with a seeded
    /// [`FaultPlan`] sampling panic-on-acquire and leaked-release faults,
    /// the full pipeline still returns a report (it must not panic), every
    /// error-free confirmation classifies all of its trials into a
    /// [`deadlock_fuzzer::TrialOutcome`], and the observability counters
    /// stay consistent with what was actually injected.
    #[test]
    fn faulty_campaigns_degrade_gracefully(
        spec in arb_spec(false),
        fault_seed in 0u64..512,
        panic_p in (0usize..3).prop_map(|i| [0.0, 0.1, 1.0][i]),
        leak_p in (0usize..2).prop_map(|i| [0.0, 0.25][i]),
    ) {
        use deadlock_fuzzer::runtime::FaultPlan;

        let program = build(spec);
        let plan = FaultPlan::new(fault_seed)
            .with_panic_on_acquire(panic_p)
            .with_leak_release(leak_p);
        let obs = df_obs::Obs::new();
        let mut config = Config::default()
            .with_confirm_trials(2)
            .with_trial_retries(1)
            .with_obs(obs.clone());
        config.run = config.run.with_fault_plan(plan.clone());
        let fuzzer = DeadlockFuzzer::from_ref(program, config);
        let report = fuzzer.run(); // must degrade, never panic
        let mut retries = 0u64;
        let mut panics = 0u64;
        for c in &report.confirmations {
            if c.error.is_none() {
                // Every trial lands in exactly one outcome class.
                prop_assert_eq!(c.probability.outcomes.total(), c.probability.trials);
            }
            retries += u64::from(c.probability.retries);
            panics += u64::from(c.probability.outcomes.panics);
        }
        let s = obs.counters().snapshot();
        prop_assert_eq!(s.trial_retries, retries);
        if plan.is_noop() {
            prop_assert_eq!(s.faults_injected, 0);
        }
        // The only panic source here is the plan, and a trial that ends
        // in the panic class took at least one injected fault.
        prop_assert!(s.faults_injected >= panics);
        if panic_p == 1.0 {
            // Every spec acquires at least one lock, so the very first
            // acquisition attempt of the Phase I run already faults.
            prop_assert!(s.faults_injected >= 1);
        }
    }

    /// Phase I itself never wedges on arbitrary programs: it either
    /// completes or stops at a detected deadlock/stall.
    #[test]
    fn phase1_always_terminates(spec in arb_spec(false)) {
        let program = build(spec);
        let fuzzer = DeadlockFuzzer::from_ref(program, Config::default());
        let p1 = fuzzer.phase1();
        let ok = p1.run_outcome.is_completed()
            || p1.run_outcome.is_deadlock()
            || matches!(p1.run_outcome, deadlock_fuzzer::runtime::Outcome::Stall { .. });
        prop_assert!(ok, "unexpected outcome {:?}", p1.run_outcome);
    }
}
