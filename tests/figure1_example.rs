//! Integration test for §3 of the paper: the Figure 1 example and the
//! necessity of object abstractions.

use deadlock_fuzzer::abstraction::AbstractionMode;
use deadlock_fuzzer::prelude::*;

#[test]
fn two_thread_figure1_full_story() {
    let fuzzer = DeadlockFuzzer::from_ref(
        df_benchmarks::figure1::program(false),
        Config::default().with_confirm_trials(15),
    );
    // Plain testing rarely finds it (the paper ran 100 normal executions
    // with zero deadlocks).
    let (baseline, _) = fuzzer.baseline(15).expect("trials > 0");
    assert!(
        baseline <= 4,
        "baseline should rarely deadlock: {baseline}/15"
    );
    // DeadlockFuzzer confirms it every time.
    let report = fuzzer.run();
    assert_eq!(report.potential_count(), 1);
    assert_eq!(report.confirmed_count(), 1);
    assert_eq!(report.confirmations[0].probability.matched, 15);
    assert_eq!(report.confirmations[0].probability.avg_thrashes, 0.0);
}

#[test]
fn three_thread_variant_needs_abstractions() {
    // §3: with lines 24/27 uncommented, a third thread reaches the same
    // acquire sites. With precise abstractions DeadlockFuzzer never
    // pauses it (P = 1, no thrashing); with the trivial abstraction it
    // pauses the wrong thread, thrashes, and can miss.
    let trials = 20;
    let exact = DeadlockFuzzer::from_ref(
        df_benchmarks::figure1::program(true),
        Config::default().with_confirm_trials(trials),
    )
    .run();
    assert_eq!(exact.potential_count(), 1);
    let pe = &exact.confirmations[0].probability;
    assert_eq!(pe.matched, trials);
    assert_eq!(pe.avg_thrashes, 0.0);

    let trivial = DeadlockFuzzer::from_ref(
        df_benchmarks::figure1::program(true),
        Config::default()
            .with_mode(AbstractionMode::Trivial)
            .with_confirm_trials(trials),
    )
    .run();
    let pt = &trivial.confirmations[0].probability;
    let degraded = pt.matched < trials || pt.avg_thrashes > 0.0;
    assert!(degraded, "trivial abstraction must thrash or miss: {pt:?}");
}

#[test]
fn report_uses_paper_notation() {
    // iGoodlock's report format: ([thread abs], [lock abs], [contexts]).
    let fuzzer =
        DeadlockFuzzer::from_ref(df_benchmarks::figure1::program(false), Config::default());
    let p1 = fuzzer.phase1();
    let text = p1.abstract_cycles[0].to_string();
    // Thread abstractions carry the start sites (paper: [25,1], [26,1]),
    // lock abstractions the allocation sites (paper: [22,1], [23,1]).
    assert!(text.contains("MyThread.main:25"), "{text}");
    assert!(text.contains("MyThread.main:26"), "{text}");
    assert!(text.contains("MyThread.main:22"), "{text}");
    assert!(text.contains("MyThread.main:23"), "{text}");
    assert!(text.contains("MyThread.run:16"), "{text}");
}
