//! Quickstart: the paper's Figure 1 example, end to end.
//!
//! Two threads acquire two locks in opposite orders, but the first thread
//! runs "long running methods" first, so stress testing almost never
//! trips the deadlock. DeadlockFuzzer (1) predicts the cycle from one
//! ordinary execution, then (2) *creates* the deadlock deterministically.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use deadlock_fuzzer::prelude::*;

fn label(s: &str) -> Label {
    Label::new(s)
}

/// Figure 1 of the paper, transcribed to the virtual-thread API.
fn figure1() -> Named<impl Program> {
    Named::new("figure1", |ctx: &TCtx| {
        // main (lines 21-28): two locks, two MyThread instances.
        let o1 = ctx.new_lock(label("main:22"));
        let o2 = ctx.new_lock(label("main:23"));
        let run = |l1: LockRef, l2: LockRef, flag: bool| {
            move |ctx: &TCtx| {
                if flag {
                    ctx.work(8); // f1() .. f4(): long running methods
                }
                ctx.acquire(&l1, label("run:15"));
                ctx.acquire(&l2, label("run:16"));
                ctx.release(&l2, label("run:17"));
                ctx.release(&l1, label("run:18"));
            }
        };
        let t1 = ctx.spawn(label("main:25"), "t1", run(o1, o2, true));
        let t2 = ctx.spawn(label("main:26"), "t2", run(o2, o1, false));
        ctx.join(&t1, label("main: join"));
        ctx.join(&t2, label("main: join"));
    })
}

fn main() {
    let fuzzer = DeadlockFuzzer::with_config(figure1(), Config::default().with_confirm_trials(20));

    // Control: plain random testing does not find the deadlock.
    let (baseline_deadlocks, _) = fuzzer.baseline(20).expect("trials > 0");
    println!("plain random testing: {baseline_deadlocks}/20 runs deadlocked");

    // Phase I: observe one execution, predict potential cycles.
    let phase1 = fuzzer.phase1();
    println!("\n--- Phase I (iGoodlock) ---\n{phase1}");

    // Phase II: create each predicted cycle.
    let report = fuzzer.run();
    println!("--- Phase II (active random scheduler) ---\n{report}");

    let conf = &report.confirmations[0];
    println!(
        "Figure 1's deadlock was created in {}/{} biased runs (paper: probability 1).",
        conf.probability.matched, conf.probability.trials
    );
    if let Some(first) = fuzzer
        .phase2(&report.confirmations[0].cycle, 1)
        .witness
        .as_ref()
    {
        println!("\nA concrete witness:\n{first}");
    }
}
