//! The Jigsaw web-server deadlock (Figure 3 of the paper).
//!
//! On shutdown, `SocketClientFactory.killClients()` holds the factory
//! monitor and takes `csList`; concurrently each `SocketClient` finishing
//! a connection takes `csList` and re-enters the factory. The model also
//! contains the §5.4 `CachedThread.waitForRunner()` cycles — reported by
//! iGoodlock but impossible (a happens-before edge guards them), which
//! DeadlockFuzzer correctly never confirms.
//!
//! ```text
//! cargo run --example jigsaw_server
//! ```

use deadlock_fuzzer::prelude::*;

fn main() {
    let fuzzer = DeadlockFuzzer::from_ref(
        df_benchmarks::jigsaw::program(),
        Config::default().with_confirm_trials(15),
    );

    let report = fuzzer.run();
    println!("{report}");

    println!("--- verdicts ---");
    for conf in &report.confirmations {
        let is_fp = conf.cycle.to_string().contains("waitForRunner");
        println!(
            "cycle {:>2}: {:<14} {}",
            conf.cycle_index + 1,
            if conf.confirmed {
                "REAL DEADLOCK"
            } else if is_fp {
                "false positive"
            } else {
                "not reproduced"
            },
            conf.cycle,
        );
    }
    println!(
        "\n{} of {} iGoodlock reports confirmed as real — like the paper's Jigsaw run \
         (29 confirmed of 283 reported), the unconfirmed remainder includes \
         happens-before-guarded false positives.",
        report.confirmed_count(),
        report.potential_count()
    );
}
