//! Dining philosophers: a deadlock cycle of length N.
//!
//! The paper notes all real deadlocks in its benchmarks have length two,
//! and iGoodlock is iterative — cycles of length k are found before any
//! of length k+1. This example shows the machinery on a *longer* cycle:
//! five philosophers each take their left fork then their right, so the
//! only deadlock is the full 5-cycle. DeadlockFuzzer predicts it and then
//! serves it on a platter.
//!
//! ```text
//! cargo run --example dining_philosophers
//! ```

use deadlock_fuzzer::prelude::*;

const PHILOSOPHERS: usize = 5;

fn table() -> Named<impl Program> {
    Named::new("dining-philosophers", |ctx: &TCtx| {
        let forks: Vec<_> = (0..PHILOSOPHERS)
            .map(|_| ctx.new_lock(Label::new("Table.layFork")))
            .collect();
        let mut seats = Vec::new();
        for p in 0..PHILOSOPHERS {
            let left = forks[p];
            let right = forks[(p + 1) % PHILOSOPHERS];
            seats.push(ctx.spawn(
                Label::new("Table.seatPhilosopher"),
                &format!("philosopher-{p}"),
                move |ctx| {
                    for _ in 0..2 {
                        ctx.work(2); // think
                        let l = ctx.lock(&left, Label::new("Philosopher.takeLeft"));
                        let r = ctx.lock(&right, Label::new("Philosopher.takeRight"));
                        ctx.work(1); // eat
                        drop(r);
                        drop(l);
                    }
                },
            ));
        }
        for s in &seats {
            ctx.join(s, Label::new("Table.join"));
        }
    })
}

fn main() {
    let fuzzer = DeadlockFuzzer::with_config(table(), Config::default().with_confirm_trials(10));

    let phase1 = fuzzer.phase1();
    println!("--- Phase I ---\n{phase1}");
    let lengths: Vec<usize> = phase1.cycles.iter().map(|c| c.len()).collect();
    println!("cycle lengths found: {lengths:?} (the full ring)");

    let report = fuzzer.run();
    println!("\n--- Phase II ---\n{report}");
    if let Some(conf) = report.confirmations.iter().find(|c| c.confirmed) {
        println!(
            "created the {}-philosopher deadlock in {}/{} biased runs",
            conf.cycle.len(),
            conf.probability.matched,
            conf.probability.trials
        );
    }
}
