//! A bounded buffer with monitor wait/notify — and a resource deadlock
//! hiding behind it (model: `df_benchmarks::buffer`).
//!
//! The paper's technique targets *resource* deadlocks only ("We only
//! consider resource deadlocks in this paper"); communication deadlocks
//! (lost signals) are reported as stalls but not steered toward. Here a
//! producer/consumer handshake runs through a condition-variable protocol
//! (never a resource deadlock), while a flush path and a stats path take
//! the buffer lock and the metrics lock in opposite orders — the kind of
//! bug DeadlockFuzzer confirms. One of the two reported cycles is
//! distinguished by a *wait-reacquire* context.
//!
//! ```text
//! cargo run --example bounded_buffer
//! ```

use deadlock_fuzzer::prelude::*;

fn main() {
    let fuzzer = DeadlockFuzzer::from_ref(
        df_benchmarks::buffer::program(),
        Config::default().with_confirm_trials(15),
    );

    let (baseline, _) = fuzzer.baseline(15).expect("trials > 0");
    println!("plain runs that deadlocked: {baseline}/15");

    let report = fuzzer.run();
    println!("\n{report}");
    println!(
        "The wait/notify handshake is never reported — iGoodlock sees only the \
         lock-order inversion between Buffer.take (monitor→metrics) and \
         Metrics.snapshot (metrics→monitor). Note the second cycle's context: \
         the consumer re-entered the monitor from its wait()."
    );
}
