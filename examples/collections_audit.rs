//! Auditing the synchronized collections (Table 1's last two rows).
//!
//! Reproduces the paper's most interesting probabilistic result: on the
//! synchronized *lists*, every method-pair deadlock is created almost
//! every time; on the synchronized *maps*, only about half the biased
//! runs create the *requested* cycle — the others deadlock at a
//! neighbouring inner call first (still a real deadlock, just a different
//! one).
//!
//! ```text
//! cargo run --release --example collections_audit
//! ```

use deadlock_fuzzer::prelude::*;

fn audit(name: &str, program: deadlock_fuzzer::ProgramRef, trials: u32) {
    let fuzzer = DeadlockFuzzer::from_ref(program, Config::default().with_confirm_trials(trials));
    let report = fuzzer.run();
    println!("=== {name} ===");
    println!(
        "iGoodlock: {} potential cycles; DeadlockFuzzer confirmed {}",
        report.potential_count(),
        report.confirmed_count()
    );
    let mut any = 0u32;
    let mut matched = 0u32;
    for conf in &report.confirmations {
        any += conf.probability.deadlocks;
        matched += conf.probability.matched;
    }
    let total = trials * report.potential_count() as u32;
    println!(
        "biased runs that deadlocked (anywhere): {any}/{total}; that created the \
         requested cycle: {matched}/{total} (= {:.2})\n",
        f64::from(matched) / f64::from(total.max(1))
    );
}

fn main() {
    let trials = 10;
    audit(
        "Synchronized Lists (ArrayList, Stack, LinkedList)",
        df_benchmarks::lists::program(),
        trials,
    );
    audit(
        "Synchronized Maps (HashMap, TreeMap, WeakHashMap, LinkedHashMap, IdentityHashMap)",
        df_benchmarks::maps::program(),
        trials,
    );
    println!(
        "Paper's Table 1: lists reproduce at 0.99; maps at 0.52 — when a map run \
         misses, it deadlocked at a different equals/get combination instead."
    );
}
