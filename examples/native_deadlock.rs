//! A natively-scheduled program that **really deadlocks**, tracked by
//! `df-lock`: the online wait-for-graph detector reports the cycle the
//! instant it forms, the handler seals the spill, and `dfz analyze` on
//! that spill finds the same cycle offline.
//!
//! ```text
//! cargo run --example native_deadlock -- [trace-path] [--handler seal|log]
//! ```
//!
//! With the default `seal` handler the process exits with the
//! documented live-deadlock code (5) and leaves a sealed `df-trace`
//! artifact behind. With `--handler log` the witness is printed, the
//! two threads recover via `try_lock_for` timeouts, and the program
//! seals the spill itself and exits 0 — the graceful-degradation mode.

use std::sync::{Arc, Barrier, Mutex};
use std::time::Duration;

use df_events::{SinkHandle, SpillSink};
use df_lock::{DeadlockHandler, TrackedMutex, Tracker, TrackerConfig};

fn main() {
    let mut path = std::path::PathBuf::from("native_deadlock.trace.jsonl");
    let mut handler = DeadlockHandler::SealAndExit;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--handler" => match args.next().as_deref() {
                Some("seal") => handler = DeadlockHandler::SealAndExit,
                Some("log") => handler = DeadlockHandler::Log,
                other => {
                    eprintln!("unknown handler {other:?} (expected seal | log)");
                    std::process::exit(2);
                }
            },
            p => path = p.into(),
        }
    }

    let file = std::fs::File::create(&path).expect("create spill file");
    let spill = Arc::new(Mutex::new(
        SpillSink::new(std::io::BufWriter::new(file)).expect("start spill"),
    ));
    let tracker = Tracker::install(
        TrackerConfig::default()
            .with_handler(handler)
            .with_sink(SinkHandle::single(spill.clone())),
    );
    eprintln!("spilling df-trace to {}", path.display());

    // Drop-in usage: TrackedMutex::new goes through the installed
    // global tracker, exactly like std::sync::Mutex::new would read.
    let checking = Arc::new(TrackedMutex::new(100i64));
    let savings = Arc::new(TrackedMutex::new(500i64));

    // Round 1 — sequential warmup: record both nesting orders without
    // contention, so the spilled relation contains the cyclic
    // dependency Phase I needs. (A thread that never completes its
    // inner acquire emits no Acquire event, so the deadlock round
    // alone would leave iGoodlock nothing to chain.)
    let (c, s) = (Arc::clone(&checking), Arc::clone(&savings));
    tracker
        .spawn("warmup c->s", move || {
            let from = c.lock().unwrap();
            let to = s.lock().unwrap();
            drop((to, from));
        })
        .join()
        .unwrap();
    let (c, s) = (Arc::clone(&checking), Arc::clone(&savings));
    tracker
        .spawn("warmup s->c", move || {
            let from = s.lock().unwrap();
            let to = c.lock().unwrap();
            drop((to, from));
        })
        .join()
        .unwrap();

    // Round 2 — force the deadlock: both threads take their first lock,
    // meet at the barrier (so neither can finish early), then go for
    // the other's lock. The second acquisitions use try_lock_for so the
    // log-and-continue mode degrades gracefully instead of hanging; the
    // detector fires either way, before any timeout.
    let barrier = Arc::new(Barrier::new(2));
    let (c, s, b) = (Arc::clone(&checking), Arc::clone(&savings), barrier.clone());
    let t1 = tracker.spawn("transfer c->s", move || {
        let from = c.lock().unwrap();
        b.wait();
        match s.try_lock_for(Duration::from_secs(2)) {
            Ok(to) => drop((to, from)),
            Err(_) => eprintln!("transfer c->s: gave up on savings (deadlock suspected)"),
        }
    });
    let (c, s, b) = (Arc::clone(&checking), Arc::clone(&savings), barrier);
    let t2 = tracker.spawn("transfer s->c", move || {
        let from = s.lock().unwrap();
        b.wait();
        match c.try_lock_for(Duration::from_secs(2)) {
            Ok(to) => drop((to, from)),
            Err(_) => eprintln!("transfer s->c: gave up on checking (deadlock suspected)"),
        }
    });
    // Under SealAndExit the process exits with code 5 inside one of the
    // spawned threads; the joins below only run in log mode.
    t1.join().unwrap();
    t2.join().unwrap();

    tracker.seal();
    let (events, bytes) = spill
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .close()
        .expect("sealed spill");
    let counters = tracker.obs().counters().snapshot();
    eprintln!(
        "recovered from the deadlock: sealed {} ({events} events, {bytes} bytes), \
         {} cycle(s) detected, {} timed-out acquisition(s)",
        path.display(),
        counters.wfg_cycles_detected,
        counters.lock_timeouts
    );
}
