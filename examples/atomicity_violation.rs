//! The third checker of the active-testing framework: **atomicity
//! violations** (AtomFuzzer; paper §6 — "Randomized active atomicity
//! violation detection in concurrent programs").
//!
//! A withdrawal checks the balance, releases the lock to compute fees,
//! then debits — the classic check-then-act bug. Each access is locked,
//! so there is no data race and no deadlock; the bug is that the *pair*
//! of accesses was meant to be atomic. Phase I finds the unserializable
//! pattern; Phase II pauses the withdrawer mid-block until a deposit
//! slips in.
//!
//! ```text
//! cargo run --example atomicity_violation
//! ```

use df_events::site;
use df_fuzzer::{predict_atomicity_violations, AtomStrategy, SimpleRandomChecker};
use df_runtime::{RunConfig, TCtx, VirtualRuntime};

fn banking(ctx: &TCtx) {
    let balance = ctx.new_var(site!("Account.balance"));
    let lock = ctx.new_lock(site!("Account.lock"));
    let withdrawer = ctx.spawn(site!("spawn withdrawer"), "withdraw", move |ctx| {
        // Intended to be atomic — but the lock is dropped in the middle.
        ctx.atomic(site!("Account.withdraw"), || {
            let g = ctx.lock(&lock, site!("withdraw: check lock"));
            ctx.read(&balance, site!("withdraw: check balance"));
            drop(g);
            ctx.work(1); // compute fees, write audit log, …
            let g = ctx.lock(&lock, site!("withdraw: debit lock"));
            ctx.write(&balance, site!("withdraw: debit balance"));
            drop(g);
        });
    });
    let depositor = ctx.spawn(site!("spawn depositor"), "deposit", move |ctx| {
        ctx.work(2);
        let g = ctx.lock(&lock, site!("deposit: lock"));
        ctx.write(&balance, site!("deposit: write balance"));
        drop(g);
    });
    ctx.join(&withdrawer, site!());
    ctx.join(&depositor, site!());
}

fn main() {
    let rt = VirtualRuntime::new(RunConfig::default());

    // Phase I: observe one run, scan for unserializable patterns.
    let observed = rt.run(Box::new(SimpleRandomChecker::with_seed(5)), banking);
    let candidates = predict_atomicity_violations(&observed.trace);
    println!("{} unserializable pattern(s) predicted:", candidates.len());
    for c in &candidates {
        println!("  {c}");
    }

    // Phase II: create each violation.
    for (i, candidate) in candidates.iter().enumerate() {
        let mut hits = 0;
        let trials = 10;
        for seed in 0..trials {
            let (strategy, witness) = AtomStrategy::new(candidate.clone(), seed);
            let _ = rt.run(Box::new(strategy), banking);
            let got = witness.lock().take();
            if let Some(w) = got {
                hits += 1;
                if seed == 0 {
                    println!(
                        "\npattern {} created: {} slipped a write into {}'s atomic block",
                        i + 1,
                        w.interloper,
                        w.owner
                    );
                }
            }
        }
        println!("pattern {}: created in {hits}/{trials} biased runs", i + 1);
    }
}
