//! The active-testing framework beyond deadlocks: confirming a **data
//! race** (RaceFuzzer, the sibling checker the paper's §6 describes —
//! "DEADLOCKFUZZER is part of the active testing framework that we have
//! earlier developed for finding real races").
//!
//! ```text
//! cargo run --example race_detection
//! ```

use df_events::site;
use df_fuzzer::{predict_races, RaceStrategy, SimpleRandomChecker};
use df_runtime::{RunConfig, TCtx, VirtualRuntime};

/// A bank account with a guarded deposit path and an unguarded
/// "fast path" that forgot the lock.
fn account_program(ctx: &TCtx) {
    let balance = ctx.new_var(site!("Account.balance"));
    let lock = ctx.new_lock(site!("Account.lock"));
    let auditor = ctx.spawn(site!("spawn auditor"), "auditor", move |ctx| {
        ctx.work(2);
        let g = ctx.lock(&lock, site!("Auditor.audit: lock"));
        ctx.read(&balance, site!("Auditor.audit: read balance"));
        drop(g);
    });
    let depositor = ctx.spawn(site!("spawn depositor"), "depositor", move |ctx| {
        // BUG: the fast path skips the lock.
        ctx.read(&balance, site!("Account.fastDeposit: read balance"));
        ctx.work(1);
        ctx.write(&balance, site!("Account.fastDeposit: write balance"));
    });
    ctx.join(&auditor, site!());
    ctx.join(&depositor, site!());
}

fn main() {
    // Phase I: observe one run, predict races by lockset analysis.
    let rt = VirtualRuntime::new(RunConfig::default());
    let observed = rt.run(Box::new(SimpleRandomChecker::with_seed(1)), account_program);
    let candidates = predict_races(&observed.trace);
    println!(
        "lockset analysis predicts {} potential race(s):",
        candidates.len()
    );
    for c in &candidates {
        println!("  {c}");
    }

    // Phase II: steer the scheduler until both accesses are poised.
    let mut confirmed = 0;
    let trials = 10;
    for (i, candidate) in candidates.iter().enumerate() {
        let mut hits = 0;
        for seed in 0..trials {
            let (strategy, witness) = RaceStrategy::new(candidate.clone(), seed);
            let _ = rt.run(Box::new(strategy), account_program);
            let taken = witness.lock().take();
            if let Some(w) = taken {
                hits += 1;
                if seed == 0 {
                    println!(
                        "\ncandidate {} confirmed: {} and {} poised at {} simultaneously",
                        i + 1,
                        w.first.0,
                        w.second.0,
                        w.var
                    );
                }
            }
        }
        if hits > 0 {
            confirmed += 1;
        }
        println!(
            "candidate {}: confirmed in {hits}/{trials} biased runs",
            i + 1
        );
    }
    println!(
        "\n{confirmed} of {} candidates are real races.",
        candidates.len()
    );
}
