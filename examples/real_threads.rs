//! DeadlockFuzzer on **real OS threads**, via the `df-realthread`
//! instrumented lock wrappers (`std::sync::Mutex` cannot be intercepted,
//! so programs use `DfMutex` — the Rust analogue of the paper's bytecode
//! instrumentation).
//!
//! ```text
//! cargo run --example real_threads
//! ```

use std::sync::Arc;

use df_abstraction::AbstractionMode;
use df_events::site;
use df_igoodlock::IGoodlockOptions;
use df_realthread::{DfMutex, FuzzConfig, FuzzOutcome, Session};

/// The Figure 1 program: t1 sleeps first (so plain runs don't deadlock),
/// then the two threads take the two accounts in opposite orders.
fn transfer_program(session: &Session) {
    let checking = Arc::new(DfMutex::new(session, 100i64, site!("open checking")));
    let savings = Arc::new(DfMutex::new(session, 500i64, site!("open savings")));

    let (c1, s1) = (Arc::clone(&checking), Arc::clone(&savings));
    let t1 = session.spawn(site!("spawn transfer c->s"), "c-to-s", move || {
        std::thread::sleep(std::time::Duration::from_millis(25)); // statement batch
        let mut from = c1.lock(site!("lock checking (c->s)"));
        let mut to = s1.lock(site!("lock savings (c->s)"));
        *from -= 10;
        *to += 10;
    });
    let (c2, s2) = (Arc::clone(&checking), Arc::clone(&savings));
    let t2 = session.spawn(site!("spawn transfer s->c"), "s-to-c", move || {
        let mut from = s2.lock(site!("lock savings (s->c)"));
        let mut to = c2.lock(site!("lock checking (s->c)"));
        *from -= 25;
        *to += 25;
    });
    t1.join();
    t2.join();
}

fn main() {
    // Phase I: record a normal run.
    let record = Session::record();
    transfer_program(&record);
    let report = record.analyze(&IGoodlockOptions::default());
    println!(
        "Phase I observed {} nested acquisitions; iGoodlock reports {} potential cycle(s):",
        report.relation_size,
        report.cycles.len()
    );
    let cycles = report.abstract_cycles(AbstractionMode::default());
    for c in &cycles {
        println!("  {c}");
    }

    // Phase II: steer real threads into the deadlock.
    let mut created = 0;
    let trials = 5;
    for seed in 0..trials {
        let session = Session::fuzz(FuzzConfig::new(cycles[0].clone()).with_seed(seed));
        transfer_program(&session);
        match session.finish() {
            FuzzOutcome::Deadlock(w) => {
                created += 1;
                if seed == 0 {
                    println!("\nwitness from the first biased run:\n{w}");
                }
            }
            other => println!("seed {seed}: {other:?}"),
        }
    }
    println!(
        "created the real deadlock in {created}/{trials} biased runs \
         (threads were unwound, not left hanging)"
    );
}
