//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! Provides the `proptest!` / `prop_assert*` macros, a [`Strategy`] trait
//! with `prop_map` / `prop_flat_map` / `prop_filter_map`, integer-range and
//! tuple strategies, `prop::collection::vec` and `prop::option::of`.
//!
//! Differences from real proptest, deliberately accepted:
//! - no shrinking — a failing case reports its inputs but is not minimized;
//! - deterministic seeding — case `i` of a named test always sees the same
//!   inputs, so failures reproduce without a persistence file.

#![forbid(unsafe_code)]

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` returns.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Keeps only values for which `f` returns `Some`, retrying
        /// otherwise. `reason` is reported if the filter rejects too often.
        fn prop_filter_map<O, F: Fn(Self::Value) -> Option<O>>(
            self,
            reason: &'static str,
            f: F,
        ) -> FilterMap<Self, F>
        where
            Self: Sized,
        {
            FilterMap {
                inner: self,
                reason,
                f,
            }
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// See [`Strategy::prop_filter_map`].
    pub struct FilterMap<S, F> {
        inner: S,
        reason: &'static str,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            for _ in 0..10_000 {
                if let Some(v) = (self.f)(self.inner.generate(rng)) {
                    return v;
                }
            }
            panic!(
                "prop_filter_map rejected 10000 candidates in a row: {}",
                self.reason
            );
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as u128 - self.start as u128) as u64;
                    let v = rng.next_u64() % span;
                    (self.start as u128 + v as u128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<char> {
        type Value = char;
        fn generate(&self, rng: &mut TestRng) -> char {
            let lo = self.start as u32;
            let hi = self.end as u32;
            assert!(lo < hi, "empty strategy range");
            for _ in 0..64 {
                if let Some(c) = char::from_u32(lo + (rng.next_u64() % (hi - lo) as u64) as u32) {
                    return c;
                }
            }
            self.start
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident . $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }
}

pub mod prop {
    //! The `prop::` namespace of factory functions.

    pub mod collection {
        //! Collection strategies.

        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Size specification for [`vec`]: a fixed length or a half-open
        /// range of lengths.
        #[derive(Clone, Copy, Debug)]
        pub struct SizeRange {
            lo: usize,
            hi: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { lo: n, hi: n + 1 }
            }
        }

        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(r: std::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty vec size range");
                SizeRange {
                    lo: r.start,
                    hi: r.end,
                }
            }
        }

        /// Generates `Vec`s of values from `element`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        /// See [`vec`].
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.hi - self.size.lo) as u64;
                let len = self.size.lo + (rng.next_u64() % span.max(1)) as usize;
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    pub mod option {
        //! `Option` strategies.

        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Generates `None` about a quarter of the time, `Some` otherwise.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        /// See [`of`].
        pub struct OptionStrategy<S> {
            inner: S,
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.next_u64().is_multiple_of(4) {
                    None
                } else {
                    Some(self.inner.generate(rng))
                }
            }
        }
    }
}

pub mod test_runner {
    //! Execution of property tests.

    use std::fmt;

    /// Configuration for a `proptest!` block.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Runs `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; 64 keeps the vendored runner
            // fast while still exploring a useful amount of the space.
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed property case.
    #[derive(Debug)]
    pub struct TestCaseError {
        msg: String,
    }

    impl TestCaseError {
        /// Builds a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError { msg: msg.into() }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.msg)
        }
    }

    /// Deterministic xoshiro256** generator driving value generation.
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seeds the generator from a test name and case index.
        pub fn for_case(name: &str, case: u64) -> Self {
            // FNV-1a over the name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            let mut sm = h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        /// Returns the next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Runs the cases of one property.
    pub struct TestRunner {
        config: ProptestConfig,
    }

    impl TestRunner {
        /// Creates a runner with the given configuration.
        pub fn new(config: ProptestConfig) -> Self {
            TestRunner { config }
        }

        /// Runs `f` once per case, panicking on the first failure.
        pub fn run_named<F>(&mut self, name: &str, mut f: F)
        where
            F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
        {
            for case in 0..u64::from(self.config.cases) {
                let mut rng = TestRng::for_case(name, case);
                if let Err(e) = f(&mut rng) {
                    panic!("proptest property `{name}` failed on case {case}: {e}");
                }
            }
        }
    }
}

/// Defines property tests.
///
/// Supports the subset of real proptest's syntax this workspace uses: an
/// optional `#![proptest_config(...)]` header followed by `#[test]`
/// functions whose parameters are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut runner = $crate::test_runner::TestRunner::new(config);
            runner.run_named(stringify!($name), |proptest_case_rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), proptest_case_rng);)*
                let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                result
            });
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config (::std::default::Default::default()) $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

pub mod prelude {
    //! Everything a property test module needs.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vecs_generate_in_bounds() {
        let mut rng = crate::test_runner::TestRng::for_case("t", 0);
        let s = prop::collection::vec(0u32..5, 1..4);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((1..4).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn option_of_yields_both_variants() {
        let mut rng = crate::test_runner::TestRng::for_case("t2", 0);
        let s = prop::option::of(0u32..3);
        let vals: Vec<_> = (0..200).map(|_| s.generate(&mut rng)).collect();
        assert!(vals.iter().any(Option::is_none));
        assert!(vals.iter().any(Option::is_some));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_arguments(x in 0u32..10, ys in prop::collection::vec(0u32..4, 0..3)) {
            prop_assert!(x < 10);
            prop_assert!(ys.len() < 3);
        }

        #[test]
        fn flat_map_and_filter_map_compose(
            pair in (1usize..5).prop_flat_map(|n| (Just(n), 0usize..5))
                .prop_filter_map("distinct", |(a, b)| if a == b { None } else { Some((a, b)) })
        ) {
            prop_assert_ne!(pair.0, pair.1);
        }
    }

    proptest! {
        #[test]
        fn default_config_works(x in 0u8..2) {
            prop_assert!(x < 2);
        }
    }
}
