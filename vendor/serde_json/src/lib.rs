//! Offline stand-in for `serde_json`: JSON text ⇄ the vendored serde
//! shim's value tree.
//!
//! Implements exactly the workspace's usage surface: [`to_string`],
//! [`to_string_pretty`], [`from_str`] and a re-exported [`Value`].

#![forbid(unsafe_code)]

use std::fmt;

use serde::__private::{DeError, Num, ValueDeserializer};
use serde::de::DeserializeOwned;
use serde::Serialize;

pub use serde::__private::Value;

/// Error produced by JSON serialization or deserialization.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error { msg: e.0 }
    }
}

/// Serializes a value to compact JSON.
pub fn to_string<T: ?Sized + Serialize>(value: &T) -> Result<String, Error> {
    let v = serde::__private::to_value(value)?;
    let mut out = String::new();
    write_value(&mut out, &v, None, 0);
    Ok(out)
}

/// Serializes a value to 2-space-indented JSON.
pub fn to_string_pretty<T: ?Sized + Serialize>(value: &T) -> Result<String, Error> {
    let v = serde::__private::to_value(value)?;
    let mut out = String::new();
    write_value(&mut out, &v, Some(2), 0);
    Ok(out)
}

/// Serializes a value into a [`Value`] tree.
pub fn to_value<T: ?Sized + Serialize>(value: &T) -> Result<Value, Error> {
    Ok(serde::__private::to_value(value)?)
}

/// Deserializes a value from JSON text.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    Ok(T::deserialize(ValueDeserializer(value))?)
}

/// Deserializes a value from a [`Value`] tree.
pub fn from_value<T: DeserializeOwned>(value: Value) -> Result<T, Error> {
    Ok(T::deserialize(ValueDeserializer(value))?)
}

// ---------------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(Num::U(u)) => out.push_str(&u.to_string()),
        Value::Num(Num::I(i)) => out.push_str(&i.to_string()),
        Value::Num(Num::F(f)) => write_f64(out, *f),
        Value::Str(s) => write_escaped(out, s),
        Value::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Obj(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_f64(out: &mut String, f: f64) {
    if f.is_finite() {
        // `{:?}` keeps a trailing `.0` on integral floats, matching real
        // serde_json's ryu output for the values this workspace produces.
        out.push_str(&format!("{f:?}"));
    } else {
        // Real serde_json cannot represent non-finite floats; print null.
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error {
            msg: format!("{msg} at byte {}", self.pos),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if float {
            text.parse::<f64>()
                .map(|f| Value::Num(Num::F(f)))
                .map_err(|_| self.err("invalid number"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(|i| Value::Num(Num::I(i)))
                .map_err(|_| self.err("invalid number"))
        } else {
            text.parse::<u64>()
                .map(|u| Value::Num(Num::U(u)))
                .map_err(|_| self.err("invalid number"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&5u32).unwrap(), "5");
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string("hi\n").unwrap(), "\"hi\\n\"");
        assert_eq!(from_str::<u32>("5").unwrap(), 5);
        assert_eq!(from_str::<f64>("2.5").unwrap(), 2.5);
        assert_eq!(from_str::<String>("\"a\\u0041\"").unwrap(), "aA");
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,2,3]");
        assert_eq!(from_str::<Vec<u32>>(&json).unwrap(), v);

        let mut m = std::collections::BTreeMap::new();
        m.insert(7u32, "x".to_string());
        let json = to_string(&m).unwrap();
        assert_eq!(json, "{\"7\":\"x\"}");
        let back: std::collections::BTreeMap<u32, String> = from_str(&json).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn option_and_null() {
        assert_eq!(to_string(&Option::<u32>::None).unwrap(), "null");
        assert_eq!(to_string(&Some(4u32)).unwrap(), "4");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<u32>>("9").unwrap(), Some(9));
    }

    #[test]
    fn duration_round_trips() {
        let d = std::time::Duration::new(3, 456);
        let json = to_string(&d).unwrap();
        assert_eq!(json, "{\"secs\":3,\"nanos\":456}");
        assert_eq!(from_str::<std::time::Duration>(&json).unwrap(), d);
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = vec![1u32];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1\n]");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(from_str::<u32>("{").is_err());
        assert!(from_str::<u32>("1 2").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }
}
