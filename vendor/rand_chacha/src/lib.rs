//! Offline stand-in for `rand_chacha`.
//!
//! Exposes [`ChaCha8Rng`] with the same construction surface the workspace
//! uses (`SeedableRng::seed_from_u64`). The generator is xoshiro256** with
//! SplitMix64 seed expansion — deterministic per seed and of high
//! statistical quality, which is all the randomized-scheduling code needs;
//! it does not reproduce the real ChaCha8 keystream.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

/// Deterministic seedable PRNG standing in for ChaCha8.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        ChaCha8Rng { s }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut r = ChaCha8Rng::seed_from_u64(7);
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[r.gen_range(0..4usize)] += 1;
        }
        for c in counts {
            assert!((800..1200).contains(&c), "skewed bucket: {counts:?}");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = ChaCha8Rng::seed_from_u64(9);
        let hits = (0..4000).filter(|_| r.gen_bool(0.25)).count();
        assert!((800..1200).contains(&hits), "p=0.25 hit {hits}/4000");
    }
}
