//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! Runs each registered benchmark a small, fixed number of timed
//! iterations and prints mean wall-clock times — enough to execute the
//! `benches/` directory offline and compare relative costs, without
//! criterion's statistical machinery, warm-up phases, or HTML reports.

#![forbid(unsafe_code)]

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a computed value.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier for a parameterized benchmark.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter display value.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Times closures passed to [`Bencher::iter`].
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` repeatedly, recording total elapsed time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1) as u64;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iterations: self.criterion.sample_size,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        report(&self.name, &id.to_string(), &b);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            iterations: self.criterion.sample_size,
            elapsed: Duration::ZERO,
        };
        f(&mut b, input);
        report(&self.name, &id.to_string(), &b);
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

fn report(group: &str, id: &str, b: &Bencher) {
    let mean = if b.iterations > 0 {
        b.elapsed / u32::try_from(b.iterations).unwrap_or(u32::MAX)
    } else {
        Duration::ZERO
    };
    println!(
        "{group}/{id}: {iters} iters, mean {mean:?}",
        iters = b.iterations
    );
}

/// Benchmark harness entry point.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Starts a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iterations: self.sample_size,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        report("bench", &id.to_string(), &b);
        self
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_function("plain", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7u32, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_machinery_runs() {
        benches();
    }

    #[test]
    fn benchmark_id_display() {
        assert_eq!(
            BenchmarkId::new("phase1", "small").to_string(),
            "phase1/small"
        );
    }
}
