//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses: [`RngCore`], [`Rng`] (`gen_range` over half-open and inclusive
//! ranges, `gen_bool`) and [`SeedableRng`] (`seed_from_u64`).
//!
//! The workspace only relies on its PRNG being deterministic per seed and
//! statistically unbiased enough for randomized scheduling; it does not
//! need to reproduce upstream rand's exact output streams.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core of a random number generator: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next value in the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next value truncated to 32 bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A type usable as the argument of [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(
                    self.start < self.end,
                    "cannot sample empty range {}..{}",
                    self.start,
                    self.end
                );
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Multiply-shift rejection-free mapping is fine here: the
                // spans in this workspace are tiny relative to 2^64, so the
                // modulo bias is far below anything the statistical tests
                // can observe.
                let v = if span == 0 {
                    rng.next_u64()
                } else {
                    rng.next_u64() % span
                };
                ((self.start as u128).wrapping_add(v as u128)) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range {}..={}", lo, hi);
                // The +1 makes the upper bound reachable; when the range
                // covers the whole 64-bit domain the span wraps to zero
                // and the raw draw is already uniform over it.
                let span = (hi as u128)
                    .wrapping_sub(lo as u128)
                    .wrapping_add(1) as u64;
                let v = if span == 0 {
                    rng.next_u64()
                } else {
                    rng.next_u64() % span
                };
                ((lo as u128).wrapping_add(v as u128)) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Returns a uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        // 53 bits of mantissa — same resolution the real rand uses.
        let v = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        v < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be constructed deterministically from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Minimal `rand::rngs` namespace (unused placeholder kept for
    //! source-compatibility with `use rand::rngs::...` imports).
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            self.0
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = Counter(1);
        for _ in 0..1000 {
            let v = r.gen_range(0..7usize);
            assert!(v < 7);
            let w: u64 = r.gen_range(3..10u64);
            assert!((3..10).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = Counter(2);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = Counter(3);
        let _ = r.gen_range(5..5usize);
    }

    #[test]
    fn inclusive_range_reaches_both_bounds() {
        let mut r = Counter(4);
        let mut seen = [false; 3];
        for _ in 0..200 {
            let v = r.gen_range(0..=2usize);
            assert!(v <= 2);
            seen[v] = true;
        }
        assert_eq!(seen, [true; 3]);
        // Degenerate single-point range is legal, unlike `5..5`.
        assert_eq!(r.gen_range(7..=7u64), 7);
    }
}
