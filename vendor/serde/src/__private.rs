//! Internal value tree and helpers shared by the derive macros and
//! `serde_json`. Not part of the public API contract.

use crate::{de, ser, Deserializer, Serialize, Serializer};

/// A JSON-shaped value tree. Object entries preserve insertion order so
/// derived structs serialize their fields in declaration order, matching
/// real serde_json's streaming behavior.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number.
    Num(Num),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object (ordered key/value entries).
    Obj(Vec<(String, Value)>),
}

/// Number representation preserving integer-ness.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Num {
    /// Non-negative integer.
    U(u64),
    /// Negative integer.
    I(i64),
    /// Floating point.
    F(f64),
}

impl Value {
    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }
}

/// Error used by the value-tree conversions.
#[derive(Debug)]
pub struct DeError(pub String);

impl DeError {
    /// Builds an error from a message.
    pub fn msg(m: impl Into<String>) -> Self {
        DeError(m.into())
    }

    /// Builds a "wanted X, got Y" error.
    pub fn type_mismatch(wanted: &str, got: &Value) -> Self {
        DeError(format!(
            "invalid type: expected {wanted}, found {}",
            got.kind()
        ))
    }
}

/// Converts a numeric (or numeric-string) value to a wide integer.
///
/// String coercion exists because JSON object keys are always strings:
/// a `BTreeMap<ThreadId, _>` round-trips its `u32` keys through `"7"`.
pub fn value_to_i128(v: &Value) -> Result<i128, DeError> {
    match v {
        Value::Num(Num::U(u)) => Ok(*u as i128),
        Value::Num(Num::I(i)) => Ok(*i as i128),
        Value::Str(s) => s
            .parse::<i128>()
            .map_err(|_| DeError::msg(format!("cannot parse `{s}` as an integer"))),
        other => Err(DeError::type_mismatch("integer", other)),
    }
}

/// Converts a numeric (or numeric-string) value to `f64`.
pub fn value_to_f64(v: &Value) -> Result<f64, DeError> {
    match v {
        Value::Num(Num::U(u)) => Ok(*u as f64),
        Value::Num(Num::I(i)) => Ok(*i as f64),
        Value::Num(Num::F(f)) => Ok(*f),
        Value::Str(s) => s
            .parse::<f64>()
            .map_err(|_| DeError::msg(format!("cannot parse `{s}` as a number"))),
        other => Err(DeError::type_mismatch("number", other)),
    }
}

/// Deserializes a `T` out of an owned value tree.
pub fn from_value<T: de::DeserializeOwned>(v: Value) -> Result<T, DeError> {
    T::deserialize(ValueDeserializer(v))
}

/// Serializes a `T` into a value tree.
pub fn to_value<T: ?Sized + Serialize>(v: &T) -> Result<Value, DeError> {
    v.serialize(ValueSerializer)
}

/// Removes and deserializes the named field of a (partially consumed)
/// object. A missing field reads as `Null`, so `Option` fields default to
/// `None` and everything else reports a useful error.
pub fn field<T: de::DeserializeOwned>(
    entries: &mut Vec<(String, Value)>,
    name: &'static str,
) -> Result<T, DeError> {
    let v = match entries.iter().position(|(k, _)| k == name) {
        Some(i) => entries.remove(i).1,
        None => Value::Null,
    };
    from_value(v).map_err(|e| DeError::msg(format!("field `{name}`: {e}", e = e.0)))
}

/// Expects an object, reporting `type_name` on mismatch.
pub fn expect_obj(v: Value, type_name: &str) -> Result<Vec<(String, Value)>, DeError> {
    match v {
        Value::Obj(entries) => Ok(entries),
        other => Err(DeError::msg(format!(
            "invalid type for {type_name}: expected object, found {}",
            other.kind()
        ))),
    }
}

/// Expects an array of exactly `len` elements.
pub fn expect_arr(v: Value, len: usize, type_name: &str) -> Result<Vec<Value>, DeError> {
    match v {
        Value::Arr(items) if items.len() == len => Ok(items),
        Value::Arr(items) => Err(DeError::msg(format!(
            "invalid length for {type_name}: expected {len}, found {}",
            items.len()
        ))),
        other => Err(DeError::msg(format!(
            "invalid type for {type_name}: expected array, found {}",
            other.kind()
        ))),
    }
}

/// Splits an externally-tagged enum value into `(variant, content)`.
pub fn enum_tag(v: Value, type_name: &str) -> Result<(String, Option<Value>), DeError> {
    match v {
        Value::Str(s) => Ok((s, None)),
        Value::Obj(mut entries) if entries.len() == 1 => {
            let (tag, content) = entries.remove(0);
            Ok((tag, Some(content)))
        }
        other => Err(DeError::msg(format!(
            "invalid type for enum {type_name}: expected string or single-key \
             object, found {}",
            other.kind()
        ))),
    }
}

/// Asserts a unit variant carried no content.
pub fn expect_no_content(content: Option<Value>, variant: &str) -> Result<(), DeError> {
    match content {
        None | Some(Value::Null) => Ok(()),
        Some(other) => Err(DeError::msg(format!(
            "unit variant `{variant}` must not carry data, found {}",
            other.kind()
        ))),
    }
}

/// Extracts the content of a data-carrying variant.
pub fn expect_content(content: Option<Value>, variant: &str) -> Result<Value, DeError> {
    content.ok_or_else(|| DeError::msg(format!("variant `{variant}` requires data")))
}

// ---------------------------------------------------------------------------
// The one Serializer: builds a Value tree.
// ---------------------------------------------------------------------------

/// Serializer producing a [`Value`].
pub struct ValueSerializer;

/// Sequence/tuple-struct builder.
pub struct SeqBuilder(Vec<Value>);

/// Map/struct builder.
pub struct MapBuilder(Vec<(String, Value)>);

/// Tuple-variant builder.
pub struct TupleVariantBuilder {
    tag: &'static str,
    items: Vec<Value>,
}

/// Struct-variant builder.
pub struct StructVariantBuilder {
    tag: &'static str,
    entries: Vec<(String, Value)>,
}

fn key_string(v: Value) -> Result<String, DeError> {
    match v {
        Value::Str(s) => Ok(s),
        Value::Num(Num::U(u)) => Ok(u.to_string()),
        Value::Num(Num::I(i)) => Ok(i.to_string()),
        Value::Bool(b) => Ok(b.to_string()),
        other => Err(DeError::msg(format!(
            "map key must serialize as a string or integer, found {}",
            other.kind()
        ))),
    }
}

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = DeError;
    type SerializeSeq = SeqBuilder;
    type SerializeMap = MapBuilder;
    type SerializeStruct = MapBuilder;
    type SerializeTupleStruct = SeqBuilder;
    type SerializeTupleVariant = TupleVariantBuilder;
    type SerializeStructVariant = StructVariantBuilder;

    fn serialize_bool(self, v: bool) -> Result<Value, DeError> {
        Ok(Value::Bool(v))
    }
    fn serialize_i64(self, v: i64) -> Result<Value, DeError> {
        if v >= 0 {
            Ok(Value::Num(Num::U(v as u64)))
        } else {
            Ok(Value::Num(Num::I(v)))
        }
    }
    fn serialize_u64(self, v: u64) -> Result<Value, DeError> {
        Ok(Value::Num(Num::U(v)))
    }
    fn serialize_f64(self, v: f64) -> Result<Value, DeError> {
        Ok(Value::Num(Num::F(v)))
    }
    fn serialize_str(self, v: &str) -> Result<Value, DeError> {
        Ok(Value::Str(v.to_string()))
    }
    fn serialize_unit(self) -> Result<Value, DeError> {
        Ok(Value::Null)
    }
    fn serialize_none(self) -> Result<Value, DeError> {
        Ok(Value::Null)
    }
    fn serialize_some<T: ?Sized + Serialize>(self, value: &T) -> Result<Value, DeError> {
        value.serialize(ValueSerializer)
    }
    fn serialize_newtype_struct<T: ?Sized + Serialize>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<Value, DeError> {
        value.serialize(ValueSerializer)
    }
    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
    ) -> Result<Value, DeError> {
        Ok(Value::Str(variant.to_string()))
    }
    fn serialize_newtype_variant<T: ?Sized + Serialize>(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Value, DeError> {
        Ok(Value::Obj(vec![(
            variant.to_string(),
            value.serialize(ValueSerializer)?,
        )]))
    }
    fn serialize_seq(self, len: Option<usize>) -> Result<SeqBuilder, DeError> {
        Ok(SeqBuilder(Vec::with_capacity(len.unwrap_or(0))))
    }
    fn serialize_map(self, len: Option<usize>) -> Result<MapBuilder, DeError> {
        Ok(MapBuilder(Vec::with_capacity(len.unwrap_or(0))))
    }
    fn serialize_struct(self, _name: &'static str, len: usize) -> Result<MapBuilder, DeError> {
        Ok(MapBuilder(Vec::with_capacity(len)))
    }
    fn serialize_tuple_struct(
        self,
        _name: &'static str,
        len: usize,
    ) -> Result<SeqBuilder, DeError> {
        Ok(SeqBuilder(Vec::with_capacity(len)))
    }
    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<TupleVariantBuilder, DeError> {
        Ok(TupleVariantBuilder {
            tag: variant,
            items: Vec::with_capacity(len),
        })
    }
    fn serialize_struct_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<StructVariantBuilder, DeError> {
        Ok(StructVariantBuilder {
            tag: variant,
            entries: Vec::with_capacity(len),
        })
    }
}

impl ser::SerializeSeq for SeqBuilder {
    type Ok = Value;
    type Error = DeError;
    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), DeError> {
        self.0.push(value.serialize(ValueSerializer)?);
        Ok(())
    }
    fn end(self) -> Result<Value, DeError> {
        Ok(Value::Arr(self.0))
    }
}

impl ser::SerializeTupleStruct for SeqBuilder {
    type Ok = Value;
    type Error = DeError;
    fn serialize_field<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), DeError> {
        self.0.push(value.serialize(ValueSerializer)?);
        Ok(())
    }
    fn end(self) -> Result<Value, DeError> {
        Ok(Value::Arr(self.0))
    }
}

impl ser::SerializeMap for MapBuilder {
    type Ok = Value;
    type Error = DeError;
    fn serialize_entry<K: ?Sized + Serialize, V: ?Sized + Serialize>(
        &mut self,
        key: &K,
        value: &V,
    ) -> Result<(), DeError> {
        let key = key_string(key.serialize(ValueSerializer)?)?;
        self.0.push((key, value.serialize(ValueSerializer)?));
        Ok(())
    }
    fn end(self) -> Result<Value, DeError> {
        Ok(Value::Obj(self.0))
    }
}

impl ser::SerializeStruct for MapBuilder {
    type Ok = Value;
    type Error = DeError;
    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), DeError> {
        self.0
            .push((key.to_string(), value.serialize(ValueSerializer)?));
        Ok(())
    }
    fn end(self) -> Result<Value, DeError> {
        Ok(Value::Obj(self.0))
    }
}

impl ser::SerializeTupleVariant for TupleVariantBuilder {
    type Ok = Value;
    type Error = DeError;
    fn serialize_field<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), DeError> {
        self.items.push(value.serialize(ValueSerializer)?);
        Ok(())
    }
    fn end(self) -> Result<Value, DeError> {
        Ok(Value::Obj(vec![(
            self.tag.to_string(),
            Value::Arr(self.items),
        )]))
    }
}

impl ser::SerializeStructVariant for StructVariantBuilder {
    type Ok = Value;
    type Error = DeError;
    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), DeError> {
        self.entries
            .push((key.to_string(), value.serialize(ValueSerializer)?));
        Ok(())
    }
    fn end(self) -> Result<Value, DeError> {
        Ok(Value::Obj(vec![(
            self.tag.to_string(),
            Value::Obj(self.entries),
        )]))
    }
}

// ---------------------------------------------------------------------------
// The one Deserializer: surrenders a Value tree.
// ---------------------------------------------------------------------------

/// Deserializer over an owned [`Value`].
pub struct ValueDeserializer(pub Value);

impl<'de> Deserializer<'de> for ValueDeserializer {
    type Error = DeError;
    fn __take_value(self) -> Result<Value, DeError> {
        Ok(self.0)
    }
}
