//! Offline stand-in for the subset of `serde` this workspace uses.
//!
//! The public trait surface (`Serialize`, `Serializer`, `Deserialize`,
//! `Deserializer`, `ser::Error`, `de::Error`, the `Serialize*` builder
//! traits) is shaped like real serde, so hand-written impls such as
//! `df_events::Label`'s compile unchanged. Internally everything funnels
//! through a JSON-like [`__private::Value`] tree instead of serde's
//! visitor machinery: a `Serializer` builds a `Value`, a `Deserializer`
//! surrenders one. `serde_json` (also vendored) is then a thin
//! text ⇄ `Value` layer.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;

pub use serde_derive::{Deserialize, Serialize};

#[doc(hidden)]
pub mod __private;

use __private::{DeError, Num, Value};

pub mod ser {
    //! Serialization half: error trait and compound builders.

    use std::fmt;

    use super::Serialize;

    /// Error type produced while serializing.
    pub trait Error: Sized + fmt::Debug + fmt::Display {
        /// Builds an error from an arbitrary message.
        fn custom<T: fmt::Display>(msg: T) -> Self;
    }

    /// Builder for sequences.
    pub trait SerializeSeq {
        /// Final output value.
        type Ok;
        /// Error type.
        type Error: Error;
        /// Appends one element.
        fn serialize_element<T: ?Sized + Serialize>(
            &mut self,
            value: &T,
        ) -> Result<(), Self::Error>;
        /// Finishes the sequence.
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }

    /// Builder for maps.
    pub trait SerializeMap {
        /// Final output value.
        type Ok;
        /// Error type.
        type Error: Error;
        /// Appends one key/value entry.
        fn serialize_entry<K: ?Sized + Serialize, V: ?Sized + Serialize>(
            &mut self,
            key: &K,
            value: &V,
        ) -> Result<(), Self::Error>;
        /// Finishes the map.
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }

    /// Builder for structs with named fields.
    pub trait SerializeStruct {
        /// Final output value.
        type Ok;
        /// Error type.
        type Error: Error;
        /// Appends one named field.
        fn serialize_field<T: ?Sized + Serialize>(
            &mut self,
            key: &'static str,
            value: &T,
        ) -> Result<(), Self::Error>;
        /// Finishes the struct.
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }

    /// Builder for tuple structs.
    pub trait SerializeTupleStruct {
        /// Final output value.
        type Ok;
        /// Error type.
        type Error: Error;
        /// Appends one positional field.
        fn serialize_field<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Self::Error>;
        /// Finishes the tuple struct.
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }

    /// Builder for tuple enum variants.
    pub trait SerializeTupleVariant {
        /// Final output value.
        type Ok;
        /// Error type.
        type Error: Error;
        /// Appends one positional field.
        fn serialize_field<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Self::Error>;
        /// Finishes the variant.
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }

    /// Builder for struct enum variants.
    pub trait SerializeStructVariant {
        /// Final output value.
        type Ok;
        /// Error type.
        type Error: Error;
        /// Appends one named field.
        fn serialize_field<T: ?Sized + Serialize>(
            &mut self,
            key: &'static str,
            value: &T,
        ) -> Result<(), Self::Error>;
        /// Finishes the variant.
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }
}

pub mod de {
    //! Deserialization half: error trait and ownership marker.

    use std::fmt;

    use super::Deserialize;

    /// Error type produced while deserializing.
    pub trait Error: Sized + fmt::Debug + fmt::Display {
        /// Builds an error from an arbitrary message.
        fn custom<T: fmt::Display>(msg: T) -> Self;
    }

    /// A type deserializable without borrowing from the input.
    pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
    impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}
}

/// A value that can be serialized.
pub trait Serialize {
    /// Serializes `self` into the given serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A format backend that consumes values.
pub trait Serializer: Sized {
    /// Output produced on success.
    type Ok;
    /// Error type.
    type Error: ser::Error;
    /// Sequence builder.
    type SerializeSeq: ser::SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    /// Map builder.
    type SerializeMap: ser::SerializeMap<Ok = Self::Ok, Error = Self::Error>;
    /// Named-struct builder.
    type SerializeStruct: ser::SerializeStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Tuple-struct builder.
    type SerializeTupleStruct: ser::SerializeTupleStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Tuple-variant builder.
    type SerializeTupleVariant: ser::SerializeTupleVariant<Ok = Self::Ok, Error = Self::Error>;
    /// Struct-variant builder.
    type SerializeStructVariant: ser::SerializeStructVariant<Ok = Self::Ok, Error = Self::Error>;

    /// Serializes a boolean.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    /// Serializes a signed integer.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    /// Serializes an unsigned integer.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a floating-point number.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a string.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    /// Serializes a unit value.
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    /// Serializes `None`.
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    /// Serializes `Some(value)`.
    fn serialize_some<T: ?Sized + Serialize>(self, value: &T) -> Result<Self::Ok, Self::Error>;
    /// Serializes a newtype struct transparently.
    fn serialize_newtype_struct<T: ?Sized + Serialize>(
        self,
        name: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    /// Serializes a unit enum variant.
    fn serialize_unit_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
    ) -> Result<Self::Ok, Self::Error>;
    /// Serializes a newtype enum variant.
    fn serialize_newtype_variant<T: ?Sized + Serialize>(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    /// Starts a sequence.
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    /// Starts a map.
    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;
    /// Starts a named struct.
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
    /// Starts a tuple struct.
    fn serialize_tuple_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleStruct, Self::Error>;
    /// Starts a tuple variant.
    fn serialize_tuple_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleVariant, Self::Error>;
    /// Starts a struct variant.
    fn serialize_struct_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStructVariant, Self::Error>;
}

/// A value that can be deserialized.
pub trait Deserialize<'de>: Sized {
    /// Deserializes `Self` from the given deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A format backend that produces values.
///
/// Unlike real serde's visitor-driven trait, this shim's deserializers
/// simply surrender a parsed [`__private::Value`] tree; `Deserialize`
/// impls convert out of it.
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: de::Error;
    /// Yields the underlying value tree.
    #[doc(hidden)]
    fn __take_value(self) -> Result<Value, Self::Error>;
}

// ---------------------------------------------------------------------------
// Serialize impls for std types
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bool(*self)
    }
}

macro_rules! serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_u64(*self as u64)
            }
        }
    )*};
}
serialize_unsigned!(u8, u16, u32, u64, usize);

macro_rules! serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_i64(*self as i64)
            }
        }
    )*};
}
serialize_signed!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(*self)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for char {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.to_string())
    }
}

impl<T: ?Sized + Serialize> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: ?Sized + Serialize> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            None => serializer.serialize_none(),
            Some(v) => serializer.serialize_some(v),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use ser::SerializeSeq;
        let mut seq = serializer.serialize_seq(Some(self.len()))?;
        for item in self {
            seq.serialize_element(item)?;
        }
        seq.end()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use ser::SerializeMap;
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_entry(k, v)?;
        }
        map.end()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use ser::SerializeSeq;
        let mut seq = serializer.serialize_seq(Some(2))?;
        seq.serialize_element(&self.0)?;
        seq.serialize_element(&self.1)?;
        seq.end()
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use ser::SerializeSeq;
        let mut seq = serializer.serialize_seq(Some(3))?;
        seq.serialize_element(&self.0)?;
        seq.serialize_element(&self.1)?;
        seq.serialize_element(&self.2)?;
        seq.end()
    }
}

impl Serialize for Duration {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use ser::SerializeStruct;
        let mut st = serializer.serialize_struct("Duration", 2)?;
        st.serialize_field("secs", &self.as_secs())?;
        st.serialize_field("nanos", &self.subsec_nanos())?;
        st.end()
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls for std types
// ---------------------------------------------------------------------------

fn take<'de, D: Deserializer<'de>>(deserializer: D) -> Result<Value, D::Error> {
    deserializer.__take_value()
}

fn lift<'de, D: Deserializer<'de>, T>(r: Result<T, DeError>) -> Result<T, D::Error> {
    r.map_err(<D::Error as de::Error>::custom)
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match take(deserializer)? {
            Value::Bool(b) => Ok(b),
            other => lift::<D, _>(Err(DeError::type_mismatch("bool", &other))),
        }
    }
}

macro_rules! deserialize_int {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let v = take(deserializer)?;
                lift::<D, _>(__private::value_to_i128(&v).and_then(|wide| {
                    <$t>::try_from(wide).map_err(|_| {
                        DeError::msg(format!(
                            "integer {wide} out of range for {}",
                            stringify!($t)
                        ))
                    })
                }))
            }
        }
    )*};
}
deserialize_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let v = take(deserializer)?;
        lift::<D, _>(__private::value_to_f64(&v))
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let v = take(deserializer)?;
        lift::<D, _>(__private::value_to_f64(&v).map(|f| f as f32))
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match take(deserializer)? {
            Value::Str(s) => Ok(s),
            other => lift::<D, _>(Err(DeError::type_mismatch("string", &other))),
        }
    }
}

impl<'de, T: de::DeserializeOwned> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match take(deserializer)? {
            Value::Null => Ok(None),
            other => lift::<D, _>(__private::from_value(other).map(Some)),
        }
    }
}

impl<'de, T: de::DeserializeOwned> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match take(deserializer)? {
            Value::Arr(items) => {
                lift::<D, _>(items.into_iter().map(__private::from_value).collect())
            }
            other => lift::<D, _>(Err(DeError::type_mismatch("array", &other))),
        }
    }
}

impl<'de, T: de::DeserializeOwned> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(Box::new)
    }
}

impl<'de, K: de::DeserializeOwned + Ord, V: de::DeserializeOwned> Deserialize<'de>
    for BTreeMap<K, V>
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match take(deserializer)? {
            Value::Obj(entries) => lift::<D, _>(
                entries
                    .into_iter()
                    .map(|(k, v)| {
                        let key = __private::from_value(Value::Str(k))?;
                        let value = __private::from_value(v)?;
                        Ok((key, value))
                    })
                    .collect(),
            ),
            other => lift::<D, _>(Err(DeError::type_mismatch("object", &other))),
        }
    }
}

impl<'de, A: de::DeserializeOwned, B: de::DeserializeOwned> Deserialize<'de> for (A, B) {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match take(deserializer)? {
            Value::Arr(items) if items.len() == 2 => {
                let mut it = items.into_iter();
                lift::<D, _>((|| {
                    Ok((
                        __private::from_value(it.next().expect("len checked"))?,
                        __private::from_value(it.next().expect("len checked"))?,
                    ))
                })())
            }
            other => lift::<D, _>(Err(DeError::type_mismatch("array of 2", &other))),
        }
    }
}

impl<'de, A: de::DeserializeOwned, B: de::DeserializeOwned, C: de::DeserializeOwned>
    Deserialize<'de> for (A, B, C)
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match take(deserializer)? {
            Value::Arr(items) if items.len() == 3 => {
                let mut it = items.into_iter();
                lift::<D, _>((|| {
                    Ok((
                        __private::from_value(it.next().expect("len checked"))?,
                        __private::from_value(it.next().expect("len checked"))?,
                        __private::from_value(it.next().expect("len checked"))?,
                    ))
                })())
            }
            other => lift::<D, _>(Err(DeError::type_mismatch("array of 3", &other))),
        }
    }
}

impl<'de> Deserialize<'de> for Duration {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match take(deserializer)? {
            Value::Obj(mut entries) => lift::<D, _>((|| {
                let secs: u64 = __private::field(&mut entries, "secs")?;
                let nanos: u32 = __private::field(&mut entries, "nanos")?;
                Ok(Duration::new(secs, nanos))
            })()),
            other => lift::<D, _>(Err(DeError::type_mismatch("Duration object", &other))),
        }
    }
}

// A `Value` knows how to re-serialize itself; useful for pass-through.
impl Serialize for Value {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use ser::{SerializeMap, SerializeSeq};
        match self {
            Value::Null => serializer.serialize_none(),
            Value::Bool(b) => serializer.serialize_bool(*b),
            Value::Num(Num::U(u)) => serializer.serialize_u64(*u),
            Value::Num(Num::I(i)) => serializer.serialize_i64(*i),
            Value::Num(Num::F(f)) => serializer.serialize_f64(*f),
            Value::Str(s) => serializer.serialize_str(s),
            Value::Arr(items) => {
                let mut seq = serializer.serialize_seq(Some(items.len()))?;
                for item in items {
                    seq.serialize_element(item)?;
                }
                seq.end()
            }
            Value::Obj(entries) => {
                let mut map = serializer.serialize_map(Some(entries.len()))?;
                for (k, v) in entries {
                    map.serialize_entry(k, v)?;
                }
                map.end()
            }
        }
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        take(deserializer)
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl ser::Error for DeError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        DeError(msg.to_string())
    }
}

impl de::Error for DeError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        DeError(msg.to_string())
    }
}

impl std::error::Error for DeError {}
