//! Offline stand-in for `serde_derive`.
//!
//! Hand-written `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros
//! that walk the raw token stream (no `syn`/`quote` available offline) and
//! emit impls targeting the vendored serde shim's trait surface.
//!
//! Supported shapes — exactly what this workspace contains:
//! - structs with named fields,
//! - tuple structs (newtype structs serialize transparently),
//! - unit structs,
//! - enums with unit / newtype / tuple / struct variants
//!   (externally tagged, like real serde's default).
//!
//! Unsupported (produces a compile error rather than wrong code):
//! generic types and `#[serde(...)]` attributes.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse(input) {
        Ok(shape) => gen_serialize(&shape)
            .parse()
            .expect("generated impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse(input) {
        Ok(shape) => gen_deserialize(&shape)
            .parse()
            .expect("generated impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({:?});", msg)
        .parse()
        .expect("literal parses")
}

// ---------------------------------------------------------------------------
// Token-stream parsing
// ---------------------------------------------------------------------------

fn parse(input: TokenStream) -> Result<Shape, String> {
    let mut toks = input.into_iter().peekable();

    // Skip attributes (#[...], including expanded doc comments) and
    // visibility, then land on the `struct`/`enum` keyword.
    let keyword = loop {
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                let _bracket = toks.next();
            }
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "pub" {
                    if let Some(TokenTree::Group(g)) = toks.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            toks.next();
                        }
                    }
                } else if s == "struct" || s == "enum" {
                    break s;
                } else {
                    return Err(format!("serde shim derive: unexpected token `{s}`"));
                }
            }
            other => {
                return Err(format!(
                    "serde shim derive: unexpected input near {other:?}"
                ))
            }
        }
    };

    let name = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => {
            return Err(format!(
                "serde shim derive: expected type name, got {other:?}"
            ))
        }
    };

    if let Some(TokenTree::Punct(p)) = toks.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "serde shim derive: generic type `{name}` is not supported"
            ));
        }
    }

    if keyword == "struct" {
        match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Shape::NamedStruct {
                    name,
                    fields: parse_named_fields(g.stream())?,
                })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok(Shape::TupleStruct {
                    name,
                    arity: count_tuple_fields(g.stream()),
                })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Shape::UnitStruct { name }),
            other => Err(format!(
                "serde shim derive: malformed struct body near {other:?}"
            )),
        }
    } else {
        match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Shape::Enum {
                name,
                variants: parse_variants(g.stream())?,
            }),
            other => Err(format!(
                "serde shim derive: malformed enum body near {other:?}"
            )),
        }
    }
}

/// Parses `name: Type, ...` field lists, skipping attributes and
/// visibility. Types are skipped with angle-bracket depth tracking (commas
/// inside `BTreeMap<K, V>` do not end a field).
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut toks = stream.into_iter().peekable();
    loop {
        // Skip field attributes.
        while let Some(TokenTree::Punct(p)) = toks.peek() {
            if p.as_char() == '#' {
                toks.next();
                toks.next(); // the [...] group
            } else {
                break;
            }
        }
        // Visibility.
        if let Some(TokenTree::Ident(id)) = toks.peek() {
            if id.to_string() == "pub" {
                toks.next();
                if let Some(TokenTree::Group(g)) = toks.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        toks.next();
                    }
                }
            }
        }
        let name = match toks.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => {
                return Err(format!(
                    "serde shim derive: expected field name, got {other:?}"
                ))
            }
        };
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("serde shim derive: expected `:`, got {other:?}")),
        }
        // Skip the type.
        let mut angle: i32 = 0;
        for t in toks.by_ref() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => break,
                _ => {}
            }
        }
        fields.push(name);
    }
    Ok(fields)
}

/// Counts positional fields of a tuple struct / tuple variant.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut saw_tokens = false;
    let mut angle: i32 = 0;
    for t in stream {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle += 1;
                saw_tokens = true;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle -= 1;
                saw_tokens = true;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                count += 1;
                saw_tokens = false;
            }
            _ => saw_tokens = true,
        }
    }
    if saw_tokens {
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    let mut toks = stream.into_iter().peekable();
    loop {
        while let Some(TokenTree::Punct(p)) = toks.peek() {
            if p.as_char() == '#' {
                toks.next();
                toks.next();
            } else {
                break;
            }
        }
        let name = match toks.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => {
                return Err(format!(
                    "serde shim derive: expected variant name, got {other:?}"
                ))
            }
        };
        let kind = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                toks.next();
                VariantKind::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                toks.next();
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        // Skip a possible `= discriminant`, then the separating comma.
        for t in toks.by_ref() {
            if let TokenTree::Punct(p) = &t {
                if p.as_char() == ',' {
                    break;
                }
            }
        }
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation: Serialize
// ---------------------------------------------------------------------------

fn gen_serialize(shape: &Shape) -> String {
    let (name, body) = match shape {
        Shape::NamedStruct { name, fields } => {
            let mut b = format!(
                "let mut state = serde::Serializer::serialize_struct(serializer, \"{name}\", {}usize)?;\n",
                fields.len()
            );
            for f in fields {
                b.push_str(&format!(
                    "serde::ser::SerializeStruct::serialize_field(&mut state, \"{f}\", &self.{f})?;\n"
                ));
            }
            b.push_str("serde::ser::SerializeStruct::end(state)\n");
            (name, b)
        }
        Shape::TupleStruct { name, arity: 1 } => (
            name,
            format!(
                "serde::Serializer::serialize_newtype_struct(serializer, \"{name}\", &self.0)\n"
            ),
        ),
        Shape::TupleStruct { name, arity } => {
            let mut b = format!(
                "let mut state = serde::Serializer::serialize_tuple_struct(serializer, \"{name}\", {arity}usize)?;\n"
            );
            for i in 0..*arity {
                b.push_str(&format!(
                    "serde::ser::SerializeTupleStruct::serialize_field(&mut state, &self.{i})?;\n"
                ));
            }
            b.push_str("serde::ser::SerializeTupleStruct::end(state)\n");
            (name, b)
        }
        Shape::UnitStruct { name } => (
            name,
            "serde::Serializer::serialize_unit(serializer)\n".to_string(),
        ),
        Shape::Enum { name, variants } => {
            let mut b = String::from("match self {\n");
            for (idx, v) in variants.iter().enumerate() {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => b.push_str(&format!(
                        "{name}::{vname} => serde::Serializer::serialize_unit_variant(serializer, \"{name}\", {idx}u32, \"{vname}\"),\n"
                    )),
                    VariantKind::Tuple(1) => b.push_str(&format!(
                        "{name}::{vname}(field0) => serde::Serializer::serialize_newtype_variant(serializer, \"{name}\", {idx}u32, \"{vname}\", field0),\n"
                    )),
                    VariantKind::Tuple(arity) => {
                        let binders: Vec<String> =
                            (0..*arity).map(|i| format!("field{i}")).collect();
                        let mut arm = format!(
                            "{name}::{vname}({}) => {{\nlet mut state = serde::Serializer::serialize_tuple_variant(serializer, \"{name}\", {idx}u32, \"{vname}\", {arity}usize)?;\n",
                            binders.join(", ")
                        );
                        for bdr in &binders {
                            arm.push_str(&format!(
                                "serde::ser::SerializeTupleVariant::serialize_field(&mut state, {bdr})?;\n"
                            ));
                        }
                        arm.push_str("serde::ser::SerializeTupleVariant::end(state)\n}\n");
                        b.push_str(&arm);
                    }
                    VariantKind::Struct(fields) => {
                        let mut arm = format!(
                            "{name}::{vname} {{ {} }} => {{\nlet mut state = serde::Serializer::serialize_struct_variant(serializer, \"{name}\", {idx}u32, \"{vname}\", {}usize)?;\n",
                            fields.join(", "),
                            fields.len()
                        );
                        for f in fields {
                            arm.push_str(&format!(
                                "serde::ser::SerializeStructVariant::serialize_field(&mut state, \"{f}\", {f})?;\n"
                            ));
                        }
                        arm.push_str("serde::ser::SerializeStructVariant::end(state)\n}\n");
                        b.push_str(&arm);
                    }
                }
            }
            b.push_str("}\n");
            (name, b)
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl serde::Serialize for {name} {{\n\
         fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {{\n\
         {body}\
         }}\n\
         }}\n"
    )
}

// ---------------------------------------------------------------------------
// Code generation: Deserialize
// ---------------------------------------------------------------------------

fn gen_deserialize(shape: &Shape) -> String {
    let (name, body) = match shape {
        Shape::NamedStruct { name, fields } if fields.is_empty() => {
            (name, format!("let _ = value;\nOk({name} {{}})\n"))
        }
        Shape::NamedStruct { name, fields } => {
            let mut b = format!(
                "let mut entries = serde::__private::expect_obj(value, \"{name}\")?;\n\
                 Ok({name} {{\n"
            );
            for f in fields {
                b.push_str(&format!(
                    "{f}: serde::__private::field(&mut entries, \"{f}\")?,\n"
                ));
            }
            b.push_str("})\n");
            (name, b)
        }
        Shape::TupleStruct { name, arity: 1 } => (
            name,
            format!("serde::__private::from_value(value).map({name})\n"),
        ),
        Shape::TupleStruct { name, arity } => {
            let mut b = format!(
                "let items = serde::__private::expect_arr(value, {arity}usize, \"{name}\")?;\n\
                 let mut items = items.into_iter();\n\
                 Ok({name}(\n"
            );
            for _ in 0..*arity {
                b.push_str(
                    "serde::__private::from_value(items.next().expect(\"length checked\"))?,\n",
                );
            }
            b.push_str("))\n");
            (name, b)
        }
        Shape::UnitStruct { name } => (name, format!("let _ = value;\nOk({name})\n")),
        Shape::Enum { name, variants } => {
            let mut b = format!(
                "let (tag, content) = serde::__private::enum_tag(value, \"{name}\")?;\n\
                 match tag.as_str() {{\n"
            );
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => b.push_str(&format!(
                        "\"{vname}\" => {{\nserde::__private::expect_no_content(content, \"{vname}\")?;\nOk({name}::{vname})\n}}\n"
                    )),
                    VariantKind::Tuple(1) => b.push_str(&format!(
                        "\"{vname}\" => {{\nlet content = serde::__private::expect_content(content, \"{vname}\")?;\nOk({name}::{vname}(serde::__private::from_value(content)?))\n}}\n"
                    )),
                    VariantKind::Tuple(arity) => {
                        let mut arm = format!(
                            "\"{vname}\" => {{\n\
                             let content = serde::__private::expect_content(content, \"{vname}\")?;\n\
                             let items = serde::__private::expect_arr(content, {arity}usize, \"{name}::{vname}\")?;\n\
                             let mut items = items.into_iter();\n\
                             Ok({name}::{vname}(\n"
                        );
                        for _ in 0..*arity {
                            arm.push_str("serde::__private::from_value(items.next().expect(\"length checked\"))?,\n");
                        }
                        arm.push_str("))\n}\n");
                        b.push_str(&arm);
                    }
                    VariantKind::Struct(fields) => {
                        let mut arm = format!(
                            "\"{vname}\" => {{\n\
                             let content = serde::__private::expect_content(content, \"{vname}\")?;\n\
                             let mut entries = serde::__private::expect_obj(content, \"{name}::{vname}\")?;\n\
                             Ok({name}::{vname} {{\n"
                        );
                        for f in fields {
                            arm.push_str(&format!(
                                "{f}: serde::__private::field(&mut entries, \"{f}\")?,\n"
                            ));
                        }
                        arm.push_str("})\n}\n");
                        b.push_str(&arm);
                    }
                }
            }
            b.push_str(&format!(
                "other => Err(serde::__private::DeError::msg(format!(\"unknown variant `{{other}}` for {name}\"))),\n}}\n"
            ));
            (name, b)
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl<'de> serde::Deserialize<'de> for {name} {{\n\
         fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {{\n\
         let value = serde::Deserializer::__take_value(deserializer)?;\n\
         let result: Result<Self, serde::__private::DeError> = (move || {{\n\
         {body}\
         }})();\n\
         result.map_err(<D::Error as serde::de::Error>::custom)\n\
         }}\n\
         }}\n"
    )
}
