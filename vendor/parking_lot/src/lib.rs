//! Offline stand-in for the subset of the `parking_lot` API this workspace
//! uses, backed by `std::sync`.
//!
//! The real parking_lot is unavailable in the build environment (no network
//! registry), so this shim provides source-compatible `Mutex`, `MutexGuard`,
//! `RwLock` and `Condvar` types. Poisoning is deliberately swallowed —
//! parking_lot's locks do not poison, and the deadlock-fuzzer harness relies
//! on being able to keep using a lock after a program-under-test thread
//! panicked while holding it.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::Duration;

/// A mutual-exclusion lock that never poisons.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait*` can temporarily hand the std guard back
    // to `std::sync::Condvar`; it is `Some` at every other moment.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside wait")
    }
}

/// Result of a timed wait on a [`Condvar`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable usable with this module's [`Mutex`].
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Blocks until notified, releasing the guard's mutex while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present outside wait");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present outside wait");
        let (g, res) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, res)) => (g, res),
            Err(p) => {
                let (g, res) = p.into_inner();
                (g, res)
            }
        };
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar { .. }")
    }
}

/// A reader-writer lock that never poisons.
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn try_lock_contended_is_none() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let c = Condvar::new();
        let mut g = m.lock();
        let start = Instant::now();
        let res = c.wait_for(&mut g, Duration::from_millis(20));
        assert!(res.timed_out());
        assert!(start.elapsed() >= Duration::from_millis(10));
    }

    #[test]
    fn condvar_notify_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, c) = &*pair2;
            let mut g = m.lock();
            while !*g {
                c.wait(&mut g);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        *pair.0.lock() = true;
        pair.1.notify_all();
        h.join().unwrap();
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
