//! Algorithm 3: the DEADLOCKFUZZER active random scheduler.

use std::collections::{HashMap, HashSet};

use df_abstraction::{Abstraction, AbstractionMode, Abstractor};
use df_events::{Event, EventKind, Label, ObjId, ThreadId};
use df_igoodlock::AbstractCycle;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use df_runtime::{Directive, PendingOp, StateView, Strategy, StrategyStats, ThreadView};

use crate::check::check_real_deadlock;

/// Configuration of the active scheduler — one knob per experimental
/// variant in the paper's Figure 2.
#[derive(Clone, Debug)]
pub struct ActiveConfig {
    /// The potential deadlock cycle to create (from Phase I).
    pub cycle: AbstractCycle,
    /// Abstraction mode — must be the mode the cycle was abstracted with.
    /// `Trivial` reproduces the paper's "ignore abstraction" variant.
    pub mode: AbstractionMode,
    /// RNG seed; same seed + same program = same schedule.
    pub seed: u64,
    /// Honor acquisition contexts in the membership test
    /// `(abs(t), abs(l), C) ∈ Cycle`. `false` reproduces the "ignore
    /// context" variant (compare abstractions only).
    pub use_context: bool,
    /// Enable the §4 optimization: threads matching a cycle component
    /// yield once before the *outermost* acquire of the component's
    /// context. `false` reproduces the "no yields" variant.
    pub yield_optimization: bool,
    /// Livelock monitor (§5): un-pause a thread that has stayed paused for
    /// this many scheduling decisions.
    pub pause_budget: u64,
    /// How many scheduling decisions a thread may be deferred by the §4
    /// yield gate (per gated site). One decision is rarely enough for the
    /// partner thread to pass its leading lock section; the budget lets
    /// the yield span several of the partner's operations while never
    /// starving the gated thread.
    pub yield_budget: u32,
    /// Observability handle: the strategy streams its scheduling
    /// decisions (pause/unpause/thrash/yield and `checkRealDeadlock`
    /// verdicts) to its trace sink. Counters are rolled up by the runtime
    /// from [`StrategyStats`], so the default no-sink handle costs
    /// nothing here.
    pub obs: df_obs::Obs,
}

impl ActiveConfig {
    /// The paper's best variant (execution indexing, context, yields) for
    /// a given target cycle.
    pub fn new(cycle: AbstractCycle) -> Self {
        ActiveConfig {
            cycle,
            mode: AbstractionMode::default(),
            seed: 0,
            use_context: true,
            yield_optimization: true,
            pause_budget: 5_000,
            yield_budget: 8,
            obs: df_obs::Obs::default(),
        }
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the abstraction mode.
    pub fn with_mode(mut self, mode: AbstractionMode) -> Self {
        self.mode = mode;
        self
    }

    /// Enables/disables context matching.
    pub fn with_context(mut self, use_context: bool) -> Self {
        self.use_context = use_context;
        self
    }

    /// Enables/disables the §4 yield optimization.
    pub fn with_yields(mut self, yields: bool) -> Self {
        self.yield_optimization = yields;
        self
    }

    /// Attaches an observability handle.
    pub fn with_obs(mut self, obs: df_obs::Obs) -> Self {
        self.obs = obs;
        self
    }
}

/// The DEADLOCKFUZZER scheduling strategy (Algorithm 3).
///
/// At every schedule point it picks a random enabled, un-paused thread. A
/// thread about to acquire a lock is first run through `checkRealDeadlock`
/// (Algorithm 4) — if the acquire closes a cycle, the run stops with a
/// real deadlock witness. Otherwise, if `(abs(t), abs(l), Context[t])`
/// matches a component of the target cycle, the thread is *paused* instead
/// of run. If every enabled thread ends up paused the strategy *thrashes*:
/// it un-pauses a uniformly random thread, which then proceeds *through*
/// its pause point (as CalFuzzer's parked threads do — it is not re-caught
/// at the same acquire).
#[derive(Debug)]
pub struct ActiveStrategy {
    config: ActiveConfig,
    abstractor: Abstractor,
    rng: ChaCha8Rng,
    /// Paused threads → the pick count at which they were paused.
    paused: HashMap<ThreadId, u64>,
    /// Threads released from `Paused` (by thrashing or the monitor): they
    /// proceed through their current acquire without being re-paused.
    released: HashSet<ThreadId>,
    /// Deferral counts per `(thread, site)` for the §4 yield gate.
    yielded: HashMap<(ThreadId, Label), u32>,
    stats: StrategyStats,
    monitor_releases: u64,
}

impl ActiveStrategy {
    /// Creates the strategy.
    pub fn new(config: ActiveConfig) -> Self {
        let abstractor = Abstractor::new(config.mode);
        let rng = ChaCha8Rng::seed_from_u64(config.seed);
        ActiveStrategy {
            config,
            abstractor,
            rng,
            paused: HashMap::new(),
            released: HashSet::new(),
            yielded: HashMap::new(),
            stats: StrategyStats::default(),
            monitor_releases: 0,
        }
    }

    /// The membership test of Algorithm 3 line 12:
    /// `(abs(t), abs(l), Context[t]) ∈ Cycle`.
    fn matches_component(
        &self,
        view: &StateView<'_>,
        t: &ThreadView<'_>,
        lock: ObjId,
        site: Label,
    ) -> bool {
        let thread_abs = self.abstractor.abs(view.objects(), t.obj);
        let lock_abs = self.abstractor.abs(view.objects(), lock);
        if self.config.use_context {
            let mut context = t.context_stack.to_vec();
            context.push(site);
            self.config
                .cycle
                .find_component(&thread_abs, &lock_abs, &context)
                .is_some()
        } else {
            self.config
                .cycle
                .components()
                .iter()
                .any(|c| c.thread == thread_abs && c.lock == lock_abs)
        }
    }

    /// The §4 test: is `t` about to perform the *outermost* acquire of a
    /// cycle component it belongs to (by thread abstraction)?
    fn matches_yield_gate(&self, thread_abs: &Abstraction, site: Label) -> bool {
        self.config
            .cycle
            .components()
            .iter()
            .any(|c| &c.thread == thread_abs && c.outermost_site() == site)
    }

    /// Un-pauses threads that exceeded the pause budget (the livelock
    /// monitor of §5), returning the released threads so the caller can
    /// stream `Unpause` decisions with their names attached.
    fn run_monitor(&mut self) -> Vec<ThreadId> {
        let now = self.stats.picks;
        let budget = self.config.pause_budget;
        let mut expired: Vec<ThreadId> = self
            .paused
            .iter()
            .filter(|&(_, &at)| now.saturating_sub(at) > budget)
            .map(|(&t, _)| t)
            .collect();
        expired.sort();
        for &t in &expired {
            self.paused.remove(&t);
            self.released.insert(t);
            self.monitor_releases += 1;
        }
        expired
    }
}

impl Strategy for ActiveStrategy {
    fn pick(&mut self, view: &StateView<'_>, enabled: &[ThreadId]) -> Directive {
        self.stats.picks += 1;
        for t in self.run_monitor() {
            if self.config.obs.traces() {
                self.config.obs.emit(&df_obs::TraceEvent::Unpause {
                    step: view.steps(),
                    thread: t,
                    name: view.thread(t).name.to_string(),
                });
            }
        }
        // Per-call yield memory: a thread deferred by the §4 gate is only
        // skipped within this decision, not paused.
        let mut deferred: HashSet<ThreadId> = HashSet::new();
        loop {
            let candidates: Vec<ThreadId> = enabled
                .iter()
                .copied()
                .filter(|t| !self.paused.contains_key(t) && !deferred.contains(t))
                .collect();
            if candidates.is_empty() {
                if !deferred.is_empty() {
                    // Only deferred threads remain: run one of them (the
                    // yield gave others their chance already).
                    let ds: Vec<ThreadId> = enabled
                        .iter()
                        .copied()
                        .filter(|t| deferred.contains(t))
                        .collect();
                    let t = ds[self.rng.gen_range(0..ds.len())];
                    return Directive::Run(t);
                }
                // Thrashing (§2.3): every enabled thread is paused; remove
                // a random one from Paused. It will run through its pause
                // point.
                let mut paused: Vec<ThreadId> = self
                    .paused
                    .keys()
                    .copied()
                    .filter(|t| enabled.contains(t))
                    .collect();
                paused.sort();
                if paused.is_empty() {
                    // Defensive: enabled threads exist but none is paused,
                    // deferred, or pickable — cannot happen, but never
                    // wedge the runtime.
                    return Directive::Run(enabled[0]);
                }
                let victim = paused[self.rng.gen_range(0..paused.len())];
                self.paused.remove(&victim);
                self.released.insert(victim);
                self.stats.thrashes += 1;
                if self.config.obs.traces() {
                    self.config.obs.emit(&df_obs::TraceEvent::Thrash {
                        step: view.steps(),
                        thread: victim,
                        name: view.thread(victim).name.to_string(),
                    });
                }
                continue;
            }
            let t_id = candidates[self.rng.gen_range(0..candidates.len())];
            let t = view.thread(t_id);
            let (lock, site, mode) = match t.pending {
                Some(PendingOp::Acquire { lock, site, mode }) => (*lock, *site, *mode),
                _ => return Directive::Run(t_id),
            };
            // Algorithm 3 line 11: checkRealDeadlock with the candidate's
            // lock pushed (in the candidate's acquisition mode).
            let verdict = check_real_deadlock(view, t_id, lock, mode);
            if self.config.obs.traces() {
                self.config
                    .obs
                    .emit(&df_obs::TraceEvent::CheckRealDeadlock {
                        step: view.steps(),
                        verdict: verdict.is_some(),
                        cycle_len: verdict.as_ref().map(|w| w.len()).unwrap_or(0),
                    });
            }
            if let Some(witness) = verdict {
                return Directive::Deadlock(witness);
            }
            if self.released.contains(&t_id) {
                // Ran through a thrash/monitor release: commit the acquire.
                return Directive::Run(t_id);
            }
            // §4 yield optimization: defer the outermost acquire of a
            // cycle component once, letting other threads pass the
            // prefix of the cycle first.
            if self.config.yield_optimization {
                let thread_abs = self.abstractor.abs(view.objects(), t.obj);
                if self.matches_yield_gate(&thread_abs, site) {
                    let count = self.yielded.entry((t_id, site)).or_insert(0);
                    if *count < self.config.yield_budget {
                        *count += 1;
                        self.stats.yields += 1;
                        if self.config.obs.traces() {
                            self.config.obs.emit(&df_obs::TraceEvent::Yield {
                                step: view.steps(),
                                thread: t_id,
                                name: t.name.to_string(),
                                site: site.to_string(),
                            });
                        }
                        deferred.insert(t_id);
                        continue;
                    }
                }
            }
            // Algorithm 3 line 12: pause before an acquire that belongs to
            // the target cycle.
            if self.matches_component(view, &t, lock, site) {
                self.paused.insert(t_id, self.stats.picks);
                self.stats.pauses += 1;
                if self.config.obs.traces() {
                    self.config.obs.emit(&df_obs::TraceEvent::Pause {
                        step: view.steps(),
                        thread: t_id,
                        name: t.name.to_string(),
                        lock: self.abstractor.abs(view.objects(), lock).to_string(),
                        site: site.to_string(),
                    });
                }
                continue;
            }
            return Directive::Run(t_id);
        }
    }

    fn on_event(&mut self, event: &Event, _view: &StateView<'_>) {
        // A released thread consumed its exemption once its acquire
        // actually executed.
        if matches!(
            event.kind,
            EventKind::Acquire { .. } | EventKind::Reacquire { .. }
        ) {
            self.released.remove(&event.thread);
        }
    }

    fn finish(&mut self) -> StrategyStats {
        let mut stats = self.stats.clone();
        stats
            .extra
            .insert("monitor_releases".to_string(), self.monitor_releases as f64);
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_events::site;
    use df_igoodlock::{igoodlock, IGoodlockOptions, LockDependencyRelation};
    use df_runtime::{LockRef, RunConfig, RunResult, TCtx, VirtualRuntime};

    use crate::simple::SimpleRandomChecker;

    /// The paper's Figure 1 program: thread 1 runs long methods, then
    /// acquires (l1, l2); thread 2 acquires (l2, l1) immediately. With
    /// `third_thread` (lines 24/27 uncommented), a third thread acquires
    /// (l2, l3) through the same `run` body — the §3 example for why
    /// abstractions matter.
    fn figure1(third_thread: bool) -> impl Fn(&TCtx) + Send + Clone + 'static {
        move |ctx: &TCtx| {
            let o1 = ctx.new_lock(site!("main:22 new o1"));
            let o2 = ctx.new_lock(site!("main:23 new o2"));
            let o3 = if third_thread {
                Some(ctx.new_lock(site!("main:24 new o3")))
            } else {
                None
            };
            let run_body = |l1: LockRef, l2: LockRef, flag: bool| {
                move |ctx: &TCtx| {
                    if flag {
                        ctx.work(8); // f1()..f4(): long running methods
                    }
                    ctx.acquire(&l1, site!("run:15 sync l1"));
                    ctx.acquire(&l2, site!("run:16 sync l2"));
                    ctx.release(&l2, site!("run:17"));
                    ctx.release(&l1, site!("run:18"));
                }
            };
            let t1 = ctx.spawn(site!("main:25 start"), "t1", run_body(o1, o2, true));
            let t2 = ctx.spawn(site!("main:26 start"), "t2", run_body(o2, o1, false));
            let t3 = o3.map(|o3| ctx.spawn(site!("main:27 start"), "t3", run_body(o2, o3, false)));
            ctx.join(&t1, site!());
            ctx.join(&t2, site!());
            if let Some(t3) = t3 {
                ctx.join(&t3, site!());
            }
        }
    }

    /// Phase I helper: run under the simple random scheduler, extract the
    /// abstract cycles.
    fn phase1(
        program: impl Fn(&TCtx) + Send + Clone + 'static,
        mode: AbstractionMode,
        seed: u64,
    ) -> Vec<AbstractCycle> {
        let r = VirtualRuntime::new(RunConfig::default()).run(
            Box::new(SimpleRandomChecker::with_seed(seed)),
            {
                let p = program.clone();
                move |ctx| p(ctx)
            },
        );
        let rel = LockDependencyRelation::from_trace(&r.trace);
        let abstractor = Abstractor::new(mode);
        igoodlock(&rel, &IGoodlockOptions::default())
            .iter()
            .map(|c| c.abstract_with(r.trace.objects(), &abstractor))
            .collect()
    }

    fn phase2(program: impl Fn(&TCtx) + Send + Clone + 'static, config: ActiveConfig) -> RunResult {
        VirtualRuntime::new(RunConfig::default()).run(Box::new(ActiveStrategy::new(config)), {
            move |ctx| program(ctx)
        })
    }

    #[test]
    fn figure1_phase1_finds_the_cycle() {
        let cycles = phase1(figure1(false), AbstractionMode::default(), 3);
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].len(), 2);
        // The report names the sites of Figure 1.
        let text = cycles[0].to_string();
        assert!(text.contains("run:16"), "report: {text}");
    }

    #[test]
    fn figure1_simple_random_rarely_deadlocks() {
        // The long-running prefix makes the deadlock rare under plain
        // random scheduling (the paper's motivation).
        let mut deadlocks = 0;
        for seed in 0..20 {
            let r = VirtualRuntime::new(RunConfig::default()).run(
                Box::new(SimpleRandomChecker::with_seed(seed)),
                {
                    let p = figure1(false);
                    move |ctx| p(ctx)
                },
            );
            if r.outcome.is_deadlock() {
                deadlocks += 1;
            }
        }
        assert!(
            deadlocks <= 6,
            "plain random should rarely hit the rare deadlock, got {deadlocks}/20"
        );
    }

    #[test]
    fn figure1_active_creates_deadlock_with_probability_one() {
        let mode = AbstractionMode::default();
        let cycles = phase1(figure1(false), mode, 3);
        let cycle = cycles[0].clone();
        for seed in 0..20 {
            let r = phase2(
                figure1(false),
                ActiveConfig::new(cycle.clone())
                    .with_seed(seed)
                    .with_mode(mode),
            );
            assert!(
                r.outcome.is_deadlock(),
                "seed {seed} must deadlock, got {:?}",
                r.outcome
            );
        }
    }

    #[test]
    fn figure1_witness_matches_target_cycle() {
        let mode = AbstractionMode::default();
        let cycle = phase1(figure1(false), mode, 3).remove(0);
        let r = phase2(
            figure1(false),
            ActiveConfig::new(cycle.clone())
                .with_seed(1)
                .with_mode(mode),
        );
        let w = r.deadlock().expect("deadlock created");
        assert_eq!(w.len(), 2);
        // Rebuild the witness's abstract cycle and compare (up to
        // rotation) with the target.
        let abstractor = Abstractor::new(mode);
        let witness_cycle = AbstractCycle::new(
            w.components
                .iter()
                .map(|c| df_igoodlock::AbstractComponent {
                    thread: abstractor.abs(r.trace.objects(), c.thread_obj),
                    lock: abstractor.abs(r.trace.objects(), c.waiting_for),
                    context: c.context.clone(),
                    mode: c.waiting_mode,
                })
                .collect(),
        );
        assert!(cycle.matches(&witness_cycle));
    }

    #[test]
    fn three_thread_variant_exact_abstraction_still_probability_one() {
        // §3: with thread/lock abstractions the third thread is never
        // paused at run:16, so the real deadlock is still certain.
        let mode = AbstractionMode::default();
        let cycles = phase1(figure1(true), mode, 3);
        // iGoodlock reports the same (o1,o2) cycle; o3 is only ever nested
        // under o2 in one order so no second cycle.
        assert_eq!(cycles.len(), 1);
        let cycle = cycles[0].clone();
        for seed in 0..15 {
            let r = phase2(
                figure1(true),
                ActiveConfig::new(cycle.clone())
                    .with_seed(seed)
                    .with_mode(mode),
            );
            assert!(r.outcome.is_deadlock(), "seed {seed}: {:?}", r.outcome);
            assert_eq!(r.stats.thrashes, 0, "exact abstraction must not thrash");
        }
    }

    #[test]
    fn three_thread_variant_trivial_abstraction_thrashes_and_can_miss() {
        // §3: without abstractions (trivial mode) the third thread gets
        // paused at the same context, causing thrashing and occasional
        // misses (paper: miss probability ≈ 0.25).
        let exact = phase1(figure1(true), AbstractionMode::default(), 3).remove(0);
        let _ = exact; // the trivial run re-abstracts its own cycle:
        let trivial_cycle = phase1(figure1(true), AbstractionMode::Trivial, 3).remove(0);
        let mut misses = 0;
        let mut thrashes = 0u64;
        let trials = 40;
        for seed in 0..trials {
            let r = phase2(
                figure1(true),
                ActiveConfig::new(trivial_cycle.clone())
                    .with_seed(seed)
                    .with_mode(AbstractionMode::Trivial),
            );
            if !r.outcome.is_deadlock() {
                misses += 1;
            }
            thrashes += r.stats.thrashes;
        }
        assert!(
            thrashes > 0,
            "trivial abstraction should cause thrashing on the 3-thread example"
        );
        // Misses are possible but should not dominate.
        assert!(misses < trials, "some trials must still deadlock");
    }

    #[test]
    fn no_deadlock_program_completes_under_active_schedule() {
        // A consistent lock order: Phase I reports nothing; feeding an
        // unrelated cycle to Phase II must not wedge the program.
        let program = |ctx: &TCtx| {
            let a = ctx.new_lock(site!("na"));
            let b = ctx.new_lock(site!("nb"));
            let t = ctx.spawn(site!(), "w", move |ctx| {
                let _ga = ctx.lock(&a, site!("w a"));
                let _gb = ctx.lock(&b, site!("w b"));
            });
            let _ga = ctx.lock(&a, site!("m a"));
            let _gb = ctx.lock(&b, site!("m b"));
            drop(_gb);
            drop(_ga);
            ctx.join(&t, site!());
        };
        let cycles = phase1(program, AbstractionMode::default(), 5);
        assert!(cycles.is_empty());
        // Fabricate a cycle that never matches.
        let bogus = AbstractCycle::new(vec![]);
        let r = phase2(program, ActiveConfig::new(bogus).with_seed(1));
        assert!(r.outcome.is_completed());
    }

    #[test]
    fn paused_threads_are_released_by_monitor() {
        // One thread matches a cycle component; its partner never shows
        // up, so only the monitor (or completion of others) lets the run
        // finish.
        let mode = AbstractionMode::default();
        let cycles = phase1(figure1(false), mode, 3);
        let cycle = cycles[0].clone();
        // Program where only t1 exists: the pause cannot complete a cycle.
        let half_program = |ctx: &TCtx| {
            let o1 = ctx.new_lock(site!("main:22 new o1"));
            let o2 = ctx.new_lock(site!("main:23 new o2"));
            let t1 = ctx.spawn(site!("main:25 start"), "t1", move |ctx| {
                ctx.work(8);
                ctx.acquire(&o1, site!("run:15 sync l1"));
                ctx.acquire(&o2, site!("run:16 sync l2"));
                ctx.release(&o2, site!("run:17"));
                ctx.release(&o1, site!("run:18"));
            });
            ctx.join(&t1, site!());
        };
        let mut config = ActiveConfig::new(cycle).with_seed(2).with_mode(mode);
        config.pause_budget = 10;
        let r = phase2(half_program, config);
        assert!(
            r.outcome.is_completed(),
            "monitor must release the paused thread: {:?}",
            r.outcome
        );
    }

    #[test]
    fn stats_report_pauses_and_monitor_releases() {
        let mode = AbstractionMode::default();
        let cycle = phase1(figure1(false), mode, 3).remove(0);
        let r = phase2(
            figure1(false),
            ActiveConfig::new(cycle).with_seed(0).with_mode(mode),
        );
        assert!(r.outcome.is_deadlock());
        assert!(r.stats.pauses >= 1, "at least one thread must be paused");
        assert!(r.stats.extra.contains_key("monitor_releases"));
    }

    #[test]
    fn config_builders() {
        let c = ActiveConfig::new(AbstractCycle::new(vec![]))
            .with_seed(9)
            .with_mode(AbstractionMode::Site)
            .with_context(false)
            .with_yields(false);
        assert_eq!(c.seed, 9);
        assert_eq!(c.mode, AbstractionMode::Site);
        assert!(!c.use_context);
        assert!(!c.yield_optimization);
    }
}
