//! The active-testing framework (CalFuzzer): biased random schedulers
//! that *confirm* predicted concurrency bugs by creating them.
//!
//! The paper situates DeadlockFuzzer inside an extensible active-testing
//! framework (§5.1, §6); this crate mirrors that structure. The deadlock
//! checker (paper §2.3 and §4) is the centerpiece; the [`race`] module is
//! the RaceFuzzer sibling, and [`explore`] is the systematic
//! (model-checking-style) baseline the introduction argues against.
//!
//! Deadlock-checking [`df_runtime::Strategy`] implementations:
//!
//! * [`SimpleRandomChecker`] — Algorithm 2: at every state, pick a
//!   uniformly random enabled thread. Deadlocks are only found if the
//!   random schedule happens to stall the system.
//! * [`ActiveStrategy`] — Algorithm 3, DEADLOCKFUZZER proper: given a
//!   potential deadlock cycle from Phase I (an
//!   [`df_igoodlock::AbstractCycle`]), bias the random scheduler by
//!   *pausing* any thread about to perform an acquire matching a cycle
//!   component `(abs(t), abs(l), C)`, so that all cycle threads arrive at
//!   the deadlock configuration together. `checkRealDeadlock`
//!   (Algorithm 4, [`check_real_deadlock`]) fires the moment the cycle
//!   closes; *thrashing* (every enabled thread paused) un-pauses a random
//!   thread.
//!
//! The strategy exposes every experimental knob of the paper's Figure 2:
//! the abstraction mode, whether acquisition contexts are honored, and the
//! §4 yield optimization.
//!
//! # Example
//!
//! ```
//! use df_fuzzer::SimpleRandomChecker;
//! use df_runtime::{RunConfig, VirtualRuntime};
//! use df_events::site;
//!
//! let r = VirtualRuntime::new(RunConfig::default())
//!     .run(Box::new(SimpleRandomChecker::with_seed(7)), |ctx| {
//!         ctx.work(5);
//!     });
//! assert!(r.outcome.is_completed());
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod active;
pub mod atom;
mod check;
mod explore;
pub mod race;
mod simple;

pub use active::{ActiveConfig, ActiveStrategy};
pub use atom::{predict_atomicity_violations, AtomCandidate, AtomStrategy, AtomWitness};
pub use check::check_real_deadlock;
pub use explore::{explore, DirectedStrategy, ExploreOptions, ExploreResult, ScheduleRecord};
pub use race::{predict_races, RaceCandidate, RaceStrategy, RaceWitness};
pub use simple::SimpleRandomChecker;
