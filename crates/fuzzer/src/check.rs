//! Algorithm 4: `checkRealDeadlock`.

use df_events::{ObjId, ThreadId};
use df_runtime::{DeadlockWitness, Detector, PendingOp, StateView, WaitForGraph, WitnessComponent};

/// Algorithm 4 of the paper, evaluated over the live execution state.
///
/// The paper's formulation looks for distinct threads `t_1 … t_m` and locks
/// `l_1 … l_m` with `l_i` *before* `l_{i+1}` in `LockSet[t_i]` (cyclically)
/// — where a thread *blocked in* an acquire keeps the target lock pushed on
/// its lock set. In this runtime, blocked threads announce their pending
/// acquire instead of pushing it, so the check is: build the wait-for
/// graph of
///
/// * held locks (every thread's lock stack),
/// * pending acquires of threads that are blocked (their lock is held by
///   someone else), and
/// * `candidate`'s pending acquire of `candidate_lock` (the acquire the
///   scheduler is about to let happen — the "push" of Algorithm 3 line 9),
///
/// and report a cycle as a real deadlock. Intended acquires of *paused*
/// threads count as edges too (even though Algorithm 3 as printed pops the
/// lock when pausing): a paused thread is one schedule decision away from
/// the acquire, and a cycle through it can always be driven to the actual
/// blocked state by releasing the paused threads one by one — every lock
/// in the cycle is held by a cycle member, so no one can escape. This is
/// what lets DeadlockFuzzer confirm a deadlock with *zero* thrashes
/// (Table 1 reports 0.00 average thrashes for Logging and DBCP at
/// probability 1.00, which is impossible if paused intents are invisible
/// to the check).
///
/// Returns the witness if the acquire closes a cycle.
pub fn check_real_deadlock(
    view: &StateView<'_>,
    candidate: ThreadId,
    candidate_lock: ObjId,
) -> Option<DeadlockWitness> {
    let threads = view.threads();
    let mut graph = WaitForGraph::new();
    for t in &threads {
        for &held in t.lock_stack {
            graph.add_holds(t.id, held);
        }
        if t.id == candidate {
            graph.add_waits(t.id, candidate_lock);
            continue;
        }
        // Any announced acquire whose lock is currently held by another
        // thread is a wait-for edge — whether the thread is blocked in the
        // acquire or paused just before it. (An acquire of a *free* lock
        // can never be part of a cycle: a cycle needs the lock to be held
        // by a cycle member.)
        let wanted = match t.pending {
            Some(PendingOp::Acquire { lock, .. }) | Some(PendingOp::WaitReacquire { lock, .. }) => {
                Some(*lock)
            }
            _ => None,
        };
        if let Some(lock) = wanted {
            let held_by_other = view.lock_owner(lock).map(|o| o != t.id).unwrap_or(false);
            if held_by_other {
                graph.add_waits(t.id, lock);
            }
        }
    }
    let cycle = graph.find_cycle()?;
    let components = cycle
        .iter()
        .map(|&tid| {
            let t = threads
                .iter()
                .find(|t| t.id == tid)
                .expect("cycle thread exists");
            let waiting_for = graph
                .waiting_for(tid)
                .expect("cycle thread waits for a lock");
            let site = match t.pending {
                Some(PendingOp::Acquire { site, .. })
                | Some(PendingOp::WaitReacquire { site, .. }) => Some(*site),
                _ => None,
            };
            let mut context = t.context_stack.to_vec();
            if let Some(site) = site {
                context.push(site);
            }
            WitnessComponent {
                thread: tid,
                thread_obj: t.obj,
                thread_name: Some(t.name.to_string()),
                holding: t.lock_stack.to_vec(),
                waiting_for,
                context,
            }
        })
        .collect();
    Some(DeadlockWitness {
        components,
        detected_by: Detector::Strategy,
    })
}

// Unit coverage for `check_real_deadlock` requires a live `StateView`; it
// is exercised end-to-end in `active.rs` tests and in the integration
// suite (a strategy that feeds known states through the runtime).
