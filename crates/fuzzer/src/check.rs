//! Algorithm 4: `checkRealDeadlock`.

use df_events::{AcquireMode, ObjId, ThreadId};
use df_runtime::{DeadlockWitness, Detector, PendingOp, StateView, WaitForGraph, WitnessComponent};

/// Algorithm 4 of the paper, evaluated over the live execution state.
///
/// The paper's formulation looks for distinct threads `t_1 … t_m` and locks
/// `l_1 … l_m` with `l_i` *before* `l_{i+1}` in `LockSet[t_i]` (cyclically)
/// — where a thread *blocked in* an acquire keeps the target lock pushed on
/// its lock set. In this runtime, blocked threads announce their pending
/// acquire instead of pushing it, so the check is: build the wait-for
/// graph of
///
/// * held locks (every thread's lock stack),
/// * pending acquires of threads that are blocked (their lock is held by
///   someone else), and
/// * `candidate`'s pending acquire of `candidate_lock` (the acquire the
///   scheduler is about to let happen — the "push" of Algorithm 3 line 9),
///
/// and report a cycle as a real deadlock. Intended acquires of *paused*
/// threads count as edges too (even though Algorithm 3 as printed pops the
/// lock when pausing): a paused thread is one schedule decision away from
/// the acquire, and a cycle through it can always be driven to the actual
/// blocked state by releasing the paused threads one by one — every lock
/// in the cycle is held by a cycle member, so no one can escape. This is
/// what lets DeadlockFuzzer confirm a deadlock with *zero* thrashes
/// (Table 1 reports 0.00 average thrashes for Logging and DBCP at
/// probability 1.00, which is impossible if paused intents are invisible
/// to the check).
///
/// Returns the witness if the acquire closes a cycle.
pub fn check_real_deadlock(
    view: &StateView<'_>,
    candidate: ThreadId,
    candidate_lock: ObjId,
    candidate_mode: AcquireMode,
) -> Option<DeadlockWitness> {
    let add_wait =
        |graph: &mut WaitForGraph, t: ThreadId, lock: ObjId, mode: AcquireMode| match mode {
            AcquireMode::Exclusive => graph.add_waits(t, lock),
            AcquireMode::Shared => graph.add_waits_shared(t, lock),
        };
    let threads = view.threads();
    let mut graph = WaitForGraph::new();
    for t in &threads {
        for &held in t.lock_stack {
            // A lock on the stack whose owner is someone else (or nobody)
            // is a shared hold: the runtime pushes read holds on the same
            // stack but only exclusive holds set the owner.
            if view.lock_owner(held) == Some(t.id) {
                graph.add_holds(t.id, held);
            } else {
                graph.add_holds_shared(t.id, held);
            }
        }
        if t.id == candidate {
            add_wait(&mut graph, t.id, candidate_lock, candidate_mode);
            continue;
        }
        // Any announced acquire whose lock is currently held by another
        // thread in a conflicting mode is a wait-for edge — whether the
        // thread is blocked in the acquire or paused just before it. (An
        // acquire of a free lock can never be part of a cycle: a cycle
        // needs the lock to be held by a cycle member. Likewise a read of
        // a read-held lock never blocks, so it contributes no edge.)
        let wanted = match t.pending {
            Some(PendingOp::Acquire { lock, mode, .. }) => Some((*lock, *mode)),
            Some(PendingOp::WaitReacquire { lock, .. }) => Some((*lock, AcquireMode::Exclusive)),
            _ => None,
        };
        if let Some((lock, mode)) = wanted {
            let writer_is_other = view.lock_owner(lock).map(|o| o != t.id).unwrap_or(false);
            let blocked = match mode {
                AcquireMode::Exclusive => {
                    writer_is_other || view.lock_readers(lock).iter().any(|&r| r != t.id)
                }
                AcquireMode::Shared => writer_is_other,
            };
            if blocked {
                add_wait(&mut graph, t.id, lock, mode);
            }
        }
    }
    let cycle = graph.find_cycle()?;
    let components = cycle
        .iter()
        .map(|&tid| {
            let t = threads
                .iter()
                .find(|t| t.id == tid)
                .expect("cycle thread exists");
            let waiting_for = graph
                .waiting_for(tid)
                .expect("cycle thread waits for a lock");
            let (site, waiting_mode) = match t.pending {
                Some(PendingOp::Acquire { site, mode, .. }) => (Some(*site), *mode),
                Some(PendingOp::WaitReacquire { site, .. }) => {
                    (Some(*site), AcquireMode::Exclusive)
                }
                _ => (None, AcquireMode::Exclusive),
            };
            let mut context = t.context_stack.to_vec();
            if let Some(site) = site {
                context.push(site);
            }
            let holding = t.lock_stack.to_vec();
            let holding_modes = holding
                .iter()
                .map(|&l| {
                    if view.lock_owner(l) == Some(tid) {
                        AcquireMode::Exclusive
                    } else {
                        AcquireMode::Shared
                    }
                })
                .collect();
            WitnessComponent {
                thread: tid,
                thread_obj: t.obj,
                thread_name: Some(t.name.to_string()),
                holding,
                holding_modes,
                waiting_for,
                waiting_mode,
                context,
            }
        })
        .collect();
    Some(DeadlockWitness {
        components,
        detected_by: Detector::Strategy,
    })
}

// Unit coverage for `check_real_deadlock` requires a live `StateView`; it
// is exercised end-to-end in `active.rs` tests and in the integration
// suite (a strategy that feeds known states through the runtime).
