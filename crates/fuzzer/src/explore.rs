//! Systematic (bounded) schedule exploration — the model-checking
//! baseline of the paper's introduction.
//!
//! §1 of the paper motivates active random testing by the failure mode of
//! model checking: "systematically exploring all thread schedules …
//! fails to scale for large multi-threaded programs due to the
//! exponential increase in the number of thread schedules with execution
//! length." This module implements that baseline — stateless,
//! Verisoft-style exploration of the schedule tree — so the claim can be
//! *measured*: [`explore`] counts how many runs exhaustive search needs
//! to hit a deadlock that DeadlockFuzzer creates in one biased run.
//!
//! The exploration is stateless: each schedule is executed from scratch
//! under a [`DirectedStrategy`] that follows a prescribed prefix of
//! choice *indices* (into the sorted enabled set) and defaults to index 0
//! afterwards, recording the branching factor of every decision. New
//! prefixes are enqueued for every unexplored alternative, depth-first.

use std::sync::Arc;

use df_events::ThreadId;
use parking_lot::Mutex;

use df_runtime::{
    DeadlockWitness, Directive, RunConfig, StateView, Strategy, StrategyStats, TCtx, VirtualRuntime,
};

/// The per-decision record of one directed run.
#[derive(Clone, Debug, Default)]
pub struct ScheduleRecord {
    /// Choice index taken at each decision.
    pub choices: Vec<usize>,
    /// Number of enabled threads at each decision.
    pub branching: Vec<usize>,
}

/// Follows a prescribed choice prefix, then picks the first enabled
/// thread, recording branching factors throughout.
pub struct DirectedStrategy {
    prefix: Vec<usize>,
    record: Arc<Mutex<ScheduleRecord>>,
    picks: u64,
}

impl DirectedStrategy {
    /// Creates the strategy and a handle to its (post-run) record.
    pub fn new(prefix: Vec<usize>) -> (Self, Arc<Mutex<ScheduleRecord>>) {
        let record = Arc::new(Mutex::new(ScheduleRecord::default()));
        (
            DirectedStrategy {
                prefix,
                record: Arc::clone(&record),
                picks: 0,
            },
            record,
        )
    }
}

impl Strategy for DirectedStrategy {
    fn pick(&mut self, _view: &StateView<'_>, enabled: &[ThreadId]) -> Directive {
        let i = self.picks as usize;
        self.picks += 1;
        let choice = self
            .prefix
            .get(i)
            .copied()
            .unwrap_or(0)
            .min(enabled.len() - 1);
        let mut rec = self.record.lock();
        rec.choices.push(choice);
        rec.branching.push(enabled.len());
        Directive::Run(enabled[choice])
    }

    fn finish(&mut self) -> StrategyStats {
        StrategyStats {
            picks: self.picks,
            ..StrategyStats::default()
        }
    }
}

/// Bounds for [`explore`].
#[derive(Clone, Debug)]
pub struct ExploreOptions {
    /// Stop after this many executed schedules.
    pub max_runs: usize,
    /// Branch exhaustively only over the first `max_depth` decisions
    /// (later decisions follow the default choice). `None` = unbounded.
    pub max_depth: Option<usize>,
    /// Stop at the first deadlock found.
    pub stop_at_first_deadlock: bool,
    /// Runtime configuration for each execution.
    pub run: RunConfig,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions {
            max_runs: 10_000,
            max_depth: None,
            stop_at_first_deadlock: true,
            run: RunConfig::default().with_record_trace(false),
        }
    }
}

/// What the exploration found.
#[derive(Debug)]
pub struct ExploreResult {
    /// Schedules executed.
    pub runs: usize,
    /// Runs that ended in a deadlock, with the run index (0-based) of the
    /// first one.
    pub deadlocks: Vec<(usize, DeadlockWitness)>,
    /// Whether the whole (depth-bounded) schedule tree was covered.
    pub exhausted: bool,
}

impl ExploreResult {
    /// The run index of the first deadlock, if any.
    pub fn first_deadlock_run(&self) -> Option<usize> {
        self.deadlocks.first().map(|&(i, _)| i)
    }
}

/// Systematically explores the schedule tree of `program`, depth-first.
///
/// # Example
///
/// ```
/// use df_fuzzer::{explore, ExploreOptions};
/// use df_events::site;
///
/// // A single-threaded program has exactly one schedule.
/// let result = explore(
///     move || {
///         move |ctx: &df_runtime::TCtx| {
///             ctx.work(2);
///         }
///     },
///     &ExploreOptions::default(),
/// );
/// assert_eq!(result.runs, 1);
/// assert!(result.exhausted);
/// assert!(result.deadlocks.is_empty());
/// ```
pub fn explore<F, P>(program: F, options: &ExploreOptions) -> ExploreResult
where
    F: Fn() -> P,
    P: FnOnce(&TCtx) + Send + 'static,
{
    let runtime = VirtualRuntime::new(options.run.clone());
    let mut stack: Vec<Vec<usize>> = vec![Vec::new()];
    let mut runs = 0usize;
    let mut deadlocks = Vec::new();
    let mut exhausted = true;
    while let Some(prefix) = stack.pop() {
        if runs >= options.max_runs {
            exhausted = false;
            break;
        }
        let (strategy, record) = DirectedStrategy::new(prefix.clone());
        let result = runtime.run(Box::new(strategy), program());
        runs += 1;
        let deadlocked = result.outcome.deadlock().is_some();
        options.run.obs.emit(&df_obs::TraceEvent::ExploreRun {
            run: runs - 1,
            deadlock: deadlocked,
        });
        if let Some(w) = result.outcome.deadlock() {
            deadlocks.push((runs - 1, w.clone()));
            if options.stop_at_first_deadlock {
                exhausted = false;
                break;
            }
        }
        // Enqueue unexplored siblings: alternatives at decisions past the
        // prescribed prefix (the prefix itself was already branched by
        // whoever enqueued it).
        let rec = record.lock();
        let limit = options
            .max_depth
            .unwrap_or(rec.branching.len())
            .min(rec.branching.len());
        // Depth-first: push deeper branch points last so they pop first.
        for i in (prefix.len()..limit).rev() {
            for alt in 1..rec.branching[i] {
                let mut next = rec.choices[..i].to_vec();
                next.push(alt);
                stack.push(next);
            }
        }
        if options.max_depth.is_some() && rec.branching.len() > limit {
            // Decisions beyond the depth bound were not branched.
            exhausted = false;
        }
    }
    if !stack.is_empty() {
        exhausted = false;
    }
    ExploreResult {
        runs,
        deadlocks,
        exhausted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_events::site;
    use df_runtime::LockRef;

    /// Two threads, opposite lock order, `prefix_work` units of work
    /// before the first thread's acquisitions (Figure 1's shape, scaled).
    fn opposite_order(prefix_work: u32) -> impl Fn() -> Box<dyn FnOnce(&TCtx) + Send> {
        move || {
            Box::new(move |ctx: &TCtx| {
                let a = ctx.new_lock(site!("ex a"));
                let b = ctx.new_lock(site!("ex b"));
                let body = |l1: LockRef, l2: LockRef, work: u32| {
                    move |ctx: &TCtx| {
                        ctx.work(work);
                        let g1 = ctx.lock(&l1, site!("ex first"));
                        let g2 = ctx.lock(&l2, site!("ex second"));
                        drop(g2);
                        drop(g1);
                    }
                };
                let t1 = ctx.spawn(site!("ex s1"), "t1", body(a, b, prefix_work));
                let t2 = ctx.spawn(site!("ex s2"), "t2", body(b, a, 0));
                ctx.join(&t1, site!());
                ctx.join(&t2, site!());
            }) as Box<dyn FnOnce(&TCtx) + Send>
        }
    }

    #[test]
    fn finds_the_deadlock_eventually() {
        let result = explore(opposite_order(0), &ExploreOptions::default());
        assert!(
            !result.deadlocks.is_empty(),
            "exhaustive search must find the deadlock ({} runs)",
            result.runs
        );
    }

    #[test]
    fn run_count_grows_with_execution_length() {
        // The paper's motivation: schedules explode with execution
        // length. Measure runs-to-first-deadlock as the benign prefix
        // grows.
        let mut counts = Vec::new();
        for work in [0u32, 2, 4] {
            let result = explore(
                opposite_order(work),
                &ExploreOptions {
                    max_runs: 100_000,
                    ..ExploreOptions::default()
                },
            );
            let first = result.first_deadlock_run().expect("deadlock reachable") as u64;
            counts.push(first);
        }
        assert!(
            counts[0] < counts[1] && counts[1] < counts[2],
            "schedules to first deadlock must grow with prefix length: {counts:?}"
        );
    }

    #[test]
    fn exhausts_small_trees() {
        // No locks: the tree is still branchy (interleavings of work),
        // but finite and deadlock-free.
        let result = explore(
            || {
                |ctx: &TCtx| {
                    let t = ctx.spawn(site!("eh s"), "w", |ctx| ctx.work(2));
                    ctx.work(1);
                    ctx.join(&t, site!());
                }
            },
            &ExploreOptions {
                max_runs: 100_000,
                stop_at_first_deadlock: false,
                ..ExploreOptions::default()
            },
        );
        assert!(result.exhausted, "covered in {} runs", result.runs);
        assert!(result.deadlocks.is_empty());
        assert!(result.runs > 1, "interleavings exist");
    }

    #[test]
    fn depth_bound_limits_work() {
        let bounded = explore(
            opposite_order(4),
            &ExploreOptions {
                max_depth: Some(3),
                stop_at_first_deadlock: false,
                max_runs: 100_000,
                ..ExploreOptions::default()
            },
        );
        let unbounded = explore(
            opposite_order(4),
            &ExploreOptions {
                stop_at_first_deadlock: false,
                max_runs: 100_000,
                ..ExploreOptions::default()
            },
        );
        assert!(bounded.runs < unbounded.runs);
        assert!(!bounded.exhausted);
    }

    #[test]
    fn first_deadlock_run_is_none_without_deadlocks() {
        let r = ExploreResult {
            runs: 5,
            deadlocks: Vec::new(),
            exhausted: true,
        };
        assert_eq!(r.first_deadlock_run(), None);
    }

    #[test]
    fn first_deadlock_run_returns_the_earliest_index() {
        let w = DeadlockWitness {
            components: Vec::new(),
            detected_by: df_runtime::Detector::Strategy,
        };
        let r = ExploreResult {
            runs: 10,
            deadlocks: vec![(3, w.clone()), (7, w)],
            exhausted: false,
        };
        assert_eq!(r.first_deadlock_run(), Some(3));
    }

    #[test]
    fn first_deadlock_run_matches_an_end_to_end_exploration() {
        let result = explore(opposite_order(0), &ExploreOptions::default());
        let first = result.first_deadlock_run().expect("deadlock reachable");
        assert_eq!(first, result.deadlocks[0].0);
        assert_eq!(first, result.runs - 1, "stop_at_first_deadlock stops there");
    }

    #[test]
    fn explore_streams_one_trace_event_per_run() {
        let obs = df_obs::Obs::with_memory_sink();
        let result = explore(
            opposite_order(0),
            &ExploreOptions {
                run: RunConfig::default()
                    .with_record_trace(false)
                    .with_obs(obs.clone()),
                ..ExploreOptions::default()
            },
        );
        let trace = obs.trace_contents().unwrap();
        let lines: Vec<&str> = trace.lines().filter(|l| l.contains("ExploreRun")).collect();
        assert_eq!(lines.len(), result.runs);
        assert!(lines.last().unwrap().contains("\"deadlock\":true"));
    }

    #[test]
    fn max_runs_cap_is_respected() {
        let result = explore(
            opposite_order(6),
            &ExploreOptions {
                max_runs: 10,
                stop_at_first_deadlock: false,
                ..ExploreOptions::default()
            },
        );
        assert_eq!(result.runs, 10);
        assert!(!result.exhausted);
    }
}
