//! The race-detection sibling of the deadlock checker — RaceFuzzer
//! within the CalFuzzer active-testing framework (paper §6: "We proposed
//! RACEFUZZER which uses an active randomized scheduler to confirm race
//! conditions with high probability. RACEFUZZER only uses statement
//! locations to identify races").
//!
//! Same two-phase shape as the deadlock tool:
//!
//! 1. [`predict_races`] — an Eraser-style lockset analysis over the
//!    [`df_events::EventKind::Access`] events of one trace: two accesses
//!    to the same variable from different threads, at least one write,
//!    with *disjoint* lock sets, are a potential race. Candidates are
//!    reported as statement-location pairs ([`RaceCandidate`]).
//! 2. [`RaceStrategy`] — a biased random scheduler that pauses a thread
//!    about to perform an access matching one side of the candidate until
//!    another thread arrives at the other side on the *same* variable —
//!    at that point both accesses are simultaneously poised and the race
//!    is real ([`RaceWitness`]), regardless of which executes first.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use df_events::{EventKind, Label, ObjId, ThreadId, Trace};
use parking_lot::Mutex;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use df_runtime::{Directive, PendingOp, StateView, Strategy, StrategyStats};

/// A potential race: two statement locations that accessed the same
/// variable from different threads with disjoint lock sets, at least one
/// of them writing.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct RaceCandidate {
    /// First access site (ordered by label index for deduplication).
    pub site_a: Label,
    /// Whether the first access is a write.
    pub write_a: bool,
    /// Second access site.
    pub site_b: Label,
    /// Whether the second access is a write.
    pub write_b: bool,
}

impl std::fmt::Display for RaceCandidate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "({}{}, {}{})",
            self.site_a,
            if self.write_a { " [W]" } else { " [R]" },
            self.site_b,
            if self.write_b { " [W]" } else { " [R]" },
        )
    }
}

/// A confirmed race: two threads simultaneously poised at conflicting
/// accesses to the same variable.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RaceWitness {
    /// The contended variable.
    pub var: ObjId,
    /// (thread, site, is-write) of the paused access.
    pub first: (ThreadId, Label, bool),
    /// (thread, site, is-write) of the arriving access.
    pub second: (ThreadId, Label, bool),
}

/// Eraser-style lockset race prediction over one trace.
///
/// # Example
///
/// ```
/// use df_fuzzer::predict_races;
/// use df_events::Trace;
///
/// assert!(predict_races(&Trace::default()).is_empty());
/// ```
pub fn predict_races(trace: &Trace) -> Vec<RaceCandidate> {
    // Per variable: every distinct (thread, site, write, lockset).
    type Access = (ThreadId, Label, bool, Vec<ObjId>);
    let mut per_var: HashMap<ObjId, Vec<Access>> = HashMap::new();
    for event in trace.events() {
        if let EventKind::Access {
            var,
            site,
            write,
            held,
        } = &event.kind
        {
            let accesses = per_var.entry(*var).or_default();
            let entry = (event.thread, *site, *write, held.clone());
            if !accesses.contains(&entry) {
                accesses.push(entry);
            }
        }
    }
    let mut seen: HashSet<RaceCandidate> = HashSet::new();
    let mut out = Vec::new();
    for accesses in per_var.values() {
        for i in 0..accesses.len() {
            for j in (i + 1)..accesses.len() {
                let (ta, sa, wa, ref la) = accesses[i];
                let (tb, sb, wb, ref lb) = accesses[j];
                if ta == tb || (!wa && !wb) {
                    continue;
                }
                if la.iter().any(|l| lb.contains(l)) {
                    continue; // a common lock orders the accesses
                }
                // Canonical order by site for dedup.
                let cand = if sa.index() <= sb.index() {
                    RaceCandidate {
                        site_a: sa,
                        write_a: wa,
                        site_b: sb,
                        write_b: wb,
                    }
                } else {
                    RaceCandidate {
                        site_a: sb,
                        write_a: wb,
                        site_b: sa,
                        write_b: wa,
                    }
                };
                if seen.insert(cand.clone()) {
                    out.push(cand);
                }
            }
        }
    }
    out
}

/// The active race-confirming scheduler (RaceFuzzer's Phase II).
pub struct RaceStrategy {
    candidate: RaceCandidate,
    rng: ChaCha8Rng,
    /// Paused thread → (var, site, write).
    paused: HashMap<ThreadId, (ObjId, Label, bool)>,
    witness: Arc<Mutex<Option<RaceWitness>>>,
    stats: StrategyStats,
    pause_budget: u64,
    paused_at: HashMap<ThreadId, u64>,
}

impl RaceStrategy {
    /// Creates the strategy and a handle that will hold the witness if
    /// the race is confirmed.
    pub fn new(candidate: RaceCandidate, seed: u64) -> (Self, Arc<Mutex<Option<RaceWitness>>>) {
        let witness = Arc::new(Mutex::new(None));
        (
            RaceStrategy {
                candidate,
                rng: ChaCha8Rng::seed_from_u64(seed),
                paused: HashMap::new(),
                witness: Arc::clone(&witness),
                stats: StrategyStats::default(),
                pause_budget: 5_000,
                paused_at: HashMap::new(),
            },
            witness,
        )
    }

    fn matches_side(&self, site: Label, write: bool) -> bool {
        (site == self.candidate.site_a && write == self.candidate.write_a)
            || (site == self.candidate.site_b && write == self.candidate.write_b)
    }

    /// Whether `(site, write)` conflicts with a paused access on the same
    /// variable (the two sides of the candidate, at least one write).
    fn completes_race(
        &self,
        t: ThreadId,
        var: ObjId,
        site: Label,
        write: bool,
    ) -> Option<RaceWitness> {
        for (&pt, &(pvar, psite, pwrite)) in &self.paused {
            if pt == t || pvar != var {
                continue;
            }
            if !(write || pwrite) {
                continue;
            }
            // The pair must be the candidate's two sides (in either
            // order).
            let pair_matches = (psite == self.candidate.site_a
                && site == self.candidate.site_b
                && pwrite == self.candidate.write_a
                && write == self.candidate.write_b)
                || (psite == self.candidate.site_b
                    && site == self.candidate.site_a
                    && pwrite == self.candidate.write_b
                    && write == self.candidate.write_a);
            if pair_matches {
                return Some(RaceWitness {
                    var,
                    first: (pt, psite, pwrite),
                    second: (t, site, write),
                });
            }
        }
        None
    }
}

impl Strategy for RaceStrategy {
    fn pick(&mut self, view: &StateView<'_>, enabled: &[ThreadId]) -> Directive {
        self.stats.picks += 1;
        // §5-style monitor for long pauses.
        let now = self.stats.picks;
        let expired: Vec<ThreadId> = self
            .paused_at
            .iter()
            .filter(|&(_, &at)| now.saturating_sub(at) > self.pause_budget)
            .map(|(&t, _)| t)
            .collect();
        for t in expired {
            self.paused.remove(&t);
            self.paused_at.remove(&t);
        }
        loop {
            let candidates: Vec<ThreadId> = enabled
                .iter()
                .copied()
                .filter(|t| !self.paused.contains_key(t))
                .collect();
            if candidates.is_empty() {
                // Thrash: release a random paused thread.
                let mut paused: Vec<ThreadId> = self
                    .paused
                    .keys()
                    .copied()
                    .filter(|t| enabled.contains(t))
                    .collect();
                paused.sort();
                if paused.is_empty() {
                    return Directive::Run(enabled[0]);
                }
                let victim = paused[self.rng.gen_range(0..paused.len())];
                self.paused.remove(&victim);
                self.paused_at.remove(&victim);
                self.stats.thrashes += 1;
                continue;
            }
            let t_id = candidates[self.rng.gen_range(0..candidates.len())];
            let t = view.thread(t_id);
            let (var, site, write) = match t.pending {
                Some(PendingOp::Access { var, site, write }) => (*var, *site, *write),
                _ => return Directive::Run(t_id),
            };
            if let Some(w) = self.completes_race(t_id, var, site, write) {
                *self.witness.lock() = Some(w);
                return Directive::Abort("real race confirmed".to_string());
            }
            if self.matches_side(site, write) {
                self.paused.insert(t_id, (var, site, write));
                self.paused_at.insert(t_id, self.stats.picks);
                self.stats.pauses += 1;
                continue;
            }
            return Directive::Run(t_id);
        }
    }

    fn finish(&mut self) -> StrategyStats {
        self.stats.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_events::site;
    use df_runtime::{RunConfig, TCtx, VirtualRuntime};

    use crate::simple::SimpleRandomChecker;

    /// Two threads increment an unguarded counter; a third uses a lock.
    fn racy_program(ctx: &TCtx) {
        let counter = ctx.new_var(site!("racy counter"));
        let guard = ctx.new_lock(site!("racy guard"));
        let t1 = ctx.spawn(site!("racy s1"), "t1", move |ctx| {
            ctx.work(2);
            ctx.read(&counter, site!("t1 read"));
            ctx.write(&counter, site!("t1 write"));
        });
        let t2 = ctx.spawn(site!("racy s2"), "t2", move |ctx| {
            ctx.read(&counter, site!("t2 read"));
            ctx.write(&counter, site!("t2 write"));
        });
        let t3 = ctx.spawn(site!("racy s3"), "t3", move |ctx| {
            let g = ctx.lock(&guard, site!("t3 lock"));
            ctx.write(&counter, site!("t3 guarded write"));
            drop(g);
        });
        ctx.join(&t1, site!());
        ctx.join(&t2, site!());
        ctx.join(&t3, site!());
    }

    /// Fully guarded variant: no races.
    fn guarded_program(ctx: &TCtx) {
        let counter = ctx.new_var(site!("g counter"));
        let guard = ctx.new_lock(site!("g guard"));
        let mut handles = Vec::new();
        for i in 0..3 {
            handles.push(ctx.spawn(site!("g spawn"), &format!("g{i}"), move |ctx| {
                let g = ctx.lock(&guard, site!("g lock"));
                ctx.read(&counter, site!("g read"));
                ctx.write(&counter, site!("g write"));
                drop(g);
            }));
        }
        for h in &handles {
            ctx.join(h, site!());
        }
    }

    fn phase1_races(program: fn(&TCtx)) -> Vec<RaceCandidate> {
        let r = VirtualRuntime::new(RunConfig::default())
            .run(Box::new(SimpleRandomChecker::with_seed(3)), program);
        assert!(r.outcome.is_completed());
        predict_races(&r.trace)
    }

    #[test]
    fn lockset_analysis_finds_unguarded_conflicts() {
        let races = phase1_races(racy_program);
        // t1/t2 unguarded write-write and read-write pairs exist; the
        // guarded t3 write still races with the unguarded accesses
        // (disjoint locksets!), but read-read pairs never appear.
        assert!(!races.is_empty());
        for c in &races {
            assert!(c.write_a || c.write_b, "at least one write: {c}");
        }
        let text: Vec<String> = races.iter().map(|c| c.to_string()).collect();
        assert!(
            text.iter()
                .any(|t| t.contains("t1 write") && t.contains("t2 write")),
            "the write-write race is predicted: {text:?}"
        );
    }

    #[test]
    fn guarded_program_has_no_candidates() {
        assert!(phase1_races(guarded_program).is_empty());
    }

    #[test]
    fn active_scheduler_confirms_the_race_deterministically() {
        let races = phase1_races(racy_program);
        let target = races
            .iter()
            .find(|c| {
                let t = c.to_string();
                t.contains("t1 write") && t.contains("t2 write")
            })
            .expect("write-write candidate")
            .clone();
        for seed in 0..10 {
            let (strategy, witness) = RaceStrategy::new(target.clone(), seed);
            let r = VirtualRuntime::new(RunConfig::default()).run(Box::new(strategy), racy_program);
            let w = witness.lock().clone();
            let w = w.unwrap_or_else(|| panic!("seed {seed}: no witness ({:?})", r.outcome));
            assert_ne!(w.first.0, w.second.0, "distinct threads");
            assert!(w.first.2 && w.second.2, "both writes");
        }
    }

    #[test]
    fn unrelated_candidate_lets_the_program_complete() {
        let bogus = RaceCandidate {
            site_a: site!("nowhere a"),
            write_a: true,
            site_b: site!("nowhere b"),
            write_b: true,
        };
        let (strategy, witness) = RaceStrategy::new(bogus, 1);
        let r = VirtualRuntime::new(RunConfig::default()).run(Box::new(strategy), racy_program);
        assert!(r.outcome.is_completed(), "{:?}", r.outcome);
        assert!(witness.lock().is_none());
    }
}
