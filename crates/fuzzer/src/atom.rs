//! The atomicity-violation sibling of the deadlock checker — AtomFuzzer
//! within the CalFuzzer active-testing framework (paper §6: "randomized
//! active atomicity violation detection in concurrent programs",
//! Park & Sen, FSE 2008).
//!
//! Same two-phase shape as the other checkers:
//!
//! 1. [`predict_atomicity_violations`] — scan one trace for
//!    *unserializable access patterns*: an intended-atomic block of
//!    thread `t1` accesses a variable twice (`a1 … a1'`) and some other
//!    thread has a conflicting access `a2` such that the interleaving
//!    `a1, a2, a1'` cannot be serialized. The four unserializable
//!    triples (AVIO's classification) are `R-W-R`, `W-W-R`, `R-W-W` and
//!    `W-R-W`.
//! 2. [`AtomStrategy`] — bias the scheduler to *create* the pattern:
//!    pause `t1` between its two accesses (right before `a1'`) until the
//!    interloper executes `a2`; the moment `a2` runs with `t1` paused,
//!    the violation is real ([`AtomWitness`]).

use std::collections::HashMap;
use std::sync::Arc;

use df_events::{EventKind, Label, ObjId, ThreadId, Trace};

use parking_lot::Mutex;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use df_events::Event;
use df_runtime::{Directive, PendingOp, StateView, Strategy, StrategyStats};

/// Whether the triple `(first, middle, last)` of access types (`true` =
/// write) is unserializable.
fn unserializable(first: bool, middle: bool, last: bool) -> bool {
    matches!(
        (first, middle, last),
        (false, true, false)  // R-W-R: the two reads disagree
            | (true, true, false) // W-W-R: the read sees the interloper
            | (false, true, true) // R-W-W: the interloper's write is lost
            | (true, false, true) // W-R-W: the read sees a partial state
    )
}

/// A predicted atomicity violation.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct AtomCandidate {
    /// Label of the intended-atomic block.
    pub block: Label,
    /// Site and kind of the block's first access to the variable.
    pub first: (Label, bool),
    /// Site and kind of the interloper's conflicting access.
    pub middle: (Label, bool),
    /// Site and kind of the block's second access.
    pub last: (Label, bool),
}

impl std::fmt::Display for AtomCandidate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let k = |w: bool| if w { "W" } else { "R" };
        write!(
            f,
            "atomic {}: {}[{}] … {}[{}] … {}[{}]",
            self.block,
            self.first.0,
            k(self.first.1),
            self.middle.0,
            k(self.middle.1),
            self.last.0,
            k(self.last.1),
        )
    }
}

/// A created atomicity violation: the interloper's access executed while
/// the atomic block's owner was paused between its two accesses.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AtomWitness {
    /// The contended variable.
    pub var: ObjId,
    /// The thread inside the atomic block.
    pub owner: ThreadId,
    /// The interloping thread.
    pub interloper: ThreadId,
    /// The interloper's access site.
    pub middle_site: Label,
}

/// Scans a trace for unserializable patterns (Phase I of AtomFuzzer).
///
/// # Example
///
/// ```
/// use df_fuzzer::predict_atomicity_violations;
/// use df_events::Trace;
///
/// assert!(predict_atomicity_violations(&Trace::default()).is_empty());
/// ```
pub fn predict_atomicity_violations(trace: &Trace) -> Vec<AtomCandidate> {
    // Per-thread current atomic block + accesses inside it, per var.
    #[derive(Default)]
    struct BlockState {
        block: Option<Label>,
        accesses: HashMap<ObjId, Vec<(Label, bool)>>,
    }
    /// A (site, is-write) access descriptor.
    type Acc = (Label, bool);
    let mut per_thread: HashMap<ThreadId, BlockState> = HashMap::new();
    // (var, site, write, thread) of every access anywhere.
    let mut all_accesses: HashMap<ObjId, Vec<(Label, bool, ThreadId)>> = HashMap::new();
    // Collected (block, var, first, last) pairs.
    let mut pairs: Vec<(Label, ObjId, Acc, Acc)> = Vec::new();
    for event in trace.events() {
        match &event.kind {
            EventKind::AtomicBegin { site } => {
                let st = per_thread.entry(event.thread).or_default();
                st.block = Some(*site);
                st.accesses.clear();
            }
            EventKind::AtomicEnd => {
                let st = per_thread.entry(event.thread).or_default();
                if let Some(block) = st.block.take() {
                    for (&var, accs) in &st.accesses {
                        if accs.len() >= 2 {
                            pairs.push((block, var, accs[0], *accs.last().expect("len>=2")));
                        }
                    }
                }
                st.accesses.clear();
            }
            EventKind::Access {
                var, site, write, ..
            } => {
                all_accesses
                    .entry(*var)
                    .or_default()
                    .push((*site, *write, event.thread));
                let st = per_thread.entry(event.thread).or_default();
                if st.block.is_some() {
                    st.accesses.entry(*var).or_default().push((*site, *write));
                }
            }
            _ => {}
        }
    }
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for (block, var, first, last) in pairs {
        // Which thread owns this pair? Any *other* thread's conflicting
        // access can interleave.
        for &(msite, mwrite, _mthread) in all_accesses.get(&var).into_iter().flatten() {
            if msite == first.0 || msite == last.0 {
                continue; // the block's own statements
            }
            if !unserializable(first.1, mwrite, last.1) {
                continue;
            }
            let cand = AtomCandidate {
                block,
                first,
                middle: (msite, mwrite),
                last,
            };
            if seen.insert(cand.clone()) {
                out.push(cand);
            }
        }
    }
    out
}

/// The active atomicity-violation scheduler (Phase II of AtomFuzzer).
///
/// Both parties are steered: a thread about to perform the candidate's
/// *middle* access is held back until the block's owner is paused
/// between its two accesses; then the interloper is released, its access
/// lands inside the block, and the violation is real.
pub struct AtomStrategy {
    candidate: AtomCandidate,
    rng: ChaCha8Rng,
    /// Owner thread paused between its two accesses: (thread, var).
    owner_paused: Option<(ThreadId, ObjId)>,
    /// Interloper held before its middle access.
    interloper_paused: Option<ThreadId>,
    /// Threads currently inside an atomic block matching the candidate,
    /// with the var of their first access if seen.
    in_block: HashMap<ThreadId, Option<ObjId>>,
    witness: Arc<Mutex<Option<AtomWitness>>>,
    stats: StrategyStats,
    pause_budget: u64,
    paused_at: u64,
    /// Threads already released from a pause (by thrashing or the
    /// monitor): they run through without being re-caught, like the
    /// deadlock fuzzer's exemption.
    released: std::collections::HashSet<ThreadId>,
}

impl AtomStrategy {
    /// Creates the strategy and a handle that will hold the witness.
    pub fn new(candidate: AtomCandidate, seed: u64) -> (Self, Arc<Mutex<Option<AtomWitness>>>) {
        let witness = Arc::new(Mutex::new(None));
        (
            AtomStrategy {
                candidate,
                rng: ChaCha8Rng::seed_from_u64(seed),
                owner_paused: None,
                interloper_paused: None,
                in_block: HashMap::new(),
                witness: Arc::clone(&witness),
                stats: StrategyStats::default(),
                pause_budget: 5_000,
                paused_at: 0,
                released: std::collections::HashSet::new(),
            },
            witness,
        )
    }
}

impl Strategy for AtomStrategy {
    fn pick(&mut self, view: &StateView<'_>, enabled: &[ThreadId]) -> Directive {
        self.stats.picks += 1;
        // Monitor: release stale pauses.
        if self.stats.picks.saturating_sub(self.paused_at) > self.pause_budget {
            if let Some((t, _)) = self.owner_paused.take() {
                self.released.insert(t);
            }
            if let Some(t) = self.interloper_paused.take() {
                self.released.insert(t);
            }
        }
        loop {
            // Goal state: owner paused between its accesses and
            // interloper held at the middle access → release the
            // interloper; its access lands inside the block.
            if self.owner_paused.is_some() {
                self.interloper_paused = None;
            }
            let is_paused = |t: &ThreadId| {
                self.owner_paused.map(|(p, _)| p == *t).unwrap_or(false)
                    || self.interloper_paused == Some(*t)
            };
            let candidates: Vec<ThreadId> =
                enabled.iter().copied().filter(|t| !is_paused(t)).collect();
            if candidates.is_empty() {
                // Everyone runnable is paused: thrash-release one; it
                // runs *through* the pause point and is not re-caught.
                let mut paused: Vec<ThreadId> = enabled.iter().copied().filter(is_paused).collect();
                paused.sort();
                if paused.is_empty() {
                    return Directive::Run(enabled[0]);
                }
                let victim = paused[self.rng.gen_range(0..paused.len())];
                if self.owner_paused.map(|(p, _)| p == victim).unwrap_or(false) {
                    self.owner_paused = None;
                }
                if self.interloper_paused == Some(victim) {
                    self.interloper_paused = None;
                }
                self.released.insert(victim);
                self.stats.thrashes += 1;
                continue;
            }
            let t_id = candidates[self.rng.gen_range(0..candidates.len())];
            let t = view.thread(t_id);
            if !self.released.contains(&t_id) {
                // The owner, somewhere between its two accesses, at a
                // *lock-free* schedule point: pause it there. (Pausing
                // while it holds a lock would starve an interloper that
                // needs the same lock for the middle access — the §4
                // thrashing pattern.)
                if self.owner_paused.is_none()
                    && t.lock_stack.is_empty()
                    && self.in_block.get(&t_id).copied().flatten().is_some()
                {
                    let var = self.in_block[&t_id].expect("checked some");
                    self.owner_paused = Some((t_id, var));
                    self.paused_at = self.stats.picks;
                    self.stats.pauses += 1;
                    continue;
                }
                // A lock-free thread about to perform the *middle*
                // access while the owner is not yet in position: hold it
                // back. (If it already holds locks, holding it would
                // starve the owner instead — let it run.)
                if let Some(PendingOp::Access { site, write, .. }) = t.pending {
                    if self.owner_paused.is_none()
                        && self.interloper_paused.is_none()
                        && t.lock_stack.is_empty()
                        && *site == self.candidate.middle.0
                        && *write == self.candidate.middle.1
                    {
                        self.interloper_paused = Some(t_id);
                        self.paused_at = self.stats.picks;
                        self.stats.pauses += 1;
                        continue;
                    }
                }
            }
            return Directive::Run(t_id);
        }
    }

    fn on_event(&mut self, event: &Event, _view: &StateView<'_>) {
        match &event.kind {
            EventKind::AtomicBegin { site } if site == &self.candidate.block => {
                self.in_block.insert(event.thread, None);
            }
            EventKind::AtomicEnd => {
                self.in_block.remove(&event.thread);
                if let Some((p, _)) = self.owner_paused {
                    if p == event.thread {
                        self.owner_paused = None;
                    }
                }
            }
            EventKind::Access {
                var, site, write, ..
            } => {
                self.released.remove(&event.thread);
                // Track the block's first access.
                if let Some(slot) = self.in_block.get_mut(&event.thread) {
                    if slot.is_none()
                        && site == &self.candidate.first.0
                        && write == &self.candidate.first.1
                    {
                        *slot = Some(*var);
                    }
                }
                // Interloper executed the middle access while the owner
                // is paused on the same variable → violation created.
                if let Some((owner, pvar)) = self.owner_paused {
                    if event.thread != owner
                        && var == &pvar
                        && site == &self.candidate.middle.0
                        && write == &self.candidate.middle.1
                    {
                        *self.witness.lock() = Some(AtomWitness {
                            var: *var,
                            owner,
                            interloper: event.thread,
                            middle_site: *site,
                        });
                        // Let the run continue (the owner resumes and
                        // completes the now-broken block).
                        self.owner_paused = None;
                    }
                }
            }
            _ => {}
        }
    }

    fn finish(&mut self) -> StrategyStats {
        self.stats.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_events::site;
    use df_runtime::{RunConfig, TCtx, VirtualRuntime};

    use crate::simple::SimpleRandomChecker;

    /// The canonical atomicity bug: `if (balance >= x) balance -= x`
    /// inside an intended-atomic block, with every *individual* access
    /// guarded by the lock but the lock released between them.
    fn banking_program(ctx: &TCtx) {
        let balance = ctx.new_var(site!("atom balance"));
        let lock = ctx.new_lock(site!("atom lock"));
        let withdrawer = ctx.spawn(site!("atom s1"), "withdraw", move |ctx| {
            ctx.atomic(site!("withdraw block"), || {
                let g = ctx.lock(&lock, site!("withdraw check lock"));
                ctx.read(&balance, site!("withdraw check read"));
                drop(g);
                ctx.work(1); // compute fees, log, …
                let g = ctx.lock(&lock, site!("withdraw debit lock"));
                ctx.write(&balance, site!("withdraw debit write"));
                drop(g);
            });
        });
        let depositor = ctx.spawn(site!("atom s2"), "deposit", move |ctx| {
            ctx.work(2);
            let g = ctx.lock(&lock, site!("deposit lock"));
            ctx.write(&balance, site!("deposit write"));
            drop(g);
        });
        ctx.join(&withdrawer, site!());
        ctx.join(&depositor, site!());
    }

    fn phase1_candidates() -> Vec<AtomCandidate> {
        let r = VirtualRuntime::new(RunConfig::default())
            .run(Box::new(SimpleRandomChecker::with_seed(5)), banking_program);
        assert!(r.outcome.is_completed());
        predict_atomicity_violations(&r.trace)
    }

    #[test]
    fn unserializable_triples_match_avio() {
        // (first, middle, last)
        assert!(unserializable(false, true, false)); // R-W-R
        assert!(unserializable(true, true, false)); // W-W-R
        assert!(unserializable(false, true, true)); // R-W-W
        assert!(unserializable(true, false, true)); // W-R-W
        assert!(!unserializable(false, false, false)); // all reads
        assert!(!unserializable(false, false, true)); // R-R-W serializes
        assert!(!unserializable(true, true, true)); // W-W-W serializes
        assert!(!unserializable(true, false, false)); // W-R-R serializes
    }

    #[test]
    fn predictor_finds_the_check_then_act_pattern() {
        let candidates = phase1_candidates();
        assert_eq!(candidates.len(), 1, "{candidates:?}");
        let c = &candidates[0];
        assert!(c.to_string().contains("withdraw block"), "{c}");
        assert!(!c.first.1 && c.middle.1 && c.last.1, "R-W-W: {c}");
    }

    #[test]
    fn active_scheduler_creates_the_violation() {
        // Both the owner's accesses and the interloper's are guarded by
        // the same lock, so the scheduler can only pause the owner at a
        // lock-free point between them; a run misses when the interloper
        // completes before the owner's first access. Like the original
        // AtomFuzzer, success is high-probability rather than certain —
        // but far above the plain-random baseline.
        let candidate = phase1_candidates().remove(0);
        let mut confirmed = 0;
        let trials = 20;
        for seed in 0..trials {
            let (strategy, witness) = AtomStrategy::new(candidate.clone(), seed);
            let r =
                VirtualRuntime::new(RunConfig::default()).run(Box::new(strategy), banking_program);
            assert!(r.outcome.is_completed(), "{:?}", r.outcome);
            let got = witness.lock().take();
            if let Some(w) = got {
                assert_ne!(w.owner, w.interloper);
                confirmed += 1;
            }
        }
        assert!(
            confirmed >= trials / 2,
            "the biased scheduler creates the violation in most runs: {confirmed}/{trials}"
        );
    }

    #[test]
    fn unguarded_middle_access_is_confirmed_deterministically() {
        // When the interloper's access is lock-free, the scheduler can
        // hold *it* too, and the orchestration is certain.
        let program = |ctx: &TCtx| {
            let v = ctx.new_var(site!("ug var"));
            let t1 = ctx.spawn(site!("ug s1"), "owner", move |ctx| {
                ctx.atomic(site!("ug block"), || {
                    ctx.read(&v, site!("ug first read"));
                    ctx.work(1);
                    ctx.read(&v, site!("ug second read"));
                });
            });
            let t2 = ctx.spawn(site!("ug s2"), "writer", move |ctx| {
                ctx.work(3);
                ctx.write(&v, site!("ug interloper write"));
            });
            ctx.join(&t1, site!());
            ctx.join(&t2, site!());
        };
        let r = VirtualRuntime::new(RunConfig::default())
            .run(Box::new(SimpleRandomChecker::with_seed(4)), program);
        let candidates = predict_atomicity_violations(&r.trace);
        let rwr = candidates
            .iter()
            .find(|c| !c.first.1 && c.middle.1 && !c.last.1)
            .expect("R-W-R candidate")
            .clone();
        for seed in 0..10 {
            let (strategy, witness) = AtomStrategy::new(rwr.clone(), seed);
            let out = VirtualRuntime::new(RunConfig::default()).run(Box::new(strategy), program);
            assert!(out.outcome.is_completed(), "{:?}", out.outcome);
            let got = witness.lock().take();
            assert!(got.is_some(), "seed {seed} must create the R-W-R violation");
        }
    }

    #[test]
    fn serializable_program_yields_no_candidates() {
        // Same structure but the whole block holds the lock: the
        // interloper cannot conflict (common lock) — but note the lockset
        // is not part of this predictor; serializability comes from the
        // access pattern. Here the deposit is a *read*, making every
        // triple (R-R-R / W-R-* patterns) serializable.
        let program = |ctx: &TCtx| {
            let balance = ctx.new_var(site!("ser balance"));
            let t1 = ctx.spawn(site!("ser s1"), "t1", move |ctx| {
                ctx.atomic(site!("ser block"), || {
                    ctx.read(&balance, site!("ser read1"));
                    ctx.work(1);
                    ctx.read(&balance, site!("ser read2"));
                });
            });
            let t2 = ctx.spawn(site!("ser s2"), "t2", move |ctx| {
                ctx.read(&balance, site!("ser outside read"));
            });
            ctx.join(&t1, site!());
            ctx.join(&t2, site!());
        };
        let r = VirtualRuntime::new(RunConfig::default())
            .run(Box::new(SimpleRandomChecker::with_seed(5)), program);
        assert!(predict_atomicity_violations(&r.trace).is_empty());
    }
}
