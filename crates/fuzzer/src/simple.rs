//! Algorithm 2: `simpleRandomChecker`.

use df_events::ThreadId;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use df_runtime::{Directive, StateView, Strategy, StrategyStats};

/// The paper's Algorithm 2: a purely random scheduler. At every state it
/// executes one uniformly random enabled thread; if the system stalls with
/// alive threads, the runtime reports it (the paper prints "System
/// Stall!").
///
/// Used for Phase I trace collection (it explores interleavings without
/// bias) and as the baseline that almost never creates rare deadlocks
/// (Table 1: 100 uninstrumented/random runs produced none).
///
/// # Example
///
/// ```
/// use df_fuzzer::SimpleRandomChecker;
/// let s = SimpleRandomChecker::with_seed(42);
/// let _ = s; // install into VirtualRuntime::run
/// ```
#[derive(Debug)]
pub struct SimpleRandomChecker {
    rng: ChaCha8Rng,
    picks: u64,
}

impl SimpleRandomChecker {
    /// Creates a checker with the given RNG seed (runs with the same seed
    /// and program are deterministic).
    pub fn with_seed(seed: u64) -> Self {
        SimpleRandomChecker {
            rng: ChaCha8Rng::seed_from_u64(seed),
            picks: 0,
        }
    }
}

impl Strategy for SimpleRandomChecker {
    fn pick(&mut self, _view: &StateView<'_>, enabled: &[ThreadId]) -> Directive {
        self.picks += 1;
        let i = self.rng.gen_range(0..enabled.len());
        Directive::Run(enabled[i])
    }

    fn finish(&mut self) -> StrategyStats {
        StrategyStats {
            picks: self.picks,
            ..StrategyStats::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_events::site;
    use df_runtime::{RunConfig, VirtualRuntime};

    #[test]
    fn same_seed_same_schedule() {
        let run = |seed| {
            VirtualRuntime::new(RunConfig::default()).run(
                Box::new(SimpleRandomChecker::with_seed(seed)),
                |ctx| {
                    let l = ctx.new_lock(site!());
                    let mut children = Vec::new();
                    for i in 0..3 {
                        children.push(ctx.spawn(site!(), &format!("w{i}"), move |ctx| {
                            for _ in 0..3 {
                                let _g = ctx.lock(&l, site!());
                                ctx.yield_now();
                            }
                        }));
                    }
                    for c in &children {
                        ctx.join(c, site!());
                    }
                },
            )
        };
        let a = run(7);
        let b = run(7);
        assert!(a.outcome.is_completed());
        assert_eq!(a.trace.events(), b.trace.events());
        let c = run(8);
        // Different seed very likely produces a different interleaving.
        assert!(
            a.trace.events() != c.trace.events() || a.steps == c.steps,
            "seed change should not break the run"
        );
    }

    #[test]
    fn stats_count_picks() {
        let r = VirtualRuntime::new(RunConfig::default())
            .run(Box::new(SimpleRandomChecker::with_seed(1)), |ctx| {
                ctx.work(5)
            });
        assert!(r.outcome.is_completed());
        assert!(r.stats.picks >= 5);
        assert_eq!(r.stats.thrashes, 0);
    }
}
