//! Entry point: running a program under a strategy.

use std::sync::Arc;
use std::time::Instant;

use df_events::{Label, ObjKind, ThreadId, Trace};

use crate::config::RunConfig;
use crate::controller::Controller;
use crate::ctx::TCtx;
use crate::result::{Outcome, RunResult};
use crate::state::ThreadState;
use crate::strategy::Strategy;

/// The virtual-thread runtime.
///
/// A `VirtualRuntime` is a reusable factory: every [`VirtualRuntime::run`]
/// call executes the given program from scratch under a fresh controller
/// with the given strategy.
///
/// # Example
///
/// ```
/// use df_runtime::{RunConfig, VirtualRuntime, strategy::RoundRobinStrategy};
/// use df_events::site;
///
/// let rt = VirtualRuntime::new(RunConfig::default());
/// let r = rt.run(Box::new(RoundRobinStrategy::new()), |ctx| {
///     let child = ctx.spawn(site!(), "worker", |ctx| ctx.work(3));
///     ctx.join(&child, site!());
/// });
/// assert!(r.outcome.is_completed());
/// ```
#[derive(Clone, Debug)]
pub struct VirtualRuntime {
    config: RunConfig,
}

impl VirtualRuntime {
    /// Creates a runtime with the given configuration.
    pub fn new(config: RunConfig) -> Self {
        VirtualRuntime { config }
    }

    /// The configuration.
    pub fn config(&self) -> &RunConfig {
        &self.config
    }

    /// Executes `main` as the program's main thread under `strategy` and
    /// returns the run's result once every thread finished or the run was
    /// stopped (deadlock, stall, limits).
    pub fn run<F>(&self, strategy: Box<dyn Strategy>, main: F) -> RunResult
    where
        F: FnOnce(&TCtx) + Send + 'static,
    {
        crate::controller::install_quiet_abort_hook();
        let ctl = Controller::new(self.config.clone(), strategy);
        let main_id = ThreadId::new(0);
        {
            let mut inner = ctl.inner.lock();
            let main_obj = inner.g.trace.objects_mut().create_named(
                ObjKind::Thread,
                Label::new("<main>"),
                None,
                Vec::new(),
                Some("main".to_string()),
            );
            inner
                .g
                .threads
                .push(ThreadState::new(main_id, "main".to_string(), main_obj));
            inner.g.trace.bind_thread(main_id, main_obj);
            self.config.sink.thread_bound(main_id, main_obj);
            // The main thread's start schedule point, accounted here so
            // step numbering never depends on OS thread-startup timing.
            inner.g.steps += 1;
            inner.g.progress += 1;
            let c2 = Arc::clone(&ctl);
            let handle = std::thread::Builder::new()
                .name("vthread-main".to_string())
                .spawn(move || c2.thread_main(main_id, main))
                .expect("failed to spawn main OS thread");
            inner.handles.push(handle);
        }

        // Supervise: wait for completion, watching for hangs (program code
        // spinning without schedule points) and the hard wall-clock
        // deadline (which fires even while progress is steady).
        let started = Instant::now();
        let mut last_progress = 0u64;
        let mut last_change = Instant::now();
        let hung = loop {
            let mut inner = ctl.inner.lock();
            if inner.done {
                break false;
            }
            let deadline_hit = self
                .config
                .deadline
                .map(|d| started.elapsed() >= d)
                .unwrap_or(false);
            if inner.g.progress != last_progress && !deadline_hit {
                last_progress = inner.g.progress;
                last_change = Instant::now();
            } else if deadline_hit || last_change.elapsed() >= self.config.hang_timeout {
                inner.g.aborting = true;
                inner.done = true;
                if inner.g.final_outcome.is_none() {
                    inner.g.final_outcome = Some(if deadline_hit {
                        Outcome::DeadlineExceeded
                    } else {
                        Outcome::Hang
                    });
                }
                ctl.cond.notify_all();
                break true;
            }
            let mut wait = self
                .config
                .hang_timeout
                .checked_div(4)
                .unwrap_or(self.config.hang_timeout)
                .max(std::time::Duration::from_millis(10));
            if let Some(d) = self.config.deadline {
                let remaining = d.saturating_sub(started.elapsed());
                wait = wait.min(remaining.max(std::time::Duration::from_millis(1)));
            }
            ctl.cond.wait_for(&mut inner, wait);
        };

        // Collect results. On a hang we cannot join threads stuck in user
        // code; detach them instead.
        let (outcome, trace, steps, mut strategy, handles, faults) = {
            let mut inner = ctl.inner.lock();
            let outcome = inner.g.final_outcome.take().unwrap_or(Outcome::Completed);
            let trace = std::mem::replace(&mut inner.g.trace, Trace::new());
            let steps = inner.g.steps;
            let strategy = inner.strategy.take().expect("strategy present at end");
            let handles = std::mem::take(&mut inner.handles);
            let faults = inner.g.fault_log();
            (outcome, trace, steps, strategy, handles, faults)
        };
        if !hung {
            for h in handles {
                let _ = h.join();
            }
        }
        let stats = strategy.finish();
        // Roll the run's scheduling statistics and fault log into the
        // shared observability registry (acquires are counted live by the
        // controller).
        let counters = self.config.obs.counters();
        counters.add_threads_paused(stats.pauses);
        counters.add_thrash_events(stats.thrashes);
        counters.add_yields_taken(stats.yields);
        counters.add_faults_injected(u64::from(faults.total()));
        // High-water mark of the in-memory event vector: zero for fully
        // streamed runs, which is the assertion behind `record --stream`.
        counters.record_peak_trace_bytes(trace.approx_event_bytes());
        // Let streaming observers seal their output with the final object
        // table and thread bindings.
        self.config.sink.finish(&trace);
        RunResult {
            outcome,
            trace,
            steps,
            stats,
            faults,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{FifoStrategy, RoundRobinStrategy};
    use df_events::{site, EventKind};
    use std::time::Duration;

    fn cfg() -> RunConfig {
        RunConfig::default().with_hang_timeout(Duration::from_secs(5))
    }

    #[test]
    fn empty_program_completes() {
        let r = VirtualRuntime::new(cfg()).run(Box::new(FifoStrategy::new()), |_ctx| {});
        assert!(r.outcome.is_completed());
        assert!(r.steps >= 1);
    }

    #[test]
    fn trace_records_lock_events() {
        let r = VirtualRuntime::new(cfg()).run(Box::new(FifoStrategy::new()), |ctx| {
            let l = ctx.new_lock(site!("alloc"));
            ctx.acquire(&l, site!("acq"));
            ctx.release(&l, site!("rel"));
        });
        assert!(r.outcome.is_completed());
        assert_eq!(r.trace.acquire_count(), 1);
        let kinds: Vec<&EventKind> = r.trace.events().iter().map(|e| &e.kind).collect();
        assert!(kinds.iter().any(|k| matches!(k, EventKind::New { .. })));
        assert!(kinds.iter().any(|k| matches!(k, EventKind::Release { .. })));
    }

    #[test]
    fn reentrant_lock_records_single_acquire() {
        let r = VirtualRuntime::new(cfg()).run(Box::new(FifoStrategy::new()), |ctx| {
            let l = ctx.new_lock(site!());
            ctx.acquire(&l, site!());
            ctx.acquire(&l, site!());
            ctx.release(&l, site!());
            ctx.release(&l, site!());
        });
        assert!(r.outcome.is_completed());
        assert_eq!(r.trace.acquire_count(), 1);
        let reacquires = r
            .trace
            .events()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Reacquire { .. }))
            .count();
        assert_eq!(reacquires, 1);
    }

    #[test]
    fn guard_releases_on_drop() {
        let r = VirtualRuntime::new(cfg()).run(Box::new(FifoStrategy::new()), |ctx| {
            let l = ctx.new_lock(site!());
            {
                let _g = ctx.lock(&l, site!());
            }
            // Lock must be free again: re-acquire explicitly.
            ctx.acquire(&l, site!());
            ctx.release(&l, site!());
        });
        assert!(r.outcome.is_completed());
        assert_eq!(r.trace.acquire_count(), 2);
    }

    #[test]
    fn spawn_and_join_complete() {
        let r = VirtualRuntime::new(cfg()).run(Box::new(RoundRobinStrategy::new()), |ctx| {
            let l = ctx.new_lock(site!());
            let child = ctx.spawn(site!(), "child", move |ctx| {
                let _g = ctx.lock(&l, site!());
                ctx.work(2);
            });
            ctx.work(2);
            ctx.join(&child, site!());
        });
        assert!(r.outcome.is_completed());
        // main + child started and exited
        let starts = r
            .trace
            .events()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::ThreadStart))
            .count();
        assert_eq!(starts, 2);
    }

    #[test]
    fn contended_lock_serializes() {
        // Two threads increment a shared counter under the same lock; the
        // result must be exact.
        let r = VirtualRuntime::new(cfg()).run(Box::new(RoundRobinStrategy::new()), |ctx| {
            let l = ctx.new_lock(site!());
            let counter = crate::ctx::Shared::new(0u32);
            let mut children = Vec::new();
            for i in 0..4 {
                let c = counter.clone();
                children.push(ctx.spawn(site!(), &format!("w{i}"), move |ctx| {
                    for _ in 0..5 {
                        let g = ctx.lock(&l, site!("w acquire"));
                        c.with(|v| *v += 1);
                        drop(g);
                        ctx.yield_now();
                    }
                }));
            }
            for ch in &children {
                ctx.join(ch, site!());
            }
            assert_eq!(counter.get(), 20);
        });
        assert!(r.outcome.is_completed(), "outcome: {:?}", r.outcome);
    }

    #[test]
    fn classic_deadlock_detected_by_waitfor_graph() {
        // Opposite lock orders forced by a round-robin schedule.
        let r = VirtualRuntime::new(cfg()).run(Box::new(RoundRobinStrategy::new()), |ctx| {
            let l1 = ctx.new_lock(site!("lock l1"));
            let l2 = ctx.new_lock(site!("lock l2"));
            let t1 = ctx.spawn(site!(), "t1", move |ctx| {
                ctx.acquire(&l1, site!("t1 acq l1"));
                ctx.yield_now();
                ctx.acquire(&l2, site!("t1 acq l2"));
                ctx.release(&l2, site!());
                ctx.release(&l1, site!());
            });
            let t2 = ctx.spawn(site!(), "t2", move |ctx| {
                ctx.acquire(&l2, site!("t2 acq l2"));
                ctx.yield_now();
                ctx.acquire(&l1, site!("t2 acq l1"));
                ctx.release(&l1, site!());
                ctx.release(&l2, site!());
            });
            ctx.join(&t1, site!());
            ctx.join(&t2, site!());
        });
        let w = r
            .outcome
            .deadlock()
            .expect("round robin forces the deadlock");
        assert_eq!(w.len(), 2);
        assert_eq!(w.detected_by, crate::result::Detector::WaitForGraph);
    }

    #[test]
    fn program_panic_is_reported() {
        let r = VirtualRuntime::new(cfg()).run(Box::new(FifoStrategy::new()), |ctx| {
            ctx.yield_now();
            panic!("model bug");
        });
        match r.outcome {
            Outcome::ProgramPanic(ref m) => assert!(m.contains("model bug")),
            ref o => panic!("unexpected outcome {o:?}"),
        }
    }

    #[test]
    fn release_of_unheld_lock_is_program_error() {
        let r = VirtualRuntime::new(cfg()).run(Box::new(FifoStrategy::new()), |ctx| {
            let l = ctx.new_lock(site!());
            ctx.release(&l, site!());
        });
        assert!(matches!(r.outcome, Outcome::ProgramPanic(_)));
    }

    #[test]
    fn step_limit_enforced() {
        let cfg = RunConfig::default()
            .with_max_steps(50)
            .with_hang_timeout(Duration::from_secs(5));
        let r = VirtualRuntime::new(cfg).run(Box::new(FifoStrategy::new()), |ctx| loop {
            ctx.yield_now();
        });
        assert_eq!(r.outcome, Outcome::StepLimit);
    }

    #[test]
    fn deadline_fires_even_while_progress_is_steady() {
        // An endless yield loop keeps the progress counter moving, so the
        // hang watchdog never fires — only the hard deadline bounds it.
        let cfg = RunConfig::default()
            .with_max_steps(u64::MAX)
            .with_hang_timeout(Duration::from_secs(60))
            .with_deadline(Duration::from_millis(150));
        let start = std::time::Instant::now();
        let r = VirtualRuntime::new(cfg).run(Box::new(FifoStrategy::new()), |ctx| loop {
            ctx.yield_now();
        });
        assert_eq!(r.outcome, Outcome::DeadlineExceeded);
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "bounded promptly"
        );
    }

    #[test]
    fn hang_watchdog_fires_on_spin_loop() {
        let cfg = RunConfig::default().with_hang_timeout(Duration::from_millis(200));
        let r = VirtualRuntime::new(cfg).run(Box::new(FifoStrategy::new()), |ctx| {
            ctx.yield_now();
            #[allow(clippy::empty_loop)]
            loop {
                // no schedule points: the watchdog must fire
                std::hint::black_box(0u8);
            }
        });
        assert_eq!(r.outcome, Outcome::Hang);
    }

    #[test]
    fn join_on_unfinished_thread_waits() {
        let r = VirtualRuntime::new(cfg()).run(Box::new(RoundRobinStrategy::new()), |ctx| {
            let child = ctx.spawn(site!(), "slow", |ctx| ctx.work(10));
            ctx.join(&child, site!());
            // join returned → child must have exited; work events precede
        });
        assert!(r.outcome.is_completed());
        let exit_pos = r
            .trace
            .events()
            .iter()
            .position(|e| matches!(e.kind, EventKind::ThreadExit) && e.thread == ThreadId::new(1))
            .expect("child exit");
        let join_pos = r
            .trace
            .events()
            .iter()
            .position(|e| matches!(e.kind, EventKind::Join { .. }))
            .expect("join event");
        assert!(exit_pos < join_pos);
    }

    #[test]
    fn record_trace_off_still_tracks_objects() {
        let cfg = RunConfig::default()
            .with_record_trace(false)
            .with_hang_timeout(Duration::from_secs(5));
        let r = VirtualRuntime::new(cfg).run(Box::new(FifoStrategy::new()), |ctx| {
            let l = ctx.new_lock(site!());
            ctx.acquire(&l, site!());
            ctx.release(&l, site!());
        });
        assert!(r.outcome.is_completed());
        assert!(r.trace.events().is_empty());
        // main thread object + lock object
        assert_eq!(r.trace.objects().len(), 2);
    }

    #[test]
    fn nested_scopes_track_execution_index() {
        let r = VirtualRuntime::new(cfg()).run(Box::new(FifoStrategy::new()), |ctx| {
            for _ in 0..2 {
                ctx.scope(site!("call foo"), || {
                    let _l = ctx.new_lock(site!("alloc in foo"));
                });
            }
        });
        assert!(r.outcome.is_completed());
        // objects: main thread, two locks
        let locks: Vec<_> = r
            .trace
            .objects()
            .iter()
            .filter(|m| m.kind == df_events::ObjKind::Lock)
            .collect();
        assert_eq!(locks.len(), 2);
        // Same allocation site, different execution indices (call counts 1
        // and 2).
        assert_eq!(locks[0].site, locks[1].site);
        assert_ne!(locks[0].index, locks[1].index);
        assert_eq!(locks[0].index.len(), 2); // call frame + alloc frame
        assert_eq!(locks[0].index[0].count, 1);
        assert_eq!(locks[1].index[0].count, 2);
    }

    #[test]
    fn receiver_scopes_set_object_owner() {
        let r = VirtualRuntime::new(cfg()).run(Box::new(FifoStrategy::new()), |ctx| {
            let recv = ctx.new_object(site!("alloc receiver"));
            ctx.scope_on(&recv, site!("call method"), || {
                let _l = ctx.new_lock(site!("alloc lock in method"));
            });
        });
        assert!(r.outcome.is_completed());
        let lock = r
            .trace
            .objects()
            .iter()
            .find(|m| m.kind == df_events::ObjKind::Lock)
            .expect("lock created");
        let owner = lock.owner.expect("lock has owner");
        assert_eq!(r.trace.objects().get(owner).kind, df_events::ObjKind::Plain);
    }

    #[test]
    fn spawned_thread_objects_have_spawn_site() {
        let r = VirtualRuntime::new(cfg()).run(Box::new(RoundRobinStrategy::new()), |ctx| {
            let t = ctx.spawn(site!("spawn worker"), "w", |ctx| ctx.yield_now());
            ctx.join(&t, site!());
        });
        assert!(r.outcome.is_completed());
        let child_obj = r.trace.thread_obj(ThreadId::new(1)).expect("bound");
        let meta = r.trace.objects().get(child_obj);
        assert_eq!(meta.kind, df_events::ObjKind::Thread);
        assert!(meta.site.as_str().contains("spawn worker"));
    }

    #[test]
    fn three_thread_cycle_detected() {
        let r = VirtualRuntime::new(cfg()).run(Box::new(RoundRobinStrategy::new()), |ctx| {
            let locks: Vec<_> = (0..3).map(|_| ctx.new_lock(site!("locks"))).collect();
            let mut children = Vec::new();
            for i in 0..3 {
                let a = locks[i];
                let b = locks[(i + 1) % 3];
                children.push(ctx.spawn(site!(), &format!("t{i}"), move |ctx| {
                    ctx.acquire(&a, site!("first"));
                    ctx.yield_now();
                    ctx.acquire(&b, site!("second"));
                    ctx.release(&b, site!());
                    ctx.release(&a, site!());
                }));
            }
            for c in &children {
                ctx.join(c, site!());
            }
        });
        let w = r.outcome.deadlock().expect("3-cycle deadlock");
        assert_eq!(w.len(), 3);
    }

    #[test]
    fn injected_acquire_panic_is_classified_not_hung() {
        let plan = crate::FaultPlan::new(11).with_panic_on_acquire(1.0);
        let r = VirtualRuntime::new(cfg().with_fault_plan(plan)).run(
            Box::new(FifoStrategy::new()),
            |ctx| {
                let l = ctx.new_lock(site!());
                ctx.acquire(&l, site!("doomed acquire"));
                ctx.release(&l, site!());
            },
        );
        match r.outcome {
            Outcome::ProgramPanic(ref m) => assert!(m.contains("injected fault"), "{m}"),
            ref o => panic!("unexpected outcome {o:?}"),
        }
        assert_eq!(r.faults.panics, 1);
    }

    #[test]
    fn injected_acquire_panic_unwinds_held_guards() {
        // The outer guard must release during the unwind without wedging
        // the controller.
        let plan = crate::FaultPlan::new(11).with_panic_on_acquire(1.0);
        let r = VirtualRuntime::new(cfg().with_fault_plan(plan)).run(
            Box::new(FifoStrategy::new()),
            |ctx| {
                let a = ctx.new_lock(site!("outer"));
                let b = ctx.new_lock(site!("inner"));
                let _g = ctx.lock(&a, site!("outer acquire"));
                ctx.acquire(&b, site!("inner acquire"));
                ctx.release(&b, site!());
            },
        );
        assert!(
            matches!(r.outcome, Outcome::ProgramPanic(_)),
            "{:?}",
            r.outcome
        );
        assert!(r.faults.panics >= 1);
    }

    #[test]
    fn leaked_release_starves_contenders_into_a_stall() {
        let plan = crate::FaultPlan::new(5).with_leak_release(1.0);
        let r = VirtualRuntime::new(cfg().with_fault_plan(plan)).run(
            Box::new(RoundRobinStrategy::new()),
            |ctx| {
                let l = ctx.new_lock(site!());
                let t = ctx.spawn(site!(), "contender", move |ctx| {
                    ctx.acquire(&l, site!("contender acquire"));
                    ctx.release(&l, site!());
                });
                ctx.acquire(&l, site!("main acquire"));
                ctx.release(&l, site!("leaked release"));
                ctx.join(&t, site!());
            },
        );
        // Main leaks the lock, so the contender can never acquire and the
        // join can never complete: a classified stall, not a hang.
        assert!(
            matches!(r.outcome, Outcome::Stall { .. }),
            "outcome: {:?}",
            r.outcome
        );
        assert!(r.faults.leaked_releases >= 1, "{}", r.faults);
    }

    #[test]
    fn spurious_wakeups_do_not_break_guarded_waits() {
        let plan = crate::FaultPlan::new(7).with_spurious_wakeup(0.5);
        let r = VirtualRuntime::new(cfg().with_fault_plan(plan)).run(
            Box::new(RoundRobinStrategy::new()),
            |ctx| {
                let m = ctx.new_lock(site!("monitor"));
                let flag = crate::ctx::Shared::new(false);
                let f2 = flag.clone();
                let waiter = ctx.spawn(site!(), "waiter", move |ctx| {
                    ctx.acquire(&m, site!("waiter lock"));
                    while !f2.get() {
                        ctx.wait(&m, site!("waiter wait"));
                    }
                    ctx.release(&m, site!("waiter unlock"));
                });
                ctx.work(5);
                ctx.acquire(&m, site!("main lock"));
                flag.with(|f| *f = true);
                ctx.notify_all(&m, site!("main notify"));
                ctx.release(&m, site!("main unlock"));
                ctx.join(&waiter, site!());
            },
        );
        // A while-guarded wait absorbs spurious wakeups: the program still
        // completes, and at least one wakeup was injected while the waiter
        // sat in the wait set.
        assert!(r.outcome.is_completed(), "outcome: {:?}", r.outcome);
        assert!(r.faults.spurious_wakeups >= 1, "{}", r.faults);
    }

    #[test]
    fn runaway_spawns_add_threads_but_run_completes() {
        let plan = crate::FaultPlan::new(3)
            .with_runaway_spawn(1.0)
            .with_max_runaway_spawns(2);
        let r = VirtualRuntime::new(cfg().with_fault_plan(plan)).run(
            Box::new(RoundRobinStrategy::new()),
            |ctx| {
                let t = ctx.spawn(site!(), "real child", |ctx| ctx.work(3));
                ctx.join(&t, site!());
            },
        );
        assert!(r.outcome.is_completed(), "outcome: {:?}", r.outcome);
        assert_eq!(r.faults.runaway_spawns, 1, "one program spawn, one fault");
        let starts = r
            .trace
            .events()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::ThreadStart))
            .count();
        // main + real child + injected runaway
        assert_eq!(starts, 3);
    }

    #[test]
    fn chaos_runs_always_terminate_with_a_classified_outcome() {
        // The acceptance gate for the fault harness: under a mix of every
        // fault kind, a deadlock-prone program must still terminate quickly
        // with some classified outcome — never a wall-clock hang.
        for seed in 0..8u64 {
            let plan = crate::FaultPlan::new(seed)
                .with_panic_on_acquire(0.05)
                .with_leak_release(0.1)
                .with_spurious_wakeup(0.2)
                .with_runaway_spawn(0.3)
                .with_max_runaway_spawns(2);
            let cfg = RunConfig::default()
                .with_max_steps(5_000)
                .with_hang_timeout(Duration::from_secs(5))
                .with_fault_plan(plan);
            let r = VirtualRuntime::new(cfg).run(Box::new(RoundRobinStrategy::new()), |ctx| {
                let l1 = ctx.new_lock(site!("l1"));
                let l2 = ctx.new_lock(site!("l2"));
                let t1 = ctx.spawn(site!(), "t1", move |ctx| {
                    ctx.acquire(&l1, site!());
                    ctx.yield_now();
                    ctx.acquire(&l2, site!());
                    ctx.release(&l2, site!());
                    ctx.release(&l1, site!());
                });
                let t2 = ctx.spawn(site!(), "t2", move |ctx| {
                    ctx.acquire(&l2, site!());
                    ctx.yield_now();
                    ctx.acquire(&l1, site!());
                    ctx.release(&l1, site!());
                    ctx.release(&l2, site!());
                });
                ctx.join(&t1, site!());
                ctx.join(&t2, site!());
            });
            assert!(
                !matches!(r.outcome, Outcome::Hang),
                "seed {seed} hung: {:?}",
                r.outcome
            );
        }
    }

    #[test]
    fn obs_counters_track_acquires_and_faults() {
        let obs = df_obs::Obs::with_memory_sink();
        let plan = crate::FaultPlan::new(5).with_leak_release(1.0);
        let r = VirtualRuntime::new(cfg().with_fault_plan(plan).with_obs(obs.clone())).run(
            Box::new(RoundRobinStrategy::new()),
            |ctx| {
                let l = ctx.new_lock(site!());
                ctx.acquire(&l, site!("acq"));
                ctx.release(&l, site!("leaked release"));
            },
        );
        let s = obs.counters().snapshot();
        assert_eq!(s.acquires_observed, 1);
        assert_eq!(s.faults_injected, u64::from(r.faults.total()));
        assert!(s.faults_injected >= 1);
        let trace = obs.trace_contents().unwrap();
        assert!(trace.contains("FaultInjected"), "{trace}");
        assert!(trace.contains("leak_release"), "{trace}");
    }

    #[test]
    fn fault_runs_are_deterministic_per_seed() {
        let run = || {
            let plan = crate::FaultPlan::new(21)
                .with_leak_release(0.3)
                .with_spurious_wakeup(0.3);
            VirtualRuntime::new(cfg().with_fault_plan(plan)).run(
                Box::new(RoundRobinStrategy::new()),
                |ctx| {
                    let l = ctx.new_lock(site!());
                    let t = ctx.spawn(site!(), "w", move |ctx| {
                        for _ in 0..4 {
                            ctx.acquire(&l, site!());
                            ctx.release(&l, site!());
                            ctx.yield_now();
                        }
                    });
                    for _ in 0..4 {
                        ctx.acquire(&l, site!());
                        ctx.release(&l, site!());
                        ctx.yield_now();
                    }
                    ctx.join(&t, site!());
                },
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.steps, b.steps);
        assert_eq!(format!("{:?}", a.outcome), format!("{:?}", b.outcome));
    }

    #[test]
    fn runs_are_reusable_and_deterministic() {
        let rt = VirtualRuntime::new(cfg());
        let run = || {
            rt.run(Box::new(RoundRobinStrategy::new()), |ctx| {
                let l = ctx.new_lock(site!());
                let t = ctx.spawn(site!(), "w", move |ctx| {
                    let _g = ctx.lock(&l, site!());
                });
                let _g = ctx.lock(&l, site!());
                drop(_g);
                ctx.join(&t, site!());
            })
        };
        let a = run();
        let b = run();
        assert!(a.outcome.is_completed());
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.trace.events().len(), b.trace.events().len());
        for (x, y) in a.trace.events().iter().zip(b.trace.events()) {
            assert_eq!(x, y);
        }
    }

    /// A sink that captures the full stream for comparison in tests.
    #[derive(Default)]
    struct CapturingSink {
        events: Vec<df_events::Event>,
        bindings: Vec<(ThreadId, df_events::ObjId)>,
        finished: bool,
    }

    impl df_events::EventSink for CapturingSink {
        fn on_event(&mut self, event: &df_events::Event) {
            self.events.push(event.clone());
        }

        fn on_thread_bound(&mut self, thread: ThreadId, obj: df_events::ObjId) {
            self.bindings.push((thread, obj));
        }

        fn on_finish(&mut self, _trace: &Trace) {
            self.finished = true;
        }
    }

    fn spawning_program(ctx: &TCtx) {
        let l = ctx.new_lock(site!("outer"));
        let m = ctx.new_lock(site!("inner"));
        let (l2, m2) = (l, m);
        let t = ctx.spawn(site!("spawn"), "worker", move |ctx| {
            let _a = ctx.lock(&l2, site!());
            let _b = ctx.lock(&m2, site!());
        });
        {
            let _a = ctx.lock(&l, site!());
            let _b = ctx.lock(&m, site!());
        }
        ctx.join(&t, site!());
    }

    #[test]
    fn sink_observes_the_exact_recorded_stream() {
        let sink = std::sync::Arc::new(std::sync::Mutex::new(CapturingSink::default()));
        let handle = df_events::SinkHandle::single(
            sink.clone() as std::sync::Arc<std::sync::Mutex<dyn df_events::EventSink>>
        );
        let obs = df_obs::Obs::new();
        let r = VirtualRuntime::new(cfg().with_event_sink(handle).with_obs(obs.clone()))
            .run(Box::new(FifoStrategy::new()), spawning_program);
        assert!(r.outcome.is_completed());
        let s = sink.lock().unwrap();
        assert!(s.finished);
        assert_eq!(s.events.as_slice(), r.trace.events());
        // Every traced thread binding was announced to the sink.
        for (thread, obj) in r.trace.thread_objs() {
            assert!(s.bindings.contains(&(thread, obj)), "missing {thread:?}");
        }
        let snap = obs.counters().snapshot();
        assert_eq!(snap.events_streamed, r.trace.events().len() as u64);
        assert_eq!(snap.peak_trace_bytes, r.trace.approx_event_bytes());
    }

    #[test]
    fn virtual_runtime_streams_into_a_ring_buffered_binary_spill() {
        use std::io::Write;

        #[derive(Clone, Default)]
        struct SharedBuf(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);
        impl Write for SharedBuf {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let buf = SharedBuf::default();
        let config =
            df_events::SpillConfig::with_format(df_events::TraceFormat::Binary).with_ring(64);
        let spill = std::sync::Arc::new(std::sync::Mutex::new(
            df_events::AnySpillSink::new(buf.clone(), &config).expect("start spill"),
        ));
        let handle = df_events::SinkHandle::single(
            spill.clone() as std::sync::Arc<std::sync::Mutex<dyn df_events::EventSink>>
        );
        let r = VirtualRuntime::new(cfg().with_event_sink(handle))
            .run(Box::new(FifoStrategy::new()), spawning_program);
        assert!(r.outcome.is_completed());
        let (events, _bytes) = spill.lock().unwrap().close().expect("sealed spill");
        assert_eq!(events, r.trace.events().len() as u64);

        // The v2 artifact round-trips the exact stream the runtime saw.
        let bytes = buf.0.lock().unwrap().clone();
        assert!(bytes.starts_with(&df_events::TRACE_BINARY_MAGIC));
        let decoded = df_events::read_trace_bytes(&bytes).expect("decodes");
        assert_eq!(decoded.events(), r.trace.events());
        let live: Vec<_> = r.trace.thread_objs().collect();
        let spilled: Vec<_> = decoded.thread_objs().collect();
        assert_eq!(live, spilled);
    }

    #[test]
    fn streaming_without_recording_sees_the_same_events_at_zero_peak() {
        let recorded =
            VirtualRuntime::new(cfg()).run(Box::new(FifoStrategy::new()), spawning_program);
        let sink = std::sync::Arc::new(std::sync::Mutex::new(CapturingSink::default()));
        let handle = df_events::SinkHandle::single(
            sink.clone() as std::sync::Arc<std::sync::Mutex<dyn df_events::EventSink>>
        );
        let obs = df_obs::Obs::new();
        let r = VirtualRuntime::new(
            cfg()
                .with_record_trace(false)
                .with_event_sink(handle)
                .with_obs(obs.clone()),
        )
        .run(Box::new(FifoStrategy::new()), spawning_program);
        assert!(r.outcome.is_completed());
        assert!(r.trace.events().is_empty(), "no event vector materialized");
        let s = sink.lock().unwrap();
        assert_eq!(s.events.as_slice(), recorded.trace.events());
        let snap = obs.counters().snapshot();
        assert_eq!(snap.peak_trace_bytes, 0);
        assert_eq!(snap.events_streamed, recorded.trace.events().len() as u64);
    }
}
