//! The thread-side API: handles through which program code performs
//! instrumented operations.

use std::panic;
use std::sync::Arc;

use df_events::{AcquireMode, Label, ObjId, ObjKind, ThreadId};
use parking_lot::Mutex;

use crate::controller::{AbortToken, Aborted, Controller, OpOutcome};
use crate::pending::PendingOp;

/// A handle to a virtual lock.
///
/// Locks are re-entrant, like Java monitors: the owning thread may acquire
/// the same lock again without blocking, and only the outermost
/// acquire/release pair is recorded (paper §2.1).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct LockRef {
    id: ObjId,
}

impl LockRef {
    /// The lock's dynamic object id.
    pub fn id(&self) -> ObjId {
        self.id
    }
}

/// A handle to a plain (non-lock, non-thread) virtual object, used as a
/// method receiver for k-object-sensitive abstraction chains.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ObjRef {
    id: ObjId,
}

impl ObjRef {
    /// The object's dynamic id.
    pub fn id(&self) -> ObjId {
        self.id
    }
}

/// A handle to a shared variable — the unit the race checker tracks.
///
/// Like [`LockRef`], a `VarRef` is a pure synchronization-structure
/// handle: store the actual data in a [`Shared`] next to it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct VarRef {
    id: ObjId,
}

impl VarRef {
    /// The variable's dynamic object id.
    pub fn id(&self) -> ObjId {
        self.id
    }
}

/// A handle to a virtual condition variable.
///
/// A condvar has its own wait set, distinct from any lock's monitor wait
/// set; [`TCtx::cond_wait`] pairs it with the lock it releases for the
/// duration of the wait, like `std::sync::Condvar`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct CondvarRef {
    id: ObjId,
}

impl CondvarRef {
    /// The condvar's dynamic object id.
    pub fn id(&self) -> ObjId {
        self.id
    }
}

/// A handle to a spawned virtual thread, usable with [`TCtx::join`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ThreadRef {
    id: ThreadId,
    obj: ObjId,
}

impl ThreadRef {
    /// The thread's id.
    pub fn id(&self) -> ThreadId {
        self.id
    }

    /// The object representing the thread.
    pub fn obj(&self) -> ObjId {
        self.obj
    }
}

/// Per-thread context handle passed to every program closure.
///
/// All methods are *schedule points*: the calling virtual thread announces
/// the operation, blocks until the scheduling strategy picks it, then
/// performs the operation.
///
/// # Panics
///
/// Every method unwinds the thread (with an internal abort token, not a
/// user-visible panic message) if the run is shutting down — e.g. a
/// deadlock was found while this thread was blocked. Program closures do
/// not need to handle this; the runtime catches it.
pub struct TCtx {
    ctl: Arc<Controller>,
    me: ThreadId,
}

fn unwrap_or_abort<T>(r: Result<T, Aborted>) -> T {
    match r {
        Ok(v) => v,
        Err(Aborted) => panic::panic_any(AbortToken),
    }
}

impl TCtx {
    pub(crate) fn new(ctl: Arc<Controller>, me: ThreadId) -> Self {
        TCtx { ctl, me }
    }

    /// This thread's id.
    pub fn id(&self) -> ThreadId {
        self.me
    }

    /// The run's program seed ([`crate::RunConfig::program_seed`]).
    ///
    /// Program models that vary behavior run to run (arrival order, input
    /// shuffles, …) must branch on this value instead of ambient state
    /// (statics, wall clock, OS scheduling), so a (program, seed) pair
    /// always replays the same execution tree. Not a schedule point.
    pub fn run_seed(&self) -> u64 {
        self.ctl.config.program_seed
    }

    /// Creates a new lock object at `site`.
    ///
    /// The allocation records full abstraction metadata (owner object and
    /// execution index), so Phase II can re-identify "the same" lock in a
    /// different execution.
    pub fn new_lock(&self, site: Label) -> LockRef {
        match unwrap_or_abort(self.ctl.op(
            self.me,
            PendingOp::New {
                site,
                kind: ObjKind::Lock,
            },
        )) {
            OpOutcome::Created(id) => LockRef { id },
            _ => unreachable!("New returns Created"),
        }
    }

    /// Creates a new plain object at `site` (for receiver chains).
    pub fn new_object(&self, site: Label) -> ObjRef {
        match unwrap_or_abort(self.ctl.op(
            self.me,
            PendingOp::New {
                site,
                kind: ObjKind::Plain,
            },
        )) {
            OpOutcome::Created(id) => ObjRef { id },
            _ => unreachable!("New returns Created"),
        }
    }

    /// Creates a new shared variable at `site` (for the race checker).
    pub fn new_var(&self, site: Label) -> VarRef {
        match unwrap_or_abort(self.ctl.op(
            self.me,
            PendingOp::New {
                site,
                kind: ObjKind::Var,
            },
        )) {
            OpOutcome::Created(id) => VarRef { id },
            _ => unreachable!("New returns Created"),
        }
    }

    /// Records a read of `var` at `site` (a schedule point).
    pub fn read(&self, var: &VarRef, site: Label) {
        unwrap_or_abort(self.ctl.op(
            self.me,
            PendingOp::Access {
                var: var.id,
                site,
                write: false,
            },
        ));
    }

    /// Records a write of `var` at `site` (a schedule point).
    pub fn write(&self, var: &VarRef, site: Label) {
        unwrap_or_abort(self.ctl.op(
            self.me,
            PendingOp::Access {
                var: var.id,
                site,
                write: true,
            },
        ));
    }

    /// Marks the start of a block the programmer intends to execute
    /// atomically (for the atomicity-violation checker). Purely an
    /// annotation: it does not synchronize anything.
    pub fn atomic_begin(&self, site: Label) {
        unwrap_or_abort(self.ctl.op(self.me, PendingOp::AtomicBegin { site }));
    }

    /// Marks the end of the current intended-atomic block.
    pub fn atomic_end(&self) {
        unwrap_or_abort(self.ctl.op(self.me, PendingOp::AtomicEnd));
    }

    /// Runs `f` inside an intended-atomic block annotation.
    pub fn atomic<R>(&self, site: Label, f: impl FnOnce() -> R) -> R {
        self.atomic_begin(site);
        let r = f();
        self.atomic_end();
        r
    }

    /// Acquires `lock` exclusively at `site`, blocking (in virtual time)
    /// while another thread holds it in any mode. Re-entrant.
    pub fn acquire(&self, lock: &LockRef, site: Label) {
        unwrap_or_abort(self.ctl.op(
            self.me,
            PendingOp::Acquire {
                lock: lock.id,
                site,
                mode: AcquireMode::Exclusive,
            },
        ));
    }

    /// Acquires `lock` in shared (read) mode at `site`: readers coexist,
    /// but the acquisition blocks while a writer holds the lock.
    /// Re-entrant reads are collapsed like re-entrant exclusive holds.
    pub fn acquire_shared(&self, lock: &LockRef, site: Label) {
        unwrap_or_abort(self.ctl.op(
            self.me,
            PendingOp::Acquire {
                lock: lock.id,
                site,
                mode: AcquireMode::Shared,
            },
        ));
    }

    /// Releases `lock` at `site`.
    ///
    /// # Panics
    ///
    /// Panics (as a program error) if this thread does not hold `lock`.
    pub fn release(&self, lock: &LockRef, site: Label) {
        unwrap_or_abort(self.ctl.op(
            self.me,
            PendingOp::Release {
                lock: lock.id,
                site,
            },
        ));
    }

    /// Acquires `lock` and returns an RAII guard that releases it on drop
    /// — the ergonomic equivalent of a `synchronized` block.
    ///
    /// # Example
    ///
    /// ```
    /// use df_runtime::{RunConfig, VirtualRuntime, strategy::FifoStrategy};
    /// use df_events::site;
    ///
    /// let r = VirtualRuntime::new(RunConfig::default())
    ///     .run(Box::new(FifoStrategy::new()), |ctx| {
    ///         let l = ctx.new_lock(site!());
    ///         let _g = ctx.lock(&l, site!());
    ///         // critical section
    ///     });
    /// assert!(r.outcome.is_completed());
    /// ```
    pub fn lock(&self, lock: &LockRef, site: Label) -> LockGuard<'_> {
        self.acquire(lock, site);
        LockGuard {
            ctx: self,
            lock: *lock,
            site,
            released: false,
        }
    }

    /// Acquires `lock` in shared (read) mode and returns an RAII guard —
    /// the rwlock read-side equivalent of [`TCtx::lock`]. The release is
    /// mode-derived, so the same guard type serves both sides.
    pub fn read_lock(&self, lock: &LockRef, site: Label) -> LockGuard<'_> {
        self.acquire_shared(lock, site);
        LockGuard {
            ctx: self,
            lock: *lock,
            site,
            released: false,
        }
    }

    /// Attempts `lock` exclusively without blocking: returns a guard on
    /// success, `None` if the lock is held in a conflicting mode. Always
    /// a schedule point either way.
    pub fn try_lock(&self, lock: &LockRef, site: Label) -> Option<LockGuard<'_>> {
        self.try_mode(lock, site, AcquireMode::Exclusive)
    }

    /// Attempts a shared (read) acquisition of `lock` without blocking.
    pub fn try_read_lock(&self, lock: &LockRef, site: Label) -> Option<LockGuard<'_>> {
        self.try_mode(lock, site, AcquireMode::Shared)
    }

    fn try_mode(&self, lock: &LockRef, site: Label, mode: AcquireMode) -> Option<LockGuard<'_>> {
        match unwrap_or_abort(self.ctl.op(
            self.me,
            PendingOp::TryAcquire {
                lock: lock.id,
                site,
                mode,
            },
        )) {
            OpOutcome::Acquired(true) => Some(LockGuard {
                ctx: self,
                lock: *lock,
                site,
                released: false,
            }),
            OpOutcome::Acquired(false) => None,
            _ => unreachable!("TryAcquire returns Acquired"),
        }
    }

    /// Enters a method at call site `site` (execution-indexing event) with
    /// no receiver (a static method).
    pub fn call(&self, site: Label) {
        unwrap_or_abort(self.ctl.op(
            self.me,
            PendingOp::Call {
                site,
                receiver: None,
            },
        ));
    }

    /// Enters a method at `site` with receiver `recv` (`this`); objects
    /// allocated inside belong to `recv` for k-object-sensitivity.
    pub fn call_on(&self, recv: &ObjRef, site: Label) {
        unwrap_or_abort(self.ctl.op(
            self.me,
            PendingOp::Call {
                site,
                receiver: Some(recv.id),
            },
        ));
    }

    /// Returns from the current method.
    pub fn ret(&self) {
        unwrap_or_abort(self.ctl.op(self.me, PendingOp::Return));
    }

    /// Runs `f` inside a `call`/`ret` pair (a static method body).
    pub fn scope<R>(&self, site: Label, f: impl FnOnce() -> R) -> R {
        self.call(site);
        let r = f();
        self.ret();
        r
    }

    /// Runs `f` inside a `call_on`/`ret` pair (an instance method body on
    /// `recv`).
    pub fn scope_on<R>(&self, recv: &ObjRef, site: Label, f: impl FnOnce() -> R) -> R {
        self.call_on(recv, site);
        let r = f();
        self.ret();
        r
    }

    /// Spawns a child virtual thread running `f`. The spawn site becomes
    /// the allocation site of the thread object.
    pub fn spawn<F>(&self, site: Label, name: &str, f: F) -> ThreadRef
    where
        F: FnOnce(&TCtx) + Send + 'static,
    {
        let (id, obj) = unwrap_or_abort(self.ctl.spawn(self.me, site, name.to_string(), f));
        ThreadRef { id, obj }
    }

    /// Blocks (in virtual time) until `target` finishes.
    pub fn join(&self, target: &ThreadRef, site: Label) {
        let _ = site;
        unwrap_or_abort(self.ctl.op(self.me, PendingOp::Join { target: target.id }));
    }

    /// An explicit schedule point with no other effect.
    pub fn yield_now(&self) {
        unwrap_or_abort(self.ctl.op(self.me, PendingOp::Yield));
    }

    /// Simulated computation: `units` consecutive schedule points. Under a
    /// random scheduler, heavier work delays this thread relative to
    /// others — this models the paper's "long running methods" (Figure 1).
    pub fn work(&self, units: u32) {
        for _ in 0..units {
            unwrap_or_abort(self.ctl.op(self.me, PendingOp::Work { units: 1 }));
        }
    }

    /// Java-style `Object.wait()` on `lock`'s monitor: releases the
    /// monitor entirely (remembering its recursion count), parks this
    /// thread in the monitor's wait set until a [`TCtx::notify`] /
    /// [`TCtx::notify_all`], then re-acquires the monitor with the saved
    /// count before returning.
    ///
    /// A waiting thread is *disabled* in the paper's sense; a wait with
    /// no future notify is a communication deadlock and the runtime
    /// reports the stall as
    /// [`crate::Outcome::CommunicationStall`].
    ///
    /// # Panics
    ///
    /// Panics (as a program error) if this thread does not hold `lock`.
    pub fn wait(&self, lock: &LockRef, site: Label) {
        let count = match unwrap_or_abort(self.ctl.op(
            self.me,
            PendingOp::WaitRelease {
                lock: lock.id,
                site,
            },
        )) {
            crate::controller::OpOutcome::Count(n) => n,
            _ => unreachable!("WaitRelease returns the saved count"),
        };
        unwrap_or_abort(
            self.ctl
                .op(self.me, PendingOp::AwaitNotify { lock: lock.id }),
        );
        unwrap_or_abort(self.ctl.op(
            self.me,
            PendingOp::WaitReacquire {
                lock: lock.id,
                count,
                site,
            },
        ));
    }

    /// Wakes one thread from `lock`'s wait set (FIFO), like
    /// `Object.notify()`.
    ///
    /// # Panics
    ///
    /// Panics (as a program error) if this thread does not hold `lock`.
    pub fn notify(&self, lock: &LockRef, site: Label) {
        unwrap_or_abort(self.ctl.op(
            self.me,
            PendingOp::Notify {
                lock: lock.id,
                site,
                all: false,
            },
        ));
    }

    /// Wakes every thread in `lock`'s wait set, like
    /// `Object.notifyAll()`.
    ///
    /// # Panics
    ///
    /// Panics (as a program error) if this thread does not hold `lock`.
    pub fn notify_all(&self, lock: &LockRef, site: Label) {
        unwrap_or_abort(self.ctl.op(
            self.me,
            PendingOp::Notify {
                lock: lock.id,
                site,
                all: true,
            },
        ));
    }

    /// Creates a new condition variable at `site`.
    pub fn new_condvar(&self, site: Label) -> CondvarRef {
        match unwrap_or_abort(self.ctl.op(
            self.me,
            PendingOp::New {
                site,
                kind: ObjKind::Plain,
            },
        )) {
            OpOutcome::Created(id) => CondvarRef { id },
            _ => unreachable!("New returns Created"),
        }
    }

    /// `Condvar::wait` on `cv`, releasing `lock` for the duration:
    /// releases the (exclusively held) lock, parks this thread in the
    /// condvar's wait set until a [`TCtx::cond_notify_one`] /
    /// [`TCtx::cond_notify_all`] (or an injected spurious wakeup), then
    /// re-acquires the lock before returning. Callers must re-check their
    /// predicate in a loop, exactly as with `std::sync::Condvar`.
    ///
    /// # Panics
    ///
    /// Panics (as a program error) if this thread does not hold `lock`
    /// exclusively.
    pub fn cond_wait(&self, cv: &CondvarRef, lock: &LockRef, site: Label) {
        let count = match unwrap_or_abort(self.ctl.op(
            self.me,
            PendingOp::CondWaitRelease {
                condvar: cv.id,
                lock: lock.id,
                site,
            },
        )) {
            OpOutcome::Count(n) => n,
            _ => unreachable!("CondWaitRelease returns the saved count"),
        };
        unwrap_or_abort(
            self.ctl
                .op(self.me, PendingOp::AwaitCondNotify { condvar: cv.id }),
        );
        unwrap_or_abort(self.ctl.op(
            self.me,
            PendingOp::WaitReacquire {
                lock: lock.id,
                count,
                site,
            },
        ));
    }

    /// Wakes one thread from `cv`'s wait set (FIFO), like
    /// `Condvar::notify_one`. Does not require holding any lock.
    pub fn cond_notify_one(&self, cv: &CondvarRef, site: Label) {
        unwrap_or_abort(self.ctl.op(
            self.me,
            PendingOp::CondNotify {
                condvar: cv.id,
                site,
                all: false,
            },
        ));
    }

    /// Wakes every thread in `cv`'s wait set, like
    /// `Condvar::notify_all`.
    pub fn cond_notify_all(&self, cv: &CondvarRef, site: Label) {
        unwrap_or_abort(self.ctl.op(
            self.me,
            PendingOp::CondNotify {
                condvar: cv.id,
                site,
                all: true,
            },
        ));
    }
}

/// RAII guard returned by [`TCtx::lock`]; releases the lock when dropped.
#[must_use = "dropping the guard immediately releases the lock"]
pub struct LockGuard<'a> {
    ctx: &'a TCtx,
    lock: LockRef,
    site: Label,
    released: bool,
}

impl LockGuard<'_> {
    /// Releases the lock early (idempotent with the drop).
    pub fn unlock(mut self) {
        self.release_inner();
    }

    /// The guarded lock.
    pub fn lock_ref(&self) -> LockRef {
        self.lock
    }

    fn release_inner(&mut self) {
        if self.released {
            return;
        }
        self.released = true;
        let r = self.ctx.ctl.op(
            self.ctx.me,
            PendingOp::Release {
                lock: self.lock.id,
                site: self.site,
            },
        );
        if r.is_err() && !std::thread::panicking() {
            // The run is shutting down while this thread executes user
            // code: unwind it like any other aborted operation. If we are
            // already unwinding (AbortToken flew through the guard's
            // scope), swallow to avoid a double panic.
            panic::panic_any(AbortToken);
        }
    }
}

impl Drop for LockGuard<'_> {
    fn drop(&mut self) {
        self.release_inner();
    }
}

/// Convenience shared mutable data for program models.
///
/// Virtual-thread execution is fully serialized, so plain shared state
/// cannot race; `Shared` just packages the `Arc<Mutex<…>>` boilerplate that
/// program closures need to move data around. It deliberately does **not**
/// create schedule points — use virtual locks ([`TCtx::lock`]) for the
/// synchronization structure the analyses should see.
///
/// # Example
///
/// ```
/// let counter = df_runtime::Shared::new(0u32);
/// counter.with(|c| *c += 1);
/// assert_eq!(counter.get(), 1);
/// ```
#[derive(Debug, Default)]
pub struct Shared<T>(Arc<Mutex<T>>);

impl<T> Shared<T> {
    /// Wraps `value`.
    pub fn new(value: T) -> Self {
        Shared(Arc::new(Mutex::new(value)))
    }

    /// Runs `f` with exclusive access to the value.
    pub fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        f(&mut self.0.lock())
    }
}

impl<T: Clone> Shared<T> {
    /// Returns a clone of the value.
    pub fn get(&self) -> T {
        self.0.lock().clone()
    }
}

impl<T> Clone for Shared<T> {
    fn clone(&self) -> Self {
        Shared(Arc::clone(&self.0))
    }
}
