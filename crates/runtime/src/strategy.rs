//! Scheduling strategies: the pluggable brains of the runtime.
//!
//! The runtime pauses the whole system at every schedule point and asks the
//! installed [`Strategy`] what to do next. `df-fuzzer` implements the
//! paper's Algorithm 2 (`simpleRandomChecker`) and Algorithm 3
//! (`DEADLOCKFUZZER`) as strategies; this module additionally provides two
//! deterministic strategies ([`FifoStrategy`], [`RoundRobinStrategy`]) that
//! are useful for tests and for recording reproducible Phase I traces.

use std::collections::BTreeMap;

use df_events::{Event, ThreadId};
use serde::{Deserialize, Serialize};

use crate::result::DeadlockWitness;
use crate::view::StateView;

/// What the strategy wants the runtime to do at a schedule point.
#[derive(Clone, Debug)]
pub enum Directive {
    /// Run thread `t` (must be enabled).
    Run(ThreadId),
    /// Stop the run: a real deadlock has been created (Algorithm 4 fired).
    Deadlock(DeadlockWitness),
    /// Stop the run for another reason (e.g. exceeded an internal budget).
    Abort(String),
}

/// Statistics a strategy reports at the end of a run.
///
/// `thrashes` is the count the paper reports in Table 1 column 10 and
/// correlates against reproduction probability in Figure 2 (bottom right).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct StrategyStats {
    /// Scheduling decisions taken.
    pub picks: u64,
    /// Times the strategy paused a thread before an acquire.
    pub pauses: u64,
    /// Thrashings: every enabled thread was paused and one had to be
    /// released at random (paper §2.3).
    pub thrashes: u64,
    /// Yields injected by the §4 optimization.
    pub yields: u64,
    /// Free-form extra counters (e.g. per-variant diagnostics).
    pub extra: BTreeMap<String, f64>,
}

/// A scheduling strategy consulted at every schedule point.
///
/// Implementations receive a [`StateView`] of the entire system — pending
/// operations, lock sets, contexts, object metadata — and return a
/// [`Directive`]. The runtime guarantees `enabled` is non-empty and sorted
/// by thread id.
pub trait Strategy: Send {
    /// Picks the next thread to run (or stops the run).
    fn pick(&mut self, view: &StateView<'_>, enabled: &[ThreadId]) -> Directive;

    /// Observes every recorded event (after it happened). Default: ignore.
    fn on_event(&mut self, _event: &Event, _view: &StateView<'_>) {}

    /// Called once when the run ends; returns the strategy's statistics.
    fn finish(&mut self) -> StrategyStats {
        StrategyStats::default()
    }
}

/// Runs the lowest-id enabled thread until it blocks or finishes.
///
/// Deterministic and extremely simple; mainly for unit tests. Note that a
/// FIFO schedule can mask deadlocks (it never preempts at lock boundaries),
/// which is precisely the paper's motivation for randomized scheduling.
///
/// # Example
///
/// ```
/// use df_runtime::strategy::FifoStrategy;
/// let _s = FifoStrategy::new();
/// ```
#[derive(Debug, Default)]
pub struct FifoStrategy {
    picks: u64,
}

impl FifoStrategy {
    /// Creates the strategy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Strategy for FifoStrategy {
    fn pick(&mut self, _view: &StateView<'_>, enabled: &[ThreadId]) -> Directive {
        self.picks += 1;
        Directive::Run(enabled[0])
    }

    fn finish(&mut self) -> StrategyStats {
        StrategyStats {
            picks: self.picks,
            ..StrategyStats::default()
        }
    }
}

/// Rotates through enabled threads, switching at every schedule point.
///
/// Deterministic; exercises interleavings more aggressively than
/// [`FifoStrategy`] and is useful to make Phase I observe lock acquisitions
/// from many threads.
#[derive(Debug, Default)]
pub struct RoundRobinStrategy {
    last: Option<ThreadId>,
    picks: u64,
}

impl RoundRobinStrategy {
    /// Creates the strategy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Strategy for RoundRobinStrategy {
    fn pick(&mut self, _view: &StateView<'_>, enabled: &[ThreadId]) -> Directive {
        self.picks += 1;
        let next = match self.last {
            None => enabled[0],
            Some(prev) => *enabled.iter().find(|&&t| t > prev).unwrap_or(&enabled[0]),
        };
        self.last = Some(next);
        Directive::Run(next)
    }

    fn finish(&mut self) -> StrategyStats {
        StrategyStats {
            picks: self.picks,
            ..StrategyStats::default()
        }
    }
}

/// Replays a recorded schedule: at each decision, runs the thread that
/// executed the next event of the recorded trace.
///
/// This is the debugging workflow for a confirmed deadlock: take the
/// trace of the run that deadlocked ([`crate::RunResult::trace`]), build
/// a `ReplayStrategy` from it, and re-execute the program to land in the
/// *same* deadlock state deterministically (virtual-thread programs are
/// deterministic given the schedule).
///
/// If the recorded thread is not currently enabled (the program changed,
/// or the recording ended), the strategy falls back to the lowest-id
/// enabled thread and counts the divergence in
/// [`StrategyStats::extra`]`["divergences"]`.
///
/// # Example
///
/// ```
/// use df_runtime::strategy::ReplayStrategy;
/// use df_events::ThreadId;
///
/// let schedule = vec![ThreadId::new(0), ThreadId::new(0)];
/// let _s = ReplayStrategy::new(schedule);
/// ```
#[derive(Debug)]
pub struct ReplayStrategy {
    schedule: Vec<ThreadId>,
    next: usize,
    picks: u64,
    divergences: u64,
}

impl ReplayStrategy {
    /// Creates a replayer from an explicit pick sequence.
    pub fn new(schedule: Vec<ThreadId>) -> Self {
        ReplayStrategy {
            schedule,
            next: 0,
            picks: 0,
            divergences: 0,
        }
    }

    /// Creates a replayer from a recorded trace: the per-event thread
    /// sequence is the schedule.
    pub fn from_trace(trace: &df_events::Trace) -> Self {
        Self::new(trace.events().iter().map(|e| e.thread).collect())
    }
}

impl Strategy for ReplayStrategy {
    fn pick(&mut self, _view: &StateView<'_>, enabled: &[ThreadId]) -> Directive {
        self.picks += 1;
        // Skip over recorded entries for threads that need no decision
        // anymore; pick the next entry that is currently enabled.
        while let Some(&want) = self.schedule.get(self.next) {
            self.next += 1;
            if enabled.contains(&want) {
                return Directive::Run(want);
            }
        }
        self.divergences += 1;
        Directive::Run(enabled[0])
    }

    fn finish(&mut self) -> StrategyStats {
        let mut stats = StrategyStats {
            picks: self.picks,
            ..StrategyStats::default()
        };
        stats
            .extra
            .insert("divergences".to_string(), self.divergences as f64);
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_default_is_zeroed() {
        let s = StrategyStats::default();
        assert_eq!(s.picks, 0);
        assert_eq!(s.thrashes, 0);
        assert!(s.extra.is_empty());
    }

    #[test]
    fn stats_serde_round_trip() {
        let mut s = StrategyStats {
            picks: 3,
            ..StrategyStats::default()
        };
        s.extra.insert("k".into(), 1.5);
        let json = serde_json::to_string(&s).unwrap();
        let back: StrategyStats = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
