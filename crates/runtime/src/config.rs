//! Run configuration.

use std::time::Duration;

use crate::fault::FaultPlan;

/// Configuration for one execution of a program under the virtual runtime.
///
/// Construct with [`RunConfig::default`] and adjust with the builder-style
/// setters.
///
/// # Example
///
/// ```
/// use df_runtime::RunConfig;
/// let cfg = RunConfig::default().with_max_steps(10_000).with_record_trace(false);
/// assert_eq!(cfg.max_steps, 10_000);
/// assert!(!cfg.record_trace);
/// ```
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Maximum number of schedule points before the run is aborted with
    /// [`crate::Outcome::StepLimit`]. Guards against livelocks in program
    /// models.
    pub max_steps: u64,
    /// Wall-clock watchdog: if no schedule point occurs for this long the
    /// run is aborted with [`crate::Outcome::Hang`]. Guards against program
    /// closures that spin without instrumented operations.
    pub hang_timeout: Duration,
    /// Whether to record the full event trace. Phase I needs it; Phase II
    /// probability estimation can turn it off for speed.
    pub record_trace: bool,
    /// Hard wall-clock deadline for the whole run, enforced even while the
    /// program makes steady progress (unlike `hang_timeout`, which only
    /// fires when progress stops). `None` (the default) means unbounded.
    /// Exceeding it aborts with [`crate::Outcome::DeadlineExceeded`].
    pub deadline: Option<Duration>,
    /// Faults to inject into the run for adversarial self-testing; `None`
    /// (the default) runs the program faithfully.
    pub fault_plan: Option<FaultPlan>,
    /// Seed exposed to the program under test via
    /// [`crate::TCtx::run_seed`]. Program models that want run-to-run
    /// variation (e.g. which worker arrives first) must derive it from
    /// this value rather than ambient state, so that the same seed always
    /// replays the same program — the property the parallel trial pool
    /// relies on to make `jobs = 1` and `jobs = N` campaigns agree.
    pub program_seed: u64,
    /// Observability handle: the runtime counts observed acquisitions and
    /// rolls the strategy's pause/thrash/yield statistics and injected
    /// faults into it, and streams fault-injection trace events to its
    /// sink. The default handle counts into a private registry and traces
    /// nothing.
    pub obs: df_obs::Obs,
    /// Streaming event observers. Every recorded event is delivered to
    /// the attached [`df_events::EventSink`]s in trace order with the
    /// sequence numbers the trace would carry, whether or not
    /// `record_trace` keeps the events in memory — which is what lets
    /// Phase I consume an execution online instead of materializing the
    /// full event vector. The default handle has no sinks and costs one
    /// emptiness check per event.
    pub sink: df_events::SinkHandle,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            max_steps: 1_000_000,
            hang_timeout: Duration::from_secs(10),
            record_trace: true,
            deadline: None,
            fault_plan: None,
            program_seed: 0,
            obs: df_obs::Obs::default(),
            sink: df_events::SinkHandle::none(),
        }
    }
}

impl RunConfig {
    /// Creates the default configuration (same as [`Default::default`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the schedule-point budget.
    pub fn with_max_steps(mut self, max_steps: u64) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Sets the wall-clock watchdog timeout.
    pub fn with_hang_timeout(mut self, timeout: Duration) -> Self {
        self.hang_timeout = timeout;
        self
    }

    /// Enables or disables trace recording.
    pub fn with_record_trace(mut self, record: bool) -> Self {
        self.record_trace = record;
        self
    }

    /// Sets the hard wall-clock deadline for the run.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Injects the given fault plan into the run.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Sets the seed the program observes through [`crate::TCtx::run_seed`].
    pub fn with_program_seed(mut self, seed: u64) -> Self {
        self.program_seed = seed;
        self
    }

    /// Attaches an observability handle.
    pub fn with_obs(mut self, obs: df_obs::Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Attaches streaming event sinks. Combine with
    /// [`RunConfig::with_record_trace`]`(false)` to observe an execution
    /// without ever materializing its event vector.
    pub fn with_event_sink(mut self, sink: df_events::SinkHandle) -> Self {
        self.sink = sink;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sane() {
        let c = RunConfig::default();
        assert!(c.max_steps > 0);
        assert!(c.record_trace);
        assert!(c.hang_timeout > Duration::from_millis(1));
    }

    #[test]
    fn builders_apply() {
        let c = RunConfig::new()
            .with_max_steps(5)
            .with_hang_timeout(Duration::from_millis(7))
            .with_record_trace(false);
        assert_eq!(c.max_steps, 5);
        assert_eq!(c.hang_timeout, Duration::from_millis(7));
        assert!(!c.record_trace);
        assert!(c.fault_plan.is_none());
    }

    #[test]
    fn program_seed_defaults_to_zero_and_is_settable() {
        assert_eq!(RunConfig::default().program_seed, 0);
        assert_eq!(RunConfig::new().with_program_seed(9).program_seed, 9);
    }

    #[test]
    fn fault_plan_builder_applies() {
        let c = RunConfig::new().with_fault_plan(FaultPlan::new(3).with_leak_release(0.5));
        let plan = c.fault_plan.expect("plan set");
        assert_eq!(plan.seed, 3);
        assert!(!plan.is_noop());
    }
}
