//! Run configuration.

use std::time::Duration;

/// Configuration for one execution of a program under the virtual runtime.
///
/// Construct with [`RunConfig::default`] and adjust with the builder-style
/// setters.
///
/// # Example
///
/// ```
/// use df_runtime::RunConfig;
/// let cfg = RunConfig::default().with_max_steps(10_000).with_record_trace(false);
/// assert_eq!(cfg.max_steps, 10_000);
/// assert!(!cfg.record_trace);
/// ```
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Maximum number of schedule points before the run is aborted with
    /// [`crate::Outcome::StepLimit`]. Guards against livelocks in program
    /// models.
    pub max_steps: u64,
    /// Wall-clock watchdog: if no schedule point occurs for this long the
    /// run is aborted with [`crate::Outcome::Hang`]. Guards against program
    /// closures that spin without instrumented operations.
    pub hang_timeout: Duration,
    /// Whether to record the full event trace. Phase I needs it; Phase II
    /// probability estimation can turn it off for speed.
    pub record_trace: bool,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            max_steps: 1_000_000,
            hang_timeout: Duration::from_secs(10),
            record_trace: true,
        }
    }
}

impl RunConfig {
    /// Creates the default configuration (same as [`Default::default`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the schedule-point budget.
    pub fn with_max_steps(mut self, max_steps: u64) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Sets the wall-clock watchdog timeout.
    pub fn with_hang_timeout(mut self, timeout: Duration) -> Self {
        self.hang_timeout = timeout;
        self
    }

    /// Enables or disables trace recording.
    pub fn with_record_trace(mut self, record: bool) -> Self {
        self.record_trace = record;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sane() {
        let c = RunConfig::default();
        assert!(c.max_steps > 0);
        assert!(c.record_trace);
        assert!(c.hang_timeout > Duration::from_millis(1));
    }

    #[test]
    fn builders_apply() {
        let c = RunConfig::new()
            .with_max_steps(5)
            .with_hang_timeout(Duration::from_millis(7))
            .with_record_trace(false);
        assert_eq!(c.max_steps, 5);
        assert_eq!(c.hang_timeout, Duration::from_millis(7));
        assert!(!c.record_trace);
    }
}
