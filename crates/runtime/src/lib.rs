//! Virtual-thread cooperative runtime — the execution substrate for
//! `deadlock-fuzzer`.
//!
//! The PLDI 2009 DeadlockFuzzer paper instruments Java bytecode and takes
//! control of the JVM scheduler at every synchronization operation. This
//! crate provides the equivalent control surface for Rust test programs:
//!
//! * Programs are written as ordinary closures that receive a [`TCtx`]
//!   handle and perform *instrumented operations* through it: lock
//!   [`TCtx::acquire`]/[`TCtx::release`] (or RAII [`TCtx::lock`]), method
//!   [`TCtx::call`]/[`TCtx::ret`] (or [`TCtx::scope`]), object allocation
//!   [`TCtx::new_lock`]/[`TCtx::new_object`], [`TCtx::spawn`],
//!   [`TCtx::join`], [`TCtx::yield_now`] and simulated computation
//!   [`TCtx::work`].
//! * Every instrumented operation is a **schedule point**. Exactly one
//!   virtual thread runs at a time; at each schedule point the runtime asks
//!   a pluggable [`Strategy`] which enabled thread runs next. This is the
//!   paper's model of §2.1: a concurrent system evolving one labeled
//!   statement at a time, with `Enabled(s)` excluding threads waiting on a
//!   held lock or an unfinished join.
//! * Locks are **re-entrant** with usage counters; only 0→1 acquisitions and
//!   1→0 releases are recorded, per §2.1 footnote 2.
//! * The runtime records a [`df_events::Trace`] (events + object metadata)
//!   that Phase I (`df-igoodlock`) consumes, and detects **stalls**: if no
//!   thread is enabled while some are alive, it extracts the wait-for cycle
//!   as a [`DeadlockWitness`].
//!
//! # Example
//!
//! ```
//! use df_runtime::{RunConfig, VirtualRuntime, strategy::FifoStrategy};
//! use df_events::site;
//!
//! let result = VirtualRuntime::new(RunConfig::default())
//!     .run(Box::new(FifoStrategy::new()), |ctx| {
//!         let l = ctx.new_lock(site!("main: new lock"));
//!         let g = ctx.lock(&l, site!("main: lock"));
//!         drop(g);
//!     });
//! assert!(result.outcome.is_completed());
//! assert_eq!(result.trace.acquire_count(), 1);
//! ```

#![deny(missing_docs)]

mod config;
mod controller;
mod ctx;
mod fault;
mod pending;
mod result;
mod runtime;
mod state;
pub mod strategy;
mod view;
mod waitfor;

pub use config::RunConfig;
pub use ctx::{CondvarRef, LockGuard, LockRef, ObjRef, Shared, TCtx, ThreadRef, VarRef};
pub use fault::{FaultLog, FaultPlan};
pub use pending::PendingOp;
pub use result::{DeadlockWitness, Detector, Outcome, RunResult, WitnessComponent};
pub use strategy::{Directive, Strategy, StrategyStats};
pub use view::{StateView, ThreadView};
pub use waitfor::{find_lock_stack_cycle, WaitForGraph};

pub use runtime::VirtualRuntime;
