//! Results of a virtual-runtime execution.

use std::fmt;

use df_events::{AcquireMode, Label, ObjId, ThreadId, Trace};
use serde::{Deserialize, Serialize};

use crate::fault::FaultLog;
use crate::strategy::StrategyStats;

/// How a deadlock was detected.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Detector {
    /// `checkRealDeadlock` (Algorithm 4) fired inside the scheduling
    /// strategy: a cycle among held lock stacks plus pending acquisitions.
    Strategy,
    /// The runtime's stall detector found a cycle in the wait-for graph
    /// after every alive thread became disabled.
    WaitForGraph,
}

impl fmt::Display for Detector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Detector::Strategy => f.write_str("checkRealDeadlock"),
            Detector::WaitForGraph => f.write_str("wait-for graph"),
        }
    }
}

/// One thread's part in a deadlock: what it holds and what it waits for.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WitnessComponent {
    /// The deadlocked thread.
    pub thread: ThreadId,
    /// The object representing the thread.
    pub thread_obj: ObjId,
    /// Human-readable thread name (the spawn name), when recorded.
    pub thread_name: Option<String>,
    /// Locks the thread holds, outermost first.
    pub holding: Vec<ObjId>,
    /// Hold modes aligned with `holding` (all exclusive for plain locks).
    pub holding_modes: Vec<AcquireMode>,
    /// The lock the thread is waiting to acquire.
    pub waiting_for: ObjId,
    /// The mode of the blocked acquisition.
    pub waiting_mode: AcquireMode,
    /// Acquisition-site labels: sites of `holding` followed by the site of
    /// the blocked acquisition (the paper's context `C`).
    pub context: Vec<Label>,
}

impl WitnessComponent {
    /// An all-exclusive component (the pre-rwlock shape).
    pub fn exclusive(
        thread: ThreadId,
        thread_obj: ObjId,
        thread_name: Option<String>,
        holding: Vec<ObjId>,
        waiting_for: ObjId,
        context: Vec<Label>,
    ) -> Self {
        let holding_modes = vec![AcquireMode::Exclusive; holding.len()];
        WitnessComponent {
            thread,
            thread_obj,
            thread_name,
            holding,
            holding_modes,
            waiting_for,
            waiting_mode: AcquireMode::Exclusive,
            context,
        }
    }

    fn any_shared_hold(&self) -> bool {
        self.holding_modes.iter().any(|m| m.is_shared())
    }
}

// Hand-written like `CycleComponent`: all-exclusive witnesses must
// serialize byte-identically to the pre-mode format, and pre-mode
// artifacts must deserialize with exclusive defaults.
impl Serialize for WitnessComponent {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct;
        let extra =
            usize::from(self.waiting_mode.is_shared()) + usize::from(self.any_shared_hold());
        let mut state = serializer.serialize_struct("WitnessComponent", 6 + extra)?;
        state.serialize_field("thread", &self.thread)?;
        state.serialize_field("thread_obj", &self.thread_obj)?;
        state.serialize_field("thread_name", &self.thread_name)?;
        state.serialize_field("holding", &self.holding)?;
        state.serialize_field("waiting_for", &self.waiting_for)?;
        state.serialize_field("context", &self.context)?;
        if self.waiting_mode.is_shared() {
            state.serialize_field("waiting_mode", &self.waiting_mode)?;
        }
        if self.any_shared_hold() {
            state.serialize_field("holding_modes", &self.holding_modes)?;
        }
        state.end()
    }
}

impl<'de> Deserialize<'de> for WitnessComponent {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        use serde::__private as sp;
        let value = serde::Deserializer::__take_value(deserializer)?;
        let result: Result<Self, sp::DeError> = (move || {
            let mut entries = sp::expect_obj(value, "WitnessComponent")?;
            let thread = sp::field(&mut entries, "thread")?;
            let thread_obj = sp::field(&mut entries, "thread_obj")?;
            let thread_name = sp::field(&mut entries, "thread_name")?;
            let holding: Vec<ObjId> = sp::field(&mut entries, "holding")?;
            let waiting_for = sp::field(&mut entries, "waiting_for")?;
            let context = sp::field(&mut entries, "context")?;
            let waiting_mode =
                sp::field::<Option<AcquireMode>>(&mut entries, "waiting_mode")?.unwrap_or_default();
            let holding_modes =
                sp::field::<Option<Vec<AcquireMode>>>(&mut entries, "holding_modes")?
                    .unwrap_or_else(|| vec![AcquireMode::Exclusive; holding.len()]);
            Ok(WitnessComponent {
                thread,
                thread_obj,
                thread_name,
                holding,
                holding_modes,
                waiting_for,
                waiting_mode,
                context,
            })
        })();
        result.map_err(<D::Error as serde::de::Error>::custom)
    }
}

/// A concrete, observed deadlock: the set of threads that mutually block.
///
/// This is DeadlockFuzzer's *output artifact* — unlike an iGoodlock cycle it
/// is not a prediction but a witnessed program state, so it is never a false
/// positive.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct DeadlockWitness {
    /// One component per deadlocked thread, in cycle order: component `i`
    /// waits for a lock held by component `i+1` (mod n).
    pub components: Vec<WitnessComponent>,
    /// How the deadlock was detected.
    pub detected_by: Detector,
}

impl DeadlockWitness {
    /// The deadlocked threads in cycle order.
    pub fn threads(&self) -> Vec<ThreadId> {
        self.components.iter().map(|c| c.thread).collect()
    }

    /// The locks involved in the cycle (the `waiting_for` of each
    /// component).
    pub fn locks(&self) -> Vec<ObjId> {
        self.components.iter().map(|c| c.waiting_for).collect()
    }

    /// Cycle length (number of threads = number of locks).
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// Whether the witness has no components (never produced by the
    /// runtime; exists for `len`/`is_empty` symmetry).
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }
}

impl fmt::Display for DeadlockWitness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "real deadlock among {} threads (detected by {}):",
            self.components.len(),
            self.detected_by
        )?;
        for c in &self.components {
            let who = match &c.thread_name {
                Some(n) => format!("{} (\"{n}\")", c.thread),
                None => c.thread.to_string(),
            };
            let want = if c.waiting_mode.is_shared() {
                "read "
            } else {
                ""
            };
            writeln!(
                f,
                "  {who} holds {:?}, waits for {want}{} at {}",
                c.holding,
                c.waiting_for,
                c.context
                    .last()
                    .map(|l| l.to_string())
                    .unwrap_or_else(|| "<unknown>".to_string()),
            )?;
        }
        Ok(())
    }
}

/// Terminal outcome of a run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Outcome {
    /// Every thread finished; no stall.
    Completed,
    /// A real deadlock was created and witnessed.
    Deadlock(DeadlockWitness),
    /// Every alive thread was disabled but no lock cycle exists (e.g. a
    /// join cycle); the paper calls this a "system stall" and we keep the
    /// distinction.
    Stall {
        /// Threads that were alive but disabled.
        stuck: Vec<ThreadId>,
    },
    /// A stall in which some thread waits in a monitor's wait set with no
    /// one left to notify it — the paper's *communication deadlock*
    /// ("a deadlock that happens when each thread is waiting for a signal
    /// from some other thread"), which DeadlockFuzzer observes but does
    /// not target ("We only consider resource deadlocks in this paper").
    CommunicationStall {
        /// Threads that were alive but disabled.
        stuck: Vec<ThreadId>,
        /// The subset parked in monitor wait sets.
        waiting: Vec<ThreadId>,
    },
    /// The schedule-point budget was exhausted.
    StepLimit,
    /// The wall-clock watchdog fired.
    Hang,
    /// The run's hard wall-clock deadline
    /// ([`crate::RunConfig::deadline`]) elapsed while the program was
    /// still making progress.
    DeadlineExceeded,
    /// A program closure panicked (a bug in the program model, not a
    /// deadlock).
    ProgramPanic(String),
    /// The strategy requested an abort with a message.
    StrategyAbort(String),
}

impl Outcome {
    /// Whether the run completed normally.
    pub fn is_completed(&self) -> bool {
        matches!(self, Outcome::Completed)
    }

    /// Whether a real deadlock was witnessed.
    pub fn is_deadlock(&self) -> bool {
        matches!(self, Outcome::Deadlock(_))
    }

    /// The witness, if a deadlock was found.
    pub fn deadlock(&self) -> Option<&DeadlockWitness> {
        match self {
            Outcome::Deadlock(w) => Some(w),
            _ => None,
        }
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Outcome::Completed => f.write_str("completed"),
            Outcome::Deadlock(w) => write!(f, "deadlock: {w}"),
            Outcome::Stall { stuck } => write!(f, "system stall ({} threads stuck)", stuck.len()),
            Outcome::CommunicationStall { stuck, waiting } => write!(
                f,
                "communication deadlock ({} threads stuck, {} in wait sets)",
                stuck.len(),
                waiting.len()
            ),
            Outcome::StepLimit => f.write_str("step limit exceeded"),
            Outcome::Hang => f.write_str("hang watchdog fired"),
            Outcome::DeadlineExceeded => f.write_str("wall-clock deadline exceeded"),
            Outcome::ProgramPanic(m) => write!(f, "program panic: {m}"),
            Outcome::StrategyAbort(m) => write!(f, "strategy abort: {m}"),
        }
    }
}

/// Everything a run produced.
#[derive(Debug)]
pub struct RunResult {
    /// Terminal outcome.
    pub outcome: Outcome,
    /// The recorded trace (empty if `record_trace` was off).
    pub trace: Trace,
    /// Number of schedule points executed.
    pub steps: u64,
    /// Statistics reported by the strategy (thrashes, picks, pauses).
    pub stats: StrategyStats,
    /// Faults injected during the run (all zero without a
    /// [`crate::FaultPlan`]).
    pub faults: FaultLog,
}

impl RunResult {
    /// The witness, if the run deadlocked.
    pub fn deadlock(&self) -> Option<&DeadlockWitness> {
        self.outcome.deadlock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn witness() -> DeadlockWitness {
        DeadlockWitness {
            components: vec![
                WitnessComponent::exclusive(
                    ThreadId::new(1),
                    ObjId::new(10),
                    Some("t1".into()),
                    vec![ObjId::new(3)],
                    ObjId::new(4),
                    vec![Label::new("w:15"), Label::new("w:16")],
                ),
                WitnessComponent::exclusive(
                    ThreadId::new(2),
                    ObjId::new(11),
                    None,
                    vec![ObjId::new(4)],
                    ObjId::new(3),
                    vec![Label::new("w:15"), Label::new("w:16")],
                ),
            ],
            detected_by: Detector::Strategy,
        }
    }

    #[test]
    fn witness_accessors() {
        let w = witness();
        assert_eq!(w.len(), 2);
        assert!(!w.is_empty());
        assert_eq!(w.threads(), vec![ThreadId::new(1), ThreadId::new(2)]);
        assert_eq!(w.locks(), vec![ObjId::new(4), ObjId::new(3)]);
    }

    #[test]
    fn outcome_predicates() {
        assert!(Outcome::Completed.is_completed());
        assert!(!Outcome::Completed.is_deadlock());
        let d = Outcome::Deadlock(witness());
        assert!(d.is_deadlock());
        assert_eq!(d.deadlock().unwrap().len(), 2);
        assert!(Outcome::StepLimit.deadlock().is_none());
    }

    #[test]
    fn witness_display_prints_thread_names() {
        let s = witness().to_string();
        assert!(s.contains("\"t1\""), "{s}");
    }

    #[test]
    fn displays_are_nonempty() {
        for o in [
            Outcome::Completed,
            Outcome::Deadlock(witness()),
            Outcome::Stall {
                stuck: vec![ThreadId::new(0)],
            },
            Outcome::StepLimit,
            Outcome::Hang,
            Outcome::DeadlineExceeded,
            Outcome::ProgramPanic("boom".into()),
            Outcome::StrategyAbort("stop".into()),
        ] {
            assert!(!o.to_string().is_empty());
        }
        assert_eq!(Detector::Strategy.to_string(), "checkRealDeadlock");
        assert_eq!(Detector::WaitForGraph.to_string(), "wait-for graph");
    }

    #[test]
    fn witness_serde_round_trip() {
        let w = witness();
        let json = serde_json::to_string(&w).unwrap();
        let back: DeadlockWitness = serde_json::from_str(&json).unwrap();
        assert_eq!(w, back);
    }

    #[test]
    fn exclusive_witnesses_serialize_without_mode_fields() {
        let json = serde_json::to_string(&witness()).unwrap();
        assert!(!json.contains("mode"), "{json}");
        // Pre-mode documents deserialize with exclusive defaults.
        let back: DeadlockWitness = serde_json::from_str(&json).unwrap();
        assert_eq!(back.components[0].waiting_mode, AcquireMode::Exclusive);
        assert_eq!(
            back.components[0].holding_modes,
            vec![AcquireMode::Exclusive]
        );
    }

    #[test]
    fn shared_witnesses_round_trip_and_render_as_reads() {
        let mut w = witness();
        w.components[0].waiting_mode = AcquireMode::Shared;
        w.components[1].holding_modes = vec![AcquireMode::Shared];
        let json = serde_json::to_string(&w).unwrap();
        assert!(json.contains("\"waiting_mode\""), "{json}");
        assert!(json.contains("\"holding_modes\""), "{json}");
        let back: DeadlockWitness = serde_json::from_str(&json).unwrap();
        assert_eq!(w, back);
        let s = w.to_string();
        assert!(s.contains("waits for read "), "{s}");
    }
}
