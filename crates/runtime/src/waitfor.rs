//! Wait-for graphs and deadlock-cycle extraction.
//!
//! Used in two places:
//!
//! * the runtime's stall detector — when no thread is enabled, the cycle in
//!   the wait-for graph *is* the deadlock witness;
//! * `checkRealDeadlock` (Algorithm 4) — the fuzzer adds *intended*
//!   acquisitions of paused threads as wait-for edges and asks for a cycle.

use std::collections::{HashMap, HashSet};

use df_events::{AcquireMode, ObjId, ThreadId};

/// A thread→lock wait-for graph with lock→thread ownership edges.
///
/// Nodes are threads; thread `t` has an edge to thread `u` if `t` waits for
/// (or intends to acquire) a lock held by `u` in a *conflicting mode*: an
/// exclusive wait conflicts with every holder, a shared wait only with an
/// exclusive holder (read–read coexistence never blocks). Locks may have
/// several simultaneous shared holders, so a wait edge can fan out.
///
/// # Example
///
/// ```
/// use df_runtime::WaitForGraph;
/// use df_events::{ObjId, ThreadId};
///
/// let mut g = WaitForGraph::new();
/// let (t1, t2) = (ThreadId::new(1), ThreadId::new(2));
/// let (l1, l2) = (ObjId::new(1), ObjId::new(2));
/// g.add_holds(t1, l1);
/// g.add_holds(t2, l2);
/// g.add_waits(t1, l2);
/// g.add_waits(t2, l1);
/// let cycle = g.find_cycle().expect("deadlock");
/// assert_eq!(cycle.len(), 2);
/// ```
#[derive(Debug, Default)]
pub struct WaitForGraph {
    exclusive: HashMap<ObjId, Vec<ThreadId>>,
    shared: HashMap<ObjId, Vec<ThreadId>>,
    waits: HashMap<ThreadId, (ObjId, AcquireMode)>,
}

impl WaitForGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `t` holds `lock` exclusively.
    pub fn add_holds(&mut self, t: ThreadId, lock: ObjId) {
        self.exclusive.entry(lock).or_default().push(t);
    }

    /// Records that `t` holds `lock` in shared (read) mode.
    pub fn add_holds_shared(&mut self, t: ThreadId, lock: ObjId) {
        self.shared.entry(lock).or_default().push(t);
    }

    /// Records that `t` waits for (or intends to acquire) `lock`
    /// exclusively.
    pub fn add_waits(&mut self, t: ThreadId, lock: ObjId) {
        self.waits.insert(t, (lock, AcquireMode::Exclusive));
    }

    /// Records that `t` waits for (or intends to acquire) `lock` in
    /// shared mode: only exclusive holders block it.
    pub fn add_waits_shared(&mut self, t: ThreadId, lock: ObjId) {
        self.waits.insert(t, (lock, AcquireMode::Shared));
    }

    /// The lock `t` waits for, if any.
    pub fn waiting_for(&self, t: ThreadId) -> Option<ObjId> {
        self.waits.get(&t).map(|&(l, _)| l)
    }

    /// The exclusive holder of `lock`, if recorded.
    pub fn holder_of(&self, lock: ObjId) -> Option<ThreadId> {
        self.exclusive.get(&lock).and_then(|v| v.first()).copied()
    }

    /// Every recorded holder of `lock` (exclusive first, then shared),
    /// deduplicated, in id order within each group.
    pub fn holders_of(&self, lock: ObjId) -> Vec<ThreadId> {
        let mut out: Vec<ThreadId> = Vec::new();
        for group in [self.exclusive.get(&lock), self.shared.get(&lock)] {
            let mut g: Vec<ThreadId> = group.cloned().unwrap_or_default();
            g.sort_unstable();
            g.dedup();
            for t in g {
                if !out.contains(&t) {
                    out.push(t);
                }
            }
        }
        out
    }

    /// Threads that block `t`'s pending acquisition: holders of the
    /// waited-for lock whose hold mode conflicts with the wait mode.
    fn successors(&self, t: ThreadId) -> Vec<ThreadId> {
        let Some(&(lock, mode)) = self.waits.get(&t) else {
            return Vec::new();
        };
        let mut out: Vec<ThreadId> = self.exclusive.get(&lock).cloned().unwrap_or_default();
        if mode.is_exclusive() {
            out.extend(
                self.shared
                    .get(&lock)
                    .iter()
                    .flat_map(|v| v.iter().copied()),
            );
        }
        // Self-edges (re-entrant or upgrade attempts) cannot form a
        // multi-thread deadlock cycle.
        out.retain(|&u| u != t);
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Finds a cycle of threads `t_1 → t_2 → … → t_m → t_1` where each
    /// `t_i` waits for a lock held (in a conflicting mode) by `t_{i+1}`.
    /// Returns the threads in cycle order, or `None` if the graph is
    /// acyclic. Deterministic: starts and successors are visited in id
    /// order.
    pub fn find_cycle(&self) -> Option<Vec<ThreadId>> {
        // Shared holds give nodes out-degree > 1, so this is a DFS with
        // an explicit path (not the single-successor pointer chase the
        // exclusive-only graph allowed).
        let mut done: HashSet<ThreadId> = HashSet::new();
        let mut starts: Vec<ThreadId> = self.waits.keys().copied().collect();
        starts.sort();
        for &start in &starts {
            if done.contains(&start) {
                continue;
            }
            let mut path: Vec<ThreadId> = Vec::new();
            let mut pos: HashMap<ThreadId, usize> = HashMap::new();
            if let Some(cycle) = self.dfs(start, &mut path, &mut pos, &mut done) {
                return Some(cycle);
            }
        }
        None
    }

    fn dfs(
        &self,
        cur: ThreadId,
        path: &mut Vec<ThreadId>,
        pos: &mut HashMap<ThreadId, usize>,
        done: &mut HashSet<ThreadId>,
    ) -> Option<Vec<ThreadId>> {
        pos.insert(cur, path.len());
        path.push(cur);
        for next in self.successors(cur) {
            if let Some(&i) = pos.get(&next) {
                return Some(path[i..].to_vec());
            }
            if done.contains(&next) {
                continue; // joins a previously explored acyclic region
            }
            if let Some(cycle) = self.dfs(next, path, pos, done) {
                return Some(cycle);
            }
        }
        path.pop();
        pos.remove(&cur);
        done.insert(cur);
        None
    }
}

/// Algorithm 4 of the paper, generalized: given each thread's held-lock
/// stack *including a pending/intended lock on top*, find distinct threads
/// `t_1 … t_m` and locks `l_1 … l_m` such that `t_i` holds `l_i` and wants
/// (holds later in stack order) `l_{i+1}`, cyclically.
///
/// `stacks` maps each thread to `(held locks outermost-first, intended
/// lock)`. `contexts` provides the matching site labels for witness
/// construction. Returns the threads in cycle order.
///
/// # Example
///
/// ```
/// use df_runtime::find_lock_stack_cycle;
/// use df_events::{ObjId, ThreadId};
///
/// let (t1, t2) = (ThreadId::new(1), ThreadId::new(2));
/// let (l1, l2) = (ObjId::new(1), ObjId::new(2));
/// let stacks = vec![(t1, vec![l1], l2), (t2, vec![l2], l1)];
/// let cycle = find_lock_stack_cycle(&stacks).expect("cycle");
/// assert_eq!(cycle, vec![t1, t2]);
/// ```
pub fn find_lock_stack_cycle(stacks: &[(ThreadId, Vec<ObjId>, ObjId)]) -> Option<Vec<ThreadId>> {
    let mut g = WaitForGraph::new();
    for (t, held, intended) in stacks {
        for &l in held {
            g.add_holds(*t, l);
        }
        g.add_waits(*t, *intended);
    }
    g.find_cycle()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> ThreadId {
        ThreadId::new(i)
    }
    fn o(i: u32) -> ObjId {
        ObjId::new(i)
    }

    #[test]
    fn two_cycle_detected() {
        let mut g = WaitForGraph::new();
        g.add_holds(t(1), o(1));
        g.add_holds(t(2), o(2));
        g.add_waits(t(1), o(2));
        g.add_waits(t(2), o(1));
        let c = g.find_cycle().unwrap();
        assert_eq!(c.len(), 2);
        assert!(c.contains(&t(1)) && c.contains(&t(2)));
    }

    #[test]
    fn three_cycle_detected_in_order() {
        let mut g = WaitForGraph::new();
        for i in 1..=3 {
            g.add_holds(t(i), o(i));
            g.add_waits(t(i), o(i % 3 + 1));
        }
        let c = g.find_cycle().unwrap();
        assert_eq!(c.len(), 3);
        // cycle order: each waits for the next's lock
        for w in 0..3 {
            let cur = c[w];
            let nxt = c[(w + 1) % 3];
            let lock = g.waiting_for(cur).unwrap();
            assert_eq!(g.holder_of(lock), Some(nxt));
        }
    }

    #[test]
    fn chain_without_cycle_is_none() {
        let mut g = WaitForGraph::new();
        g.add_holds(t(1), o(1));
        g.add_holds(t(2), o(2));
        g.add_waits(t(3), o(1));
        g.add_waits(t(1), o(2));
        assert!(g.find_cycle().is_none());
    }

    #[test]
    fn self_wait_is_not_a_deadlock() {
        // Re-entrant acquisition: t holds l and "waits" for l.
        let mut g = WaitForGraph::new();
        g.add_holds(t(1), o(1));
        g.add_waits(t(1), o(1));
        assert!(g.find_cycle().is_none());
    }

    #[test]
    fn disjoint_cycles_returns_one() {
        let mut g = WaitForGraph::new();
        for (a, b, la, lb) in [(1, 2, 1, 2), (3, 4, 3, 4)] {
            g.add_holds(t(a), o(la));
            g.add_holds(t(b), o(lb));
            g.add_waits(t(a), o(lb));
            g.add_waits(t(b), o(la));
        }
        let c = g.find_cycle().unwrap();
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn tail_leading_into_cycle_excluded() {
        // t3 waits into the {t1,t2} cycle but is not part of it.
        let mut g = WaitForGraph::new();
        g.add_holds(t(1), o(1));
        g.add_holds(t(2), o(2));
        g.add_waits(t(1), o(2));
        g.add_waits(t(2), o(1));
        g.add_waits(t(3), o(1));
        let c = g.find_cycle().unwrap();
        assert_eq!(c.len(), 2);
        assert!(!c.contains(&t(3)));
    }

    #[test]
    fn lock_stack_cycle_matches_algorithm_4() {
        // t1 holds l1 wants l2; t2 holds l2 wants l3; t3 holds l3 wants l1.
        let stacks = vec![
            (t(1), vec![o(1)], o(2)),
            (t(2), vec![o(2)], o(3)),
            (t(3), vec![o(3)], o(1)),
        ];
        let c = find_lock_stack_cycle(&stacks).unwrap();
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn lock_stack_no_cycle() {
        let stacks = vec![(t(1), vec![o(1)], o(2)), (t(2), vec![], o(2))];
        assert!(find_lock_stack_cycle(&stacks).is_none());
    }

    #[test]
    fn empty_graph_has_no_cycle() {
        assert!(WaitForGraph::new().find_cycle().is_none());
        assert!(find_lock_stack_cycle(&[]).is_none());
    }

    #[test]
    fn shared_wait_ignores_shared_holders() {
        // t1 reads l1; t2 wants to read l1 too — no conflict, no cycle.
        let mut g = WaitForGraph::new();
        g.add_holds_shared(t(1), o(1));
        g.add_waits_shared(t(2), o(1));
        assert!(g.find_cycle().is_none());
        // But a write intent against the same reader does conflict.
        g.add_waits(t(2), o(1));
        g.add_holds(t(2), o(2));
        g.add_waits_shared(t(1), o(2));
        let c = g.find_cycle().unwrap();
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn writer_blocked_by_many_readers_fans_out() {
        // t1 and t2 both read l1; t3 holds l3 and wants to write l1.
        // Only the t2 branch closes a cycle (t2 waits for l3).
        let mut g = WaitForGraph::new();
        g.add_holds_shared(t(1), o(1));
        g.add_holds_shared(t(2), o(1));
        g.add_holds(t(3), o(3));
        g.add_waits(t(3), o(1));
        g.add_waits(t(2), o(3));
        let c = g.find_cycle().unwrap();
        assert_eq!(c.len(), 2);
        assert!(c.contains(&t(2)) && c.contains(&t(3)));
        assert!(!c.contains(&t(1)));
    }

    #[test]
    fn upgrade_self_edge_is_not_a_deadlock() {
        // A reader attempting to upgrade waits on its own shared hold.
        let mut g = WaitForGraph::new();
        g.add_holds_shared(t(1), o(1));
        g.add_waits(t(1), o(1));
        assert!(g.find_cycle().is_none());
    }

    #[test]
    fn holders_of_lists_exclusive_then_shared() {
        let mut g = WaitForGraph::new();
        g.add_holds_shared(t(3), o(1));
        g.add_holds_shared(t(2), o(1));
        g.add_holds(t(1), o(1));
        assert_eq!(g.holders_of(o(1)), vec![t(1), t(2), t(3)]);
        assert_eq!(g.holder_of(o(1)), Some(t(1)));
    }
}
