//! Wait-for graphs and deadlock-cycle extraction.
//!
//! Used in two places:
//!
//! * the runtime's stall detector — when no thread is enabled, the cycle in
//!   the wait-for graph *is* the deadlock witness;
//! * `checkRealDeadlock` (Algorithm 4) — the fuzzer adds *intended*
//!   acquisitions of paused threads as wait-for edges and asks for a cycle.

use std::collections::HashMap;

use df_events::{ObjId, ThreadId};

/// A thread→lock wait-for graph with lock→thread ownership edges.
///
/// Nodes are threads; thread `t` has an edge to thread `u` if `t` waits for
/// (or intends to acquire) a lock currently held by `u`.
///
/// # Example
///
/// ```
/// use df_runtime::WaitForGraph;
/// use df_events::{ObjId, ThreadId};
///
/// let mut g = WaitForGraph::new();
/// let (t1, t2) = (ThreadId::new(1), ThreadId::new(2));
/// let (l1, l2) = (ObjId::new(1), ObjId::new(2));
/// g.add_holds(t1, l1);
/// g.add_holds(t2, l2);
/// g.add_waits(t1, l2);
/// g.add_waits(t2, l1);
/// let cycle = g.find_cycle().expect("deadlock");
/// assert_eq!(cycle.len(), 2);
/// ```
#[derive(Debug, Default)]
pub struct WaitForGraph {
    holder: HashMap<ObjId, ThreadId>,
    waits: HashMap<ThreadId, ObjId>,
}

impl WaitForGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `t` holds `lock`.
    pub fn add_holds(&mut self, t: ThreadId, lock: ObjId) {
        self.holder.insert(lock, t);
    }

    /// Records that `t` waits for (or intends to acquire) `lock`.
    pub fn add_waits(&mut self, t: ThreadId, lock: ObjId) {
        self.waits.insert(t, lock);
    }

    /// The lock `t` waits for, if any.
    pub fn waiting_for(&self, t: ThreadId) -> Option<ObjId> {
        self.waits.get(&t).copied()
    }

    /// The holder of `lock`, if recorded.
    pub fn holder_of(&self, lock: ObjId) -> Option<ThreadId> {
        self.holder.get(&lock).copied()
    }

    /// Finds a cycle of threads `t_1 → t_2 → … → t_m → t_1` where each
    /// `t_i` waits for a lock held by `t_{i+1}`. Returns the threads in
    /// cycle order, or `None` if the graph is acyclic.
    pub fn find_cycle(&self) -> Option<Vec<ThreadId>> {
        // The out-degree of every node is ≤ 1 (a thread waits for at most
        // one lock), so cycle detection is pointer chasing with a visited
        // set.
        let mut global_seen: std::collections::HashSet<ThreadId> = Default::default();
        let mut starts: Vec<ThreadId> = self.waits.keys().copied().collect();
        starts.sort();
        for &start in &starts {
            if global_seen.contains(&start) {
                continue;
            }
            let mut path: Vec<ThreadId> = Vec::new();
            let mut pos: HashMap<ThreadId, usize> = HashMap::new();
            let mut cur = start;
            loop {
                if let Some(&i) = pos.get(&cur) {
                    return Some(path[i..].to_vec());
                }
                if global_seen.contains(&cur) {
                    break; // joins a previously explored acyclic tail
                }
                pos.insert(cur, path.len());
                path.push(cur);
                let next = self
                    .waits
                    .get(&cur)
                    .and_then(|l| self.holder.get(l))
                    .copied();
                match next {
                    Some(n) if n != cur => cur = n,
                    // Self-loop (re-entrant acquire) cannot deadlock; a
                    // missing edge ends the walk.
                    _ => break,
                }
            }
            global_seen.extend(path);
        }
        None
    }
}

/// Algorithm 4 of the paper, generalized: given each thread's held-lock
/// stack *including a pending/intended lock on top*, find distinct threads
/// `t_1 … t_m` and locks `l_1 … l_m` such that `t_i` holds `l_i` and wants
/// (holds later in stack order) `l_{i+1}`, cyclically.
///
/// `stacks` maps each thread to `(held locks outermost-first, intended
/// lock)`. `contexts` provides the matching site labels for witness
/// construction. Returns the threads in cycle order.
///
/// # Example
///
/// ```
/// use df_runtime::find_lock_stack_cycle;
/// use df_events::{ObjId, ThreadId};
///
/// let (t1, t2) = (ThreadId::new(1), ThreadId::new(2));
/// let (l1, l2) = (ObjId::new(1), ObjId::new(2));
/// let stacks = vec![(t1, vec![l1], l2), (t2, vec![l2], l1)];
/// let cycle = find_lock_stack_cycle(&stacks).expect("cycle");
/// assert_eq!(cycle, vec![t1, t2]);
/// ```
pub fn find_lock_stack_cycle(stacks: &[(ThreadId, Vec<ObjId>, ObjId)]) -> Option<Vec<ThreadId>> {
    let mut g = WaitForGraph::new();
    for (t, held, intended) in stacks {
        for &l in held {
            g.add_holds(*t, l);
        }
        g.add_waits(*t, *intended);
    }
    g.find_cycle()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> ThreadId {
        ThreadId::new(i)
    }
    fn o(i: u32) -> ObjId {
        ObjId::new(i)
    }

    #[test]
    fn two_cycle_detected() {
        let mut g = WaitForGraph::new();
        g.add_holds(t(1), o(1));
        g.add_holds(t(2), o(2));
        g.add_waits(t(1), o(2));
        g.add_waits(t(2), o(1));
        let c = g.find_cycle().unwrap();
        assert_eq!(c.len(), 2);
        assert!(c.contains(&t(1)) && c.contains(&t(2)));
    }

    #[test]
    fn three_cycle_detected_in_order() {
        let mut g = WaitForGraph::new();
        for i in 1..=3 {
            g.add_holds(t(i), o(i));
            g.add_waits(t(i), o(i % 3 + 1));
        }
        let c = g.find_cycle().unwrap();
        assert_eq!(c.len(), 3);
        // cycle order: each waits for the next's lock
        for w in 0..3 {
            let cur = c[w];
            let nxt = c[(w + 1) % 3];
            let lock = g.waiting_for(cur).unwrap();
            assert_eq!(g.holder_of(lock), Some(nxt));
        }
    }

    #[test]
    fn chain_without_cycle_is_none() {
        let mut g = WaitForGraph::new();
        g.add_holds(t(1), o(1));
        g.add_holds(t(2), o(2));
        g.add_waits(t(3), o(1));
        g.add_waits(t(1), o(2));
        assert!(g.find_cycle().is_none());
    }

    #[test]
    fn self_wait_is_not_a_deadlock() {
        // Re-entrant acquisition: t holds l and "waits" for l.
        let mut g = WaitForGraph::new();
        g.add_holds(t(1), o(1));
        g.add_waits(t(1), o(1));
        assert!(g.find_cycle().is_none());
    }

    #[test]
    fn disjoint_cycles_returns_one() {
        let mut g = WaitForGraph::new();
        for (a, b, la, lb) in [(1, 2, 1, 2), (3, 4, 3, 4)] {
            g.add_holds(t(a), o(la));
            g.add_holds(t(b), o(lb));
            g.add_waits(t(a), o(lb));
            g.add_waits(t(b), o(la));
        }
        let c = g.find_cycle().unwrap();
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn tail_leading_into_cycle_excluded() {
        // t3 waits into the {t1,t2} cycle but is not part of it.
        let mut g = WaitForGraph::new();
        g.add_holds(t(1), o(1));
        g.add_holds(t(2), o(2));
        g.add_waits(t(1), o(2));
        g.add_waits(t(2), o(1));
        g.add_waits(t(3), o(1));
        let c = g.find_cycle().unwrap();
        assert_eq!(c.len(), 2);
        assert!(!c.contains(&t(3)));
    }

    #[test]
    fn lock_stack_cycle_matches_algorithm_4() {
        // t1 holds l1 wants l2; t2 holds l2 wants l3; t3 holds l3 wants l1.
        let stacks = vec![
            (t(1), vec![o(1)], o(2)),
            (t(2), vec![o(2)], o(3)),
            (t(3), vec![o(3)], o(1)),
        ];
        let c = find_lock_stack_cycle(&stacks).unwrap();
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn lock_stack_no_cycle() {
        let stacks = vec![(t(1), vec![o(1)], o(2)), (t(2), vec![], o(2))];
        assert!(find_lock_stack_cycle(&stacks).is_none());
    }

    #[test]
    fn empty_graph_has_no_cycle() {
        assert!(WaitForGraph::new().find_cycle().is_none());
        assert!(find_lock_stack_cycle(&[]).is_none());
    }
}
