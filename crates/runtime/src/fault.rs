//! Seeded, deterministic fault injection for adversarial self-testing.
//!
//! A [`FaultPlan`] describes a set of faults the runtime injects into a run
//! so the *tool itself* can be stress-tested with its own scheduler: does
//! Phase II still terminate with a classified outcome when the program
//! under test panics mid-acquire, leaks a lock, wakes spuriously from a
//! monitor wait, or fans out more threads than expected?
//!
//! All decisions are driven by a self-contained splitmix64 stream keyed off
//! [`FaultPlan::seed`], and every schedule decision happens under the
//! controller's single mutex, so a run with a given `(strategy, FaultPlan)`
//! pair is exactly as deterministic as the fault-free run.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Panic payload used when [`FaultPlan::panic_on_acquire`] fires: carries
/// the message the runtime reports as
/// [`crate::Outcome::ProgramPanic`] while letting the quiet panic hook
/// suppress the default stderr report (the panic is injected, not a bug).
pub(crate) struct InjectedFault(pub(crate) String);

/// A deterministic plan of faults to inject into a run.
///
/// Probabilities are per-opportunity: `panic_on_acquire` is consulted at
/// every first (non-re-entrant) lock acquisition, `leak_release` at every
/// outermost release, `spurious_wakeup` at every schedule point where some
/// monitor wait set is non-empty, and `runaway_spawn` at every program
/// spawn (bounded by [`FaultPlan::with_max_runaway_spawns`]).
///
/// # Example
///
/// ```
/// use df_runtime::{FaultPlan, RunConfig, VirtualRuntime, strategy::FifoStrategy};
/// use df_events::site;
///
/// let plan = FaultPlan::new(7).with_panic_on_acquire(1.0);
/// let cfg = RunConfig::default().with_fault_plan(plan);
/// let r = VirtualRuntime::new(cfg).run(Box::new(FifoStrategy::new()), |ctx| {
///     let l = ctx.new_lock(site!());
///     ctx.acquire(&l, site!());
///     ctx.release(&l, site!());
/// });
/// assert!(matches!(r.outcome, df_runtime::Outcome::ProgramPanic(_)));
/// assert_eq!(r.faults.panics, 1);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed of the fault-decision stream (independent of the strategy's
    /// scheduling seed).
    pub seed: u64,
    /// Probability that a first lock acquisition panics instead of
    /// acquiring, modeling an exception thrown inside a `synchronized`
    /// entry.
    pub panic_on_acquire: f64,
    /// Probability that an outermost release is silently dropped, leaving
    /// the lock held forever — the limit case of an arbitrarily delayed
    /// release.
    pub leak_release: f64,
    /// Probability (per schedule point with waiters) that one parked
    /// thread is woken without a notify, like a JVM spurious wakeup.
    pub spurious_wakeup: f64,
    /// Probability that a program spawn fans out one extra busy thread the
    /// program never asked for.
    pub runaway_spawn: f64,
    /// Upper bound on injected runaway threads per run.
    pub max_runaway_spawns: u32,
}

impl FaultPlan {
    /// A plan with the given seed and no faults enabled.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            panic_on_acquire: 0.0,
            leak_release: 0.0,
            spurious_wakeup: 0.0,
            runaway_spawn: 0.0,
            max_runaway_spawns: 4,
        }
    }

    /// Sets the panic-on-acquire probability.
    pub fn with_panic_on_acquire(mut self, p: f64) -> Self {
        self.panic_on_acquire = p;
        self
    }

    /// Sets the leaked-release probability.
    pub fn with_leak_release(mut self, p: f64) -> Self {
        self.leak_release = p;
        self
    }

    /// Sets the spurious-wakeup probability.
    pub fn with_spurious_wakeup(mut self, p: f64) -> Self {
        self.spurious_wakeup = p;
        self
    }

    /// Sets the runaway-spawn probability.
    pub fn with_runaway_spawn(mut self, p: f64) -> Self {
        self.runaway_spawn = p;
        self
    }

    /// Caps the number of injected runaway threads.
    pub fn with_max_runaway_spawns(mut self, n: u32) -> Self {
        self.max_runaway_spawns = n;
        self
    }

    /// Whether every fault probability is zero (the plan is a no-op).
    pub fn is_noop(&self) -> bool {
        self.panic_on_acquire <= 0.0
            && self.leak_release <= 0.0
            && self.spurious_wakeup <= 0.0
            && self.runaway_spawn <= 0.0
    }
}

/// Counts of faults actually injected during one run, reported in
/// [`crate::RunResult::faults`] so harness tests can assert that an
/// adversarial run really was adversarial.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct FaultLog {
    /// Injected acquire-site panics.
    pub panics: u32,
    /// Releases that were silently dropped.
    pub leaked_releases: u32,
    /// Threads woken from a wait set without a notify.
    pub spurious_wakeups: u32,
    /// Extra threads spawned beyond what the program asked for.
    pub runaway_spawns: u32,
}

impl FaultLog {
    /// Total number of injected faults.
    pub fn total(&self) -> u32 {
        self.panics + self.leaked_releases + self.spurious_wakeups + self.runaway_spawns
    }

    /// Whether no fault fired.
    pub fn is_empty(&self) -> bool {
        self.total() == 0
    }
}

impl fmt::Display for FaultLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} faults (panics {}, leaked releases {}, spurious wakeups {}, runaway spawns {})",
            self.total(),
            self.panics,
            self.leaked_releases,
            self.spurious_wakeups,
            self.runaway_spawns
        )
    }
}

/// Live per-run fault state: the plan, its decision stream, and the log.
#[derive(Debug)]
pub(crate) struct FaultState {
    plan: FaultPlan,
    rng: u64,
    pub(crate) log: FaultLog,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan) -> Self {
        FaultState {
            // Offset so seed 0 does not start the stream at state 0.
            rng: plan.seed ^ 0x5851_f42d_4c95_7f2d,
            plan,
            log: FaultLog::default(),
        }
    }

    fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            // Still advance the stream so enabling a fault at 1.0 keeps the
            // remaining decisions aligned with lower-probability plans.
            let _ = splitmix64(&mut self.rng);
            return true;
        }
        let bits = splitmix64(&mut self.rng) >> 11;
        (bits as f64) * (1.0 / (1u64 << 53) as f64) < p
    }

    /// Uniform index in `0..n` (callers guarantee `n > 0`).
    pub(crate) fn pick_index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0, "pick_index needs a non-empty candidate set");
        (splitmix64(&mut self.rng) % n as u64) as usize
    }

    pub(crate) fn fire_panic_on_acquire(&mut self) -> bool {
        let p = self.plan.panic_on_acquire;
        if self.chance(p) {
            self.log.panics += 1;
            true
        } else {
            false
        }
    }

    pub(crate) fn fire_leak_release(&mut self) -> bool {
        let p = self.plan.leak_release;
        if self.chance(p) {
            self.log.leaked_releases += 1;
            true
        } else {
            false
        }
    }

    pub(crate) fn fire_spurious_wakeup(&mut self) -> bool {
        let p = self.plan.spurious_wakeup;
        if self.chance(p) {
            self.log.spurious_wakeups += 1;
            true
        } else {
            false
        }
    }

    pub(crate) fn fire_runaway_spawn(&mut self) -> bool {
        if self.log.runaway_spawns >= self.plan.max_runaway_spawns {
            return false;
        }
        let p = self.plan.runaway_spawn;
        if self.chance(p) {
            self.log.runaway_spawns += 1;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_plan_never_fires() {
        let mut fs = FaultState::new(FaultPlan::new(1));
        for _ in 0..100 {
            assert!(!fs.fire_panic_on_acquire());
            assert!(!fs.fire_leak_release());
            assert!(!fs.fire_spurious_wakeup());
            assert!(!fs.fire_runaway_spawn());
        }
        assert!(fs.log.is_empty());
        assert!(FaultPlan::new(1).is_noop());
    }

    #[test]
    fn decision_stream_is_deterministic_per_seed() {
        let plan = FaultPlan::new(42)
            .with_panic_on_acquire(0.3)
            .with_leak_release(0.3);
        let draw = |plan: FaultPlan| {
            let mut fs = FaultState::new(plan);
            (0..64)
                .map(|_| (fs.fire_panic_on_acquire(), fs.fire_leak_release()))
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(plan.clone()), draw(plan.clone()));
        assert_ne!(draw(plan.clone()), draw(plan.with_panic_on_acquire(0.9)));
    }

    #[test]
    fn probabilities_are_roughly_respected() {
        let mut fs = FaultState::new(FaultPlan::new(9).with_leak_release(0.25));
        let hits = (0..4000).filter(|_| fs.fire_leak_release()).count();
        assert!((800..1200).contains(&hits), "hits {hits}");
        assert_eq!(fs.log.leaked_releases as usize, hits);
    }

    #[test]
    fn runaway_spawns_are_capped() {
        let mut fs = FaultState::new(
            FaultPlan::new(3)
                .with_runaway_spawn(1.0)
                .with_max_runaway_spawns(2),
        );
        let fired = (0..10).filter(|_| fs.fire_runaway_spawn()).count();
        assert_eq!(fired, 2);
        assert_eq!(fs.log.runaway_spawns, 2);
    }

    #[test]
    fn log_totals_and_display() {
        let log = FaultLog {
            panics: 1,
            leaked_releases: 2,
            spurious_wakeups: 3,
            runaway_spawns: 4,
        };
        assert_eq!(log.total(), 10);
        assert!(!log.is_empty());
        assert!(log.to_string().contains("10 faults"));
    }

    #[test]
    fn plan_serde_round_trip() {
        let plan = FaultPlan::new(5).with_spurious_wakeup(0.5);
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
    }
}
