//! Read-only view of the execution state offered to strategies.

use df_events::{Label, ObjId, ObjectTable, ThreadId, Trace};

use crate::pending::PendingOp;
use crate::state::{Global, ThreadStatus};

/// A read-only snapshot view of the controller state, passed to
/// [`crate::Strategy`] at every scheduling decision.
///
/// The view exposes exactly the information Algorithms 3 and 4 of the paper
/// need: per-thread pending operations, lock stacks (`LockSet`), context
/// stacks (`Context`), lock ownership, and the object table for computing
/// abstractions.
pub struct StateView<'a> {
    pub(crate) g: &'a Global,
}

/// Per-thread information visible to strategies.
#[derive(Clone, Debug)]
pub struct ThreadView<'a> {
    /// The thread id.
    pub id: ThreadId,
    /// The object representing this thread.
    pub obj: ObjId,
    /// Human-readable thread name.
    pub name: &'a str,
    /// The thread's announced next operation, if it is waiting at a
    /// schedule point (`None` while running or after finishing).
    pub pending: Option<&'a PendingOp>,
    /// Locks held, outermost first (the paper's `LockSet[t]`).
    pub lock_stack: &'a [ObjId],
    /// Acquisition sites of held locks (the paper's `Context[t]`).
    pub context_stack: &'a [Label],
    /// Whether the thread is alive (not finished).
    pub alive: bool,
    /// Whether the thread's pending operation could execute now.
    pub enabled: bool,
}

impl<'a> StateView<'a> {
    /// All threads, in id order.
    pub fn threads(&self) -> Vec<ThreadView<'a>> {
        self.g
            .threads
            .iter()
            .map(|ts| ThreadView {
                id: ts.id,
                obj: ts.obj,
                name: &ts.name,
                pending: match &ts.status {
                    ThreadStatus::Announced(op) => Some(op),
                    _ => None,
                },
                lock_stack: &ts.lock_stack,
                context_stack: &ts.context_stack,
                alive: ts.is_alive(),
                enabled: self.g.is_enabled(ts.id),
            })
            .collect()
    }

    /// View of one thread.
    ///
    /// # Panics
    ///
    /// Panics if `t` is not a thread of this execution.
    pub fn thread(&self, t: ThreadId) -> ThreadView<'a> {
        let ts = &self.g.threads[t.as_usize()];
        ThreadView {
            id: ts.id,
            obj: ts.obj,
            name: &ts.name,
            pending: match &ts.status {
                ThreadStatus::Announced(op) => Some(op),
                _ => None,
            },
            lock_stack: &ts.lock_stack,
            context_stack: &ts.context_stack,
            alive: ts.is_alive(),
            enabled: self.g.is_enabled(t),
        }
    }

    /// The current owner of `lock`, if it is held.
    pub fn lock_owner(&self, lock: ObjId) -> Option<ThreadId> {
        self.g.lock_state(lock).and_then(|l| l.owner)
    }

    /// The recursion count of `lock` (0 if free or never used).
    pub fn lock_count(&self, lock: ObjId) -> u32 {
        self.g.lock_state(lock).map(|l| l.count).unwrap_or(0)
    }

    /// Threads currently holding `lock` in shared (read) mode,
    /// deduplicated, in id order.
    pub fn lock_readers(&self, lock: ObjId) -> Vec<ThreadId> {
        let mut rs = self
            .g
            .lock_state(lock)
            .map(|l| l.readers.clone())
            .unwrap_or_default();
        rs.sort_unstable();
        rs.dedup();
        rs
    }

    /// The object table of the execution so far (for computing
    /// abstractions on the fly).
    pub fn objects(&self) -> &'a ObjectTable {
        self.g.trace.objects()
    }

    /// The trace recorded so far.
    pub fn trace(&self) -> &'a Trace {
        &self.g.trace
    }

    /// Number of schedule points executed so far.
    pub fn steps(&self) -> u64 {
        self.g.steps
    }

    /// Enabled threads in id order (the paper's `Enabled(s)`).
    pub fn enabled(&self) -> Vec<ThreadId> {
        self.g.enabled()
    }

    /// Alive threads in id order (the paper's `Alive(s)`).
    pub fn alive(&self) -> Vec<ThreadId> {
        self.g.alive()
    }
}
