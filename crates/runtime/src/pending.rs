//! Pending operations announced by threads at schedule points.

use df_events::{AcquireMode, Label, ObjId, ObjKind, ThreadId};

/// The next instrumented operation a virtual thread is about to execute.
///
/// Algorithm 3 of the paper inspects "the next statement to be executed by
/// t" before deciding whether to run or pause the thread. In this runtime,
/// every thread *announces* its next operation before blocking at the
/// schedule point, so the [`crate::Strategy`] sees exactly this information.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PendingOp {
    /// The thread has been spawned and is about to start running.
    Start,
    /// About to acquire `lock` at `site` (possibly re-entrant).
    Acquire {
        /// Target lock.
        lock: ObjId,
        /// Acquisition site.
        site: Label,
        /// Exclusive (write) or shared (read) acquisition.
        mode: AcquireMode,
    },
    /// About to *attempt* `lock` at `site` without blocking: always
    /// enabled, succeeds or fails atomically at execution.
    TryAcquire {
        /// Target lock.
        lock: ObjId,
        /// Attempt site.
        site: Label,
        /// Exclusive (write) or shared (read) attempt.
        mode: AcquireMode,
    },
    /// About to release `lock` at `site`.
    Release {
        /// Target lock.
        lock: ObjId,
        /// Release site.
        site: Label,
    },
    /// About to enter a method (execution-indexing event).
    Call {
        /// Call site.
        site: Label,
        /// Receiver object (`this`), if any.
        receiver: Option<ObjId>,
    },
    /// About to return from the current method.
    Return,
    /// About to allocate an object.
    New {
        /// Allocation site.
        site: Label,
        /// Kind of object being allocated.
        kind: ObjKind,
    },
    /// About to spawn a child thread.
    Spawn {
        /// Spawn site (allocation site of the thread object).
        site: Label,
    },
    /// About to join on `target` (enabled only once `target` finished).
    Join {
        /// The thread being joined.
        target: ThreadId,
    },
    /// An explicit yield.
    Yield,
    /// Simulated computation.
    Work {
        /// Abstract cost units.
        units: u32,
    },
    /// About to release the monitor and join its wait set
    /// (`Object.wait()` stage 1).
    WaitRelease {
        /// The monitor.
        lock: ObjId,
        /// Wait site.
        site: Label,
    },
    /// In the monitor's wait set, waiting for a notify (stage 2); enabled
    /// only once notified.
    AwaitNotify {
        /// The monitor.
        lock: ObjId,
    },
    /// Re-acquiring the monitor after a notify (stage 3), restoring the
    /// saved recursion count; enabled only when the monitor is free.
    WaitReacquire {
        /// The monitor.
        lock: ObjId,
        /// Recursion count to restore.
        count: u32,
        /// The original wait site (kept as the context of the restored
        /// hold).
        site: Label,
    },
    /// About to release `lock` and join `condvar`'s wait set
    /// (`Condvar::wait` stage 1). Unlike a monitor wait, the wait set
    /// belongs to the condition variable, not the lock.
    CondWaitRelease {
        /// The condition variable.
        condvar: ObjId,
        /// The lock released for the duration of the wait.
        lock: ObjId,
        /// Wait site.
        site: Label,
    },
    /// In `condvar`'s wait set, waiting for a notify (stage 2); enabled
    /// only once notified (or spuriously woken by fault injection). The
    /// re-acquisition of the released lock is stage 3, which reuses
    /// [`PendingOp::WaitReacquire`].
    AwaitCondNotify {
        /// The condition variable.
        condvar: ObjId,
    },
    /// About to notify one or all waiters of a condition variable. The
    /// notifier does *not* need to hold the associated lock.
    CondNotify {
        /// The condition variable.
        condvar: ObjId,
        /// Notify site.
        site: Label,
        /// `true` for `notify_all`.
        all: bool,
    },
    /// About to notify one or all waiters of a monitor.
    Notify {
        /// The monitor.
        lock: ObjId,
        /// Notify site.
        site: Label,
        /// `true` for `notifyAll`.
        all: bool,
    },
    /// About to access a shared variable (read or write).
    Access {
        /// The variable.
        var: ObjId,
        /// Access site.
        site: Label,
        /// `true` for a write.
        write: bool,
    },
    /// About to enter an intended-atomic block.
    AtomicBegin {
        /// Block label.
        site: Label,
    },
    /// About to leave the current atomic block.
    AtomicEnd,
    /// About to exit.
    Exit,
}

impl PendingOp {
    /// If this is a (re-entrant or first) acquire, the target lock and site.
    pub fn acquire_target(&self) -> Option<(ObjId, Label)> {
        match self {
            PendingOp::Acquire { lock, site, .. } => Some((*lock, *site)),
            _ => None,
        }
    }

    /// Whether this operation is a lock acquisition.
    pub fn is_acquire(&self) -> bool {
        matches!(self, PendingOp::Acquire { .. })
    }

    /// The acquisition mode of a pending `Acquire`/`TryAcquire`.
    pub fn acquire_mode(&self) -> Option<AcquireMode> {
        match self {
            PendingOp::Acquire { mode, .. } | PendingOp::TryAcquire { mode, .. } => Some(*mode),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_target_only_for_acquire() {
        let lk = ObjId::new(1);
        let s = Label::new("p:1");
        let acq = PendingOp::Acquire {
            lock: lk,
            site: s,
            mode: AcquireMode::Exclusive,
        };
        assert_eq!(acq.acquire_target(), Some((lk, s)));
        assert!(PendingOp::Yield.acquire_target().is_none());
        assert!(acq.is_acquire());
        assert!(!PendingOp::Exit.is_acquire());
    }

    #[test]
    fn acquire_mode_covers_blocking_and_try_variants() {
        let lk = ObjId::new(1);
        let s = Label::new("p:2");
        assert_eq!(
            PendingOp::Acquire {
                lock: lk,
                site: s,
                mode: AcquireMode::Shared,
            }
            .acquire_mode(),
            Some(AcquireMode::Shared)
        );
        let try_op = PendingOp::TryAcquire {
            lock: lk,
            site: s,
            mode: AcquireMode::Exclusive,
        };
        assert_eq!(try_op.acquire_mode(), Some(AcquireMode::Exclusive));
        // A try is an attempt, not a blocking acquisition.
        assert!(!try_op.is_acquire());
        assert!(try_op.acquire_target().is_none());
        assert_eq!(PendingOp::Yield.acquire_mode(), None);
    }
}
