//! The token-passing controller: serializes virtual threads and consults
//! the strategy at every schedule point.

use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;

use df_events::{AcquireMode, EventKind, Label, ObjId, ObjKind, ThreadId};
use parking_lot::{Condvar, Mutex};

use crate::config::RunConfig;
use crate::ctx::TCtx;
use crate::fault::{FaultState, InjectedFault};
use crate::pending::PendingOp;
use crate::result::{DeadlockWitness, Detector, Outcome, WitnessComponent};
use crate::state::{Global, ThreadState, ThreadStatus};
use crate::strategy::{Directive, Strategy};
use crate::view::StateView;
use crate::waitfor::WaitForGraph;

/// Panic payload used to unwind a virtual thread when the run is aborted.
pub(crate) struct AbortToken;

/// Error returned by controller operations once the run is shutting down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Aborted;

/// Result of executing a pending operation.
pub(crate) enum OpOutcome {
    Unit,
    Created(ObjId),
    /// Saved monitor recursion count (from `WaitRelease` /
    /// `CondWaitRelease`).
    Count(u32),
    /// Whether a `TryAcquire` obtained the lock.
    Acquired(bool),
}

pub(crate) struct Inner {
    pub(crate) g: Global,
    pub(crate) strategy: Option<Box<dyn Strategy>>,
    pub(crate) handles: Vec<JoinHandle<()>>,
    /// Set when the run has fully terminated (normally or by abort).
    pub(crate) done: bool,
}

/// Shared controller for one run.
pub(crate) struct Controller {
    pub(crate) inner: Mutex<Inner>,
    pub(crate) cond: Condvar,
    pub(crate) config: RunConfig,
}

/// Installs (once per process) a panic hook that suppresses the default
/// "thread panicked" report for the runtime's internal [`AbortToken`]
/// unwinds, which are control flow rather than errors.
pub(crate) fn install_quiet_abort_hook() {
    use std::sync::Once;
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            // AbortToken unwinds are control flow; InjectedFault panics are
            // deliberate (reported via `Outcome::ProgramPanic`): neither is
            // an error worth a stderr report.
            if info.payload().downcast_ref::<AbortToken>().is_some()
                || info.payload().downcast_ref::<InjectedFault>().is_some()
            {
                return;
            }
            prev(info);
        }));
    });
}

impl Controller {
    pub(crate) fn new(config: RunConfig, strategy: Box<dyn Strategy>) -> Arc<Self> {
        let mut g = Global::new(config.record_trace);
        g.faults = config.fault_plan.clone().map(FaultState::new);
        Arc::new(Controller {
            inner: Mutex::new(Inner {
                g,
                strategy: Some(strategy),
                handles: Vec::new(),
                done: false,
            }),
            cond: Condvar::new(),
            config,
        })
    }

    /// Records an event: appends to the trace (if recording), streams it
    /// to any attached sinks, and informs the strategy. The sequence
    /// number comes from a dedicated event counter so sinks observe the
    /// exact numbering a recorded trace would carry even when trace
    /// recording is off.
    fn record(&self, inner: &mut Inner, thread: ThreadId, kind: EventKind) {
        if inner.g.aborting {
            return;
        }
        let seq = inner.g.event_seq;
        inner.g.event_seq += 1;
        if inner.g.record_trace {
            let pushed = inner.g.trace.push(thread, kind.clone());
            debug_assert_eq!(pushed, seq, "trace and event counter agree");
        }
        let event = df_events::Event::new(seq, thread, kind);
        if self.config.sink.is_attached() {
            self.config.sink.emit(&event);
            self.config.obs.counters().add_events_streamed(1);
        }
        if let Some(mut strat) = inner.strategy.take() {
            strat.on_event(&event, &StateView { g: &inner.g });
            inner.strategy = Some(strat);
        }
    }

    /// Ends the run with `outcome` (first writer wins) and wakes everyone.
    fn abort(&self, inner: &mut Inner, outcome: Outcome) {
        if inner.g.final_outcome.is_none() {
            inner.g.final_outcome = Some(outcome);
        }
        inner.g.aborting = true;
        inner.done = true;
        self.cond.notify_all();
    }

    /// Picks the next thread to run. Called whenever the token is free
    /// (`current == None`). On success `current` is set and sleepers are
    /// woken. Returns `Err(Aborted)` if the run ended instead.
    fn reschedule(&self, inner: &mut Inner) -> Result<(), Aborted> {
        if inner.g.aborting {
            return Err(Aborted);
        }
        self.inject_spurious_wakeup(inner);
        let enabled = inner.g.enabled();
        if enabled.is_empty() {
            let alive = inner.g.alive();
            if alive.is_empty() {
                self.abort(inner, Outcome::Completed);
            } else {
                let outcome = self.diagnose_stall(&inner.g, alive);
                self.abort(inner, outcome);
            }
            return Err(Aborted);
        }
        let mut strat = inner.strategy.take().expect("strategy present");
        let directive = strat.pick(&StateView { g: &inner.g }, &enabled);
        inner.strategy = Some(strat);
        match directive {
            Directive::Run(t) if enabled.contains(&t) => {
                inner.g.current = Some(t);
                self.cond.notify_all();
                Ok(())
            }
            Directive::Run(t) => {
                self.abort(
                    inner,
                    Outcome::StrategyAbort(format!("strategy picked disabled thread {t}")),
                );
                Err(Aborted)
            }
            Directive::Deadlock(w) => {
                self.abort(inner, Outcome::Deadlock(w));
                Err(Aborted)
            }
            Directive::Abort(msg) => {
                self.abort(inner, Outcome::StrategyAbort(msg));
                Err(Aborted)
            }
        }
    }

    /// Fault injection: with the configured probability, wake one thread
    /// parked in a monitor or condvar wait set without a notify (a
    /// spurious wakeup). Candidates are visited in id order so the
    /// decision stream is deterministic despite `HashMap` iteration order.
    fn inject_spurious_wakeup(&self, inner: &mut Inner) {
        if inner.g.faults.is_none() {
            return;
        }
        // `false` marks a monitor wait set, `true` a condvar wait set;
        // monitor and condvar ids never collide (distinct objects).
        let mut candidates: Vec<(ObjId, bool)> = inner
            .g
            .locks
            .iter()
            .filter(|(_, s)| !s.wait_set.is_empty())
            .map(|(&l, _)| (l, false))
            .chain(
                inner
                    .g
                    .condvars
                    .iter()
                    .filter(|(_, ws)| !ws.is_empty())
                    .map(|(&c, _)| (c, true)),
            )
            .collect();
        if candidates.is_empty() {
            return;
        }
        candidates.sort_unstable();
        let fs = inner
            .g
            .faults
            .as_mut()
            .expect("fault state present: checked at function entry");
        if !fs.fire_spurious_wakeup() {
            return;
        }
        let (target, is_condvar) = candidates[fs.pick_index(candidates.len())];
        // Waking = removing from the wait set; the thread's
        // AwaitNotify/AwaitCondNotify op becomes enabled and it proceeds
        // to re-acquire the lock (the condvar path's spurious-wakeup
        // safety then falls to the program's predicate loop).
        let woken = if is_condvar {
            inner
                .g
                .condvars
                .get_mut(&target)
                .expect("candidate condvar has a wait set: it had waiters")
                .remove(0)
        } else {
            inner
                .g
                .locks
                .get_mut(&target)
                .expect("candidate monitor has a lock state: it had waiters")
                .wait_set
                .remove(0)
        };
        self.config.obs.emit(&df_obs::TraceEvent::FaultInjected {
            step: inner.g.steps,
            kind: "spurious_wakeup".to_string(),
            thread: woken,
        });
    }

    /// Classifies a state with no enabled threads: a lock cycle is a real
    /// deadlock; anything else is a stall.
    fn diagnose_stall(&self, g: &Global, alive: Vec<ThreadId>) -> Outcome {
        let mut wf = WaitForGraph::new();
        // Holds come from the lock states themselves so shared holds get
        // their mode (the per-thread lock stack does not record modes).
        for (&l, s) in &g.locks {
            if let Some(o) = s.owner {
                wf.add_holds(o, l);
            }
            let mut readers = s.readers.clone();
            readers.sort_unstable();
            readers.dedup();
            for r in readers {
                wf.add_holds_shared(r, l);
            }
        }
        for ts in &g.threads {
            match &ts.status {
                ThreadStatus::Announced(PendingOp::Acquire { lock, mode, .. }) => match mode {
                    AcquireMode::Exclusive => wf.add_waits(ts.id, *lock),
                    AcquireMode::Shared => wf.add_waits_shared(ts.id, *lock),
                },
                ThreadStatus::Announced(PendingOp::WaitReacquire { lock, .. }) => {
                    wf.add_waits(ts.id, *lock);
                }
                _ => {}
            }
        }
        match wf.find_cycle() {
            Some(cycle) => {
                let components = cycle
                    .iter()
                    .map(|&t| {
                        let ts = g.thread(t);
                        let (lock, site, mode) = match &ts.status {
                            ThreadStatus::Announced(PendingOp::Acquire { lock, site, mode }) => {
                                (*lock, *site, *mode)
                            }
                            ThreadStatus::Announced(PendingOp::WaitReacquire {
                                lock,
                                site,
                                ..
                            }) => (*lock, *site, AcquireMode::Exclusive),
                            _ => unreachable!("cycle thread must wait on a lock"),
                        };
                        let mut context = ts.context_stack.clone();
                        context.push(site);
                        let holding = ts.lock_stack.clone();
                        let holding_modes = holding
                            .iter()
                            .map(|&l| {
                                if g.lock_state(l).and_then(|s| s.owner) == Some(t) {
                                    AcquireMode::Exclusive
                                } else {
                                    AcquireMode::Shared
                                }
                            })
                            .collect();
                        WitnessComponent {
                            thread: t,
                            thread_obj: ts.obj,
                            thread_name: Some(ts.name.clone()),
                            holding,
                            holding_modes,
                            waiting_for: lock,
                            waiting_mode: mode,
                            context,
                        }
                    })
                    .collect();
                Outcome::Deadlock(DeadlockWitness {
                    components,
                    detected_by: Detector::WaitForGraph,
                })
            }
            None => {
                // No lock cycle: if threads are parked in monitor or
                // condvar wait sets this is a communication deadlock
                // (lost signal), otherwise a plain stall (e.g. a join
                // cycle).
                let waiting: Vec<ThreadId> = g
                    .threads
                    .iter()
                    .filter(|ts| {
                        matches!(
                            &ts.status,
                            ThreadStatus::Announced(PendingOp::AwaitNotify { .. })
                                | ThreadStatus::Announced(PendingOp::AwaitCondNotify { .. })
                        )
                    })
                    .map(|ts| ts.id)
                    .collect();
                if waiting.is_empty() {
                    Outcome::Stall { stuck: alive }
                } else {
                    Outcome::CommunicationStall {
                        stuck: alive,
                        waiting,
                    }
                }
            }
        }
    }

    /// Announces `op` for `me`, releases the token, and waits until the
    /// strategy picks `me` again.
    fn announce_and_wait(
        &self,
        inner: &mut parking_lot::MutexGuard<'_, Inner>,
        me: ThreadId,
        op: PendingOp,
    ) -> Result<(), Aborted> {
        inner.g.thread_mut(me).status = ThreadStatus::Announced(op);
        inner.g.steps += 1;
        inner.g.progress += 1;
        if inner.g.steps > self.config.max_steps {
            self.abort(inner, Outcome::StepLimit);
            return Err(Aborted);
        }
        // We hold the token (we were running user code): give it up so the
        // strategy takes a fresh decision for this schedule point.
        debug_assert_eq!(
            inner.g.current,
            Some(me),
            "announcing thread holds the token"
        );
        inner.g.current = None;
        self.reschedule(inner)?;
        self.wait_until_picked(inner, me)
    }

    /// Blocks until the strategy makes `me` current, then marks it running.
    fn wait_until_picked(
        &self,
        inner: &mut parking_lot::MutexGuard<'_, Inner>,
        me: ThreadId,
    ) -> Result<(), Aborted> {
        loop {
            if inner.g.aborting {
                return Err(Aborted);
            }
            if inner.g.current == Some(me) {
                break;
            }
            self.cond.wait(inner);
        }
        inner.g.thread_mut(me).status = ThreadStatus::Running;
        Ok(())
    }

    /// First schedule point of a thread. Unlike [`Self::op`], the thread
    /// does *not* hold the token here: it was registered as
    /// `Announced(Start)` by its spawner and may even have been picked
    /// already (OS startup races the strategy's decision). Consume an
    /// existing pick if there is one; otherwise wait for one. Kicking the
    /// scheduler is only needed for the main thread, which starts with a
    /// free token.
    ///
    /// The start schedule point is accounted to `steps`/`progress` at
    /// *registration* (by the spawn entry points and the main-thread
    /// setup), not here: this function runs at OS-thread-startup time,
    /// and bumping the counters here would let wall-clock timing shift
    /// the step numbering of an otherwise deterministic schedule.
    pub(crate) fn start_point(&self, me: ThreadId) -> Result<(), Aborted> {
        let mut inner = self.inner.lock();
        if inner.g.current.is_none() && !inner.g.aborting {
            self.reschedule(&mut inner)?;
        }
        self.wait_until_picked(&mut inner, me)?;
        self.record(&mut inner, me, EventKind::ThreadStart);
        Ok(())
    }

    /// Executes one instrumented operation for `me`: schedule point, then
    /// the operation's semantics.
    pub(crate) fn op(&self, me: ThreadId, op: PendingOp) -> Result<OpOutcome, Aborted> {
        let mut inner = self.inner.lock();
        if inner.g.aborting {
            // The run is over (deadlock found, limits, …). Threads still
            // executing user code — e.g. guards releasing during an
            // unwind — must not touch the schedule.
            return Err(Aborted);
        }
        self.announce_and_wait(&mut inner, me, op.clone())?;
        // Fault injection: a first (non-re-entrant) acquisition may panic
        // instead of acquiring, modeling an exception thrown on entry to a
        // synchronized region. The panic unwinds the virtual thread outside
        // the controller lock and surfaces as `Outcome::ProgramPanic`.
        if let PendingOp::Acquire { lock, site, mode } = &op {
            let first = inner
                .g
                .locks
                .get(lock)
                .map(|s| match mode {
                    AcquireMode::Exclusive => s.owner != Some(me),
                    AcquireMode::Shared => !s.holds_shared(me),
                })
                .unwrap_or(true);
            if first
                && inner
                    .g
                    .faults
                    .as_mut()
                    .map(|f| f.fire_panic_on_acquire())
                    .unwrap_or(false)
            {
                let msg = format!("injected fault: panic on acquire at {site}");
                self.config.obs.emit(&df_obs::TraceEvent::FaultInjected {
                    step: inner.g.steps,
                    kind: "panic_on_acquire".to_string(),
                    thread: me,
                });
                drop(inner);
                panic::panic_any(InjectedFault(msg));
            }
        }
        self.execute(&mut inner, me, op)
    }

    fn execute(
        &self,
        inner: &mut Inner,
        me: ThreadId,
        op: PendingOp,
    ) -> Result<OpOutcome, Aborted> {
        match op {
            PendingOp::Start => {
                self.record(inner, me, EventKind::ThreadStart);
                Ok(OpOutcome::Unit)
            }
            PendingOp::Acquire { lock, site, mode } => {
                let state = inner.g.locks.entry(lock).or_default();
                match mode {
                    AcquireMode::Exclusive => {
                        if state.owner == Some(me) {
                            state.count += 1;
                            self.record(inner, me, EventKind::reacquire(lock, site));
                        } else {
                            debug_assert!(
                                state.owner.is_none() && state.readers.is_empty(),
                                "picked thread must not block"
                            );
                            state.owner = Some(me);
                            state.count = 1;
                            let ts = inner.g.thread_mut(me);
                            let held = ts.lock_stack.clone();
                            let mut context = ts.context_stack.clone();
                            context.push(site);
                            ts.lock_stack.push(lock);
                            ts.context_stack.push(site);
                            self.record(inner, me, EventKind::acquire(lock, site, held, context));
                            self.config.obs.counters().add_acquires_observed(1);
                        }
                    }
                    AcquireMode::Shared => {
                        debug_assert!(state.owner.is_none(), "picked thread must not block");
                        let reentrant = state.holds_shared(me);
                        state.readers.push(me);
                        if reentrant {
                            self.record(inner, me, EventKind::reacquire(lock, site));
                        } else {
                            let ts = inner.g.thread_mut(me);
                            let held = ts.lock_stack.clone();
                            let mut context = ts.context_stack.clone();
                            context.push(site);
                            ts.lock_stack.push(lock);
                            ts.context_stack.push(site);
                            self.record(
                                inner,
                                me,
                                EventKind::acquire(lock, site, held, context).shared(),
                            );
                            self.config.obs.counters().add_acquires_observed(1);
                        }
                    }
                }
                Ok(OpOutcome::Unit)
            }
            PendingOp::TryAcquire { lock, site, mode } => {
                let state = inner.g.locks.entry(lock).or_default();
                let acquired = state.can_acquire(me, mode);
                if acquired {
                    match mode {
                        AcquireMode::Exclusive => {
                            if state.owner == Some(me) {
                                state.count += 1;
                            } else {
                                state.owner = Some(me);
                                state.count = 1;
                                let ts = inner.g.thread_mut(me);
                                ts.lock_stack.push(lock);
                                ts.context_stack.push(site);
                            }
                        }
                        AcquireMode::Shared => {
                            let reentrant = state.holds_shared(me);
                            state.readers.push(me);
                            if !reentrant {
                                let ts = inner.g.thread_mut(me);
                                ts.lock_stack.push(lock);
                                ts.context_stack.push(site);
                            }
                        }
                    }
                    self.config.obs.counters().add_acquires_observed(1);
                }
                self.record(
                    inner,
                    me,
                    EventKind::try_acquire(lock, site, acquired).with_mode(mode),
                );
                Ok(OpOutcome::Acquired(acquired))
            }
            PendingOp::Release { lock, site } => {
                // A shared hold is released by retiring one reader entry;
                // the thread itself knows only "release", the mode is
                // derived from what it actually holds.
                let shared_hold = inner
                    .g
                    .locks
                    .get(&lock)
                    .map(|s| s.owner != Some(me) && s.holds_shared(me))
                    .unwrap_or(false);
                if shared_hold {
                    let state = inner
                        .g
                        .locks
                        .get_mut(&lock)
                        .expect("lock state present: shared hold was checked above");
                    let pos = state
                        .readers
                        .iter()
                        .rposition(|&r| r == me)
                        .expect("reader entry present: shared hold was checked above");
                    state.readers.remove(pos);
                    if state.readers.contains(&me) {
                        self.record(inner, me, EventKind::rerelease(lock, site));
                    } else {
                        let ts = inner.g.thread_mut(me);
                        if let Some(pos) = ts.lock_stack.iter().rposition(|&l| l == lock) {
                            ts.lock_stack.remove(pos);
                            ts.context_stack.remove(pos);
                        }
                        self.record(inner, me, EventKind::release(lock, site).shared());
                    }
                    return Ok(OpOutcome::Unit);
                }
                let state = match inner.g.locks.get_mut(&lock) {
                    Some(s) if s.owner == Some(me) => s,
                    _ => panic!("thread {me} released lock {lock} it does not hold"),
                };
                if state.count > 1 {
                    state.count -= 1;
                    self.record(inner, me, EventKind::rerelease(lock, site));
                } else if inner
                    .g
                    .faults
                    .as_mut()
                    .map(|f| f.fire_leak_release())
                    .unwrap_or(false)
                {
                    // Fault injection: the outermost release is silently
                    // dropped — the lock stays owned and the thread's lock
                    // stack keeps the hold, so later contenders block
                    // forever and the stall detector must classify it.
                    self.config.obs.emit(&df_obs::TraceEvent::FaultInjected {
                        step: inner.g.steps,
                        kind: "leak_release".to_string(),
                        thread: me,
                    });
                } else {
                    let state = inner
                        .g
                        .locks
                        .get_mut(&lock)
                        .expect("lock state present: ownership was checked above");
                    state.count = 0;
                    state.owner = None;
                    let ts = inner.g.thread_mut(me);
                    if let Some(pos) = ts.lock_stack.iter().rposition(|&l| l == lock) {
                        ts.lock_stack.remove(pos);
                        ts.context_stack.remove(pos);
                    }
                    self.record(inner, me, EventKind::release(lock, site));
                }
                Ok(OpOutcome::Unit)
            }
            PendingOp::Call { site, receiver } => {
                inner.g.thread_mut(me).enter_call(site, receiver);
                self.record(inner, me, EventKind::Call { site });
                Ok(OpOutcome::Unit)
            }
            PendingOp::Return => {
                inner.g.thread_mut(me).exit_call();
                self.record(inner, me, EventKind::Return);
                Ok(OpOutcome::Unit)
            }
            PendingOp::New { site, kind } => {
                let owner = inner.g.thread(me).current_receiver();
                let index = inner.g.thread_mut(me).alloc_index(site);
                let obj = inner.g.trace.objects_mut().create(kind, site, owner, index);
                self.record(inner, me, EventKind::New { obj });
                Ok(OpOutcome::Created(obj))
            }
            PendingOp::Join { target } => {
                self.record(inner, me, EventKind::Join { target });
                Ok(OpOutcome::Unit)
            }
            PendingOp::Yield => {
                self.record(inner, me, EventKind::Yield);
                Ok(OpOutcome::Unit)
            }
            PendingOp::Work { units } => {
                self.record(inner, me, EventKind::Work { units });
                Ok(OpOutcome::Unit)
            }
            PendingOp::WaitRelease { lock, site } => {
                let state = match inner.g.locks.get_mut(&lock) {
                    Some(s) if s.owner == Some(me) => s,
                    _ => panic!("thread {me} called wait on monitor {lock} it does not hold"),
                };
                let count = state.count;
                state.count = 0;
                state.owner = None;
                state.wait_set.push(me);
                let ts = inner.g.thread_mut(me);
                if let Some(pos) = ts.lock_stack.iter().rposition(|&l| l == lock) {
                    ts.lock_stack.remove(pos);
                    ts.context_stack.remove(pos);
                }
                self.record(inner, me, EventKind::wait(lock, site));
                Ok(OpOutcome::Count(count))
            }
            PendingOp::CondWaitRelease {
                condvar,
                lock,
                site,
            } => {
                let state = match inner.g.locks.get_mut(&lock) {
                    Some(s) if s.owner == Some(me) => s,
                    _ => panic!(
                        "thread {me} waited on condvar {condvar} without holding lock {lock}"
                    ),
                };
                let count = state.count;
                state.count = 0;
                state.owner = None;
                inner.g.condvars.entry(condvar).or_default().push(me);
                let ts = inner.g.thread_mut(me);
                if let Some(pos) = ts.lock_stack.iter().rposition(|&l| l == lock) {
                    ts.lock_stack.remove(pos);
                    ts.context_stack.remove(pos);
                }
                self.record(inner, me, EventKind::cond_wait(condvar, lock, site));
                Ok(OpOutcome::Count(count))
            }
            PendingOp::AwaitCondNotify { .. } => {
                // Enabled-ness already required the notify (or an injected
                // spurious wakeup); nothing to execute.
                Ok(OpOutcome::Unit)
            }
            PendingOp::CondNotify { condvar, site, all } => {
                // Unlike a monitor notify, the notifier need not hold the
                // associated lock (Rust `Condvar` semantics).
                let ws = inner.g.condvars.entry(condvar).or_default();
                if all {
                    ws.clear();
                } else if !ws.is_empty() {
                    ws.remove(0);
                }
                self.record(inner, me, EventKind::cond_notify(condvar, site, all));
                Ok(OpOutcome::Unit)
            }
            PendingOp::AwaitNotify { .. } => {
                // Enabled-ness already required the notify to have
                // happened; nothing to execute.
                Ok(OpOutcome::Unit)
            }
            PendingOp::WaitReacquire { lock, count, site } => {
                let state = inner.g.locks.entry(lock).or_default();
                debug_assert!(state.owner.is_none(), "picked thread must not block");
                state.owner = Some(me);
                state.count = count;
                // Reacquisition restores the monitor silently (Java wait
                // semantics); the original Acquire event already carries
                // the lock dependency. The held stack is restored with
                // the wait site as context.
                let ts = inner.g.thread_mut(me);
                ts.lock_stack.push(lock);
                ts.context_stack.push(site);
                Ok(OpOutcome::Unit)
            }
            PendingOp::AtomicBegin { site } => {
                self.record(inner, me, EventKind::AtomicBegin { site });
                Ok(OpOutcome::Unit)
            }
            PendingOp::AtomicEnd => {
                self.record(inner, me, EventKind::AtomicEnd);
                Ok(OpOutcome::Unit)
            }
            PendingOp::Access { var, site, write } => {
                let held = inner.g.thread(me).lock_stack.clone();
                self.record(
                    inner,
                    me,
                    EventKind::Access {
                        var,
                        site,
                        write,
                        held,
                    },
                );
                Ok(OpOutcome::Unit)
            }
            PendingOp::Notify { lock, site, all } => {
                let state = inner.g.locks.entry(lock).or_default();
                if state.owner != Some(me) {
                    panic!("thread {me} called notify on monitor {lock} it does not hold");
                }
                if all {
                    state.wait_set.clear();
                } else if !state.wait_set.is_empty() {
                    state.wait_set.remove(0);
                }
                self.record(inner, me, EventKind::notify(lock, site, all));
                Ok(OpOutcome::Unit)
            }
            PendingOp::Spawn { .. } | PendingOp::Exit => {
                unreachable!("spawn/exit use dedicated entry points")
            }
        }
    }

    /// Spawn entry point: registers the child under the schedule point of
    /// the parent and launches its OS thread.
    pub(crate) fn spawn<F>(
        self: &Arc<Self>,
        me: ThreadId,
        site: Label,
        name: String,
        f: F,
    ) -> Result<(ThreadId, ObjId), Aborted>
    where
        F: FnOnce(&TCtx) + Send + 'static,
    {
        let mut inner = self.inner.lock();
        if inner.g.aborting {
            return Err(Aborted);
        }
        self.announce_and_wait(&mut inner, me, PendingOp::Spawn { site })?;
        // Create the thread object (threads are objects, §2.2) in the
        // parent's allocation context.
        let owner = inner.g.thread(me).current_receiver();
        let index = inner.g.thread_mut(me).alloc_index(site);
        let child_obj = inner.g.trace.objects_mut().create_named(
            ObjKind::Thread,
            site,
            owner,
            index,
            Some(name.clone()),
        );
        let child = ThreadId::new(u32::try_from(inner.g.threads.len()).expect("thread overflow"));
        inner
            .g
            .threads
            .push(ThreadState::new(child, name, child_obj));
        inner.g.trace.bind_thread(child, child_obj);
        self.config.sink.thread_bound(child, child_obj);
        // Account the child's start schedule point now, while we hold the
        // parent's critical section — not when the OS gets around to
        // starting the thread (see `start_point`).
        inner.g.steps += 1;
        inner.g.progress += 1;
        self.record(&mut inner, me, EventKind::Spawn { child, child_obj });
        // The child is now Announced(Start); the strategy may pick it at
        // any later schedule point. Launch the OS thread that will carry
        // it.
        let ctl = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name(format!("vthread-{child}"))
            .spawn(move || ctl.thread_main(child, f))
            .expect("failed to spawn OS thread");
        inner.handles.push(handle);
        // Fault injection: a program spawn may fan out one extra busy
        // thread the program never asked for (bounded by the plan's cap).
        if inner
            .g
            .faults
            .as_mut()
            .map(|f| f.fire_runaway_spawn())
            .unwrap_or(false)
        {
            self.config.obs.emit(&df_obs::TraceEvent::FaultInjected {
                step: inner.g.steps,
                kind: "runaway_spawn".to_string(),
                thread: me,
            });
            self.spawn_runaway(&mut inner, me);
        }
        Ok((child, child_obj))
    }

    /// Registers and launches one injected runaway thread: it burns a few
    /// schedule points with yields and exits, competing with program
    /// threads for the scheduler's attention.
    fn spawn_runaway(self: &Arc<Self>, inner: &mut Inner, parent: ThreadId) {
        let site = Label::new("<fault:runaway-spawn>");
        let n = inner.g.fault_log().runaway_spawns;
        let name = format!("fault-runaway-{n}");
        let child_obj = inner.g.trace.objects_mut().create_named(
            ObjKind::Thread,
            site,
            None,
            Vec::new(),
            Some(name.clone()),
        );
        let child = ThreadId::new(u32::try_from(inner.g.threads.len()).expect("thread overflow"));
        inner
            .g
            .threads
            .push(ThreadState::new(child, name, child_obj));
        inner.g.trace.bind_thread(child, child_obj);
        self.config.sink.thread_bound(child, child_obj);
        inner.g.steps += 1;
        inner.g.progress += 1;
        self.record(inner, parent, EventKind::Spawn { child, child_obj });
        let ctl = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name(format!("vthread-{child}"))
            .spawn(move || {
                ctl.thread_main(child, |ctx: &TCtx| {
                    for _ in 0..16 {
                        ctx.yield_now();
                    }
                })
            })
            .expect("failed to spawn OS thread");
        inner.handles.push(handle);
    }

    /// Body of every virtual thread's OS thread.
    pub(crate) fn thread_main<F>(self: Arc<Self>, me: ThreadId, f: F)
    where
        F: FnOnce(&TCtx),
    {
        let ctx = TCtx::new(Arc::clone(&self), me);
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            // First schedule point: wait to be picked before running any
            // program code.
            if self.start_point(me).is_err() {
                return;
            }
            f(&ctx);
        }));
        match result {
            Ok(()) => {}
            Err(payload) => {
                if payload.downcast_ref::<AbortToken>().is_none() {
                    let msg = payload
                        .downcast_ref::<InjectedFault>()
                        .map(|f| f.0.clone())
                        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "opaque panic payload".to_string());
                    let mut inner = self.inner.lock();
                    self.abort(&mut inner, Outcome::ProgramPanic(msg));
                }
            }
        }
        self.thread_exit(me);
    }

    /// Marks `me` finished and hands the token onward.
    fn thread_exit(&self, me: ThreadId) {
        let mut inner = self.inner.lock();
        if !matches!(inner.g.thread(me).status, ThreadStatus::Finished) {
            self.record(&mut inner, me, EventKind::ThreadExit);
            inner.g.thread_mut(me).status = ThreadStatus::Finished;
            inner.g.progress += 1;
        }
        if inner.g.current == Some(me) {
            inner.g.current = None;
        }
        if !inner.g.aborting {
            let _ = self.reschedule(&mut inner);
        }
        self.cond.notify_all();
    }
}
