//! Internal mutable state of the controller.

use std::collections::HashMap;

use df_events::{AcquireMode, IndexFrame, Label, ObjId, ThreadId, Trace};

use crate::fault::{FaultLog, FaultState};
use crate::pending::PendingOp;

/// Lifecycle status of a virtual thread.
#[derive(Clone, PartialEq, Eq, Debug)]
pub(crate) enum ThreadStatus {
    /// The thread has announced `PendingOp` and waits to be picked.
    Announced(PendingOp),
    /// The thread holds the token and is executing program code.
    Running,
    /// The thread has exited.
    Finished,
}

/// Per-thread bookkeeping: the paper's `LockSet[t]` and `Context[t]` stacks
/// plus the light-weight execution-indexing state of §2.4.2.
#[derive(Debug)]
pub(crate) struct ThreadState {
    pub(crate) id: ThreadId,
    pub(crate) name: String,
    pub(crate) obj: ObjId,
    pub(crate) status: ThreadStatus,
    /// Stack of locks held (first acquisitions only), outermost first.
    pub(crate) lock_stack: Vec<ObjId>,
    /// Stack of acquisition sites, aligned with `lock_stack`.
    pub(crate) context_stack: Vec<Label>,
    /// Execution-indexing call stack: `(site, count)` frames.
    pub(crate) call_stack: Vec<IndexFrame>,
    /// Per-depth statement counters (`Counters[d][c]` in the paper).
    pub(crate) counters: Vec<HashMap<Label, u32>>,
    /// Stack of method receivers (`this`), aligned with call depth; used by
    /// k-object-sensitive abstraction.
    pub(crate) receiver_stack: Vec<Option<ObjId>>,
}

impl ThreadState {
    pub(crate) fn new(id: ThreadId, name: String, obj: ObjId) -> Self {
        ThreadState {
            id,
            name,
            obj,
            status: ThreadStatus::Announced(PendingOp::Start),
            lock_stack: Vec::new(),
            context_stack: Vec::new(),
            call_stack: Vec::new(),
            counters: vec![HashMap::new()],
            receiver_stack: Vec::new(),
        }
    }

    /// Depth of the execution-indexing stack (the paper's `d`).
    pub(crate) fn depth(&self) -> usize {
        self.call_stack.len()
    }

    /// Increment `Counters[d][site]` and return the new count.
    pub(crate) fn bump_counter(&mut self, site: Label) -> u32 {
        let d = self.depth();
        if self.counters.len() <= d {
            self.counters.resize_with(d + 1, HashMap::new);
        }
        let c = self.counters[d].entry(site).or_insert(0);
        *c += 1;
        *c
    }

    /// Handle `c: Call(m)`: bump the counter, push the frame, reset the
    /// next depth's counters (per §2.4.2).
    pub(crate) fn enter_call(&mut self, site: Label, receiver: Option<ObjId>) {
        let q = self.bump_counter(site);
        self.call_stack.push(IndexFrame::new(site, q));
        let d = self.depth();
        if self.counters.len() <= d {
            self.counters.resize_with(d + 1, HashMap::new);
        }
        self.counters[d].clear();
        self.receiver_stack.push(receiver);
    }

    /// Handle `c: Return(m)`.
    pub(crate) fn exit_call(&mut self) {
        self.call_stack.pop();
        self.receiver_stack.pop();
    }

    /// Snapshot the execution index for an allocation at `site`
    /// (call stack plus the allocation frame), per §2.4.2.
    pub(crate) fn alloc_index(&mut self, site: Label) -> Vec<IndexFrame> {
        let q = self.bump_counter(site);
        let mut index = self.call_stack.clone();
        index.push(IndexFrame::new(site, q));
        index
    }

    /// The innermost receiver (`this` of the current method), if any.
    pub(crate) fn current_receiver(&self) -> Option<ObjId> {
        self.receiver_stack.iter().rev().flatten().next().copied()
    }

    pub(crate) fn is_alive(&self) -> bool {
        !matches!(self.status, ThreadStatus::Finished)
    }
}

/// State of one re-entrant virtual lock (a Java-style monitor, or an
/// rwlock when shared acquisitions are used).
#[derive(Debug, Default)]
pub(crate) struct LockState {
    pub(crate) owner: Option<ThreadId>,
    /// Usage counter (§2.1 footnote 2): recursion depth of the owner.
    pub(crate) count: u32,
    /// Threads holding the lock in shared (read) mode. Duplicate entries
    /// encode re-entrant read holds; disjoint from `owner` by
    /// construction (a writer excludes readers and vice versa).
    pub(crate) readers: Vec<ThreadId>,
    /// Threads parked in `Object.wait()` on this monitor, FIFO.
    pub(crate) wait_set: Vec<ThreadId>,
}

impl LockState {
    /// Whether `t` could complete an *exclusive* acquisition right now.
    pub(crate) fn is_free_for(&self, t: ThreadId) -> bool {
        self.can_acquire(t, AcquireMode::Exclusive)
    }

    /// Whether `t` could complete an acquisition in `mode` right now:
    /// shared needs no writer; exclusive needs no other writer and no
    /// readers (re-entrancy exempts the owner itself).
    pub(crate) fn can_acquire(&self, t: ThreadId, mode: AcquireMode) -> bool {
        match mode {
            AcquireMode::Exclusive => match self.owner {
                Some(o) => o == t,
                None => self.readers.is_empty(),
            },
            AcquireMode::Shared => self.owner.is_none(),
        }
    }

    /// Whether `t` currently holds this lock in shared mode.
    pub(crate) fn holds_shared(&self, t: ThreadId) -> bool {
        self.readers.contains(&t)
    }
}

/// The whole controller state, guarded by one mutex.
#[derive(Debug)]
pub(crate) struct Global {
    pub(crate) threads: Vec<ThreadState>,
    pub(crate) locks: HashMap<ObjId, LockState>,
    /// Condition-variable wait sets, FIFO per condvar.
    pub(crate) condvars: HashMap<ObjId, Vec<ThreadId>>,
    pub(crate) trace: Trace,
    pub(crate) record_trace: bool,
    /// The thread currently allowed to run (token holder).
    pub(crate) current: Option<ThreadId>,
    pub(crate) steps: u64,
    /// Events recorded so far — the sequence number of the next event.
    /// Counted even when `record_trace` is off so streaming sinks see
    /// the exact sequence numbers a recorded trace would carry.
    pub(crate) event_seq: u64,
    pub(crate) aborting: bool,
    pub(crate) final_outcome: Option<crate::Outcome>,
    /// Monotonic progress counter for the hang watchdog.
    pub(crate) progress: u64,
    /// Live fault-injection state, if a plan was configured.
    pub(crate) faults: Option<FaultState>,
}

impl Global {
    pub(crate) fn new(record_trace: bool) -> Self {
        Global {
            threads: Vec::new(),
            locks: HashMap::new(),
            condvars: HashMap::new(),
            trace: Trace::new(),
            record_trace,
            current: None,
            steps: 0,
            event_seq: 0,
            aborting: false,
            final_outcome: None,
            progress: 0,
            faults: None,
        }
    }

    /// The log of faults injected so far (empty without a plan).
    pub(crate) fn fault_log(&self) -> FaultLog {
        self.faults.as_ref().map(|f| f.log).unwrap_or_default()
    }

    pub(crate) fn thread(&self, t: ThreadId) -> &ThreadState {
        &self.threads[t.as_usize()]
    }

    pub(crate) fn thread_mut(&mut self, t: ThreadId) -> &mut ThreadState {
        &mut self.threads[t.as_usize()]
    }

    pub(crate) fn lock_state(&self, l: ObjId) -> Option<&LockState> {
        self.locks.get(&l)
    }

    /// Whether `t`'s announced operation can execute now (the paper's
    /// `Enabled(s)` membership test).
    pub(crate) fn is_enabled(&self, t: ThreadId) -> bool {
        let ts = self.thread(t);
        match &ts.status {
            ThreadStatus::Finished => false,
            ThreadStatus::Running => false,
            ThreadStatus::Announced(op) => match op {
                PendingOp::Acquire { lock, mode, .. } => self
                    .lock_state(*lock)
                    .map(|l| l.can_acquire(t, *mode))
                    .unwrap_or(true),
                PendingOp::Join { target } => {
                    matches!(self.thread(*target).status, ThreadStatus::Finished)
                }
                // Parked in a wait set until a notify removes the thread.
                PendingOp::AwaitNotify { lock } => self
                    .lock_state(*lock)
                    .map(|l| !l.wait_set.contains(&t))
                    .unwrap_or(true),
                PendingOp::AwaitCondNotify { condvar } => self
                    .condvars
                    .get(condvar)
                    .map(|ws| !ws.contains(&t))
                    .unwrap_or(true),
                // Re-acquisition after a notify needs the lock free (for
                // both monitor waits and condvar waits, which release an
                // exclusive hold).
                PendingOp::WaitReacquire { lock, .. } => self
                    .lock_state(*lock)
                    .map(|l| l.is_free_for(t))
                    .unwrap_or(true),
                // A try-acquire never blocks: it is always enabled and
                // reports failure instead of waiting.
                _ => true,
            },
        }
    }

    /// All enabled threads in id order.
    pub(crate) fn enabled(&self) -> Vec<ThreadId> {
        self.threads
            .iter()
            .filter(|ts| self.is_enabled(ts.id))
            .map(|ts| ts.id)
            .collect()
    }

    /// All alive (non-finished) threads in id order.
    pub(crate) fn alive(&self) -> Vec<ThreadId> {
        self.threads
            .iter()
            .filter(|ts| ts.is_alive())
            .map(|ts| ts.id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lbl(s: &str) -> Label {
        Label::new(s)
    }

    #[test]
    fn execution_indexing_matches_paper_example() {
        // Paper §2.4.2:
        //  main() { for i in 0..5 { foo(); } }          // call site 3
        //  foo()  { bar(); bar(); }                     // call sites 6, 7
        //  bar()  { for i in 0..3 { new Object(); } }   // alloc site 11
        // First object created: absI3 = [11,1, 6,1, 3,1]
        // Last object created:  absI3 = [11,3, 7,1, 3,5]
        let mut ts = ThreadState::new(ThreadId::new(0), "main".into(), ObjId::new(0));
        let (s3, s6, s7, s11) = (lbl("main:3"), lbl("foo:6"), lbl("foo:7"), lbl("bar:11"));
        let mut first: Option<Vec<IndexFrame>> = None;
        let mut last: Option<Vec<IndexFrame>> = None;
        for _ in 0..5 {
            ts.enter_call(s3, None); // call foo()
            for call_site in [s6, s7] {
                ts.enter_call(call_site, None); // call bar()
                for _ in 0..3 {
                    let idx = ts.alloc_index(s11);
                    if first.is_none() {
                        first = Some(idx.clone());
                    }
                    last = Some(idx);
                }
                ts.exit_call();
            }
            ts.exit_call();
        }
        // Paper lists innermost-first [c1,q1,...]; our index is
        // outermost-first, so reverse expectations.
        let first = first.unwrap();
        assert_eq!(
            first,
            vec![
                IndexFrame::new(s3, 1),
                IndexFrame::new(s6, 1),
                IndexFrame::new(s11, 1)
            ]
        );
        let last = last.unwrap();
        assert_eq!(
            last,
            vec![
                IndexFrame::new(s3, 5),
                IndexFrame::new(s7, 1),
                IndexFrame::new(s11, 3)
            ]
        );
    }

    #[test]
    fn counters_reset_per_fresh_context() {
        let mut ts = ThreadState::new(ThreadId::new(0), "t".into(), ObjId::new(0));
        let (call, alloc) = (lbl("c:1"), lbl("a:1"));
        ts.enter_call(call, None);
        assert_eq!(ts.alloc_index(alloc).last().unwrap().count, 1);
        assert_eq!(ts.alloc_index(alloc).last().unwrap().count, 2);
        ts.exit_call();
        // Re-entering the same call from the same outer context is a new
        // invocation: its inner counters start fresh.
        ts.enter_call(call, None);
        assert_eq!(ts.alloc_index(alloc).last().unwrap().count, 1);
        // ...and the second call frame carries count 2.
        assert_eq!(ts.call_stack.last().unwrap().count, 2);
    }

    #[test]
    fn receiver_stack_tracks_innermost_receiver() {
        let mut ts = ThreadState::new(ThreadId::new(0), "t".into(), ObjId::new(0));
        assert_eq!(ts.current_receiver(), None);
        ts.enter_call(lbl("m:1"), Some(ObjId::new(9)));
        ts.enter_call(lbl("m:2"), None); // static method keeps outer receiver
        assert_eq!(ts.current_receiver(), Some(ObjId::new(9)));
        ts.exit_call();
        ts.exit_call();
        assert_eq!(ts.current_receiver(), None);
    }

    #[test]
    fn lock_state_reentrancy() {
        let mut l = LockState::default();
        let t = ThreadId::new(1);
        assert!(l.is_free_for(t));
        l.owner = Some(t);
        l.count = 1;
        assert!(l.is_free_for(t));
        assert!(!l.is_free_for(ThreadId::new(2)));
    }

    #[test]
    fn mode_aware_acquirability() {
        let (t1, t2) = (ThreadId::new(1), ThreadId::new(2));
        // Readers coexist with each other but block writers.
        let mut l = LockState::default();
        l.readers.push(t1);
        assert!(l.can_acquire(t2, AcquireMode::Shared));
        assert!(!l.can_acquire(t2, AcquireMode::Exclusive));
        assert!(l.holds_shared(t1));
        // A reader cannot upgrade: its own shared hold blocks the write.
        assert!(!l.can_acquire(t1, AcquireMode::Exclusive));
        // A writer blocks readers, including itself (no downgrade).
        let w = LockState {
            owner: Some(t1),
            count: 1,
            ..LockState::default()
        };
        assert!(!w.can_acquire(t2, AcquireMode::Shared));
        assert!(!w.can_acquire(t1, AcquireMode::Shared));
        assert!(w.can_acquire(t1, AcquireMode::Exclusive));
    }

    #[test]
    fn enabled_excludes_blocked_and_finished() {
        let mut g = Global::new(true);
        g.threads.push(ThreadState::new(
            ThreadId::new(0),
            "a".into(),
            ObjId::new(0),
        ));
        g.threads.push(ThreadState::new(
            ThreadId::new(1),
            "b".into(),
            ObjId::new(1),
        ));
        let lock = ObjId::new(5);
        g.locks.insert(
            lock,
            LockState {
                owner: Some(ThreadId::new(0)),
                count: 1,
                ..LockState::default()
            },
        );
        g.thread_mut(ThreadId::new(1)).status = ThreadStatus::Announced(PendingOp::Acquire {
            lock,
            site: lbl("e:1"),
            mode: AcquireMode::Exclusive,
        });
        // Thread 0 announced Start → enabled. Thread 1 wants a held lock →
        // disabled.
        assert_eq!(g.enabled(), vec![ThreadId::new(0)]);
        g.thread_mut(ThreadId::new(0)).status = ThreadStatus::Finished;
        assert!(g.enabled().is_empty());
        assert_eq!(g.alive(), vec![ThreadId::new(1)]);
    }

    #[test]
    fn shared_acquire_enabled_alongside_readers_and_trys_never_block() {
        let mut g = Global::new(true);
        for i in 0..3 {
            g.threads.push(ThreadState::new(
                ThreadId::new(i),
                format!("t{i}"),
                ObjId::new(i),
            ));
        }
        let lock = ObjId::new(9);
        g.locks.insert(
            lock,
            LockState {
                readers: vec![ThreadId::new(0)],
                ..LockState::default()
            },
        );
        g.thread_mut(ThreadId::new(1)).status = ThreadStatus::Announced(PendingOp::Acquire {
            lock,
            site: lbl("s:1"),
            mode: AcquireMode::Shared,
        });
        g.thread_mut(ThreadId::new(2)).status = ThreadStatus::Announced(PendingOp::TryAcquire {
            lock,
            site: lbl("s:2"),
            mode: AcquireMode::Exclusive,
        });
        // Reader 1 may join reader 0; the try-writer is enabled too (it
        // will fail, not block).
        assert!(g.is_enabled(ThreadId::new(1)));
        assert!(g.is_enabled(ThreadId::new(2)));
        // A blocking writer would be disabled.
        g.thread_mut(ThreadId::new(2)).status = ThreadStatus::Announced(PendingOp::Acquire {
            lock,
            site: lbl("s:3"),
            mode: AcquireMode::Exclusive,
        });
        assert!(!g.is_enabled(ThreadId::new(2)));
    }

    #[test]
    fn cond_wait_set_disables_until_notified() {
        let mut g = Global::new(true);
        g.threads.push(ThreadState::new(
            ThreadId::new(0),
            "w".into(),
            ObjId::new(0),
        ));
        let cv = ObjId::new(7);
        g.condvars.insert(cv, vec![ThreadId::new(0)]);
        g.thread_mut(ThreadId::new(0)).status =
            ThreadStatus::Announced(PendingOp::AwaitCondNotify { condvar: cv });
        assert!(!g.is_enabled(ThreadId::new(0)));
        g.condvars.get_mut(&cv).unwrap().clear();
        assert!(g.is_enabled(ThreadId::new(0)));
    }

    #[test]
    fn join_enabled_only_after_target_finishes() {
        let mut g = Global::new(true);
        g.threads.push(ThreadState::new(
            ThreadId::new(0),
            "a".into(),
            ObjId::new(0),
        ));
        g.threads.push(ThreadState::new(
            ThreadId::new(1),
            "b".into(),
            ObjId::new(1),
        ));
        g.thread_mut(ThreadId::new(0)).status = ThreadStatus::Announced(PendingOp::Join {
            target: ThreadId::new(1),
        });
        assert!(!g.is_enabled(ThreadId::new(0)));
        g.thread_mut(ThreadId::new(1)).status = ThreadStatus::Finished;
        assert!(g.is_enabled(ThreadId::new(0)));
    }
}
