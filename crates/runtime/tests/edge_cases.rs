//! Edge-case coverage for the virtual runtime: non-lexical lock orders,
//! deep re-entrancy, guard idioms, execution-indexing across threads.

use df_events::{site, EventKind, ObjKind, ThreadId};
use df_runtime::{
    strategy::{FifoStrategy, RoundRobinStrategy},
    Outcome, RunConfig, Shared, VirtualRuntime,
};

fn rt() -> VirtualRuntime {
    VirtualRuntime::new(RunConfig::default())
}

#[test]
fn non_lexical_release_order_is_supported() {
    // Acquire a, b; release a first (hand-over-hand) — the paper assumes
    // nested order but notes the extension is easy; we support it.
    let r = rt().run(Box::new(FifoStrategy::new()), |ctx| {
        let a = ctx.new_lock(site!("nl a"));
        let b = ctx.new_lock(site!("nl b"));
        let c = ctx.new_lock(site!("nl c"));
        ctx.acquire(&a, site!("nl acq a"));
        ctx.acquire(&b, site!("nl acq b"));
        ctx.release(&a, site!("nl rel a")); // out of order
        ctx.acquire(&c, site!("nl acq c"));
        ctx.release(&c, site!("nl rel c"));
        ctx.release(&b, site!("nl rel b"));
    });
    assert!(r.outcome.is_completed(), "{:?}", r.outcome);
    // The acquire of c sees only b held (a was released).
    let acq_c = r
        .trace
        .events()
        .iter()
        .find_map(|e| match &e.kind {
            EventKind::Acquire { site, held, .. } if site.as_str().contains("nl acq c") => {
                Some(held.clone())
            }
            _ => None,
        })
        .expect("acquire of c recorded");
    assert_eq!(acq_c.len(), 1);
}

#[test]
fn deep_reentrancy_balances() {
    let r = rt().run(Box::new(FifoStrategy::new()), |ctx| {
        let l = ctx.new_lock(site!("deep l"));
        for _ in 0..5 {
            ctx.acquire(&l, site!("deep acq"));
        }
        for _ in 0..5 {
            ctx.release(&l, site!("deep rel"));
        }
        // Fully released: another acquire records a fresh first
        // acquisition.
        ctx.acquire(&l, site!("deep acq2"));
        ctx.release(&l, site!("deep rel2"));
    });
    assert!(r.outcome.is_completed());
    assert_eq!(r.trace.acquire_count(), 2, "two first acquisitions");
    let reacquires = r
        .trace
        .events()
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Reacquire { .. }))
        .count();
    assert_eq!(reacquires, 4);
}

#[test]
fn unbalanced_release_after_reentrancy_is_an_error() {
    let r = rt().run(Box::new(FifoStrategy::new()), |ctx| {
        let l = ctx.new_lock(site!("ub l"));
        ctx.acquire(&l, site!("ub acq"));
        ctx.release(&l, site!("ub rel"));
        ctx.release(&l, site!("ub rel again")); // not held anymore
    });
    assert!(matches!(r.outcome, Outcome::ProgramPanic(_)));
}

#[test]
fn guard_unlock_is_idempotent_with_drop() {
    let r = rt().run(Box::new(FifoStrategy::new()), |ctx| {
        let l = ctx.new_lock(site!("gi l"));
        let g = ctx.lock(&l, site!("gi acq"));
        g.unlock(); // explicit early release; drop must not double-release
        ctx.acquire(&l, site!("gi acq2"));
        ctx.release(&l, site!("gi rel2"));
    });
    assert!(r.outcome.is_completed(), "{:?}", r.outcome);
}

#[test]
fn child_threads_get_fresh_execution_index_state() {
    // Each spawned thread starts its own §2.4.2 counters: two children
    // allocating at the same site in the same position get count 1 each,
    // and are distinguished by their *thread* identity instead.
    let r = rt().run(Box::new(RoundRobinStrategy::new()), |ctx| {
        let collected = Shared::new(Vec::<df_events::ObjId>::new());
        let mut children = Vec::new();
        for i in 0..2 {
            let collected = collected.clone();
            children.push(ctx.spawn(site!("ei spawn"), &format!("c{i}"), move |ctx| {
                let l = ctx.new_lock(site!("ei child alloc"));
                collected.with(|v| v.push(l.id()));
            }));
        }
        for c in &children {
            ctx.join(c, site!());
        }
    });
    assert!(r.outcome.is_completed());
    let locks: Vec<_> = r
        .trace
        .objects()
        .iter()
        .filter(|m| m.kind == ObjKind::Lock)
        .collect();
    assert_eq!(locks.len(), 2);
    // Same site, same index (both are the thread's first allocation at
    // depth 0) — identical absI, distinct only dynamically.
    assert_eq!(locks[0].site, locks[1].site);
    assert_eq!(locks[0].index, locks[1].index);
}

#[test]
fn spawn_tree_exec_indices_nest() {
    // main spawns A; A spawns B. B's thread object carries A's call
    // context at the spawn site.
    let r = rt().run(Box::new(RoundRobinStrategy::new()), |ctx| {
        let a = ctx.spawn(site!("tree spawn A"), "A", |ctx| {
            ctx.scope(site!("tree A.run"), || {
                let b = ctx.spawn(site!("tree spawn B"), "B", |ctx| ctx.yield_now());
                ctx.join(&b, site!());
            });
        });
        ctx.join(&a, site!());
    });
    assert!(r.outcome.is_completed());
    let b_obj = r.trace.thread_obj(ThreadId::new(2)).expect("B bound");
    let meta = r.trace.objects().get(b_obj);
    assert_eq!(
        meta.index.len(),
        2,
        "call frame + spawn frame: {:?}",
        meta.index
    );
    assert!(meta.index[0].site.as_str().contains("tree A.run"));
    assert!(meta.index[1].site.as_str().contains("tree spawn B"));
}

#[test]
fn many_threads_many_locks_scale_smoke() {
    // 12 threads hammering 6 locks in ascending order: no deadlock, and
    // the run stays within the step budget.
    let r = rt().run(Box::new(RoundRobinStrategy::new()), |ctx| {
        let locks: Vec<_> = (0..6).map(|_| ctx.new_lock(site!("scale lock"))).collect();
        let mut children = Vec::new();
        for i in 0..12 {
            let locks = locks.clone();
            children.push(
                ctx.spawn(site!("scale spawn"), &format!("s{i}"), move |ctx| {
                    for round in 0..3 {
                        let x = (i + round) % locks.len();
                        let y = (x + 1) % locks.len();
                        let (lo, hi) = if x < y { (x, y) } else { (y, x) };
                        let g1 = ctx.lock(&locks[lo], site!("scale lo"));
                        let g2 = ctx.lock(&locks[hi], site!("scale hi"));
                        drop(g2);
                        drop(g1);
                        ctx.yield_now();
                    }
                }),
            );
        }
        for c in &children {
            ctx.join(c, site!());
        }
    });
    assert!(r.outcome.is_completed(), "{:?}", r.outcome);
    assert!(r.steps < 10_000);
}

#[test]
fn shared_cell_is_plain_data() {
    let cell = Shared::new(vec![1u8]);
    let clone = cell.clone();
    clone.with(|v| v.push(2));
    assert_eq!(cell.get(), vec![1, 2]);
}
