//! Monitor wait/notify semantics (Java `Object.wait`/`notify` model).

use df_events::site;
use df_runtime::{strategy::RoundRobinStrategy, Outcome, RunConfig, Shared, VirtualRuntime};

fn rt() -> VirtualRuntime {
    VirtualRuntime::new(RunConfig::default())
}

#[test]
fn producer_consumer_handshake_completes() {
    let r = rt().run(Box::new(RoundRobinStrategy::new()), |ctx| {
        let monitor = ctx.new_lock(site!("queue monitor"));
        let queue = Shared::new(Vec::<u32>::new());
        let q2 = queue.clone();
        let consumer = ctx.spawn(site!("spawn consumer"), "consumer", move |ctx| {
            ctx.acquire(&monitor, site!("consumer lock"));
            while q2.with(|q| q.is_empty()) {
                ctx.wait(&monitor, site!("consumer wait"));
            }
            let v = q2.with(|q| q.pop().unwrap());
            assert_eq!(v, 42);
            ctx.release(&monitor, site!("consumer unlock"));
        });
        let q3 = queue.clone();
        let producer = ctx.spawn(site!("spawn producer"), "producer", move |ctx| {
            ctx.work(3);
            ctx.acquire(&monitor, site!("producer lock"));
            q3.with(|q| q.push(42));
            ctx.notify(&monitor, site!("producer notify"));
            ctx.release(&monitor, site!("producer unlock"));
        });
        ctx.join(&consumer, site!());
        ctx.join(&producer, site!());
    });
    assert!(r.outcome.is_completed(), "{:?}", r.outcome);
}

#[test]
fn lost_signal_is_a_communication_stall() {
    // The consumer waits forever: the producer already notified before
    // the consumer started waiting (a classic lost-wakeup bug).
    let r = rt().run(Box::new(RoundRobinStrategy::new()), |ctx| {
        let monitor = ctx.new_lock(site!("ls monitor"));
        let producer = ctx.spawn(site!("ls spawn p"), "producer", move |ctx| {
            ctx.acquire(&monitor, site!("p lock"));
            ctx.notify(&monitor, site!("p notify (too early)"));
            ctx.release(&monitor, site!("p unlock"));
        });
        ctx.join(&producer, site!());
        let consumer = ctx.spawn(site!("ls spawn c"), "consumer", move |ctx| {
            ctx.acquire(&monitor, site!("c lock"));
            ctx.wait(&monitor, site!("c wait (never notified)"));
            ctx.release(&monitor, site!("c unlock"));
        });
        ctx.join(&consumer, site!());
    });
    match r.outcome {
        Outcome::CommunicationStall { ref waiting, .. } => {
            assert_eq!(waiting.len(), 1);
        }
        ref other => panic!("expected communication stall, got {other:?}"),
    }
}

#[test]
fn wait_releases_reentrant_monitor_fully_and_restores_count() {
    let r = rt().run(Box::new(RoundRobinStrategy::new()), |ctx| {
        let monitor = ctx.new_lock(site!("re monitor"));
        let flag = Shared::new(false);
        let f2 = flag.clone();
        let waiter = ctx.spawn(site!("re spawn w"), "waiter", move |ctx| {
            // Acquire twice (re-entrant), then wait: the monitor must be
            // fully released so the signaler can enter.
            ctx.acquire(&monitor, site!("w outer"));
            ctx.acquire(&monitor, site!("w inner"));
            while !f2.get() {
                ctx.wait(&monitor, site!("w wait"));
            }
            // Count restored: two releases must balance.
            ctx.release(&monitor, site!("w rel inner"));
            ctx.release(&monitor, site!("w rel outer"));
        });
        let f3 = flag.clone();
        let signaler = ctx.spawn(site!("re spawn s"), "signaler", move |ctx| {
            ctx.work(3);
            ctx.acquire(&monitor, site!("s lock"));
            f3.with(|f| *f = true);
            ctx.notify_all(&monitor, site!("s notify"));
            ctx.release(&monitor, site!("s unlock"));
        });
        ctx.join(&waiter, site!());
        ctx.join(&signaler, site!());
    });
    assert!(r.outcome.is_completed(), "{:?}", r.outcome);
}

#[test]
fn notify_all_wakes_every_waiter() {
    let r = rt().run(Box::new(RoundRobinStrategy::new()), |ctx| {
        let monitor = ctx.new_lock(site!("na monitor"));
        let released = Shared::new(false);
        let mut waiters = Vec::new();
        for i in 0..3 {
            let released = released.clone();
            waiters.push(
                ctx.spawn(site!("na spawn w"), &format!("w{i}"), move |ctx| {
                    ctx.acquire(&monitor, site!("na w lock"));
                    while !released.get() {
                        ctx.wait(&monitor, site!("na w wait"));
                    }
                    ctx.release(&monitor, site!("na w unlock"));
                }),
            );
        }
        let released2 = released.clone();
        let broadcaster = ctx.spawn(site!("na spawn b"), "broadcast", move |ctx| {
            ctx.work(5);
            ctx.acquire(&monitor, site!("na b lock"));
            released2.with(|r| *r = true);
            ctx.notify_all(&monitor, site!("na b notify all"));
            ctx.release(&monitor, site!("na b unlock"));
        });
        for w in &waiters {
            ctx.join(w, site!());
        }
        ctx.join(&broadcaster, site!());
    });
    assert!(r.outcome.is_completed(), "{:?}", r.outcome);
}

#[test]
fn single_notify_wakes_exactly_one() {
    // Two waiters, one notify, then a second notify: both complete; with
    // only one notify the run would stall.
    let r = rt().run(Box::new(RoundRobinStrategy::new()), |ctx| {
        let monitor = ctx.new_lock(site!("one monitor"));
        let tokens = Shared::new(0u32);
        let mut waiters = Vec::new();
        for i in 0..2 {
            let tokens = tokens.clone();
            waiters.push(
                ctx.spawn(site!("one spawn w"), &format!("w{i}"), move |ctx| {
                    ctx.acquire(&monitor, site!("one w lock"));
                    while tokens.with(|t| {
                        if *t > 0 {
                            *t -= 1;
                            false
                        } else {
                            true
                        }
                    }) {
                        ctx.wait(&monitor, site!("one w wait"));
                    }
                    ctx.release(&monitor, site!("one w unlock"));
                }),
            );
        }
        let tokens2 = tokens.clone();
        let signaler = ctx.spawn(site!("one spawn s"), "signaler", move |ctx| {
            for _ in 0..2 {
                ctx.work(4);
                ctx.acquire(&monitor, site!("one s lock"));
                tokens2.with(|t| *t += 1);
                ctx.notify(&monitor, site!("one s notify"));
                ctx.release(&monitor, site!("one s unlock"));
            }
        });
        for w in &waiters {
            ctx.join(w, site!());
        }
        ctx.join(&signaler, site!());
    });
    assert!(r.outcome.is_completed(), "{:?}", r.outcome);
}

#[test]
fn wait_without_monitor_is_a_program_error() {
    let r = rt().run(Box::new(RoundRobinStrategy::new()), |ctx| {
        let monitor = ctx.new_lock(site!("err monitor"));
        ctx.wait(&monitor, site!("err wait"));
    });
    assert!(
        matches!(r.outcome, Outcome::ProgramPanic(_)),
        "{:?}",
        r.outcome
    );
}

#[test]
fn notify_without_monitor_is_a_program_error() {
    let r = rt().run(Box::new(RoundRobinStrategy::new()), |ctx| {
        let monitor = ctx.new_lock(site!("err2 monitor"));
        ctx.notify(&monitor, site!("err2 notify"));
    });
    assert!(
        matches!(r.outcome, Outcome::ProgramPanic(_)),
        "{:?}",
        r.outcome
    );
}

#[test]
fn resource_deadlock_detection_unaffected_by_waiters() {
    // A waiting bystander must not confuse the lock-cycle detector.
    let r = rt().run(Box::new(RoundRobinStrategy::new()), |ctx| {
        let m = ctx.new_lock(site!("by monitor"));
        let a = ctx.new_lock(site!("by a"));
        let b = ctx.new_lock(site!("by b"));
        let bystander = ctx.spawn(site!("by spawn w"), "bystander", move |ctx| {
            ctx.acquire(&m, site!("by w lock"));
            ctx.wait(&m, site!("by w wait")); // never notified
            ctx.release(&m, site!("by w unlock"));
        });
        let t1 = ctx.spawn(site!("by spawn 1"), "t1", move |ctx| {
            ctx.acquire(&a, site!("by t1 a"));
            ctx.yield_now();
            ctx.acquire(&b, site!("by t1 b"));
            ctx.release(&b, site!());
            ctx.release(&a, site!());
        });
        let t2 = ctx.spawn(site!("by spawn 2"), "t2", move |ctx| {
            ctx.acquire(&b, site!("by t2 b"));
            ctx.yield_now();
            ctx.acquire(&a, site!("by t2 a"));
            ctx.release(&a, site!());
            ctx.release(&b, site!());
        });
        ctx.join(&t1, site!());
        ctx.join(&t2, site!());
        ctx.join(&bystander, site!());
    });
    let w = r.outcome.deadlock().expect("lock cycle found");
    assert_eq!(w.len(), 2, "cycle excludes the waiting bystander");
}
