//! Witness replay: re-running a recorded schedule reproduces the same
//! outcome, including deadlocks.

use df_events::site;
use df_events::ThreadId;
use df_runtime::{
    strategy::ReplayStrategy, Directive, Outcome, RunConfig, StateView, Strategy, StrategyStats,
    TCtx, VirtualRuntime,
};

/// A tiny deterministic pseudo-random strategy (LCG), standing in for the
/// fuzzer crate's `SimpleRandomChecker` to avoid a dev-dependency cycle.
struct Lcg {
    state: u64,
}

impl Lcg {
    fn new(seed: u64) -> Self {
        Lcg {
            state: seed
                .wrapping_mul(2862933555777941757)
                .wrapping_add(3037000493),
        }
    }
}

impl Strategy for Lcg {
    fn pick(&mut self, _view: &StateView<'_>, enabled: &[ThreadId]) -> Directive {
        self.state = self
            .state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let i = (self.state >> 33) as usize % enabled.len();
        Directive::Run(enabled[i])
    }

    fn finish(&mut self) -> StrategyStats {
        StrategyStats::default()
    }
}

fn simple_random(seed: u64) -> Box<dyn Strategy> {
    Box::new(Lcg::new(seed))
}

fn contended_program(ctx: &TCtx) {
    let a = ctx.new_lock(site!("rp a"));
    let b = ctx.new_lock(site!("rp b"));
    let t1 = ctx.spawn(site!("rp spawn 1"), "t1", move |ctx| {
        ctx.acquire(&a, site!("rp t1 a"));
        ctx.yield_now();
        ctx.acquire(&b, site!("rp t1 b"));
        ctx.release(&b, site!());
        ctx.release(&a, site!());
    });
    let t2 = ctx.spawn(site!("rp spawn 2"), "t2", move |ctx| {
        ctx.acquire(&b, site!("rp t2 b"));
        ctx.yield_now();
        ctx.acquire(&a, site!("rp t2 a"));
        ctx.release(&a, site!());
        ctx.release(&b, site!());
    });
    ctx.join(&t1, site!());
    ctx.join(&t2, site!());
}

#[test]
fn replay_reproduces_a_random_runs_trace_exactly() {
    let rt = VirtualRuntime::new(RunConfig::default());
    let original = rt.run(simple_random(5), contended_program);
    let replay = rt.run(
        Box::new(ReplayStrategy::from_trace(&original.trace)),
        contended_program,
    );
    assert_eq!(original.outcome.is_deadlock(), replay.outcome.is_deadlock());
    assert_eq!(original.trace.events(), replay.trace.events());
    assert_eq!(replay.stats.extra["divergences"], 0.0);
}

#[test]
fn replay_reproduces_a_deadlock_witness() {
    // Find a seed whose random run deadlocks, then replay it.
    let rt = VirtualRuntime::new(RunConfig::default());
    let mut deadlocked = None;
    for seed in 0..50 {
        let r = rt.run(simple_random(seed), contended_program);
        if r.outcome.is_deadlock() {
            deadlocked = Some(r);
            break;
        }
    }
    let original = deadlocked.expect("some seed of 50 deadlocks");
    let replay = rt.run(
        Box::new(ReplayStrategy::from_trace(&original.trace)),
        contended_program,
    );
    let (w1, w2) = (
        original.outcome.deadlock().expect("original"),
        replay.outcome.deadlock().expect("replay must deadlock too"),
    );
    assert_eq!(w1.threads(), w2.threads());
    assert_eq!(w1.locks(), w2.locks());
}

#[test]
fn replay_diverges_gracefully_on_short_schedules() {
    // An empty schedule: every pick diverges to the fallback, and the
    // program still completes (lowest-id-first is deadlock-prone here
    // only if the interleaving forces it; FIFO-like order does not).
    let rt = VirtualRuntime::new(RunConfig::default());
    let r = rt.run(Box::new(ReplayStrategy::new(Vec::new())), |ctx| {
        contended_program(ctx)
    });
    match r.outcome {
        Outcome::Completed | Outcome::Deadlock(_) => {}
        ref o => panic!("unexpected outcome {o:?}"),
    }
    assert!(r.stats.extra["divergences"] > 0.0);
}
