//! Dynamic instances of labeled statements (paper §2.1).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{Label, ObjId, ThreadId};

/// One observed dynamic statement instance.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Event {
    /// Global sequence number of this event in the execution.
    pub seq: u64,
    /// The thread that executed the statement.
    pub thread: ThreadId,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// Creates an event.
    pub fn new(seq: u64, thread: ThreadId, kind: EventKind) -> Self {
        Event { seq, thread, kind }
    }
}

/// The kinds of dynamic statement instances of §2.1 of the paper, plus a few
/// bookkeeping events the substrates emit (`Blocked`, `Spawn`, …) that the
/// analyses use for debugging output and happens-before experiments.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum EventKind {
    /// `c: Acquire(l)` — the thread acquired lock `lock` at site `site`
    /// while already holding `held` (innermost last). `context` are the
    /// labels of the acquire statements for `held ∪ {lock}`, i.e. the
    /// paper's `C` with `context.len() == held.len() + 1` and the current
    /// site as the last element.
    ///
    /// Per §2.1 (footnote 2), only 0→1 acquisitions are recorded.
    Acquire {
        /// The acquired lock.
        lock: ObjId,
        /// Acquisition site.
        site: Label,
        /// Locks already held, outermost first.
        held: Vec<ObjId>,
        /// Acquisition sites of `held` followed by `site`.
        context: Vec<Label>,
    },
    /// `c: Release(l)` — usage count dropped 1→0.
    Release {
        /// The released lock.
        lock: ObjId,
        /// Release site.
        site: Label,
    },
    /// A re-entrant acquisition (usage count ≥ 1 → ≥ 2); ignored by the
    /// analyses but kept for debugging.
    Reacquire {
        /// The re-acquired lock.
        lock: ObjId,
        /// Acquisition site.
        site: Label,
    },
    /// A re-entrant release (usage count stays ≥ 1).
    Rerelease {
        /// The released lock.
        lock: ObjId,
        /// Release site.
        site: Label,
    },
    /// `c: Call(m)` — method entry for execution indexing.
    Call {
        /// Call-site label.
        site: Label,
    },
    /// `c: Return(m)` — method exit.
    Return,
    /// `c: o = new (o', T)` — object allocation; metadata lives in the
    /// trace's [`crate::ObjectTable`].
    New {
        /// The created object.
        obj: ObjId,
    },
    /// The thread spawned a child thread.
    Spawn {
        /// Id of the spawned thread.
        child: ThreadId,
        /// The thread object representing the child.
        child_obj: ObjId,
    },
    /// The thread began executing.
    ThreadStart,
    /// The thread finished executing.
    ThreadExit,
    /// The thread joined on another thread.
    Join {
        /// The joined thread.
        target: ThreadId,
    },
    /// The thread started waiting for a lock held by another thread.
    Blocked {
        /// The contended lock.
        lock: ObjId,
    },
    /// The thread stopped waiting and acquired the contended lock.
    Unblocked {
        /// The formerly contended lock.
        lock: ObjId,
    },
    /// An explicit scheduling point with no other effect.
    Yield,
    /// Simulated computation (a schedule point with a cost attached).
    Work {
        /// Abstract cost units.
        units: u32,
    },
    /// A shared-variable access (for the race-detection checker): `var`
    /// was read or written at `site` while holding `held`.
    Access {
        /// The accessed variable.
        var: ObjId,
        /// Access site.
        site: Label,
        /// `true` for a write.
        write: bool,
        /// Locks held at the access, outermost first.
        held: Vec<ObjId>,
    },
    /// Entry into a block the programmer intends to be atomic (for the
    /// atomicity-violation checker).
    AtomicBegin {
        /// Block label.
        site: Label,
    },
    /// Exit from an atomic block.
    AtomicEnd,
    /// The thread began waiting on a monitor (releasing it), Java
    /// `Object.wait()` style.
    Wait {
        /// The monitor.
        lock: ObjId,
        /// Wait site.
        site: Label,
    },
    /// The thread notified one or all waiters of a monitor.
    Notify {
        /// The monitor.
        lock: ObjId,
        /// Notify site.
        site: Label,
        /// `true` for `notifyAll`.
        all: bool,
    },
}

impl EventKind {
    /// Returns the lock involved, if this is a lock operation.
    pub fn lock(&self) -> Option<ObjId> {
        match self {
            EventKind::Acquire { lock, .. }
            | EventKind::Release { lock, .. }
            | EventKind::Reacquire { lock, .. }
            | EventKind::Rerelease { lock, .. }
            | EventKind::Blocked { lock }
            | EventKind::Unblocked { lock }
            | EventKind::Wait { lock, .. }
            | EventKind::Notify { lock, .. } => Some(*lock),
            _ => None,
        }
    }

    /// Whether this is a first (0→1) acquisition event.
    pub fn is_acquire(&self) -> bool {
        matches!(self, EventKind::Acquire { .. })
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {} ", self.seq, self.thread)?;
        match &self.kind {
            EventKind::Acquire {
                lock, site, held, ..
            } => {
                write!(f, "acquire {lock} at {site} holding {held:?}")
            }
            EventKind::Release { lock, site } => write!(f, "release {lock} at {site}"),
            EventKind::Reacquire { lock, site } => write!(f, "reacquire {lock} at {site}"),
            EventKind::Rerelease { lock, site } => write!(f, "rerelease {lock} at {site}"),
            EventKind::Call { site } => write!(f, "call at {site}"),
            EventKind::Return => write!(f, "return"),
            EventKind::New { obj } => write!(f, "new {obj}"),
            EventKind::Spawn { child, child_obj } => write!(f, "spawn {child} ({child_obj})"),
            EventKind::ThreadStart => write!(f, "start"),
            EventKind::ThreadExit => write!(f, "exit"),
            EventKind::Join { target } => write!(f, "join {target}"),
            EventKind::Blocked { lock } => write!(f, "blocked on {lock}"),
            EventKind::Unblocked { lock } => write!(f, "unblocked from {lock}"),
            EventKind::Yield => write!(f, "yield"),
            EventKind::Work { units } => write!(f, "work {units}"),
            EventKind::Access {
                var,
                site,
                write,
                held,
            } => write!(
                f,
                "{} {var} at {site} holding {held:?}",
                if *write { "write" } else { "read" }
            ),
            EventKind::AtomicBegin { site } => write!(f, "atomic-begin at {site}"),
            EventKind::AtomicEnd => write!(f, "atomic-end"),
            EventKind::Wait { lock, site } => write!(f, "wait on {lock} at {site}"),
            EventKind::Notify { lock, site, all } => {
                write!(
                    f,
                    "{} {lock} at {site}",
                    if *all { "notify-all" } else { "notify" }
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(s: &str) -> Label {
        Label::new(s)
    }

    #[test]
    fn lock_accessor_covers_lock_ops() {
        let lk = ObjId::new(1);
        let acq = EventKind::Acquire {
            lock: lk,
            site: l("a:1"),
            held: vec![],
            context: vec![l("a:1")],
        };
        assert_eq!(acq.lock(), Some(lk));
        assert!(acq.is_acquire());
        assert_eq!(
            EventKind::Release {
                lock: lk,
                site: l("a:2")
            }
            .lock(),
            Some(lk)
        );
        assert_eq!(EventKind::Yield.lock(), None);
        assert!(!EventKind::Return.is_acquire());
        assert_eq!(
            EventKind::Wait {
                lock: lk,
                site: l("w:1")
            }
            .lock(),
            Some(lk)
        );
        assert_eq!(
            EventKind::Notify {
                lock: lk,
                site: l("n:1"),
                all: true
            }
            .lock(),
            Some(lk)
        );
    }

    #[test]
    fn wait_notify_serde_round_trip() {
        for kind in [
            EventKind::Wait {
                lock: ObjId::new(2),
                site: l("ws:1"),
            },
            EventKind::Notify {
                lock: ObjId::new(2),
                site: l("ws:2"),
                all: true,
            },
        ] {
            let e = Event::new(1, ThreadId::new(0), kind);
            let json = serde_json::to_string(&e).unwrap();
            let back: Event = serde_json::from_str(&json).unwrap();
            assert_eq!(e, back);
        }
    }

    #[test]
    fn display_is_nonempty_for_all_kinds() {
        let lk = ObjId::new(0);
        let kinds = vec![
            EventKind::Acquire {
                lock: lk,
                site: l("d:1"),
                held: vec![],
                context: vec![l("d:1")],
            },
            EventKind::Release {
                lock: lk,
                site: l("d:2"),
            },
            EventKind::Reacquire {
                lock: lk,
                site: l("d:3"),
            },
            EventKind::Rerelease {
                lock: lk,
                site: l("d:4"),
            },
            EventKind::Call { site: l("d:5") },
            EventKind::Return,
            EventKind::New { obj: lk },
            EventKind::Spawn {
                child: ThreadId::new(1),
                child_obj: lk,
            },
            EventKind::ThreadStart,
            EventKind::ThreadExit,
            EventKind::Join {
                target: ThreadId::new(1),
            },
            EventKind::Blocked { lock: lk },
            EventKind::Unblocked { lock: lk },
            EventKind::Yield,
            EventKind::Work { units: 3 },
            EventKind::Wait {
                lock: lk,
                site: l("d:6"),
            },
            EventKind::Notify {
                lock: lk,
                site: l("d:7"),
                all: false,
            },
            EventKind::Notify {
                lock: lk,
                site: l("d:8"),
                all: true,
            },
        ];
        for (i, k) in kinds.into_iter().enumerate() {
            let e = Event::new(i as u64, ThreadId::new(0), k);
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn serde_round_trip() {
        let e = Event::new(
            7,
            ThreadId::new(2),
            EventKind::Acquire {
                lock: ObjId::new(3),
                site: l("sr:1"),
                held: vec![ObjId::new(1)],
                context: vec![l("sr:0"), l("sr:1")],
            },
        );
        let json = serde_json::to_string(&e).unwrap();
        let back: Event = serde_json::from_str(&json).unwrap();
        assert_eq!(e, back);
    }
}
