//! Dynamic instances of labeled statements (paper §2.1).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{Label, ObjId, ThreadId};

/// One observed dynamic statement instance.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Event {
    /// Global sequence number of this event in the execution.
    pub seq: u64,
    /// The thread that executed the statement.
    pub thread: ThreadId,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// Creates an event.
    pub fn new(seq: u64, thread: ThreadId, kind: EventKind) -> Self {
        Event { seq, thread, kind }
    }
}

/// Whether a lock operation takes the lock exclusively (a mutex, an
/// rwlock writer) or shared (an rwlock reader).
///
/// The mode rides on [`EventKind::Acquire`], [`EventKind::Release`],
/// [`EventKind::Blocked`] and [`EventKind::TryAcquire`]. Exclusive is
/// the default everywhere: plain-mutex traces serialize without a
/// `mode` field (byte-identical to the pre-mode format) and traces
/// missing the field deserialize as exclusive.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default, Serialize, Deserialize)]
pub enum AcquireMode {
    /// A write/mutex acquisition: at most one holder.
    #[default]
    Exclusive,
    /// A read acquisition: any number of concurrent shared holders.
    Shared,
}

impl AcquireMode {
    /// Whether this is the exclusive (write) mode.
    pub fn is_exclusive(&self) -> bool {
        matches!(self, AcquireMode::Exclusive)
    }

    /// Whether this is the shared (read) mode.
    pub fn is_shared(&self) -> bool {
        matches!(self, AcquireMode::Shared)
    }

    /// The site-naming word reports use: `"write"` / `"read"`.
    pub fn as_str(&self) -> &'static str {
        match self {
            AcquireMode::Exclusive => "write",
            AcquireMode::Shared => "read",
        }
    }
}

impl fmt::Display for AcquireMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The kinds of dynamic statement instances of §2.1 of the paper, plus a few
/// bookkeeping events the substrates emit (`Blocked`, `Spawn`, …) that the
/// analyses use for debugging output and happens-before experiments.
///
/// Construct values with the builder-style constructors
/// ([`EventKind::acquire`], [`EventKind::release`], …, chained with
/// [`EventKind::shared`]) instead of struct literals — the constructors
/// fill the mode defaults the serialized formats rely on.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum EventKind {
    /// `c: Acquire(l)` — the thread acquired lock `lock` at site `site`
    /// while already holding `held` (innermost last). `context` are the
    /// labels of the acquire statements for `held ∪ {lock}`, i.e. the
    /// paper's `C` with `context.len() == held.len() + 1` and the current
    /// site as the last element.
    ///
    /// Per §2.1 (footnote 2), only 0→1 acquisitions are recorded.
    Acquire {
        /// The acquired lock.
        lock: ObjId,
        /// Acquisition site.
        site: Label,
        /// Locks already held, outermost first.
        held: Vec<ObjId>,
        /// Acquisition sites of `held` followed by `site`.
        context: Vec<Label>,
        /// Exclusive (write) or shared (read) acquisition.
        mode: AcquireMode,
    },
    /// `c: Release(l)` — usage count dropped 1→0.
    Release {
        /// The released lock.
        lock: ObjId,
        /// Release site.
        site: Label,
        /// The mode of the hold being released.
        mode: AcquireMode,
    },
    /// A re-entrant acquisition (usage count ≥ 1 → ≥ 2); ignored by the
    /// analyses but kept for debugging.
    Reacquire {
        /// The re-acquired lock.
        lock: ObjId,
        /// Acquisition site.
        site: Label,
    },
    /// A re-entrant release (usage count stays ≥ 1).
    Rerelease {
        /// The released lock.
        lock: ObjId,
        /// Release site.
        site: Label,
    },
    /// `c: Call(m)` — method entry for execution indexing.
    Call {
        /// Call-site label.
        site: Label,
    },
    /// `c: Return(m)` — method exit.
    Return,
    /// `c: o = new (o', T)` — object allocation; metadata lives in the
    /// trace's [`crate::ObjectTable`].
    New {
        /// The created object.
        obj: ObjId,
    },
    /// The thread spawned a child thread.
    Spawn {
        /// Id of the spawned thread.
        child: ThreadId,
        /// The thread object representing the child.
        child_obj: ObjId,
    },
    /// The thread began executing.
    ThreadStart,
    /// The thread finished executing.
    ThreadExit,
    /// The thread joined on another thread.
    Join {
        /// The joined thread.
        target: ThreadId,
    },
    /// The thread started waiting for a lock held by another thread.
    Blocked {
        /// The contended lock.
        lock: ObjId,
        /// The mode of the blocked acquisition.
        mode: AcquireMode,
    },
    /// The thread stopped waiting and acquired the contended lock.
    Unblocked {
        /// The formerly contended lock.
        lock: ObjId,
    },
    /// An explicit scheduling point with no other effect.
    Yield,
    /// Simulated computation (a schedule point with a cost attached).
    Work {
        /// Abstract cost units.
        units: u32,
    },
    /// A shared-variable access (for the race-detection checker): `var`
    /// was read or written at `site` while holding `held`.
    Access {
        /// The accessed variable.
        var: ObjId,
        /// Access site.
        site: Label,
        /// `true` for a write.
        write: bool,
        /// Locks held at the access, outermost first.
        held: Vec<ObjId>,
    },
    /// Entry into a block the programmer intends to be atomic (for the
    /// atomicity-violation checker).
    AtomicBegin {
        /// Block label.
        site: Label,
    },
    /// Exit from an atomic block.
    AtomicEnd,
    /// The thread began waiting on a monitor (releasing it), Java
    /// `Object.wait()` style.
    Wait {
        /// The monitor.
        lock: ObjId,
        /// Wait site.
        site: Label,
    },
    /// The thread notified one or all waiters of a monitor.
    Notify {
        /// The monitor.
        lock: ObjId,
        /// Notify site.
        site: Label,
        /// `true` for `notifyAll`.
        all: bool,
    },
    /// A non-blocking acquisition attempt (`try_lock` / `try_read` /
    /// `try_write`). A successful try puts `lock` on the thread's held
    /// stack like an acquire, but records no lock dependency: a try
    /// never blocks, so it can never be the blocking edge of a cycle.
    TryAcquire {
        /// The attempted lock.
        lock: ObjId,
        /// Attempt site.
        site: Label,
        /// Whether the attempt succeeded.
        acquired: bool,
        /// Exclusive (write) or shared (read) attempt.
        mode: AcquireMode,
    },
    /// The thread released `lock` and parked on condition variable
    /// `condvar` (std-style `Condvar::wait`, as opposed to the
    /// monitor-integrated [`EventKind::Wait`]). The surrounding
    /// release/reacquire of `lock` are emitted as ordinary
    /// `Release`/`Acquire` events, so the dependency relation stays
    /// balanced; this event marks the communication edge.
    CondWait {
        /// The condition variable.
        condvar: ObjId,
        /// The lock released for the duration of the wait.
        lock: ObjId,
        /// Wait site.
        site: Label,
    },
    /// The thread notified one or all waiters of condition variable
    /// `condvar`.
    CondNotify {
        /// The condition variable.
        condvar: ObjId,
        /// Notify site.
        site: Label,
        /// `true` for `notify_all`.
        all: bool,
    },
}

impl EventKind {
    // -- builder-style constructors ------------------------------------

    /// A first (0→1) exclusive acquisition; chain [`EventKind::shared`]
    /// for a read acquisition.
    pub fn acquire(lock: ObjId, site: Label, held: Vec<ObjId>, context: Vec<Label>) -> Self {
        EventKind::Acquire {
            lock,
            site,
            held,
            context,
            mode: AcquireMode::Exclusive,
        }
    }

    /// A 1→0 exclusive release; chain [`EventKind::shared`] for a read
    /// release.
    pub fn release(lock: ObjId, site: Label) -> Self {
        EventKind::Release {
            lock,
            site,
            mode: AcquireMode::Exclusive,
        }
    }

    /// A re-entrant acquisition.
    pub fn reacquire(lock: ObjId, site: Label) -> Self {
        EventKind::Reacquire { lock, site }
    }

    /// A re-entrant release.
    pub fn rerelease(lock: ObjId, site: Label) -> Self {
        EventKind::Rerelease { lock, site }
    }

    /// A blocked exclusive acquisition; chain [`EventKind::shared`] for
    /// a blocked read.
    pub fn blocked(lock: ObjId) -> Self {
        EventKind::Blocked {
            lock,
            mode: AcquireMode::Exclusive,
        }
    }

    /// A formerly blocked acquisition that succeeded.
    pub fn unblocked(lock: ObjId) -> Self {
        EventKind::Unblocked { lock }
    }

    /// A non-blocking exclusive attempt; chain [`EventKind::shared`] for
    /// `try_read`.
    pub fn try_acquire(lock: ObjId, site: Label, acquired: bool) -> Self {
        EventKind::TryAcquire {
            lock,
            site,
            acquired,
            mode: AcquireMode::Exclusive,
        }
    }

    /// A monitor wait (`Object.wait()` style).
    pub fn wait(lock: ObjId, site: Label) -> Self {
        EventKind::Wait { lock, site }
    }

    /// A monitor notify.
    pub fn notify(lock: ObjId, site: Label, all: bool) -> Self {
        EventKind::Notify { lock, site, all }
    }

    /// A condition-variable wait releasing `lock`.
    pub fn cond_wait(condvar: ObjId, lock: ObjId, site: Label) -> Self {
        EventKind::CondWait {
            condvar,
            lock,
            site,
        }
    }

    /// A condition-variable notify.
    pub fn cond_notify(condvar: ObjId, site: Label, all: bool) -> Self {
        EventKind::CondNotify { condvar, site, all }
    }

    /// Turns a mode-carrying event (`Acquire`, `Release`, `Blocked`,
    /// `TryAcquire`) into its shared (read) variant.
    ///
    /// # Panics
    ///
    /// Panics if the event kind carries no acquisition mode — calling
    /// `.shared()` on, say, a `Yield` is a programming error.
    pub fn shared(self) -> Self {
        self.with_mode(AcquireMode::Shared)
    }

    /// Sets the acquisition mode of a mode-carrying event.
    ///
    /// # Panics
    ///
    /// Panics if the event kind carries no acquisition mode.
    pub fn with_mode(mut self, new: AcquireMode) -> Self {
        match &mut self {
            EventKind::Acquire { mode, .. }
            | EventKind::Release { mode, .. }
            | EventKind::Blocked { mode, .. }
            | EventKind::TryAcquire { mode, .. } => *mode = new,
            other => panic!("event kind {other:?} carries no acquisition mode"),
        }
        self
    }

    // -- accessors -----------------------------------------------------

    /// Returns the lock involved, if this is a lock operation.
    pub fn lock(&self) -> Option<ObjId> {
        match self {
            EventKind::Acquire { lock, .. }
            | EventKind::Release { lock, .. }
            | EventKind::Reacquire { lock, .. }
            | EventKind::Rerelease { lock, .. }
            | EventKind::Blocked { lock, .. }
            | EventKind::Unblocked { lock }
            | EventKind::Wait { lock, .. }
            | EventKind::Notify { lock, .. }
            | EventKind::TryAcquire { lock, .. }
            | EventKind::CondWait { lock, .. } => Some(*lock),
            _ => None,
        }
    }

    /// Returns the acquisition mode, if this event kind carries one.
    pub fn mode(&self) -> Option<AcquireMode> {
        match self {
            EventKind::Acquire { mode, .. }
            | EventKind::Release { mode, .. }
            | EventKind::Blocked { mode, .. }
            | EventKind::TryAcquire { mode, .. } => Some(*mode),
            _ => None,
        }
    }

    /// Whether this is a first (0→1) acquisition event.
    pub fn is_acquire(&self) -> bool {
        matches!(self, EventKind::Acquire { .. })
    }
}

// ---------------------------------------------------------------------------
// Hand-written serde for EventKind.
//
// The vendored derive has no `#[serde(default, skip_serializing_if)]`,
// and the artifact contract needs exactly that: the `mode` field of
// `Acquire`/`Release`/`Blocked`/`TryAcquire` is omitted when exclusive
// (so plain-mutex traces stay byte-identical to the pre-mode format)
// and defaults to exclusive when missing (so old artifacts decode).
// These impls mirror the derive's externally-tagged layout — field
// order is declaration order — plus that one rule.
// ---------------------------------------------------------------------------

/// Serializes the optional trailing `mode` field: present iff shared.
fn mode_entries(mode: &AcquireMode) -> usize {
    if mode.is_shared() {
        1
    } else {
        0
    }
}

impl Serialize for EventKind {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeStructVariant;
        const NAME: &str = "EventKind";
        macro_rules! variant {
            ($idx:expr, $tag:expr, $mode:expr, [$(($k:expr, $v:expr)),* $(,)?]) => {{
                let extra = $mode.map(mode_entries).unwrap_or(0);
                let mut len = extra;
                $(let _ = $k; len += 1;)*
                let mut state =
                    serializer.serialize_struct_variant(NAME, $idx, $tag, len)?;
                $(state.serialize_field($k, $v)?;)*
                if let Some(mode) = $mode {
                    if mode.is_shared() {
                        state.serialize_field("mode", mode)?;
                    }
                }
                state.end()
            }};
        }
        match self {
            EventKind::Acquire {
                lock,
                site,
                held,
                context,
                mode,
            } => variant!(
                0,
                "Acquire",
                Some(mode),
                [
                    ("lock", lock),
                    ("site", site),
                    ("held", held),
                    ("context", context),
                ]
            ),
            EventKind::Release { lock, site, mode } => {
                variant!(1, "Release", Some(mode), [("lock", lock), ("site", site)])
            }
            EventKind::Reacquire { lock, site } => variant!(
                2,
                "Reacquire",
                None::<&AcquireMode>,
                [("lock", lock), ("site", site)]
            ),
            EventKind::Rerelease { lock, site } => variant!(
                3,
                "Rerelease",
                None::<&AcquireMode>,
                [("lock", lock), ("site", site)]
            ),
            EventKind::Call { site } => {
                variant!(4, "Call", None::<&AcquireMode>, [("site", site)])
            }
            EventKind::Return => serializer.serialize_unit_variant(NAME, 5, "Return"),
            EventKind::New { obj } => {
                variant!(6, "New", None::<&AcquireMode>, [("obj", obj)])
            }
            EventKind::Spawn { child, child_obj } => variant!(
                7,
                "Spawn",
                None::<&AcquireMode>,
                [("child", child), ("child_obj", child_obj)]
            ),
            EventKind::ThreadStart => serializer.serialize_unit_variant(NAME, 8, "ThreadStart"),
            EventKind::ThreadExit => serializer.serialize_unit_variant(NAME, 9, "ThreadExit"),
            EventKind::Join { target } => {
                variant!(10, "Join", None::<&AcquireMode>, [("target", target)])
            }
            EventKind::Blocked { lock, mode } => {
                variant!(11, "Blocked", Some(mode), [("lock", lock)])
            }
            EventKind::Unblocked { lock } => {
                variant!(12, "Unblocked", None::<&AcquireMode>, [("lock", lock)])
            }
            EventKind::Yield => serializer.serialize_unit_variant(NAME, 13, "Yield"),
            EventKind::Work { units } => {
                variant!(14, "Work", None::<&AcquireMode>, [("units", units)])
            }
            EventKind::Access {
                var,
                site,
                write,
                held,
            } => variant!(
                15,
                "Access",
                None::<&AcquireMode>,
                [
                    ("var", var),
                    ("site", site),
                    ("write", write),
                    ("held", held),
                ]
            ),
            EventKind::AtomicBegin { site } => {
                variant!(16, "AtomicBegin", None::<&AcquireMode>, [("site", site)])
            }
            EventKind::AtomicEnd => serializer.serialize_unit_variant(NAME, 17, "AtomicEnd"),
            EventKind::Wait { lock, site } => variant!(
                18,
                "Wait",
                None::<&AcquireMode>,
                [("lock", lock), ("site", site)]
            ),
            EventKind::Notify { lock, site, all } => variant!(
                19,
                "Notify",
                None::<&AcquireMode>,
                [("lock", lock), ("site", site), ("all", all)]
            ),
            EventKind::TryAcquire {
                lock,
                site,
                acquired,
                mode,
            } => variant!(
                20,
                "TryAcquire",
                Some(mode),
                [("lock", lock), ("site", site), ("acquired", acquired)]
            ),
            EventKind::CondWait {
                condvar,
                lock,
                site,
            } => variant!(
                21,
                "CondWait",
                None::<&AcquireMode>,
                [("condvar", condvar), ("lock", lock), ("site", site)]
            ),
            EventKind::CondNotify { condvar, site, all } => variant!(
                22,
                "CondNotify",
                None::<&AcquireMode>,
                [("condvar", condvar), ("site", site), ("all", all)]
            ),
        }
    }
}

impl<'de> Deserialize<'de> for EventKind {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        use serde::__private as sp;
        let value = serde::Deserializer::__take_value(deserializer)?;
        let result: Result<Self, sp::DeError> = (move || {
            // A missing `mode` entry is an exclusive operation.
            fn opt_mode(
                entries: &mut Vec<(String, sp::Value)>,
            ) -> Result<AcquireMode, sp::DeError> {
                match entries.iter().position(|(k, _)| k == "mode") {
                    Some(i) => sp::from_value(entries.remove(i).1)
                        .map_err(|e| sp::DeError::msg(format!("field `mode`: {}", e.0))),
                    None => Ok(AcquireMode::Exclusive),
                }
            }
            let (tag, content) = sp::enum_tag(value, "EventKind")?;
            match tag.as_str() {
                "Acquire" => {
                    let content = sp::expect_content(content, "Acquire")?;
                    let mut entries = sp::expect_obj(content, "EventKind::Acquire")?;
                    Ok(EventKind::Acquire {
                        lock: sp::field(&mut entries, "lock")?,
                        site: sp::field(&mut entries, "site")?,
                        held: sp::field(&mut entries, "held")?,
                        context: sp::field(&mut entries, "context")?,
                        mode: opt_mode(&mut entries)?,
                    })
                }
                "Release" => {
                    let content = sp::expect_content(content, "Release")?;
                    let mut entries = sp::expect_obj(content, "EventKind::Release")?;
                    Ok(EventKind::Release {
                        lock: sp::field(&mut entries, "lock")?,
                        site: sp::field(&mut entries, "site")?,
                        mode: opt_mode(&mut entries)?,
                    })
                }
                "Reacquire" => {
                    let content = sp::expect_content(content, "Reacquire")?;
                    let mut entries = sp::expect_obj(content, "EventKind::Reacquire")?;
                    Ok(EventKind::Reacquire {
                        lock: sp::field(&mut entries, "lock")?,
                        site: sp::field(&mut entries, "site")?,
                    })
                }
                "Rerelease" => {
                    let content = sp::expect_content(content, "Rerelease")?;
                    let mut entries = sp::expect_obj(content, "EventKind::Rerelease")?;
                    Ok(EventKind::Rerelease {
                        lock: sp::field(&mut entries, "lock")?,
                        site: sp::field(&mut entries, "site")?,
                    })
                }
                "Call" => {
                    let content = sp::expect_content(content, "Call")?;
                    let mut entries = sp::expect_obj(content, "EventKind::Call")?;
                    Ok(EventKind::Call {
                        site: sp::field(&mut entries, "site")?,
                    })
                }
                "Return" => {
                    sp::expect_no_content(content, "Return")?;
                    Ok(EventKind::Return)
                }
                "New" => {
                    let content = sp::expect_content(content, "New")?;
                    let mut entries = sp::expect_obj(content, "EventKind::New")?;
                    Ok(EventKind::New {
                        obj: sp::field(&mut entries, "obj")?,
                    })
                }
                "Spawn" => {
                    let content = sp::expect_content(content, "Spawn")?;
                    let mut entries = sp::expect_obj(content, "EventKind::Spawn")?;
                    Ok(EventKind::Spawn {
                        child: sp::field(&mut entries, "child")?,
                        child_obj: sp::field(&mut entries, "child_obj")?,
                    })
                }
                "ThreadStart" => {
                    sp::expect_no_content(content, "ThreadStart")?;
                    Ok(EventKind::ThreadStart)
                }
                "ThreadExit" => {
                    sp::expect_no_content(content, "ThreadExit")?;
                    Ok(EventKind::ThreadExit)
                }
                "Join" => {
                    let content = sp::expect_content(content, "Join")?;
                    let mut entries = sp::expect_obj(content, "EventKind::Join")?;
                    Ok(EventKind::Join {
                        target: sp::field(&mut entries, "target")?,
                    })
                }
                "Blocked" => {
                    let content = sp::expect_content(content, "Blocked")?;
                    let mut entries = sp::expect_obj(content, "EventKind::Blocked")?;
                    Ok(EventKind::Blocked {
                        lock: sp::field(&mut entries, "lock")?,
                        mode: opt_mode(&mut entries)?,
                    })
                }
                "Unblocked" => {
                    let content = sp::expect_content(content, "Unblocked")?;
                    let mut entries = sp::expect_obj(content, "EventKind::Unblocked")?;
                    Ok(EventKind::Unblocked {
                        lock: sp::field(&mut entries, "lock")?,
                    })
                }
                "Yield" => {
                    sp::expect_no_content(content, "Yield")?;
                    Ok(EventKind::Yield)
                }
                "Work" => {
                    let content = sp::expect_content(content, "Work")?;
                    let mut entries = sp::expect_obj(content, "EventKind::Work")?;
                    Ok(EventKind::Work {
                        units: sp::field(&mut entries, "units")?,
                    })
                }
                "Access" => {
                    let content = sp::expect_content(content, "Access")?;
                    let mut entries = sp::expect_obj(content, "EventKind::Access")?;
                    Ok(EventKind::Access {
                        var: sp::field(&mut entries, "var")?,
                        site: sp::field(&mut entries, "site")?,
                        write: sp::field(&mut entries, "write")?,
                        held: sp::field(&mut entries, "held")?,
                    })
                }
                "AtomicBegin" => {
                    let content = sp::expect_content(content, "AtomicBegin")?;
                    let mut entries = sp::expect_obj(content, "EventKind::AtomicBegin")?;
                    Ok(EventKind::AtomicBegin {
                        site: sp::field(&mut entries, "site")?,
                    })
                }
                "AtomicEnd" => {
                    sp::expect_no_content(content, "AtomicEnd")?;
                    Ok(EventKind::AtomicEnd)
                }
                "Wait" => {
                    let content = sp::expect_content(content, "Wait")?;
                    let mut entries = sp::expect_obj(content, "EventKind::Wait")?;
                    Ok(EventKind::Wait {
                        lock: sp::field(&mut entries, "lock")?,
                        site: sp::field(&mut entries, "site")?,
                    })
                }
                "Notify" => {
                    let content = sp::expect_content(content, "Notify")?;
                    let mut entries = sp::expect_obj(content, "EventKind::Notify")?;
                    Ok(EventKind::Notify {
                        lock: sp::field(&mut entries, "lock")?,
                        site: sp::field(&mut entries, "site")?,
                        all: sp::field(&mut entries, "all")?,
                    })
                }
                "TryAcquire" => {
                    let content = sp::expect_content(content, "TryAcquire")?;
                    let mut entries = sp::expect_obj(content, "EventKind::TryAcquire")?;
                    Ok(EventKind::TryAcquire {
                        lock: sp::field(&mut entries, "lock")?,
                        site: sp::field(&mut entries, "site")?,
                        acquired: sp::field(&mut entries, "acquired")?,
                        mode: opt_mode(&mut entries)?,
                    })
                }
                "CondWait" => {
                    let content = sp::expect_content(content, "CondWait")?;
                    let mut entries = sp::expect_obj(content, "EventKind::CondWait")?;
                    Ok(EventKind::CondWait {
                        condvar: sp::field(&mut entries, "condvar")?,
                        lock: sp::field(&mut entries, "lock")?,
                        site: sp::field(&mut entries, "site")?,
                    })
                }
                "CondNotify" => {
                    let content = sp::expect_content(content, "CondNotify")?;
                    let mut entries = sp::expect_obj(content, "EventKind::CondNotify")?;
                    Ok(EventKind::CondNotify {
                        condvar: sp::field(&mut entries, "condvar")?,
                        site: sp::field(&mut entries, "site")?,
                        all: sp::field(&mut entries, "all")?,
                    })
                }
                other => Err(sp::DeError::msg(format!(
                    "unknown variant `{other}` for EventKind"
                ))),
            }
        })();
        result.map_err(<D::Error as serde::de::Error>::custom)
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {} ", self.seq, self.thread)?;
        match &self.kind {
            EventKind::Acquire {
                lock,
                site,
                held,
                mode,
                ..
            } => {
                if mode.is_shared() {
                    write!(f, "read-acquire {lock} at {site} holding {held:?}")
                } else {
                    write!(f, "acquire {lock} at {site} holding {held:?}")
                }
            }
            EventKind::Release { lock, site, mode } => {
                if mode.is_shared() {
                    write!(f, "read-release {lock} at {site}")
                } else {
                    write!(f, "release {lock} at {site}")
                }
            }
            EventKind::Reacquire { lock, site } => write!(f, "reacquire {lock} at {site}"),
            EventKind::Rerelease { lock, site } => write!(f, "rerelease {lock} at {site}"),
            EventKind::Call { site } => write!(f, "call at {site}"),
            EventKind::Return => write!(f, "return"),
            EventKind::New { obj } => write!(f, "new {obj}"),
            EventKind::Spawn { child, child_obj } => write!(f, "spawn {child} ({child_obj})"),
            EventKind::ThreadStart => write!(f, "start"),
            EventKind::ThreadExit => write!(f, "exit"),
            EventKind::Join { target } => write!(f, "join {target}"),
            EventKind::Blocked { lock, mode } => {
                if mode.is_shared() {
                    write!(f, "read-blocked on {lock}")
                } else {
                    write!(f, "blocked on {lock}")
                }
            }
            EventKind::Unblocked { lock } => write!(f, "unblocked from {lock}"),
            EventKind::Yield => write!(f, "yield"),
            EventKind::Work { units } => write!(f, "work {units}"),
            EventKind::Access {
                var,
                site,
                write,
                held,
            } => write!(
                f,
                "{} {var} at {site} holding {held:?}",
                if *write { "write" } else { "read" }
            ),
            EventKind::AtomicBegin { site } => write!(f, "atomic-begin at {site}"),
            EventKind::AtomicEnd => write!(f, "atomic-end"),
            EventKind::Wait { lock, site } => write!(f, "wait on {lock} at {site}"),
            EventKind::Notify { lock, site, all } => {
                write!(
                    f,
                    "{} {lock} at {site}",
                    if *all { "notify-all" } else { "notify" }
                )
            }
            EventKind::TryAcquire {
                lock,
                site,
                acquired,
                mode,
            } => write!(
                f,
                "try-{}acquire {lock} at {site} ({})",
                if mode.is_shared() { "read-" } else { "" },
                if *acquired { "acquired" } else { "busy" }
            ),
            EventKind::CondWait {
                condvar,
                lock,
                site,
            } => write!(f, "cond-wait {condvar} (releasing {lock}) at {site}"),
            EventKind::CondNotify { condvar, site, all } => write!(
                f,
                "{} {condvar} at {site}",
                if *all {
                    "cond-notify-all"
                } else {
                    "cond-notify"
                }
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(s: &str) -> Label {
        Label::new(s)
    }

    #[test]
    fn lock_accessor_covers_lock_ops() {
        let lk = ObjId::new(1);
        let acq = EventKind::acquire(lk, l("a:1"), vec![], vec![l("a:1")]);
        assert_eq!(acq.lock(), Some(lk));
        assert!(acq.is_acquire());
        assert_eq!(EventKind::release(lk, l("a:2")).lock(), Some(lk));
        assert_eq!(EventKind::Yield.lock(), None);
        assert!(!EventKind::Return.is_acquire());
        assert_eq!(EventKind::wait(lk, l("w:1")).lock(), Some(lk));
        assert_eq!(EventKind::notify(lk, l("n:1"), true).lock(), Some(lk));
        assert_eq!(EventKind::try_acquire(lk, l("t:1"), true).lock(), Some(lk));
        assert_eq!(
            EventKind::cond_wait(ObjId::new(9), lk, l("c:1")).lock(),
            Some(lk)
        );
        assert_eq!(
            EventKind::cond_notify(ObjId::new(9), l("c:2"), false).lock(),
            None
        );
    }

    #[test]
    fn builders_default_exclusive_and_shared_flips_the_mode() {
        let lk = ObjId::new(4);
        let acq = EventKind::acquire(lk, l("b:1"), vec![], vec![l("b:1")]);
        assert_eq!(acq.mode(), Some(AcquireMode::Exclusive));
        let read = EventKind::acquire(lk, l("b:1"), vec![], vec![l("b:1")]).shared();
        assert_eq!(read.mode(), Some(AcquireMode::Shared));
        assert_eq!(
            EventKind::blocked(lk).shared().mode(),
            Some(AcquireMode::Shared)
        );
        assert_eq!(
            EventKind::try_acquire(lk, l("b:2"), false).shared().mode(),
            Some(AcquireMode::Shared)
        );
        assert_eq!(EventKind::wait(lk, l("b:3")).mode(), None);
        assert_eq!(AcquireMode::Exclusive.as_str(), "write");
        assert_eq!(AcquireMode::Shared.as_str(), "read");
        assert_eq!(AcquireMode::default(), AcquireMode::Exclusive);
    }

    #[test]
    #[should_panic(expected = "carries no acquisition mode")]
    fn shared_on_a_modeless_kind_panics() {
        let _ = EventKind::Yield.shared();
    }

    #[test]
    fn wait_notify_serde_round_trip() {
        for kind in [
            EventKind::wait(ObjId::new(2), l("ws:1")),
            EventKind::notify(ObjId::new(2), l("ws:2"), true),
            EventKind::cond_wait(ObjId::new(5), ObjId::new(2), l("ws:3")),
            EventKind::cond_notify(ObjId::new(5), l("ws:4"), false),
        ] {
            let e = Event::new(1, ThreadId::new(0), kind);
            let json = serde_json::to_string(&e).unwrap();
            let back: Event = serde_json::from_str(&json).unwrap();
            assert_eq!(e, back);
        }
    }

    #[test]
    fn exclusive_events_serialize_without_a_mode_field() {
        // The artifact-compat contract: plain-mutex traces must be
        // byte-identical to the pre-mode format.
        let e = Event::new(
            0,
            ThreadId::new(1),
            EventKind::acquire(ObjId::new(3), l("m:1"), vec![], vec![l("m:1")]),
        );
        let json = serde_json::to_string(&e).unwrap();
        assert!(!json.contains("mode"), "{json}");
        let shared = Event::new(
            0,
            ThreadId::new(1),
            EventKind::acquire(ObjId::new(3), l("m:1"), vec![], vec![l("m:1")]).shared(),
        );
        let json = serde_json::to_string(&shared).unwrap();
        assert!(json.contains("\"mode\":\"Shared\""), "{json}");
    }

    #[test]
    fn missing_mode_field_deserializes_as_exclusive() {
        // A pre-mode artifact line.
        let json = r#"{"seq":0,"thread":1,"kind":{"Release":{"lock":3,"site":"m:2"}}}"#;
        let e: Event = serde_json::from_str(json).unwrap();
        assert_eq!(e.kind.mode(), Some(AcquireMode::Exclusive));
    }

    #[test]
    fn mode_carrying_serde_round_trip() {
        let lk = ObjId::new(6);
        for kind in [
            EventKind::acquire(
                lk,
                l("rt:1"),
                vec![ObjId::new(1)],
                vec![l("rt:0"), l("rt:1")],
            )
            .shared(),
            EventKind::release(lk, l("rt:2")).shared(),
            EventKind::blocked(lk).shared(),
            EventKind::try_acquire(lk, l("rt:3"), true),
            EventKind::try_acquire(lk, l("rt:4"), false).shared(),
        ] {
            let e = Event::new(9, ThreadId::new(3), kind);
            let json = serde_json::to_string(&e).unwrap();
            let back: Event = serde_json::from_str(&json).unwrap();
            assert_eq!(e, back);
        }
    }

    #[test]
    fn display_is_nonempty_for_all_kinds() {
        let lk = ObjId::new(0);
        let kinds = vec![
            EventKind::acquire(lk, l("d:1"), vec![], vec![l("d:1")]),
            EventKind::acquire(lk, l("d:1"), vec![], vec![l("d:1")]).shared(),
            EventKind::release(lk, l("d:2")),
            EventKind::release(lk, l("d:2")).shared(),
            EventKind::reacquire(lk, l("d:3")),
            EventKind::rerelease(lk, l("d:4")),
            EventKind::Call { site: l("d:5") },
            EventKind::Return,
            EventKind::New { obj: lk },
            EventKind::Spawn {
                child: ThreadId::new(1),
                child_obj: lk,
            },
            EventKind::ThreadStart,
            EventKind::ThreadExit,
            EventKind::Join {
                target: ThreadId::new(1),
            },
            EventKind::blocked(lk),
            EventKind::blocked(lk).shared(),
            EventKind::unblocked(lk),
            EventKind::Yield,
            EventKind::Work { units: 3 },
            EventKind::wait(lk, l("d:6")),
            EventKind::notify(lk, l("d:7"), false),
            EventKind::notify(lk, l("d:8"), true),
            EventKind::try_acquire(lk, l("d:9"), true),
            EventKind::try_acquire(lk, l("d:10"), false).shared(),
            EventKind::cond_wait(ObjId::new(7), lk, l("d:11")),
            EventKind::cond_notify(ObjId::new(7), l("d:12"), true),
        ];
        for (i, k) in kinds.into_iter().enumerate() {
            let e = Event::new(i as u64, ThreadId::new(0), k);
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn serde_round_trip() {
        let e = Event::new(
            7,
            ThreadId::new(2),
            EventKind::acquire(
                ObjId::new(3),
                l("sr:1"),
                vec![ObjId::new(1)],
                vec![l("sr:0"), l("sr:1")],
            ),
        );
        let json = serde_json::to_string(&e).unwrap();
        let back: Event = serde_json::from_str(&json).unwrap();
        assert_eq!(e, back);
    }
}
