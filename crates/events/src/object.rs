//! Per-object creation metadata captured at allocation time.
//!
//! The paper's abstractions (Section 2.4) need information recorded when an
//! object is created:
//!
//! * the allocation site (for the site abstraction and as the first element
//!   of both `absO_k` and `absI_k`);
//! * the *owner* object — the `this` of the method executing the allocation
//!   (for k-object-sensitivity, §2.4.1);
//! * a snapshot of the light-weight execution-indexing call stack
//!   (for `absI_k`, §2.4.2).
//!
//! The substrates capture an [`ObjectMeta`] for every created object and the
//! analyses derive abstractions from the resulting [`ObjectTable`].

use serde::{Deserialize, Serialize};

use crate::{Label, ObjId, ObjKind};

/// One frame of the light-weight execution-indexing call stack: the label of
/// a call (or allocation) statement and the number of times that statement
/// had executed at its depth in the current calling context.
///
/// This is the `[c, q]` pair of Section 2.4.2 of the paper.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct IndexFrame {
    /// Label of the call/allocation statement.
    pub site: Label,
    /// Occurrence count of `site` at its depth within the enclosing context.
    pub count: u32,
}

impl IndexFrame {
    /// Creates a frame.
    pub fn new(site: Label, count: u32) -> Self {
        IndexFrame { site, count }
    }
}

/// Creation metadata of a single dynamic object.
///
/// Captured once, at allocation time, by the execution substrate. All object
/// abstractions of the paper (trivial, allocation site, `absO_k`, `absI_k`)
/// are pure functions of the `ObjectMeta`s in an [`ObjectTable`].
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct ObjectMeta {
    /// The object's dynamic identity in this execution.
    pub id: ObjId,
    /// Whether the object is a lock, a thread object, or a plain object.
    pub kind: ObjKind,
    /// Allocation-site label (the paper's `c` in `c: o = new (o', T)`).
    pub site: Label,
    /// The `this` object of the method that allocated this object
    /// (`o'` in the paper), if the allocation happened inside a method with
    /// a receiver. `None` corresponds to allocation in a static method.
    pub owner: Option<ObjId>,
    /// Execution-indexing stack at creation, *outermost frame first*; the
    /// final frame is the allocation statement itself with its occurrence
    /// count. `absI_k` is the last `k` frames of this vector.
    pub index: Vec<IndexFrame>,
    /// Creation sequence number — a total order on allocations, used only
    /// for debugging output.
    pub seq: u64,
    /// Human-readable name, when the substrate knows one (thread objects
    /// carry their spawn name). Used only for reporting — witnesses print
    /// it next to the thread id — never by the abstractions.
    pub name: Option<String>,
}

/// All objects created during one execution, indexed by [`ObjId`].
///
/// # Example
///
/// ```
/// use df_events::{Label, ObjKind, ObjectTable};
///
/// let mut table = ObjectTable::new();
/// let id = table.create(ObjKind::Lock, Label::new("main:22"), None, Vec::new());
/// assert_eq!(table.get(id).site, Label::new("main:22"));
/// assert_eq!(table.len(), 1);
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct ObjectTable {
    metas: Vec<ObjectMeta>,
}

impl ObjectTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new object and returns its id.
    pub fn create(
        &mut self,
        kind: ObjKind,
        site: Label,
        owner: Option<ObjId>,
        index: Vec<IndexFrame>,
    ) -> ObjId {
        self.create_named(kind, site, owner, index, None)
    }

    /// Registers a new object with a human-readable name (e.g. a thread's
    /// spawn name) and returns its id.
    pub fn create_named(
        &mut self,
        kind: ObjKind,
        site: Label,
        owner: Option<ObjId>,
        index: Vec<IndexFrame>,
        name: Option<String>,
    ) -> ObjId {
        let id = ObjId::new(u32::try_from(self.metas.len()).expect("object table overflow"));
        let seq = self.metas.len() as u64;
        self.metas.push(ObjectMeta {
            id,
            kind,
            site,
            owner,
            index,
            seq,
            name,
        });
        id
    }

    /// Returns the metadata of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not created by this table.
    pub fn get(&self, id: ObjId) -> &ObjectMeta {
        &self.metas[id.as_usize()]
    }

    /// Returns the metadata of `id`, or `None` if unknown.
    pub fn try_get(&self, id: ObjId) -> Option<&ObjectMeta> {
        self.metas.get(id.as_usize())
    }

    /// Number of objects created.
    pub fn len(&self) -> usize {
        self.metas.len()
    }

    /// Whether no objects have been created.
    pub fn is_empty(&self) -> bool {
        self.metas.is_empty()
    }

    /// Iterates over all object metadata in creation order.
    pub fn iter(&self) -> impl Iterator<Item = &ObjectMeta> {
        self.metas.iter()
    }

    /// Walks the owner chain `o, owner(o), owner(owner(o)), …` starting at
    /// `id`, yielding at most `k` objects. This is the `o_1, …, o_k`
    /// sequence of §2.4.1.
    pub fn owner_chain(&self, id: ObjId, k: usize) -> Vec<&ObjectMeta> {
        let mut chain = Vec::with_capacity(k);
        let mut cur = Some(id);
        while let Some(id) = cur {
            if chain.len() == k {
                break;
            }
            let meta = match self.try_get(id) {
                Some(m) => m,
                None => break,
            };
            chain.push(meta);
            cur = meta.owner;
        }
        chain
    }
}

impl<'a> IntoIterator for &'a ObjectTable {
    type Item = &'a ObjectMeta;
    type IntoIter = std::slice::Iter<'a, ObjectMeta>;

    fn into_iter(self) -> Self::IntoIter {
        self.metas.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(s: &str) -> Label {
        Label::new(s)
    }

    #[test]
    fn create_assigns_sequential_ids() {
        let mut t = ObjectTable::new();
        let a = t.create(ObjKind::Lock, l("a:1"), None, vec![]);
        let b = t.create(ObjKind::Thread, l("b:2"), None, vec![]);
        assert_eq!(a.as_usize(), 0);
        assert_eq!(b.as_usize(), 1);
        assert_eq!(t.get(b).kind, ObjKind::Thread);
        assert_eq!(t.get(a).seq, 0);
        assert_eq!(t.get(b).seq, 1);
    }

    #[test]
    fn owner_chain_walks_parents() {
        let mut t = ObjectTable::new();
        let grand = t.create(ObjKind::Plain, l("g:1"), None, vec![]);
        let parent = t.create(ObjKind::Plain, l("p:1"), Some(grand), vec![]);
        let child = t.create(ObjKind::Lock, l("c:1"), Some(parent), vec![]);
        let chain = t.owner_chain(child, 3);
        let sites: Vec<String> = chain.iter().map(|m| m.site.to_string()).collect();
        assert_eq!(sites, vec!["c:1", "p:1", "g:1"]);
    }

    #[test]
    fn owner_chain_truncates_at_k() {
        let mut t = ObjectTable::new();
        let a = t.create(ObjKind::Plain, l("k:1"), None, vec![]);
        let b = t.create(ObjKind::Plain, l("k:2"), Some(a), vec![]);
        assert_eq!(t.owner_chain(b, 1).len(), 1);
        assert_eq!(t.owner_chain(b, 0).len(), 0);
    }

    #[test]
    fn owner_chain_stops_at_root() {
        let mut t = ObjectTable::new();
        let a = t.create(ObjKind::Plain, l("r:1"), None, vec![]);
        assert_eq!(t.owner_chain(a, 10).len(), 1);
    }

    #[test]
    fn try_get_unknown_is_none() {
        let t = ObjectTable::new();
        assert!(t.try_get(ObjId::new(3)).is_none());
        assert!(t.is_empty());
    }

    #[test]
    fn iterates_in_creation_order() {
        let mut t = ObjectTable::new();
        t.create(ObjKind::Plain, l("i:1"), None, vec![]);
        t.create(ObjKind::Plain, l("i:2"), None, vec![]);
        let sites: Vec<String> = t.iter().map(|m| m.site.to_string()).collect();
        assert_eq!(sites, vec!["i:1", "i:2"]);
    }

    #[test]
    fn index_frames_record_counts() {
        let mut t = ObjectTable::new();
        let idx = vec![
            IndexFrame::new(l("foo:6"), 1),
            IndexFrame::new(l("bar:11"), 3),
        ];
        let o = t.create(ObjKind::Lock, l("bar:11"), None, idx.clone());
        assert_eq!(t.get(o).index, idx);
    }

    #[test]
    fn serde_round_trip() {
        let mut t = ObjectTable::new();
        t.create(
            ObjKind::Lock,
            l("s:1"),
            None,
            vec![IndexFrame::new(l("s:0"), 2)],
        );
        t.create_named(
            ObjKind::Thread,
            l("s:2"),
            None,
            vec![],
            Some("worker".into()),
        );
        let json = serde_json::to_string(&t).unwrap();
        let back: ObjectTable = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn named_objects_keep_their_name() {
        let mut t = ObjectTable::new();
        let anon = t.create(ObjKind::Lock, l("n:1"), None, vec![]);
        let named = t.create_named(ObjKind::Thread, l("n:2"), None, vec![], Some("t1".into()));
        assert_eq!(t.get(anon).name, None);
        assert_eq!(t.get(named).name.as_deref(), Some("t1"));
    }
}
