//! Dynamic identities of threads and objects within a single execution.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The dynamic identity of a thread within one execution.
///
/// This is the paper's "unique id" of a thread object: it is valid only
/// within the execution that produced it and *cannot* be used to correlate
/// threads across executions — that is what object abstractions
/// (`df-abstraction`) are for.
///
/// # Example
///
/// ```
/// use df_events::ThreadId;
/// let main = ThreadId::new(0);
/// assert_eq!(main.as_usize(), 0);
/// assert!(main < ThreadId::new(1));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ThreadId(u32);

impl ThreadId {
    /// Creates a thread id from its index.
    pub fn new(index: u32) -> Self {
        ThreadId(index)
    }

    /// Returns the index as `usize` (handy for table lookups).
    pub fn as_usize(&self) -> usize {
        self.0 as usize
    }

    /// Returns the raw index.
    pub fn as_u32(&self) -> u32 {
        self.0
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl fmt::Debug for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ThreadId({})", self.0)
    }
}

/// The dynamic identity of an object (lock, thread object, or plain object)
/// within one execution.
///
/// Like [`ThreadId`], this mirrors the paper's address-based unique id and
/// is only meaningful within one execution.
///
/// # Example
///
/// ```
/// use df_events::ObjId;
/// let o = ObjId::new(7);
/// assert_eq!(o.as_usize(), 7);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ObjId(u32);

impl ObjId {
    /// Creates an object id from its index.
    pub fn new(index: u32) -> Self {
        ObjId(index)
    }

    /// Returns the index as `usize`.
    pub fn as_usize(&self) -> usize {
        self.0 as usize
    }

    /// Returns the raw index.
    pub fn as_u32(&self) -> u32 {
        self.0
    }
}

impl fmt::Display for ObjId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "O{}", self.0)
    }
}

impl fmt::Debug for ObjId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ObjId({})", self.0)
    }
}

/// What role an object plays in the execution.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum ObjKind {
    /// A lock object (the target of `Acquire`/`Release`).
    Lock,
    /// A thread object (the receiver of `start()` in the paper's model).
    Thread,
    /// Any other heap object (tracked for k-object-sensitive abstraction
    /// chains).
    Plain,
    /// A shared variable (the target of `Read`/`Write` accesses, for the
    /// race-detection side of the active-testing framework).
    Var,
}

impl fmt::Display for ObjKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjKind::Lock => f.write_str("lock"),
            ObjKind::Thread => f.write_str("thread"),
            ObjKind::Plain => f.write_str("object"),
            ObjKind::Var => f.write_str("var"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_id_ordering_matches_index() {
        assert!(ThreadId::new(1) < ThreadId::new(2));
        assert_eq!(ThreadId::new(3).as_u32(), 3);
    }

    #[test]
    fn display_forms() {
        assert_eq!(ThreadId::new(4).to_string(), "T4");
        assert_eq!(ObjId::new(9).to_string(), "O9");
        assert_eq!(ObjKind::Lock.to_string(), "lock");
        assert_eq!(ObjKind::Thread.to_string(), "thread");
        assert_eq!(ObjKind::Plain.to_string(), "object");
    }

    #[test]
    fn ids_serialize_as_numbers() {
        assert_eq!(serde_json::to_string(&ObjId::new(5)).unwrap(), "5");
        let back: ObjId = serde_json::from_str("5").unwrap();
        assert_eq!(back, ObjId::new(5));
    }
}
