//! Complete execution traces.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::{Event, EventKind, ObjId, ObjectTable, ThreadId};

/// Everything observed during one execution: the event sequence, the object
/// table, and the mapping from threads to their thread objects.
///
/// A `Trace` is the interface between an execution substrate (virtual or
/// real threads) and Phase I (`df-igoodlock`): the lock dependency relation
/// of Definition 1 is a pure function of a `Trace`.
///
/// # Example
///
/// ```
/// use df_events::{Event, EventKind, Label, ObjKind, ThreadId, Trace};
///
/// let mut trace = Trace::default();
/// let main = ThreadId::new(0);
/// let main_obj = trace.objects_mut().create(ObjKind::Thread, Label::new("<main>"), None, vec![]);
/// trace.bind_thread(main, main_obj);
/// trace.push(main, EventKind::ThreadStart);
/// assert_eq!(trace.events().len(), 1);
/// assert_eq!(trace.thread_obj(main), Some(main_obj));
/// ```
#[derive(Clone, PartialEq, Debug, Default, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<Event>,
    objects: ObjectTable,
    thread_objs: BTreeMap<ThreadId, ObjId>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event executed by `thread`, assigning the next sequence
    /// number, and returns that sequence number.
    pub fn push(&mut self, thread: ThreadId, kind: EventKind) -> u64 {
        let seq = self.events.len() as u64;
        self.events.push(Event::new(seq, thread, kind));
        seq
    }

    /// The recorded events in execution order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// The object table of the execution.
    pub fn objects(&self) -> &ObjectTable {
        &self.objects
    }

    /// Mutable access to the object table (used by substrates while
    /// recording).
    pub fn objects_mut(&mut self) -> &mut ObjectTable {
        &mut self.objects
    }

    /// Associates `thread` with the object that represents it.
    pub fn bind_thread(&mut self, thread: ThreadId, obj: ObjId) {
        self.thread_objs.insert(thread, obj);
    }

    /// The object representing `thread`, if bound.
    pub fn thread_obj(&self, thread: ThreadId) -> Option<ObjId> {
        self.thread_objs.get(&thread).copied()
    }

    /// All (thread, thread-object) bindings.
    pub fn thread_objs(&self) -> impl Iterator<Item = (ThreadId, ObjId)> + '_ {
        self.thread_objs.iter().map(|(&t, &o)| (t, o))
    }

    /// Number of first-acquisition events in the trace.
    pub fn acquire_count(&self) -> usize {
        self.events.iter().filter(|e| e.kind.is_acquire()).count()
    }

    /// Approximate resident size of the event sequence in bytes: the
    /// inline size of every [`Event`] plus the heap behind acquire
    /// locksets and contexts. This is the number the `peak_trace_bytes`
    /// observability counter reports — a deterministic estimate (it
    /// counts lengths, not allocator capacities), not an allocator
    /// measurement.
    pub fn approx_event_bytes(&self) -> u64 {
        let inline = self.events.len() * std::mem::size_of::<Event>();
        let heap: usize = self
            .events
            .iter()
            .map(|e| match &e.kind {
                EventKind::Acquire { held, context, .. } => {
                    held.len() * std::mem::size_of::<ObjId>()
                        + context.len() * std::mem::size_of::<crate::Label>()
                }
                _ => 0,
            })
            .sum();
        (inline + heap) as u64
    }

    /// Iterates over the distinct threads that appear in the trace, in id
    /// order.
    pub fn threads(&self) -> Vec<ThreadId> {
        let mut ts: Vec<ThreadId> = self.events.iter().map(|e| e.thread).collect();
        ts.sort();
        ts.dedup();
        ts
    }

    /// Renders the trace as human-readable lines (for debugging and the
    /// examples).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Label, ObjKind};

    #[test]
    fn push_assigns_sequence_numbers() {
        let mut t = Trace::new();
        let a = t.push(ThreadId::new(0), EventKind::Yield);
        let b = t.push(ThreadId::new(1), EventKind::Yield);
        assert_eq!((a, b), (0, 1));
        assert_eq!(t.events()[1].thread, ThreadId::new(1));
    }

    #[test]
    fn threads_are_deduped_and_sorted() {
        let mut t = Trace::new();
        t.push(ThreadId::new(2), EventKind::Yield);
        t.push(ThreadId::new(0), EventKind::Yield);
        t.push(ThreadId::new(2), EventKind::Return);
        assert_eq!(t.threads(), vec![ThreadId::new(0), ThreadId::new(2)]);
    }

    #[test]
    fn acquire_count_ignores_reacquires() {
        let mut t = Trace::new();
        let lk = t
            .objects_mut()
            .create(ObjKind::Lock, Label::new("t:1"), None, vec![]);
        t.push(
            ThreadId::new(0),
            EventKind::acquire(lk, Label::new("t:2"), vec![], vec![Label::new("t:2")]),
        );
        t.push(
            ThreadId::new(0),
            EventKind::Reacquire {
                lock: lk,
                site: Label::new("t:3"),
            },
        );
        assert_eq!(t.acquire_count(), 1);
    }

    #[test]
    fn thread_bindings() {
        let mut t = Trace::new();
        let o = t
            .objects_mut()
            .create(ObjKind::Thread, Label::new("b:1"), None, vec![]);
        t.bind_thread(ThreadId::new(3), o);
        assert_eq!(t.thread_obj(ThreadId::new(3)), Some(o));
        assert_eq!(t.thread_obj(ThreadId::new(4)), None);
        assert_eq!(t.thread_objs().count(), 1);
    }

    #[test]
    fn render_contains_every_event() {
        let mut t = Trace::new();
        t.push(ThreadId::new(0), EventKind::ThreadStart);
        t.push(ThreadId::new(0), EventKind::ThreadExit);
        let s = t.render();
        assert_eq!(s.lines().count(), 2);
        assert!(s.contains("start"));
        assert!(s.contains("exit"));
    }
}
