//! The compact binary trace format (`df-trace` v2).
//!
//! Carries exactly the same envelope as the JSONL v1 format in
//! [`crate::spill`] — a versioned header, one record per [`Event`] in
//! sequence order, and a footer with the [`ObjectTable`] and
//! thread→object bindings — but encoded as length-prefixed binary
//! frames instead of JSON lines:
//!
//! 1. a 4-byte magic ([`TRACE_BINARY_MAGIC`], first byte non-UTF-8 so no
//!    text artifact can collide with it),
//! 2. frames, each `varint(payload_len) ++ payload`, where the first
//!    payload byte is a frame tag (header / string definition / event /
//!    footer / seal),
//! 3. a trailing empty **seal** frame, so truncation anywhere — even
//!    after the footer — is detectable.
//!
//! Strings (caller-site [`Label`]s and thread names) are interned into a
//! per-file string table: a `StrDef` frame defines id `n` (ids are dense
//! and strictly increasing) before the first frame that references it,
//! so events shrink to a handful of varints. All ids, sequence numbers
//! and lengths are LEB128 varints.
//!
//! The encoding is canonical: re-encoding a decoded trace reproduces the
//! input bytes, and decoding then writing JSONL v1 is byte-identical to
//! writing JSONL v1 directly (enforced by property tests). Frame numbers
//! in errors are 1-based (the header is frame 1), mirroring the line
//! numbers of the JSONL reader.

use std::collections::BTreeMap;
use std::collections::HashMap;
use std::io::Write;

use crate::spill::{SpillError, TRACE_FORMAT};
use crate::{
    AcquireMode, Event, EventKind, IndexFrame, Label, ObjId, ObjKind, ObjectTable, ThreadId, Trace,
};

/// Leading magic of a binary trace artifact. The first byte is not valid
/// UTF-8, so format sniffing can never confuse a binary file with JSONL.
/// The magic is shared by versions 2 and 3 — the header frame carries the
/// authoritative version.
pub const TRACE_BINARY_MAGIC: [u8; 4] = [0xDF, b'T', b'2', b'\n'];

/// Version stamped into the binary header frame by the writer.
///
/// Version 3 added the mode-aware vocabulary (shared acquire/release/
/// blocked, `TryAcquire`, condvar wait/notify) as new event-kind tags;
/// every tag of version 2 encodes byte-identically, so a trace that uses
/// none of the new kinds differs from its v2 encoding only in this header
/// byte.
pub const TRACE_BINARY_FORMAT_VERSION: u32 = 3;

/// Oldest header version [`read_binary_trace`] still accepts.
pub const TRACE_BINARY_MIN_FORMAT_VERSION: u32 = 2;

/// Frame tags (first payload byte of every frame).
mod tag {
    pub const HEADER: u8 = 1;
    pub const STR_DEF: u8 = 2;
    pub const EVENT: u8 = 3;
    pub const FOOTER: u8 = 4;
    pub const SEAL: u8 = 5;
}

/// Event-kind tags inside an event frame.
mod kind {
    pub const ACQUIRE: u8 = 1;
    pub const RELEASE: u8 = 2;
    pub const REACQUIRE: u8 = 3;
    pub const RERELEASE: u8 = 4;
    pub const CALL: u8 = 5;
    pub const RETURN: u8 = 6;
    pub const NEW: u8 = 7;
    pub const SPAWN: u8 = 8;
    pub const THREAD_START: u8 = 9;
    pub const THREAD_EXIT: u8 = 10;
    pub const JOIN: u8 = 11;
    pub const BLOCKED: u8 = 12;
    pub const UNBLOCKED: u8 = 13;
    pub const YIELD: u8 = 14;
    pub const WORK: u8 = 15;
    pub const ACCESS: u8 = 16;
    pub const ATOMIC_BEGIN: u8 = 17;
    pub const ATOMIC_END: u8 = 18;
    pub const WAIT: u8 = 19;
    pub const NOTIFY: u8 = 20;
    // Tags 21+ require a version-3 header; a v2 artifact containing them
    // is rejected as malformed.
    pub const ACQUIRE_SHARED: u8 = 21;
    pub const RELEASE_SHARED: u8 = 22;
    pub const BLOCKED_SHARED: u8 = 23;
    pub const TRY_ACQUIRE: u8 = 24;
    pub const COND_WAIT: u8 = 25;
    pub const COND_NOTIFY: u8 = 26;

    /// Smallest tag that needs a version-3 header.
    pub const FIRST_V3: u8 = ACQUIRE_SHARED;
}

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

/// Appends one `varint(len) ++ payload` frame.
fn put_frame(out: &mut Vec<u8>, payload: &[u8]) {
    put_varint(out, payload.len() as u64);
    out.extend_from_slice(payload);
}

/// Streaming encoder for the binary format: turns events and the footer
/// into frame bytes, maintaining the per-file string table. Pure — it
/// never touches I/O, so the same encoder serves both the synchronous
/// [`crate::BinaryTraceWriter`] and the ring-buffered spill writer.
pub(crate) struct BinaryEncoder {
    labels: HashMap<Label, u32>,
    names: HashMap<String, u32>,
    next_str: u32,
}

impl BinaryEncoder {
    /// Creates an encoder and returns the artifact preamble (magic +
    /// header frame).
    pub(crate) fn new() -> (Self, Vec<u8>) {
        let mut out = Vec::with_capacity(32);
        out.extend_from_slice(&TRACE_BINARY_MAGIC);
        let mut payload = Vec::with_capacity(16);
        payload.push(tag::HEADER);
        put_varint(&mut payload, TRACE_FORMAT.len() as u64);
        payload.extend_from_slice(TRACE_FORMAT.as_bytes());
        put_varint(&mut payload, u64::from(TRACE_BINARY_FORMAT_VERSION));
        put_frame(&mut out, &payload);
        (
            BinaryEncoder {
                labels: HashMap::new(),
                names: HashMap::new(),
                next_str: 0,
            },
            out,
        )
    }

    fn def_str(&mut self, bytes: &[u8], out: &mut Vec<u8>) -> u32 {
        let id = self.next_str;
        self.next_str += 1;
        let mut payload = Vec::with_capacity(bytes.len() + 8);
        payload.push(tag::STR_DEF);
        put_varint(&mut payload, u64::from(id));
        put_varint(&mut payload, bytes.len() as u64);
        payload.extend_from_slice(bytes);
        put_frame(out, &payload);
        id
    }

    /// Interns a label, emitting its `StrDef` frame into `out` on first
    /// use, and returns its string id.
    fn label_id(&mut self, label: Label, out: &mut Vec<u8>) -> u32 {
        if let Some(&id) = self.labels.get(&label) {
            return id;
        }
        let text = label.as_str();
        let id = self.def_str(text.as_bytes(), out);
        self.labels.insert(label, id);
        id
    }

    /// Interns an arbitrary string (thread names), like [`Self::label_id`].
    fn name_id(&mut self, name: &str, out: &mut Vec<u8>) -> u32 {
        if let Some(&id) = self.names.get(name) {
            return id;
        }
        let id = self.def_str(name.as_bytes(), out);
        self.names.insert(name.to_string(), id);
        id
    }

    /// Encodes one event (string definitions first, then the event
    /// frame) into `out`.
    pub(crate) fn encode_event(&mut self, event: &Event, out: &mut Vec<u8>) {
        let mut p = Vec::with_capacity(24);
        p.push(tag::EVENT);
        put_varint(&mut p, event.seq);
        put_varint(&mut p, u64::from(event.thread.as_u32()));
        match &event.kind {
            EventKind::Acquire {
                lock,
                site,
                held,
                context,
                mode,
            } => {
                // Shared acquisitions get their own tag so exclusive
                // events stay byte-identical to the v2 encoding.
                p.push(match mode {
                    AcquireMode::Exclusive => kind::ACQUIRE,
                    AcquireMode::Shared => kind::ACQUIRE_SHARED,
                });
                put_varint(&mut p, u64::from(lock.as_u32()));
                put_varint(&mut p, u64::from(self.label_id(*site, out)));
                put_varint(&mut p, held.len() as u64);
                for h in held {
                    put_varint(&mut p, u64::from(h.as_u32()));
                }
                put_varint(&mut p, context.len() as u64);
                for c in context {
                    put_varint(&mut p, u64::from(self.label_id(*c, out)));
                }
            }
            EventKind::Release { lock, site, mode } => {
                p.push(match mode {
                    AcquireMode::Exclusive => kind::RELEASE,
                    AcquireMode::Shared => kind::RELEASE_SHARED,
                });
                put_varint(&mut p, u64::from(lock.as_u32()));
                put_varint(&mut p, u64::from(self.label_id(*site, out)));
            }
            EventKind::Reacquire { lock, site } => {
                p.push(kind::REACQUIRE);
                put_varint(&mut p, u64::from(lock.as_u32()));
                put_varint(&mut p, u64::from(self.label_id(*site, out)));
            }
            EventKind::Rerelease { lock, site } => {
                p.push(kind::RERELEASE);
                put_varint(&mut p, u64::from(lock.as_u32()));
                put_varint(&mut p, u64::from(self.label_id(*site, out)));
            }
            EventKind::Call { site } => {
                p.push(kind::CALL);
                put_varint(&mut p, u64::from(self.label_id(*site, out)));
            }
            EventKind::Return => p.push(kind::RETURN),
            EventKind::New { obj } => {
                p.push(kind::NEW);
                put_varint(&mut p, u64::from(obj.as_u32()));
            }
            EventKind::Spawn { child, child_obj } => {
                p.push(kind::SPAWN);
                put_varint(&mut p, u64::from(child.as_u32()));
                put_varint(&mut p, u64::from(child_obj.as_u32()));
            }
            EventKind::ThreadStart => p.push(kind::THREAD_START),
            EventKind::ThreadExit => p.push(kind::THREAD_EXIT),
            EventKind::Join { target } => {
                p.push(kind::JOIN);
                put_varint(&mut p, u64::from(target.as_u32()));
            }
            EventKind::Blocked { lock, mode } => {
                p.push(match mode {
                    AcquireMode::Exclusive => kind::BLOCKED,
                    AcquireMode::Shared => kind::BLOCKED_SHARED,
                });
                put_varint(&mut p, u64::from(lock.as_u32()));
            }
            EventKind::Unblocked { lock } => {
                p.push(kind::UNBLOCKED);
                put_varint(&mut p, u64::from(lock.as_u32()));
            }
            EventKind::Yield => p.push(kind::YIELD),
            EventKind::Work { units } => {
                p.push(kind::WORK);
                put_varint(&mut p, u64::from(*units));
            }
            EventKind::Access {
                var,
                site,
                write,
                held,
            } => {
                p.push(kind::ACCESS);
                put_varint(&mut p, u64::from(var.as_u32()));
                put_varint(&mut p, u64::from(self.label_id(*site, out)));
                p.push(u8::from(*write));
                put_varint(&mut p, held.len() as u64);
                for h in held {
                    put_varint(&mut p, u64::from(h.as_u32()));
                }
            }
            EventKind::AtomicBegin { site } => {
                p.push(kind::ATOMIC_BEGIN);
                put_varint(&mut p, u64::from(self.label_id(*site, out)));
            }
            EventKind::AtomicEnd => p.push(kind::ATOMIC_END),
            EventKind::Wait { lock, site } => {
                p.push(kind::WAIT);
                put_varint(&mut p, u64::from(lock.as_u32()));
                put_varint(&mut p, u64::from(self.label_id(*site, out)));
            }
            EventKind::Notify { lock, site, all } => {
                p.push(kind::NOTIFY);
                put_varint(&mut p, u64::from(lock.as_u32()));
                put_varint(&mut p, u64::from(self.label_id(*site, out)));
                p.push(u8::from(*all));
            }
            EventKind::TryAcquire {
                lock,
                site,
                acquired,
                mode,
            } => {
                p.push(kind::TRY_ACQUIRE);
                put_varint(&mut p, u64::from(lock.as_u32()));
                put_varint(&mut p, u64::from(self.label_id(*site, out)));
                p.push(u8::from(*acquired));
                p.push(match mode {
                    AcquireMode::Exclusive => 0,
                    AcquireMode::Shared => 1,
                });
            }
            EventKind::CondWait {
                condvar,
                lock,
                site,
            } => {
                p.push(kind::COND_WAIT);
                put_varint(&mut p, u64::from(condvar.as_u32()));
                put_varint(&mut p, u64::from(lock.as_u32()));
                put_varint(&mut p, u64::from(self.label_id(*site, out)));
            }
            EventKind::CondNotify { condvar, site, all } => {
                p.push(kind::COND_NOTIFY);
                put_varint(&mut p, u64::from(condvar.as_u32()));
                put_varint(&mut p, u64::from(self.label_id(*site, out)));
                p.push(u8::from(*all));
            }
        }
        put_frame(out, &p);
    }

    /// Encodes the footer frame plus the trailing seal frame into `out`.
    pub(crate) fn encode_finish(
        &mut self,
        objects: &ObjectTable,
        thread_objs: BTreeMap<ThreadId, ObjId>,
        out: &mut Vec<u8>,
    ) {
        let mut p = Vec::with_capacity(64);
        p.push(tag::FOOTER);
        put_varint(&mut p, objects.len() as u64);
        for meta in objects.iter() {
            put_varint(&mut p, u64::from(meta.id.as_u32()));
            p.push(match meta.kind {
                ObjKind::Lock => 0,
                ObjKind::Thread => 1,
                ObjKind::Plain => 2,
                ObjKind::Var => 3,
            });
            put_varint(&mut p, u64::from(self.label_id(meta.site, out)));
            match meta.owner {
                None => put_varint(&mut p, 0),
                Some(o) => put_varint(&mut p, u64::from(o.as_u32()) + 1),
            }
            put_varint(&mut p, meta.index.len() as u64);
            for frame in &meta.index {
                put_varint(&mut p, u64::from(self.label_id(frame.site, out)));
                put_varint(&mut p, u64::from(frame.count));
            }
            put_varint(&mut p, meta.seq);
            match &meta.name {
                None => put_varint(&mut p, 0),
                Some(n) => {
                    let id = self.name_id(n, out);
                    put_varint(&mut p, u64::from(id) + 1);
                }
            }
        }
        put_varint(&mut p, thread_objs.len() as u64);
        for (thread, obj) in thread_objs {
            put_varint(&mut p, u64::from(thread.as_u32()));
            put_varint(&mut p, u64::from(obj.as_u32()));
        }
        put_frame(out, &p);
        put_frame(out, &[tag::SEAL]);
    }
}

/// Streams one execution into the binary trace format — the v2
/// counterpart of [`crate::TraceWriter`], with the same surface.
/// Dropping without [`BinaryTraceWriter::finish`] leaves a truncated
/// artifact that [`read_binary_trace`] rejects.
pub struct BinaryTraceWriter<W: Write> {
    out: W,
    encoder: BinaryEncoder,
    scratch: Vec<u8>,
    events: u64,
    bytes: u64,
}

impl<W: Write> BinaryTraceWriter<W> {
    /// Starts an artifact by writing the magic and header frame.
    pub fn new(mut out: W) -> Result<Self, SpillError> {
        let (encoder, preamble) = BinaryEncoder::new();
        out.write_all(&preamble)?;
        Ok(BinaryTraceWriter {
            out,
            encoder,
            scratch: Vec::with_capacity(64),
            events: 0,
            bytes: preamble.len() as u64,
        })
    }

    /// Appends one event frame (plus any new string definitions).
    pub fn write_event(&mut self, event: &Event) -> Result<(), SpillError> {
        self.scratch.clear();
        self.encoder.encode_event(event, &mut self.scratch);
        self.out.write_all(&self.scratch)?;
        self.events += 1;
        self.bytes += self.scratch.len() as u64;
        Ok(())
    }

    /// Number of event frames written so far.
    pub fn events_written(&self) -> u64 {
        self.events
    }

    /// Bytes written so far (magic + header + events + string table).
    pub fn bytes_written(&self) -> u64 {
        self.bytes
    }

    /// Seals the artifact with the footer and seal frames and returns
    /// the writer.
    pub fn finish(
        mut self,
        objects: &ObjectTable,
        thread_objs: BTreeMap<ThreadId, ObjId>,
    ) -> Result<W, SpillError> {
        self.scratch.clear();
        self.encoder
            .encode_finish(objects, thread_objs, &mut self.scratch);
        self.out.write_all(&self.scratch)?;
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Writes a complete in-memory trace as one binary artifact.
pub fn write_binary_trace<W: Write>(out: W, trace: &Trace) -> Result<W, SpillError> {
    let mut w = BinaryTraceWriter::new(out)?;
    for event in trace.events() {
        w.write_event(event)?;
    }
    w.finish(trace.objects(), trace.thread_objs().collect())
}

/// Cursor over one frame's payload; every decoding failure carries the
/// frame's 1-based number, mirroring the JSONL reader's line numbers.
struct FrameReader<'a> {
    buf: &'a [u8],
    pos: usize,
    frame: u64,
}

impl<'a> FrameReader<'a> {
    fn bad(&self, detail: impl Into<String>) -> SpillError {
        SpillError::MalformedFrame {
            frame: self.frame,
            detail: detail.into(),
        }
    }

    fn byte(&mut self) -> Result<u8, SpillError> {
        let b = *self
            .buf
            .get(self.pos)
            .ok_or_else(|| self.bad("truncated frame payload"))?;
        self.pos += 1;
        Ok(b)
    }

    fn varint(&mut self) -> Result<u64, SpillError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.byte()?;
            if shift >= 63 && b > 1 {
                return Err(self.bad("varint overflows u64"));
            }
            v |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    fn varint_u32(&mut self) -> Result<u32, SpillError> {
        let v = self.varint()?;
        u32::try_from(v).map_err(|_| self.bad(format!("id {v} overflows u32")))
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SpillError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| self.bad("truncated frame payload"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn done(&self) -> Result<(), SpillError> {
        if self.pos != self.buf.len() {
            return Err(self.bad(format!(
                "{} trailing byte(s) in frame",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }

    fn str_ref(&mut self, strings: &[Label]) -> Result<Label, SpillError> {
        let id = self.varint_u32()? as usize;
        strings
            .get(id)
            .copied()
            .ok_or_else(|| self.bad(format!("reference to undefined string {id}")))
    }

    fn obj_id(&mut self) -> Result<ObjId, SpillError> {
        Ok(ObjId::new(self.varint_u32()?))
    }

    fn thread_id(&mut self) -> Result<ThreadId, SpillError> {
        Ok(ThreadId::new(self.varint_u32()?))
    }
}

/// Reads a binary artifact back into an in-memory [`Trace`].
///
/// # Errors
///
/// Rejects inputs without the magic ([`SpillError::NotAnArtifact`]), with
/// a foreign format name ([`SpillError::WrongFormat`]) or version
/// ([`SpillError::VersionMismatch`]), truncated before the footer
/// ([`SpillError::MissingFooter`]) or between footer and seal
/// ([`SpillError::MissingSeal`]), with frames after the seal
/// ([`SpillError::TrailingData`]), or with any corrupt frame
/// ([`SpillError::MalformedFrame`], carrying the 1-based frame number) —
/// and never panics, whatever the bytes.
pub fn read_binary_trace(bytes: &[u8]) -> Result<Trace, SpillError> {
    if bytes.len() < TRACE_BINARY_MAGIC.len() || bytes[..4] != TRACE_BINARY_MAGIC {
        return Err(SpillError::NotAnArtifact);
    }
    let mut pos = TRACE_BINARY_MAGIC.len();
    let mut frame_no = 0u64;
    let mut strings: Vec<Label> = Vec::new();
    let mut trace = Trace::new();
    let mut footer_seen = false;
    let mut sealed = false;
    let mut header_version = TRACE_BINARY_FORMAT_VERSION;

    while pos < bytes.len() {
        frame_no += 1;
        if sealed {
            return Err(SpillError::TrailingData);
        }
        // Length prefix (decoded by hand: the frame body is not yet
        // delimited, so FrameReader cannot be used here).
        let mut len = 0u64;
        let mut shift = 0u32;
        loop {
            let b = *bytes.get(pos).ok_or(SpillError::MalformedFrame {
                frame: frame_no,
                detail: "truncated length prefix".to_string(),
            })?;
            pos += 1;
            if shift >= 63 && b > 1 {
                return Err(SpillError::MalformedFrame {
                    frame: frame_no,
                    detail: "length prefix overflows u64".to_string(),
                });
            }
            len |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                break;
            }
            shift += 7;
        }
        let len = usize::try_from(len).unwrap_or(usize::MAX);
        let end = pos.checked_add(len).filter(|&e| e <= bytes.len()).ok_or(
            SpillError::MalformedFrame {
                frame: frame_no,
                detail: format!("length prefix {len} runs past end of file"),
            },
        )?;
        let mut f = FrameReader {
            buf: &bytes[pos..end],
            pos: 0,
            frame: frame_no,
        };
        pos = end;

        let tag = f.byte().map_err(|_| SpillError::MalformedFrame {
            frame: frame_no,
            detail: "empty frame (no tag byte)".to_string(),
        })?;
        if frame_no == 1 && tag != tag::HEADER {
            return Err(SpillError::MalformedFrame {
                frame: 1,
                detail: "first frame is not a header".to_string(),
            });
        }
        match tag {
            tag::HEADER => {
                if frame_no != 1 {
                    return Err(f.bad("duplicate header"));
                }
                let name_len = f.varint()? as usize;
                let name = std::str::from_utf8(f.take(name_len)?)
                    .map_err(|_| f.bad("header format name is not UTF-8"))?
                    .to_string();
                let version = f.varint_u32()?;
                f.done()?;
                if name != TRACE_FORMAT {
                    return Err(SpillError::WrongFormat(name));
                }
                if !(TRACE_BINARY_MIN_FORMAT_VERSION..=TRACE_BINARY_FORMAT_VERSION)
                    .contains(&version)
                {
                    return Err(SpillError::VersionMismatch {
                        found: version,
                        expected: TRACE_BINARY_FORMAT_VERSION,
                    });
                }
                header_version = version;
            }
            tag::STR_DEF => {
                if footer_seen {
                    return Err(SpillError::TrailingData);
                }
                let id = f.varint_u32()? as usize;
                if id != strings.len() {
                    return Err(f.bad(format!(
                        "string id {id} out of order (expected {})",
                        strings.len()
                    )));
                }
                let len = f.varint()? as usize;
                let text = std::str::from_utf8(f.take(len)?)
                    .map_err(|_| f.bad(format!("string {id} is not UTF-8")))?;
                strings.push(Label::new(text));
                f.done()?;
            }
            tag::EVENT => {
                if footer_seen {
                    return Err(SpillError::TrailingData);
                }
                let seq = f.varint()?;
                let thread = f.thread_id()?;
                let kind = read_kind(&mut f, &strings, header_version)?;
                f.done()?;
                let assigned = trace.push(thread, kind);
                if assigned != seq {
                    return Err(SpillError::MalformedFrame {
                        frame: frame_no,
                        detail: format!("event seq {seq} out of order (expected {assigned})"),
                    });
                }
            }
            tag::FOOTER => {
                if footer_seen {
                    return Err(SpillError::TrailingData);
                }
                read_footer(&mut f, &strings, &mut trace)?;
                f.done()?;
                footer_seen = true;
            }
            tag::SEAL => {
                if !footer_seen {
                    return Err(f.bad("seal frame before footer"));
                }
                f.done()?;
                sealed = true;
            }
            other => {
                return Err(f.bad(format!("unknown frame tag {other}")));
            }
        }
    }
    if frame_no == 0 {
        // Magic only, no frames at all: not even a header.
        return Err(SpillError::NotAnArtifact);
    }
    if !footer_seen {
        return Err(SpillError::MissingFooter);
    }
    if !sealed {
        return Err(SpillError::MissingSeal);
    }
    Ok(trace)
}

fn read_kind(
    f: &mut FrameReader<'_>,
    strings: &[Label],
    version: u32,
) -> Result<EventKind, SpillError> {
    let tag = f.byte()?;
    if tag >= kind::FIRST_V3 && version < 3 {
        return Err(f.bad(format!(
            "event kind tag {tag} requires format version 3 (header says {version})"
        )));
    }
    Ok(match tag {
        kind::ACQUIRE | kind::ACQUIRE_SHARED => {
            let lock = f.obj_id()?;
            let site = f.str_ref(strings)?;
            let held_len = f.varint()? as usize;
            let mut held = Vec::with_capacity(held_len.min(1024));
            for _ in 0..held_len {
                held.push(f.obj_id()?);
            }
            let ctx_len = f.varint()? as usize;
            let mut context = Vec::with_capacity(ctx_len.min(1024));
            for _ in 0..ctx_len {
                context.push(f.str_ref(strings)?);
            }
            let acq = EventKind::acquire(lock, site, held, context);
            if tag == kind::ACQUIRE_SHARED {
                acq.shared()
            } else {
                acq
            }
        }
        kind::RELEASE => EventKind::release(f.obj_id()?, f.str_ref(strings)?),
        kind::RELEASE_SHARED => EventKind::release(f.obj_id()?, f.str_ref(strings)?).shared(),
        kind::REACQUIRE => EventKind::Reacquire {
            lock: f.obj_id()?,
            site: f.str_ref(strings)?,
        },
        kind::RERELEASE => EventKind::Rerelease {
            lock: f.obj_id()?,
            site: f.str_ref(strings)?,
        },
        kind::CALL => EventKind::Call {
            site: f.str_ref(strings)?,
        },
        kind::RETURN => EventKind::Return,
        kind::NEW => EventKind::New { obj: f.obj_id()? },
        kind::SPAWN => EventKind::Spawn {
            child: f.thread_id()?,
            child_obj: f.obj_id()?,
        },
        kind::THREAD_START => EventKind::ThreadStart,
        kind::THREAD_EXIT => EventKind::ThreadExit,
        kind::JOIN => EventKind::Join {
            target: f.thread_id()?,
        },
        kind::BLOCKED => EventKind::blocked(f.obj_id()?),
        kind::BLOCKED_SHARED => EventKind::blocked(f.obj_id()?).shared(),
        kind::UNBLOCKED => EventKind::Unblocked { lock: f.obj_id()? },
        kind::YIELD => EventKind::Yield,
        kind::WORK => EventKind::Work {
            units: f.varint_u32()?,
        },
        kind::ACCESS => {
            let var = f.obj_id()?;
            let site = f.str_ref(strings)?;
            let write = match f.byte()? {
                0 => false,
                1 => true,
                b => return Err(f.bad(format!("bad bool byte {b}"))),
            };
            let held_len = f.varint()? as usize;
            let mut held = Vec::with_capacity(held_len.min(1024));
            for _ in 0..held_len {
                held.push(f.obj_id()?);
            }
            EventKind::Access {
                var,
                site,
                write,
                held,
            }
        }
        kind::ATOMIC_BEGIN => EventKind::AtomicBegin {
            site: f.str_ref(strings)?,
        },
        kind::ATOMIC_END => EventKind::AtomicEnd,
        kind::WAIT => EventKind::Wait {
            lock: f.obj_id()?,
            site: f.str_ref(strings)?,
        },
        kind::NOTIFY => {
            let lock = f.obj_id()?;
            let site = f.str_ref(strings)?;
            let all = match f.byte()? {
                0 => false,
                1 => true,
                b => return Err(f.bad(format!("bad bool byte {b}"))),
            };
            EventKind::Notify { lock, site, all }
        }
        kind::TRY_ACQUIRE => {
            let lock = f.obj_id()?;
            let site = f.str_ref(strings)?;
            let acquired = match f.byte()? {
                0 => false,
                1 => true,
                b => return Err(f.bad(format!("bad bool byte {b}"))),
            };
            let mode = match f.byte()? {
                0 => AcquireMode::Exclusive,
                1 => AcquireMode::Shared,
                b => return Err(f.bad(format!("bad mode byte {b}"))),
            };
            EventKind::try_acquire(lock, site, acquired).with_mode(mode)
        }
        kind::COND_WAIT => {
            let condvar = f.obj_id()?;
            let lock = f.obj_id()?;
            let site = f.str_ref(strings)?;
            EventKind::cond_wait(condvar, lock, site)
        }
        kind::COND_NOTIFY => {
            let condvar = f.obj_id()?;
            let site = f.str_ref(strings)?;
            let all = match f.byte()? {
                0 => false,
                1 => true,
                b => return Err(f.bad(format!("bad bool byte {b}"))),
            };
            EventKind::cond_notify(condvar, site, all)
        }
        other => return Err(f.bad(format!("unknown event kind tag {other}"))),
    })
}

fn read_footer(
    f: &mut FrameReader<'_>,
    strings: &[Label],
    trace: &mut Trace,
) -> Result<(), SpillError> {
    let objects = f.varint()? as usize;
    for _ in 0..objects {
        let id = f.obj_id()?;
        let kind = match f.byte()? {
            0 => ObjKind::Lock,
            1 => ObjKind::Thread,
            2 => ObjKind::Plain,
            3 => ObjKind::Var,
            b => return Err(f.bad(format!("unknown object kind byte {b}"))),
        };
        let site = f.str_ref(strings)?;
        let owner = match f.varint_u32()? {
            0 => None,
            n => Some(ObjId::new(n - 1)),
        };
        let index_len = f.varint()? as usize;
        let mut index = Vec::with_capacity(index_len.min(1024));
        for _ in 0..index_len {
            let site = f.str_ref(strings)?;
            let count = f.varint_u32()?;
            index.push(IndexFrame::new(site, count));
        }
        let seq = f.varint()?;
        let name = match f.varint_u32()? {
            0 => None,
            n => {
                let label = strings
                    .get((n - 1) as usize)
                    .ok_or_else(|| f.bad(format!("reference to undefined string {}", n - 1)))?;
                Some(label.as_str().to_string())
            }
        };
        let assigned = trace
            .objects_mut()
            .create_named(kind, site, owner, index, name);
        if assigned != id || trace.objects().get(assigned).seq != seq {
            return Err(f.bad(format!(
                "object {} out of order (expected {})",
                id.as_u32(),
                assigned.as_u32()
            )));
        }
    }
    let bindings = f.varint()? as usize;
    for _ in 0..bindings {
        let thread = f.thread_id()?;
        let obj = f.obj_id()?;
        trace.bind_thread(thread, obj);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spill::{read_trace, write_trace};
    use proptest::prelude::*;

    fn sample_trace() -> Trace {
        let mut trace = Trace::new();
        let t0 = ThreadId::new(0);
        let t1 = ThreadId::new(1);
        let main_obj = trace.objects_mut().create_named(
            ObjKind::Thread,
            Label::new("<main>"),
            None,
            vec![],
            Some("main".to_string()),
        );
        trace.bind_thread(t0, main_obj);
        let worker_obj = trace.objects_mut().create_named(
            ObjKind::Thread,
            Label::new("main:9"),
            Some(main_obj),
            vec![IndexFrame::new(Label::new("main:9"), 1)],
            Some("worker".to_string()),
        );
        trace.bind_thread(t1, worker_obj);
        let a = trace
            .objects_mut()
            .create(ObjKind::Lock, Label::new("main:3"), None, vec![]);
        let b =
            trace
                .objects_mut()
                .create(ObjKind::Lock, Label::new("main:4"), Some(main_obj), vec![]);
        trace.push(t0, EventKind::ThreadStart);
        trace.push(
            t0,
            EventKind::Spawn {
                child: t1,
                child_obj: worker_obj,
            },
        );
        trace.push(t1, EventKind::ThreadStart);
        trace.push(
            t0,
            EventKind::acquire(
                a,
                Label::new("main:10"),
                vec![],
                vec![Label::new("main:10")],
            ),
        );
        trace.push(
            t0,
            EventKind::acquire(
                b,
                Label::new("main:11"),
                vec![a],
                vec![Label::new("main:10"), Label::new("main:11")],
            ),
        );
        trace.push(t1, EventKind::blocked(b));
        trace.push(t0, EventKind::release(b, Label::new("main:12")));
        trace.push(t1, EventKind::unblocked(b));
        trace.push(t0, EventKind::release(a, Label::new("main:13")));
        trace.push(t0, EventKind::Join { target: t1 });
        trace.push(t1, EventKind::ThreadExit);
        trace.push(t0, EventKind::ThreadExit);
        trace
    }

    /// A kitchen-sink trace exercising every EventKind variant once.
    fn all_kinds_trace() -> Trace {
        let mut trace = Trace::new();
        let t0 = ThreadId::new(0);
        let obj = trace
            .objects_mut()
            .create(ObjKind::Thread, Label::new("<main>"), None, vec![]);
        trace.bind_thread(t0, obj);
        let lk = trace
            .objects_mut()
            .create(ObjKind::Lock, Label::new("k:1"), None, vec![]);
        let var = trace
            .objects_mut()
            .create(ObjKind::Var, Label::new("k:2"), None, vec![]);
        let l = |s: &str| Label::new(s);
        for kind in [
            EventKind::ThreadStart,
            EventKind::Call { site: l("k:3") },
            EventKind::New { obj: var },
            EventKind::acquire(lk, l("k:4"), vec![], vec![l("k:4")]),
            EventKind::reacquire(lk, l("k:5")),
            EventKind::rerelease(lk, l("k:6")),
            EventKind::Access {
                var,
                site: l("k:7"),
                write: true,
                held: vec![lk],
            },
            EventKind::Access {
                var,
                site: l("k:7"),
                write: false,
                held: vec![],
            },
            EventKind::wait(lk, l("k:8")),
            EventKind::notify(lk, l("k:9"), false),
            EventKind::notify(lk, l("k:9"), true),
            EventKind::AtomicBegin { site: l("k:10") },
            EventKind::AtomicEnd,
            EventKind::release(lk, l("k:11")),
            EventKind::Spawn {
                child: ThreadId::new(1),
                child_obj: obj,
            },
            EventKind::Join {
                target: ThreadId::new(1),
            },
            EventKind::blocked(lk),
            EventKind::unblocked(lk),
            EventKind::Yield,
            EventKind::Work { units: 70000 },
            EventKind::Return,
            EventKind::ThreadExit,
            // Version-3 vocabulary.
            EventKind::acquire(lk, l("k:12"), vec![], vec![l("k:12")]).shared(),
            EventKind::blocked(lk).shared(),
            EventKind::release(lk, l("k:13")).shared(),
            EventKind::try_acquire(lk, l("k:14"), true),
            EventKind::try_acquire(lk, l("k:14"), false).shared(),
            EventKind::cond_wait(var, lk, l("k:15")),
            EventKind::cond_notify(var, l("k:16"), false),
            EventKind::cond_notify(var, l("k:16"), true),
        ] {
            trace.push(t0, kind);
        }
        trace
    }

    #[test]
    fn round_trips_a_trace() {
        for trace in [sample_trace(), all_kinds_trace(), Trace::new()] {
            let bytes = write_binary_trace(Vec::new(), &trace).unwrap();
            let back = read_binary_trace(&bytes).unwrap();
            assert_eq!(trace, back);
        }
    }

    #[test]
    fn binary_is_canonical_reencoding_reproduces_bytes() {
        let trace = sample_trace();
        let bytes = write_binary_trace(Vec::new(), &trace).unwrap();
        let back = read_binary_trace(&bytes).unwrap();
        let again = write_binary_trace(Vec::new(), &back).unwrap();
        assert_eq!(bytes, again);
    }

    #[test]
    fn binary_read_then_jsonl_write_matches_direct_jsonl_write() {
        for trace in [sample_trace(), all_kinds_trace()] {
            let direct = write_trace(Vec::new(), &trace).unwrap();
            let bin = write_binary_trace(Vec::new(), &trace).unwrap();
            let via_binary = write_trace(Vec::new(), &read_binary_trace(&bin).unwrap()).unwrap();
            assert_eq!(direct, via_binary);
            assert_eq!(
                read_trace(&direct[..]).unwrap(),
                read_binary_trace(&bin).unwrap()
            );
        }
    }

    #[test]
    fn binary_is_smaller_than_jsonl() {
        let trace = sample_trace();
        let jsonl = write_trace(Vec::new(), &trace).unwrap();
        let bin = write_binary_trace(Vec::new(), &trace).unwrap();
        assert!(
            bin.len() * 3 < jsonl.len(),
            "binary ({}) should be well under a third of JSONL ({})",
            bin.len(),
            jsonl.len()
        );
    }

    #[test]
    fn rejects_non_artifacts() {
        assert!(matches!(
            read_binary_trace(b"{\"Header\":{}}"),
            Err(SpillError::NotAnArtifact)
        ));
        assert!(matches!(
            read_binary_trace(b""),
            Err(SpillError::NotAnArtifact)
        ));
        assert!(matches!(
            read_binary_trace(&TRACE_BINARY_MAGIC),
            Err(SpillError::NotAnArtifact)
        ));
    }

    /// Header frame layout: magic(4) ++ len(1) ++ tag(1) ++ name_len(1)
    /// ++ "df-trace"(8) ++ version(1): the version varint sits at
    /// offset 15.
    const VERSION_OFFSET: usize = 15;

    #[test]
    fn rejects_version_bump() {
        let bytes = write_binary_trace(Vec::new(), &sample_trace()).unwrap();
        let mut bumped = bytes.clone();
        assert_eq!(bumped[VERSION_OFFSET], TRACE_BINARY_FORMAT_VERSION as u8);
        bumped[VERSION_OFFSET] = TRACE_BINARY_FORMAT_VERSION as u8 + 1;
        match read_binary_trace(&bumped) {
            Err(SpillError::VersionMismatch { found, expected }) => {
                assert_eq!(found, TRACE_BINARY_FORMAT_VERSION + 1);
                assert_eq!(expected, TRACE_BINARY_FORMAT_VERSION);
            }
            other => panic!("expected version mismatch, got {other:?}"),
        }
        // Below the accepted window is rejected too.
        let mut ancient = bytes;
        ancient[VERSION_OFFSET] = TRACE_BINARY_MIN_FORMAT_VERSION as u8 - 1;
        assert!(matches!(
            read_binary_trace(&ancient),
            Err(SpillError::VersionMismatch { found: 1, .. })
        ));
    }

    #[test]
    fn accepts_a_version_2_header_for_exclusive_traces() {
        // A v2 artifact is exactly today's encoding of a mode-free trace
        // with the header byte dialed back — assert that equivalence and
        // that the reader still takes it.
        let trace = sample_trace();
        let mut bytes = write_binary_trace(Vec::new(), &trace).unwrap();
        bytes[VERSION_OFFSET] = 2;
        let back = read_binary_trace(&bytes).unwrap();
        assert_eq!(trace, back);
    }

    #[test]
    fn rejects_v3_event_tags_under_a_v2_header() {
        // all_kinds_trace contains shared/try/condvar events, whose tags
        // did not exist in version 2.
        let mut bytes = write_binary_trace(Vec::new(), &all_kinds_trace()).unwrap();
        assert_eq!(bytes[VERSION_OFFSET], TRACE_BINARY_FORMAT_VERSION as u8);
        bytes[VERSION_OFFSET] = 2;
        match read_binary_trace(&bytes) {
            Err(SpillError::MalformedFrame { detail, .. }) => {
                assert!(
                    detail.contains("requires format version 3"),
                    "detail: {detail}"
                );
            }
            other => panic!("expected MalformedFrame, got {other:?}"),
        }
    }

    #[test]
    fn mode_free_traces_differ_from_v2_only_in_the_header_byte() {
        // The compat contract behind `accepts_a_version_2_header`: no
        // event of the old vocabulary changed its encoding.
        let bytes = write_binary_trace(Vec::new(), &sample_trace()).unwrap();
        let decoded = read_binary_trace(&bytes).unwrap();
        for e in decoded.events() {
            assert_ne!(e.kind.mode(), Some(AcquireMode::Shared));
        }
    }

    #[test]
    fn rejects_wrong_format_name() {
        let bytes = write_binary_trace(Vec::new(), &sample_trace()).unwrap();
        let mut renamed = bytes.clone();
        // "df-trace" starts at offset 7; flip it to "df-other".
        renamed[7..15].copy_from_slice(b"df-other");
        assert!(matches!(
            read_binary_trace(&renamed),
            Err(SpillError::WrongFormat(f)) if f == "df-other"
        ));
    }

    #[test]
    fn rejects_truncated_frame_with_its_index() {
        let bytes = write_binary_trace(Vec::new(), &sample_trace()).unwrap();
        // Chop one byte: the final (seal) frame's payload goes missing.
        let cut = &bytes[..bytes.len() - 1];
        match read_binary_trace(cut) {
            Err(e @ SpillError::MalformedFrame { .. }) => {
                assert!(e.frame().is_some());
                assert!(e.to_string().contains("malformed frame"), "message: {e}");
            }
            other => panic!("expected MalformedFrame, got {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_length_prefix() {
        let trace = sample_trace();
        let bytes = write_binary_trace(Vec::new(), &trace).unwrap();
        // Replace the seal with a length prefix that never terminates.
        let mut cut = bytes[..bytes.len() - 2].to_vec();
        cut.extend_from_slice(&[0x80; 12]);
        match read_binary_trace(&cut) {
            Err(SpillError::MalformedFrame { detail, .. }) => {
                assert!(detail.contains("length prefix"), "detail: {detail}");
            }
            other => panic!("expected MalformedFrame, got {other:?}"),
        }
        // And one that points past end of file.
        let mut overlong = bytes[..bytes.len() - 2].to_vec();
        overlong.push(100);
        match read_binary_trace(&overlong) {
            Err(SpillError::MalformedFrame { detail, .. }) => {
                assert!(detail.contains("runs past end"), "detail: {detail}");
            }
            other => panic!("expected MalformedFrame, got {other:?}"),
        }
    }

    #[test]
    fn rejects_unknown_frame_tag() {
        let bytes = write_binary_trace(Vec::new(), &sample_trace()).unwrap();
        // Insert a [len=1, tag=99] frame where the seal was, keeping the
        // seal after it so only the tag is wrong.
        let mut crafted = bytes[..bytes.len() - 2].to_vec();
        crafted.extend_from_slice(&[1, 99]);
        crafted.extend_from_slice(&bytes[bytes.len() - 2..]);
        match read_binary_trace(&crafted) {
            Err(SpillError::MalformedFrame { detail, .. }) => {
                assert!(detail.contains("unknown frame tag 99"), "detail: {detail}");
            }
            other => panic!("expected MalformedFrame, got {other:?}"),
        }
    }

    #[test]
    fn rejects_missing_seal_and_missing_footer() {
        let bytes = write_binary_trace(Vec::new(), &sample_trace()).unwrap();
        // Drop exactly the 2-byte seal frame: footer intact, seal gone.
        assert!(matches!(
            read_binary_trace(&bytes[..bytes.len() - 2]),
            Err(SpillError::MissingSeal)
        ));
        // Scan back to the start of the footer frame and cut there.
        let mut pos = TRACE_BINARY_MAGIC.len();
        let mut footer_start = None;
        while pos < bytes.len() {
            let start = pos;
            let mut len = 0u64;
            let mut shift = 0;
            loop {
                let b = bytes[pos];
                pos += 1;
                len |= u64::from(b & 0x7f) << shift;
                if b & 0x80 == 0 {
                    break;
                }
                shift += 7;
            }
            if bytes[pos] == 4 {
                footer_start = Some(start);
            }
            pos += len as usize;
        }
        let footer_start = footer_start.expect("artifact has a footer frame");
        assert!(matches!(
            read_binary_trace(&bytes[..footer_start]),
            Err(SpillError::MissingFooter)
        ));
    }

    #[test]
    fn rejects_trailing_data_after_seal() {
        let mut bytes = write_binary_trace(Vec::new(), &sample_trace()).unwrap();
        bytes.extend_from_slice(&[1, 14]);
        assert!(matches!(
            read_binary_trace(&bytes),
            Err(SpillError::TrailingData)
        ));
    }

    #[test]
    fn rejects_duplicate_header() {
        let bytes = write_binary_trace(Vec::new(), &sample_trace()).unwrap();
        // Re-insert the header frame (offset 4..16) before the seal.
        let mut doubled = bytes[..bytes.len() - 2].to_vec();
        doubled.extend_from_slice(&bytes[4..16]);
        doubled.extend_from_slice(&bytes[bytes.len() - 2..]);
        match read_binary_trace(&doubled) {
            Err(SpillError::MalformedFrame { detail, .. }) => {
                assert!(detail.contains("duplicate header"), "detail: {detail}");
            }
            other => panic!("expected MalformedFrame, got {other:?}"),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Fuzz-ish truncation: every strict prefix of a valid artifact
        /// must be rejected with an error, never a panic, never Ok.
        #[test]
        fn any_truncation_is_rejected(cut in 0usize..1000) {
            let bytes = write_binary_trace(Vec::new(), &sample_trace()).unwrap();
            let cut = cut % bytes.len();
            prop_assert!(read_binary_trace(&bytes[..cut]).is_err());
        }

        /// Fuzz-ish corruption: flipping any single byte never panics
        /// the reader (it may still parse if the flip lands in string
        /// content — that is fine; crashing is not).
        #[test]
        fn any_single_byte_flip_never_panics(pos in 0usize..1000, bit in 0u32..8) {
            let mut bytes = write_binary_trace(Vec::new(), &sample_trace()).unwrap();
            let pos = pos % bytes.len();
            bytes[pos] ^= 1 << bit;
            let _ = read_binary_trace(&bytes);
        }
    }
}
