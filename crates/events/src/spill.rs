//! The versioned on-disk trace format (`df-trace` v1).
//!
//! A recorded execution is a JSON-lines file:
//!
//! 1. a header line `{"Header":{"format":"df-trace","version":1}}`,
//! 2. one line per [`Event`], in sequence order,
//! 3. a footer line carrying the final [`ObjectTable`] and the
//!    thread→object bindings.
//!
//! The format exists so observation and analysis can live in different
//! processes (`dfz record` → `dfz analyze`): a [`TraceWriter`] appends
//! events as they happen and never needs the full event vector, and
//! [`read_trace`] reconstructs an in-memory [`Trace`] byte-equivalent to
//! what a one-shot run would have recorded. Readers reject unknown
//! format names and versions instead of guessing — the version gate is
//! what lets the layout evolve without silently misreading old files.
//!
//! [`SpillSink`] adapts a [`TraceWriter`] to the [`EventSink`] interface
//! so a substrate can spill its stream to disk online.

use std::collections::BTreeMap;
use std::fmt;
use std::io::{self, BufRead, Write};
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::binary::{read_binary_trace, BinaryEncoder, BinaryTraceWriter, TRACE_BINARY_MAGIC};
use crate::{Event, EventSink, ObjId, ObjectTable, ThreadId, Trace};

/// Format name stamped into every trace artifact header.
pub const TRACE_FORMAT: &str = "df-trace";

/// Current version of the on-disk trace format.
pub const TRACE_FORMAT_VERSION: u32 = 1;

/// Which on-disk encoding of the `df-trace` envelope to write.
///
/// Readers never need this — [`read_trace_bytes`] and `dfz analyze`
/// sniff the encoding from the first bytes.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub enum TraceFormat {
    /// Version 1: one JSON object per line. Self-describing and
    /// diff-friendly; the choice for goldens and debugging.
    #[default]
    Jsonl,
    /// Version 2: length-prefixed binary frames with interned strings
    /// and varint ids ([`crate::binary`]). The choice for
    /// hardware-speed recording.
    Binary,
}

impl TraceFormat {
    /// The flag spelling of this format (`jsonl` / `binary`).
    pub fn as_str(&self) -> &'static str {
        match self {
            TraceFormat::Jsonl => "jsonl",
            TraceFormat::Binary => "binary",
        }
    }
}

impl fmt::Display for TraceFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for TraceFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "jsonl" | "json-lines" | "v1" => Ok(TraceFormat::Jsonl),
            "binary" | "bin" | "v2" => Ok(TraceFormat::Binary),
            other => Err(format!("unknown trace format '{other}' (jsonl | binary)")),
        }
    }
}

/// The header line of a trace artifact.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct TraceHeader {
    /// Always [`TRACE_FORMAT`] for files this module writes.
    pub format: String,
    /// The writer's [`TRACE_FORMAT_VERSION`].
    pub version: u32,
}

/// The footer line of a trace artifact: everything a [`Trace`] holds
/// besides the event sequence.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct TraceFooter {
    /// The execution's object table.
    pub objects: ObjectTable,
    /// Thread→object bindings.
    pub thread_objs: BTreeMap<ThreadId, ObjId>,
}

/// One line of a trace artifact (externally tagged by variant name).
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
enum TraceLine {
    /// The leading header line.
    Header(TraceHeader),
    /// An event line.
    Event(Event),
    /// The trailing footer line.
    Footer(TraceFooter),
}

/// Why a trace artifact could not be written or read.
#[derive(Debug)]
pub enum SpillError {
    /// The underlying reader or writer failed.
    Io(io::Error),
    /// An event or footer could not be serialized while writing.
    Json(String),
    /// A line of the artifact was corrupt while reading. `line` is
    /// 1-based (the header is line 1), so reports can point straight at
    /// the offending line of a truncated or hand-damaged file.
    MalformedLine {
        /// 1-based line number of the corrupt line.
        line: u64,
        /// What was wrong with it.
        detail: String,
    },
    /// A frame of a binary (v2) artifact was corrupt while reading:
    /// truncated, misprefixed, or carrying an unknown tag. `frame` is
    /// 1-based (the header is frame 1), the binary twin of
    /// [`SpillError::MalformedLine`].
    MalformedFrame {
        /// 1-based frame number of the corrupt frame.
        frame: u64,
        /// What was wrong with it.
        detail: String,
    },
    /// The file does not start with a `df-trace` header.
    NotAnArtifact,
    /// The header names a different format.
    WrongFormat(String),
    /// The header's version is not [`TRACE_FORMAT_VERSION`].
    VersionMismatch {
        /// Version found in the header.
        found: u32,
        /// Version this reader understands.
        expected: u32,
    },
    /// The artifact ended without a footer line (truncated recording).
    MissingFooter,
    /// A binary artifact has its footer but not the trailing seal frame
    /// — the writer died between the two.
    MissingSeal,
    /// A line appeared after the footer, or events after EOF markers.
    TrailingData,
}

impl fmt::Display for SpillError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpillError::Io(e) => write!(f, "trace artifact i/o error: {e}"),
            SpillError::Json(e) => write!(f, "trace artifact malformed line: {e}"),
            SpillError::MalformedLine { line, detail } => {
                write!(f, "malformed line {line}: {detail}")
            }
            SpillError::MalformedFrame { frame, detail } => {
                write!(f, "malformed frame {frame}: {detail}")
            }
            SpillError::NotAnArtifact => {
                write!(f, "not a {TRACE_FORMAT} artifact (missing header line)")
            }
            SpillError::WrongFormat(found) => {
                write!(f, "artifact format is '{found}', expected '{TRACE_FORMAT}'")
            }
            SpillError::VersionMismatch { found, expected } => write!(
                f,
                "artifact version {found} is not supported (expected {expected})"
            ),
            SpillError::MissingFooter => {
                write!(f, "artifact is truncated: no footer line")
            }
            SpillError::MissingSeal => {
                write!(f, "artifact is truncated: footer present but no seal frame")
            }
            SpillError::TrailingData => {
                write!(f, "artifact has data after the footer line")
            }
        }
    }
}

impl SpillError {
    /// The 1-based artifact line this error points at, when known.
    pub fn line(&self) -> Option<u64> {
        match self {
            SpillError::MalformedLine { line, .. } => Some(*line),
            _ => None,
        }
    }

    /// The 1-based binary frame this error points at, when known.
    pub fn frame(&self) -> Option<u64> {
        match self {
            SpillError::MalformedFrame { frame, .. } => Some(*frame),
            _ => None,
        }
    }
}

impl std::error::Error for SpillError {}

impl From<io::Error> for SpillError {
    fn from(e: io::Error) -> Self {
        SpillError::Io(e)
    }
}

fn jsonl_header_bytes() -> Result<Vec<u8>, SpillError> {
    let header = TraceLine::Header(TraceHeader {
        format: TRACE_FORMAT.to_string(),
        version: TRACE_FORMAT_VERSION,
    });
    let mut line = serde_json::to_string(&header).map_err(|e| SpillError::Json(e.to_string()))?;
    line.push('\n');
    Ok(line.into_bytes())
}

fn jsonl_event_bytes(event: &Event, out: &mut Vec<u8>) -> Result<(), SpillError> {
    let mut line = serde_json::to_string(&TraceLine::Event(event.clone()))
        .map_err(|e| SpillError::Json(e.to_string()))?;
    line.push('\n');
    out.extend_from_slice(line.as_bytes());
    Ok(())
}

fn jsonl_footer_bytes(
    objects: &ObjectTable,
    thread_objs: BTreeMap<ThreadId, ObjId>,
    out: &mut Vec<u8>,
) -> Result<(), SpillError> {
    let footer = TraceLine::Footer(TraceFooter {
        objects: objects.clone(),
        thread_objs,
    });
    let mut line = serde_json::to_string(&footer).map_err(|e| SpillError::Json(e.to_string()))?;
    line.push('\n');
    out.extend_from_slice(line.as_bytes());
    Ok(())
}

/// Format-generic streaming encoder: envelope bytes in, no I/O. This is
/// what the ring-buffered spill sink runs on its producer side, so the
/// writer thread only ever sees opaque byte chunks.
pub(crate) enum TraceEncoder {
    /// JSONL v1 (stateless).
    Jsonl,
    /// Binary v2 (carries the string-interning table).
    Binary(BinaryEncoder),
}

impl TraceEncoder {
    /// Creates an encoder for `format` and returns the artifact
    /// preamble (header) bytes.
    pub(crate) fn new(format: TraceFormat) -> Result<(Self, Vec<u8>), SpillError> {
        match format {
            TraceFormat::Jsonl => Ok((TraceEncoder::Jsonl, jsonl_header_bytes()?)),
            TraceFormat::Binary => {
                let (enc, preamble) = BinaryEncoder::new();
                Ok((TraceEncoder::Binary(enc), preamble))
            }
        }
    }

    /// Appends one event's encoding to `out`.
    pub(crate) fn encode_event(
        &mut self,
        event: &Event,
        out: &mut Vec<u8>,
    ) -> Result<(), SpillError> {
        match self {
            TraceEncoder::Jsonl => jsonl_event_bytes(event, out),
            TraceEncoder::Binary(enc) => {
                enc.encode_event(event, out);
                Ok(())
            }
        }
    }

    /// Appends the sealing footer (and, for binary, the seal frame).
    pub(crate) fn encode_finish(
        &mut self,
        objects: &ObjectTable,
        thread_objs: BTreeMap<ThreadId, ObjId>,
        out: &mut Vec<u8>,
    ) -> Result<(), SpillError> {
        match self {
            TraceEncoder::Jsonl => jsonl_footer_bytes(objects, thread_objs, out),
            TraceEncoder::Binary(enc) => {
                enc.encode_finish(objects, thread_objs, out);
                Ok(())
            }
        }
    }
}

/// Streams one execution into the on-disk trace format.
///
/// Events are appended one line at a time — the writer holds no event
/// backlog — and [`TraceWriter::finish`] seals the artifact with the
/// footer. Dropping a writer without finishing leaves a truncated file
/// that [`read_trace`] rejects with [`SpillError::MissingFooter`].
pub struct TraceWriter<W: Write> {
    out: W,
    events: u64,
    bytes: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Starts an artifact by writing the header line.
    pub fn new(mut out: W) -> Result<Self, SpillError> {
        let line = jsonl_header_bytes()?;
        out.write_all(&line)?;
        Ok(TraceWriter {
            out,
            events: 0,
            bytes: line.len() as u64,
        })
    }

    /// Appends one event line.
    pub fn write_event(&mut self, event: &Event) -> Result<(), SpillError> {
        let mut line = Vec::with_capacity(96);
        jsonl_event_bytes(event, &mut line)?;
        self.out.write_all(&line)?;
        self.events += 1;
        self.bytes += line.len() as u64;
        Ok(())
    }

    /// Number of event lines written so far.
    pub fn events_written(&self) -> u64 {
        self.events
    }

    /// Bytes written so far (header + events).
    pub fn bytes_written(&self) -> u64 {
        self.bytes
    }

    /// Seals the artifact with the footer line and returns the writer.
    pub fn finish(
        mut self,
        objects: &ObjectTable,
        thread_objs: BTreeMap<ThreadId, ObjId>,
    ) -> Result<W, SpillError> {
        let mut line = Vec::with_capacity(256);
        jsonl_footer_bytes(objects, thread_objs, &mut line)?;
        self.out.write_all(&line)?;
        self.out.flush()?;
        Ok(self.out)
    }
}

/// A [`TraceWriter`] or [`BinaryTraceWriter`] behind one surface, so
/// sinks can be format-generic.
pub(crate) enum AnyTraceWriter<W: Write> {
    /// JSONL v1.
    Jsonl(TraceWriter<W>),
    /// Binary v2.
    Binary(BinaryTraceWriter<W>),
}

impl<W: Write> AnyTraceWriter<W> {
    pub(crate) fn new(out: W, format: TraceFormat) -> Result<Self, SpillError> {
        Ok(match format {
            TraceFormat::Jsonl => AnyTraceWriter::Jsonl(TraceWriter::new(out)?),
            TraceFormat::Binary => AnyTraceWriter::Binary(BinaryTraceWriter::new(out)?),
        })
    }

    pub(crate) fn write_event(&mut self, event: &Event) -> Result<(), SpillError> {
        match self {
            AnyTraceWriter::Jsonl(w) => w.write_event(event),
            AnyTraceWriter::Binary(w) => w.write_event(event),
        }
    }

    pub(crate) fn events_written(&self) -> u64 {
        match self {
            AnyTraceWriter::Jsonl(w) => w.events_written(),
            AnyTraceWriter::Binary(w) => w.events_written(),
        }
    }

    pub(crate) fn bytes_written(&self) -> u64 {
        match self {
            AnyTraceWriter::Jsonl(w) => w.bytes_written(),
            AnyTraceWriter::Binary(w) => w.bytes_written(),
        }
    }

    pub(crate) fn finish(
        self,
        objects: &ObjectTable,
        thread_objs: BTreeMap<ThreadId, ObjId>,
    ) -> Result<W, SpillError> {
        match self {
            AnyTraceWriter::Jsonl(w) => w.finish(objects, thread_objs),
            AnyTraceWriter::Binary(w) => w.finish(objects, thread_objs),
        }
    }
}

/// Writes a complete in-memory trace as one artifact (the non-streaming
/// `dfz record` path).
pub fn write_trace<W: Write>(out: W, trace: &Trace) -> Result<W, SpillError> {
    write_trace_as(out, trace, TraceFormat::Jsonl)
}

/// Writes a complete in-memory trace in the chosen encoding.
pub fn write_trace_as<W: Write>(
    out: W,
    trace: &Trace,
    format: TraceFormat,
) -> Result<W, SpillError> {
    let mut w = AnyTraceWriter::new(out, format)?;
    for event in trace.events() {
        w.write_event(event)?;
    }
    w.finish(trace.objects(), trace.thread_objs().collect())
}

/// Reads a trace artifact in either encoding, sniffing binary v2 by its
/// magic and falling back to JSONL v1 otherwise.
pub fn read_trace_bytes(bytes: &[u8]) -> Result<Trace, SpillError> {
    if bytes.starts_with(&TRACE_BINARY_MAGIC) {
        read_binary_trace(bytes)
    } else {
        read_trace(bytes)
    }
}

/// Reads an artifact back into an in-memory [`Trace`].
///
/// # Errors
///
/// Rejects files without a valid header ([`SpillError::NotAnArtifact`],
/// [`SpillError::WrongFormat`]), with an unsupported version
/// ([`SpillError::VersionMismatch`]), truncated before the footer
/// ([`SpillError::MissingFooter`]), with data after the footer
/// ([`SpillError::TrailingData`]), or with a corrupt line
/// ([`SpillError::MalformedLine`], carrying the 1-based line number).
pub fn read_trace<R: BufRead>(input: R) -> Result<Trace, SpillError> {
    let mut lines = input.lines();
    let first = match lines.next() {
        Some(line) => line?,
        None => return Err(SpillError::NotAnArtifact),
    };
    let header = match serde_json::from_str::<TraceLine>(&first) {
        Ok(TraceLine::Header(h)) => h,
        _ => return Err(SpillError::NotAnArtifact),
    };
    if header.format != TRACE_FORMAT {
        return Err(SpillError::WrongFormat(header.format));
    }
    if header.version != TRACE_FORMAT_VERSION {
        return Err(SpillError::VersionMismatch {
            found: header.version,
            expected: TRACE_FORMAT_VERSION,
        });
    }
    let mut trace = Trace::new();
    let mut footer: Option<TraceFooter> = None;
    // The header was line 1; the enumeration below continues from line 2.
    for (line_no, line) in (2u64..).zip(lines) {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        if footer.is_some() {
            return Err(SpillError::TrailingData);
        }
        match serde_json::from_str::<TraceLine>(&line).map_err(|e| SpillError::MalformedLine {
            line: line_no,
            detail: e.to_string(),
        })? {
            TraceLine::Event(event) => {
                let seq = trace.push(event.thread, event.kind);
                debug_assert_eq!(seq, event.seq, "artifact events are in sequence order");
            }
            TraceLine::Footer(f) => footer = Some(f),
            TraceLine::Header(_) => {
                return Err(SpillError::MalformedLine {
                    line: line_no,
                    detail: "duplicate header".to_string(),
                })
            }
        }
    }
    let footer = footer.ok_or(SpillError::MissingFooter)?;
    *trace.objects_mut() = footer.objects;
    for (thread, obj) in footer.thread_objs {
        trace.bind_thread(thread, obj);
    }
    Ok(trace)
}

/// An [`EventSink`] that spills the event stream straight to a
/// [`TraceWriter`], sealing the artifact when the execution finishes.
///
/// I/O errors are latched rather than panicking the instrumented program;
/// harvest them (plus the event/byte counts) with [`SpillSink::close`]
/// after the run.
pub struct SpillSink<W: Write + Send> {
    writer: Option<AnyTraceWriter<W>>,
    error: Option<SpillError>,
    events: u64,
    bytes: u64,
    sealed: bool,
}

impl<W: Write + Send> SpillSink<W> {
    /// Starts spilling into `out` (writes the header immediately) in
    /// JSONL v1.
    pub fn new(out: W) -> Result<Self, SpillError> {
        Self::with_format(out, TraceFormat::Jsonl)
    }

    /// Starts spilling into `out` in the chosen encoding.
    pub fn with_format(out: W, format: TraceFormat) -> Result<Self, SpillError> {
        let writer = AnyTraceWriter::new(out, format)?;
        Ok(SpillSink {
            events: 0,
            bytes: writer.bytes_written(),
            writer: Some(writer),
            error: None,
            sealed: false,
        })
    }

    /// Whether the footer has been written.
    pub fn is_sealed(&self) -> bool {
        self.sealed
    }

    /// Ends the spill: returns `(events_written, bytes_written)` or the
    /// first error encountered while streaming.
    pub fn close(&mut self) -> Result<(u64, u64), SpillError> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        if !self.sealed {
            return Err(SpillError::MissingFooter);
        }
        Ok((self.events, self.bytes))
    }
}

impl<W: Write + Send> EventSink for SpillSink<W> {
    fn on_event(&mut self, event: &Event) {
        if self.error.is_some() {
            return;
        }
        if let Some(w) = self.writer.as_mut() {
            match w.write_event(event) {
                Ok(()) => {
                    self.events = w.events_written();
                    self.bytes = w.bytes_written();
                }
                Err(e) => self.error = Some(e),
            }
        }
    }

    fn on_finish(&mut self, trace: &Trace) {
        if self.error.is_some() {
            return;
        }
        if let Some(w) = self.writer.take() {
            self.bytes = w.bytes_written();
            match w.finish(trace.objects(), trace.thread_objs().collect()) {
                Ok(_) => self.sealed = true,
                Err(e) => self.error = Some(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EventKind, Label, ObjKind};

    fn sample_trace() -> Trace {
        let mut trace = Trace::new();
        let t0 = ThreadId::new(0);
        let obj = trace
            .objects_mut()
            .create(ObjKind::Thread, Label::new("<main>"), None, vec![]);
        trace.bind_thread(t0, obj);
        let lock = trace
            .objects_mut()
            .create(ObjKind::Lock, Label::new("main:3"), None, vec![]);
        trace.push(t0, EventKind::ThreadStart);
        trace.push(
            t0,
            EventKind::acquire(
                lock,
                Label::new("main:4"),
                vec![],
                vec![Label::new("main:4")],
            ),
        );
        trace.push(t0, EventKind::release(lock, Label::new("main:5")));
        trace.push(t0, EventKind::ThreadExit);
        trace
    }

    #[test]
    fn round_trips_a_trace() {
        let trace = sample_trace();
        let bytes = write_trace(Vec::new(), &trace).unwrap();
        let back = read_trace(&bytes[..]).unwrap();
        assert_eq!(trace, back);
    }

    #[test]
    fn rejects_wrong_version() {
        let trace = sample_trace();
        let bytes = write_trace(Vec::new(), &trace).unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let bumped = text.replacen("\"version\":1", "\"version\":2", 1);
        match read_trace(bumped.as_bytes()) {
            Err(SpillError::VersionMismatch { found: 2, expected }) => {
                assert_eq!(expected, TRACE_FORMAT_VERSION);
            }
            other => panic!("expected version mismatch, got {other:?}"),
        }
    }

    #[test]
    fn rejects_wrong_format_and_non_artifacts() {
        assert!(matches!(
            read_trace(&b"{\"not\": \"an artifact\"}\n"[..]),
            Err(SpillError::NotAnArtifact)
        ));
        assert!(matches!(
            read_trace(&b""[..]),
            Err(SpillError::NotAnArtifact)
        ));
        let trace = sample_trace();
        let bytes = write_trace(Vec::new(), &trace).unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let renamed = text.replacen("df-trace", "df-other", 1);
        assert!(matches!(
            read_trace(renamed.as_bytes()),
            Err(SpillError::WrongFormat(f)) if f == "df-other"
        ));
    }

    #[test]
    fn rejects_truncation() {
        let trace = sample_trace();
        let bytes = write_trace(Vec::new(), &trace).unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let without_footer: String = text
            .lines()
            .filter(|l| !l.starts_with("{\"Footer\""))
            .map(|l| format!("{l}\n"))
            .collect();
        assert!(matches!(
            read_trace(without_footer.as_bytes()),
            Err(SpillError::MissingFooter)
        ));
    }

    #[test]
    fn corrupt_line_is_reported_with_its_1_based_number() {
        let trace = sample_trace();
        let bytes = write_trace(Vec::new(), &trace).unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
        // Chop the third line (an event) mid-JSON, as a crashed writer would.
        let half = lines[2].len() / 2;
        lines[2].truncate(half);
        let corrupt: String = lines.iter().map(|l| format!("{l}\n")).collect();
        match read_trace(corrupt.as_bytes()) {
            Err(e @ SpillError::MalformedLine { line: 3, .. }) => {
                assert_eq!(e.line(), Some(3));
                assert!(e.to_string().contains("line 3"), "message: {e}");
            }
            other => panic!("expected MalformedLine at line 3, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_header_is_reported_with_its_line() {
        let trace = sample_trace();
        let bytes = write_trace(Vec::new(), &trace).unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let header = text.lines().next().unwrap();
        let doubled = format!("{header}\n{text}");
        match read_trace(doubled.as_bytes()) {
            Err(SpillError::MalformedLine { line: 2, detail }) => {
                assert!(detail.contains("duplicate header"));
            }
            other => panic!("expected MalformedLine at line 2, got {other:?}"),
        }
    }

    #[test]
    fn spill_sink_streams_and_seals() {
        let trace = sample_trace();
        let sink = std::sync::Arc::new(std::sync::Mutex::new(
            SpillSink::new(Vec::<u8>::new()).unwrap(),
        ));
        {
            let mut s = sink.lock().unwrap();
            for event in trace.events() {
                s.on_event(event);
            }
            // The substrate hands over a trace with no events in
            // streaming mode; only objects and bindings matter here.
            let mut skeleton = Trace::new();
            *skeleton.objects_mut() = trace.objects().clone();
            for (t, o) in trace.thread_objs() {
                skeleton.bind_thread(t, o);
            }
            s.on_finish(&skeleton);
            let (events, bytes) = s.close().unwrap();
            assert_eq!(events, trace.events().len() as u64);
            assert!(bytes > 0);
            assert!(s.is_sealed());
        }
    }

    #[test]
    fn unsealed_spill_reports_missing_footer() {
        let mut sink = SpillSink::new(Vec::<u8>::new()).unwrap();
        sink.on_event(&Event::new(0, ThreadId::new(0), EventKind::Yield));
        assert!(matches!(sink.close(), Err(SpillError::MissingFooter)));
    }
}
