//! A bounded lock-free single-producer / single-consumer ring.
//!
//! This is the hand-off between the event-emitting side of a spill sink
//! and the dedicated spill-writer thread: the instrumented program's
//! hot path pushes encoded frames, the writer drains them in batches,
//! and when the ring fills the producer *blocks* (spin → yield → short
//! sleep) rather than dropping data — crash-safe sealing requires every
//! frame to arrive. Each blocking episode is counted, so observability
//! can report backpressure (`spill_backpressure_waits`).
//!
//! The implementation is the classic Lamport queue: a power-of-two slot
//! array, a producer-owned head and consumer-owned tail, Release stores
//! paired with Acquire loads. Exclusive roles are enforced by the type
//! system — [`RingProducer`]/[`RingConsumer`] are not [`Clone`] and
//! their operations take `&mut self` — which is what makes the two
//! unsynchronized index counters sound.
#![allow(unsafe_code)] // the one place df-events touches raw slots; see above.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

struct RingShared<T> {
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    mask: usize,
    cap: usize,
    /// Total values ever pushed; next write goes to `head & mask`.
    head: AtomicUsize,
    /// Total values ever popped; next read comes from `tail & mask`.
    tail: AtomicUsize,
    producer_alive: AtomicBool,
    consumer_alive: AtomicBool,
    /// Blocking-push episodes (one per full-ring stall, not per retry).
    waits: AtomicU64,
}

// SAFETY: slots are only touched through the SPSC protocol — the
// producer writes `head & mask` strictly before publishing `head + 1`
// with Release, the consumer reads `tail & mask` only after an Acquire
// load of `head` proves it published, and each index has exactly one
// writer (handles are !Clone and operate through &mut self).
unsafe impl<T: Send> Sync for RingShared<T> {}
unsafe impl<T: Send> Send for RingShared<T> {}

impl<T> Drop for RingShared<T> {
    fn drop(&mut self) {
        // Sole owner at this point: drop whatever was pushed but never
        // popped.
        let head = *self.head.get_mut();
        let tail = *self.tail.get_mut();
        for i in tail..head {
            // SAFETY: slots in [tail, head) hold initialized values no
            // handle can reach any more.
            unsafe { (*self.buf[i & self.mask].get()).assume_init_drop() };
        }
    }
}

/// Why a [`RingProducer::try_push`] did not enqueue; the value comes
/// back so the caller can retry or drop it deliberately.
#[derive(Debug)]
pub enum TryPush<T> {
    /// The ring is full.
    Full(T),
    /// The consumer was dropped; no push can ever succeed again.
    Disconnected(T),
}

/// Creates a bounded SPSC ring with room for at least `capacity` values
/// (rounded up to a power of two, minimum 2).
pub fn spsc_ring<T: Send>(capacity: usize) -> (RingProducer<T>, RingConsumer<T>) {
    let cap = capacity.max(2).next_power_of_two();
    let buf: Box<[UnsafeCell<MaybeUninit<T>>]> = (0..cap)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect();
    let shared = Arc::new(RingShared {
        buf,
        mask: cap - 1,
        cap,
        head: AtomicUsize::new(0),
        tail: AtomicUsize::new(0),
        producer_alive: AtomicBool::new(true),
        consumer_alive: AtomicBool::new(true),
        waits: AtomicU64::new(0),
    });
    (
        RingProducer {
            shared: Arc::clone(&shared),
        },
        RingConsumer { shared },
    )
}

/// The pushing end of a ring; exactly one exists per ring.
pub struct RingProducer<T: Send> {
    shared: Arc<RingShared<T>>,
}

impl<T: Send> RingProducer<T> {
    /// Enqueues without blocking, or reports [`TryPush::Full`] /
    /// [`TryPush::Disconnected`] with the value handed back.
    pub fn try_push(&mut self, value: T) -> Result<(), TryPush<T>> {
        if !self.shared.consumer_alive.load(Ordering::Acquire) {
            return Err(TryPush::Disconnected(value));
        }
        let head = self.shared.head.load(Ordering::Relaxed);
        let tail = self.shared.tail.load(Ordering::Acquire);
        if head.wrapping_sub(tail) >= self.shared.cap {
            return Err(TryPush::Full(value));
        }
        // SAFETY: the slot at `head & mask` is vacant (head - tail < cap)
        // and this is the only producer.
        unsafe { (*self.shared.buf[head & self.shared.mask].get()).write(value) };
        self.shared
            .head
            .store(head.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Enqueues, blocking while the ring is full (backpressure). Each
    /// full-ring stall bumps [`RingProducer::waits`] once. Returns the
    /// value if the consumer is gone.
    pub fn push(&mut self, value: T) -> Result<(), T> {
        let mut value = value;
        let mut waited = false;
        let mut attempts = 0u32;
        loop {
            match self.try_push(value) {
                Ok(()) => return Ok(()),
                Err(TryPush::Disconnected(v)) => return Err(v),
                Err(TryPush::Full(v)) => {
                    value = v;
                    if !waited {
                        waited = true;
                        self.shared.waits.fetch_add(1, Ordering::Relaxed);
                    }
                    // Escalate politely: burn a few cycles first, then
                    // yield the core, then sleep so a slow disk does not
                    // turn backpressure into a spin furnace.
                    attempts = attempts.saturating_add(1);
                    if attempts < 64 {
                        std::hint::spin_loop();
                    } else if attempts < 256 {
                        std::thread::yield_now();
                    } else {
                        std::thread::sleep(Duration::from_micros(20));
                    }
                }
            }
        }
    }

    /// Number of blocking-push episodes so far.
    pub fn waits(&self) -> u64 {
        self.shared.waits.load(Ordering::Relaxed)
    }

    /// The ring's actual capacity (power of two).
    pub fn capacity(&self) -> usize {
        self.shared.cap
    }
}

impl<T: Send> Drop for RingProducer<T> {
    fn drop(&mut self) {
        self.shared.producer_alive.store(false, Ordering::Release);
    }
}

/// The popping end of a ring; exactly one exists per ring.
pub struct RingConsumer<T: Send> {
    shared: Arc<RingShared<T>>,
}

impl<T: Send> RingConsumer<T> {
    /// Dequeues the oldest value, or `None` if the ring is empty.
    pub fn pop(&mut self) -> Option<T> {
        let tail = self.shared.tail.load(Ordering::Relaxed);
        let head = self.shared.head.load(Ordering::Acquire);
        if tail == head {
            return None;
        }
        // SAFETY: the Acquire load of `head` proves the producer
        // initialized this slot, and this is the only consumer.
        let value = unsafe { (*self.shared.buf[tail & self.shared.mask].get()).assume_init_read() };
        self.shared
            .tail
            .store(tail.wrapping_add(1), Ordering::Release);
        Some(value)
    }

    /// `true` once the producer is gone **and** every value has been
    /// popped — the drained-and-done condition a writer thread exits on.
    pub fn is_disconnected(&self) -> bool {
        if self.shared.producer_alive.load(Ordering::Acquire) {
            return false;
        }
        // The Acquire above synchronizes with the producer's dying
        // store, so this head load sees its final value.
        self.shared.tail.load(Ordering::Relaxed) == self.shared.head.load(Ordering::Acquire)
    }

    /// Number of blocking-push episodes the producer has suffered.
    pub fn waits(&self) -> u64 {
        self.shared.waits.load(Ordering::Relaxed)
    }
}

impl<T: Send> Drop for RingConsumer<T> {
    fn drop(&mut self) {
        self.shared.consumer_alive.store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        let (p, _c) = spsc_ring::<u8>(3);
        assert_eq!(p.capacity(), 4);
        let (p, _c) = spsc_ring::<u8>(0);
        assert_eq!(p.capacity(), 2);
    }

    #[test]
    fn preserves_order_under_producer_consumer_stress() {
        const N: u64 = 200_000;
        let (mut p, mut c) = spsc_ring::<u64>(64);
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                p.push(i).expect("consumer alive");
            }
            p.waits()
        });
        let mut expected = 0u64;
        loop {
            match c.pop() {
                Some(v) => {
                    assert_eq!(v, expected, "values arrive in push order");
                    expected += 1;
                }
                None => {
                    if c.is_disconnected() {
                        break;
                    }
                    std::thread::yield_now();
                }
            }
        }
        assert_eq!(expected, N, "every pushed value was popped exactly once");
        producer.join().unwrap();
    }

    #[test]
    fn full_ring_blocks_push_and_counts_the_wait() {
        let (mut p, mut c) = spsc_ring::<u32>(2);
        p.try_push(1).unwrap();
        p.try_push(2).unwrap();
        assert!(matches!(p.try_push(3), Err(TryPush::Full(3))));
        assert_eq!(p.waits(), 0, "try_push never counts a wait");
        let producer = std::thread::spawn(move || {
            // Blocks until the consumer below drains a slot.
            p.push(3).unwrap();
            p.waits()
        });
        // Give the producer a moment to actually stall on the full ring.
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(c.pop(), Some(1));
        let waits = producer.join().unwrap();
        assert!(waits >= 1, "the blocked push was counted, got {waits}");
        assert_eq!(c.pop(), Some(2));
        assert_eq!(c.pop(), Some(3));
        assert_eq!(c.pop(), None);
    }

    #[test]
    fn push_fails_once_consumer_is_gone() {
        let (mut p, c) = spsc_ring::<u32>(4);
        drop(c);
        assert!(matches!(p.try_push(7), Err(TryPush::Disconnected(7))));
        assert_eq!(p.push(8), Err(8));
    }

    #[test]
    fn consumer_drains_after_producer_drop_then_disconnects() {
        let (mut p, mut c) = spsc_ring::<u32>(8);
        p.push(1).unwrap();
        p.push(2).unwrap();
        drop(p);
        assert!(!c.is_disconnected(), "not disconnected while values remain");
        assert_eq!(c.pop(), Some(1));
        assert_eq!(c.pop(), Some(2));
        assert_eq!(c.pop(), None);
        assert!(c.is_disconnected());
    }

    #[test]
    fn dropping_the_ring_drops_unpopped_values() {
        struct Tracked(Arc<AtomicUsize>);
        impl Drop for Tracked {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        let (mut p, mut c) = spsc_ring::<Tracked>(8);
        for _ in 0..5 {
            p.push(Tracked(Arc::clone(&drops))).map_err(|_| ()).unwrap();
        }
        drop(c.pop()); // one popped and dropped by us
        drop(p);
        drop(c);
        assert_eq!(
            drops.load(Ordering::SeqCst),
            5,
            "the four still in the ring were dropped with it"
        );
    }
}
