//! Streaming event observation.
//!
//! Algorithm 2 of the paper computes the lock dependency relation *during*
//! execution; an [`EventSink`] is the hook that makes that possible here.
//! Execution substrates (the virtual runtime and the real-thread sessions)
//! call into an attached sink at every recorded event, in trace order, so
//! observers — an incremental relation builder, an on-disk spill writer —
//! can consume the event stream online instead of requiring the full
//! in-memory `Vec<Event>` after the fact.

use std::sync::{Arc, Mutex, PoisonError};

use crate::{Event, ObjId, ThreadId, Trace};

/// An online observer of one execution's event stream.
///
/// Substrates deliver events in trace order with the exact sequence
/// numbers the recorded [`Trace`] would carry, so a sink sees the same
/// stream whether or not the substrate also materializes the trace.
pub trait EventSink: Send {
    /// Called once per recorded event, in execution (sequence) order.
    fn on_event(&mut self, event: &Event);

    /// Called when `thread` is bound to the object representing it —
    /// always before any event of `thread` is delivered.
    fn on_thread_bound(&mut self, thread: ThreadId, obj: ObjId) {
        let _ = (thread, obj);
    }

    /// Called once when the execution ends. `trace` carries the final
    /// object table and thread bindings; its event vector is empty when
    /// the substrate ran without trace recording.
    fn on_finish(&mut self, trace: &Trace) {
        let _ = trace;
    }
}

/// A clonable fan-out handle over zero or more shared [`EventSink`]s.
///
/// This is the form substrates carry in their run configuration: cheap to
/// clone, `None`-like when empty (the common non-streaming case costs one
/// `is_empty` check per event), and shareable so the caller can keep a
/// typed handle to the same sink and harvest its state after the run.
#[derive(Clone, Default)]
pub struct SinkHandle {
    sinks: Vec<Arc<Mutex<dyn EventSink>>>,
}

impl SinkHandle {
    /// A handle with no sinks attached.
    pub fn none() -> Self {
        Self::default()
    }

    /// A handle over one shared sink.
    pub fn single(sink: Arc<Mutex<dyn EventSink>>) -> Self {
        SinkHandle { sinks: vec![sink] }
    }

    /// Returns this handle with `sink` attached in addition.
    pub fn with(mut self, sink: Arc<Mutex<dyn EventSink>>) -> Self {
        self.sinks.push(sink);
        self
    }

    /// Whether any sink is attached.
    pub fn is_attached(&self) -> bool {
        !self.sinks.is_empty()
    }

    /// Delivers one event to every attached sink.
    ///
    /// A sink whose callback panicked earlier leaves its mutex poisoned;
    /// the handle recovers the guard instead of propagating the panic, so
    /// later events — and the end-of-run seal — still reach the sink and a
    /// panicking trial still produces an analyzable trace.
    pub fn emit(&self, event: &Event) {
        for sink in &self.sinks {
            sink.lock()
                .unwrap_or_else(PoisonError::into_inner)
                .on_event(event);
        }
    }

    /// Announces a thread→object binding to every attached sink.
    pub fn thread_bound(&self, thread: ThreadId, obj: ObjId) {
        for sink in &self.sinks {
            sink.lock()
                .unwrap_or_else(PoisonError::into_inner)
                .on_thread_bound(thread, obj);
        }
    }

    /// Announces the end of the execution to every attached sink.
    pub fn finish(&self, trace: &Trace) {
        for sink in &self.sinks {
            sink.lock()
                .unwrap_or_else(PoisonError::into_inner)
                .on_finish(trace);
        }
    }
}

impl std::fmt::Debug for SinkHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SinkHandle")
            .field("sinks", &self.sinks.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EventKind;

    #[derive(Default)]
    struct CountingSink {
        events: u64,
        bindings: u64,
        finished: bool,
    }

    impl EventSink for CountingSink {
        fn on_event(&mut self, _event: &Event) {
            self.events += 1;
        }

        fn on_thread_bound(&mut self, _thread: ThreadId, _obj: ObjId) {
            self.bindings += 1;
        }

        fn on_finish(&mut self, _trace: &Trace) {
            self.finished = true;
        }
    }

    #[test]
    fn empty_handle_is_detached_and_inert() {
        let h = SinkHandle::none();
        assert!(!h.is_attached());
        h.emit(&Event::new(0, ThreadId::new(0), EventKind::Yield));
        h.finish(&Trace::new());
    }

    #[test]
    fn poisoned_sink_still_receives_events_and_finish() {
        let sink = Arc::new(Mutex::new(CountingSink::default()));
        {
            // Poison the sink's mutex by panicking while holding it, the
            // way a buggy sink callback would.
            let poisoner = Arc::clone(&sink);
            let _ = std::thread::spawn(move || {
                let _guard = poisoner.lock().unwrap();
                panic!("sink bug");
            })
            .join();
        }
        assert!(sink.is_poisoned());
        let h = SinkHandle::single(sink.clone() as Arc<Mutex<dyn EventSink>>);
        h.thread_bound(ThreadId::new(0), ObjId::new(0));
        h.emit(&Event::new(0, ThreadId::new(0), EventKind::Yield));
        h.finish(&Trace::new());
        let s = sink.lock().unwrap_or_else(PoisonError::into_inner);
        assert_eq!(s.events, 1);
        assert_eq!(s.bindings, 1);
        assert!(s.finished);
    }

    #[test]
    fn fan_out_reaches_every_sink() {
        let a = Arc::new(Mutex::new(CountingSink::default()));
        let b = Arc::new(Mutex::new(CountingSink::default()));
        let h = SinkHandle::single(a.clone() as Arc<Mutex<dyn EventSink>>)
            .with(b.clone() as Arc<Mutex<dyn EventSink>>);
        assert!(h.is_attached());
        h.thread_bound(ThreadId::new(0), ObjId::new(0));
        h.emit(&Event::new(0, ThreadId::new(0), EventKind::Yield));
        h.emit(&Event::new(1, ThreadId::new(0), EventKind::Yield));
        h.finish(&Trace::new());
        for sink in [a, b] {
            let s = sink.lock().unwrap();
            assert_eq!(s.events, 2);
            assert_eq!(s.bindings, 1);
            assert!(s.finished);
        }
    }
}
