//! Interned program-location labels.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, OnceLock};

use parking_lot::RwLock;
use serde::de::Error as _;
use serde::{Deserialize, Deserializer, Serialize, Serializer};

/// An interned program location — the paper's statement label `c`.
///
/// Labels identify the source locations of lock acquisitions, method calls
/// and allocations. They are interned process-wide, so a `Label` is a `u32`
/// that is `Copy`, `Eq`, `Hash` and cheap to store in contexts and traces.
/// Two labels constructed from the same string are identical.
///
/// The paper relies on labels being stable *across executions* of the same
/// program; interning per process preserves that (the mapping
/// string ↔ label may differ between processes, but equality of labels
/// within a process exactly mirrors equality of location strings).
///
/// # Example
///
/// ```
/// use df_events::Label;
/// let a = Label::new("Factory.killClients:872");
/// let b = Label::new("Factory.killClients:872");
/// assert_eq!(a, b);
/// assert_eq!(&*a.as_str(), "Factory.killClients:872");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Label(u32);

struct Interner {
    strings: Vec<Arc<str>>,
    ids: HashMap<Arc<str>, u32>,
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        RwLock::new(Interner {
            strings: Vec::new(),
            ids: HashMap::new(),
        })
    })
}

impl Label {
    /// Interns `location` and returns its label.
    ///
    /// # Example
    ///
    /// ```
    /// let l = df_events::Label::new("main:22");
    /// assert_eq!(l.to_string(), "main:22");
    /// ```
    pub fn new(location: &str) -> Self {
        let int = interner();
        if let Some(&id) = int.read().ids.get(location) {
            return Label(id);
        }
        let mut w = int.write();
        if let Some(&id) = w.ids.get(location) {
            return Label(id);
        }
        let id = u32::try_from(w.strings.len()).expect("label interner overflow");
        let s: Arc<str> = Arc::from(location);
        w.strings.push(Arc::clone(&s));
        w.ids.insert(s, id);
        Label(id)
    }

    /// Returns the interned location string.
    pub fn as_str(&self) -> Arc<str> {
        Arc::clone(&interner().read().strings[self.0 as usize])
    }

    /// Returns the raw interner index (useful for compact serialization
    /// within one process; not stable across processes).
    pub fn index(&self) -> u32 {
        self.0
    }
}

/// Interns the caller's source location (`file:line:column`) as a label.
///
/// This is the native-frame analogue of the [`crate::site!`] macro: a
/// `#[track_caller]` API (like `df_lock::TrackedMutex::lock`) calls this
/// and gets the location of *its caller*, so drop-in replacements for
/// `std::sync` label events without explicit site arguments.
///
/// # Example
///
/// ```
/// #[track_caller]
/// fn acquire_site() -> df_events::Label {
///     df_events::caller_site()
/// }
/// let l = acquire_site();
/// assert!(l.as_str().contains("label.rs") || l.as_str().contains(".rs"));
/// ```
#[track_caller]
pub fn caller_site() -> Label {
    let loc = std::panic::Location::caller();
    Label::new(&format!("{}:{}:{}", loc.file(), loc.line(), loc.column()))
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.as_str())
    }
}

impl fmt::Debug for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Label({})", self.as_str())
    }
}

impl From<&str> for Label {
    fn from(s: &str) -> Self {
        Label::new(s)
    }
}

impl Serialize for Label {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.as_str())
    }
}

impl<'de> Deserialize<'de> for Label {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let s = String::deserialize(deserializer)?;
        if s.is_empty() {
            return Err(D::Error::custom("label must not be empty"));
        }
        Ok(Label::new(&s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Label::new("x:1");
        let b = Label::new("x:1");
        assert_eq!(a, b);
        assert_eq!(a.index(), b.index());
    }

    #[test]
    fn distinct_strings_get_distinct_labels() {
        let a = Label::new("y:1");
        let b = Label::new("y:2");
        assert_ne!(a, b);
    }

    #[test]
    fn display_round_trips() {
        let a = Label::new("Widget.frob:42");
        assert_eq!(a.to_string(), "Widget.frob:42");
        assert_eq!(format!("{a:?}"), "Label(Widget.frob:42)");
    }

    #[test]
    fn serde_round_trips_by_string() {
        let a = Label::new("serde:1");
        let json = serde_json::to_string(&a).unwrap();
        assert_eq!(json, "\"serde:1\"");
        let b: Label = serde_json::from_str(&json).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn serde_rejects_empty() {
        assert!(serde_json::from_str::<Label>("\"\"").is_err());
    }

    #[test]
    fn from_str_impl() {
        let a: Label = "conv:1".into();
        assert_eq!(a, Label::new("conv:1"));
    }

    #[test]
    fn site_macro_produces_location() {
        let l = crate::site!();
        assert!(l.as_str().contains("label.rs"));
        let named = crate::site!("acquire l1");
        assert!(named.as_str().starts_with("acquire l1"));
    }

    #[test]
    fn labels_are_hashable_keys() {
        use std::collections::HashSet;
        let set: HashSet<Label> = ["a", "b", "a"].iter().map(|s| Label::new(s)).collect();
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        let handles: Vec<_> = (0..8)
            .map(|_| std::thread::spawn(|| Label::new("concurrent:1").index()))
            .collect();
        let ids: Vec<u32> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(ids.windows(2).all(|w| w[0] == w[1]));
    }
}
