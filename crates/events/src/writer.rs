//! Ring-buffered spilling: emission decoupled from I/O.
//!
//! A synchronous [`SpillSink`] serializes *and* writes on the
//! instrumented program's thread — every event pays the syscall. A
//! [`RingSpillSink`] serializes on the emitting thread but hands the
//! encoded frames through a bounded lock-free SPSC ring
//! ([`crate::ring`]) to a dedicated spill-writer thread that drains in
//! batches (configurable batch size and flush interval). When the ring
//! fills, the emitter blocks — backpressure, not data loss — and each
//! stall is counted for the `spill_backpressure_waits` observability
//! counter.
//!
//! Crash-safe sealing is preserved: `on_finish` pushes the footer and
//! joins the writer thread, and *dropping* an unfinished sink still
//! seals the artifact with whatever objects it has seen (an empty
//! footer if none), so a panicking trial leaves a structurally valid,
//! analyzable file rather than a truncated one.

use std::collections::BTreeMap;
use std::io::{self, Write};
use std::thread;
use std::time::{Duration, Instant};

use crate::ring::{spsc_ring, RingConsumer, RingProducer};
use crate::spill::TraceEncoder;
use crate::{
    Event, EventSink, ObjId, ObjectTable, SpillError, SpillSink, ThreadId, Trace, TraceFormat,
};

/// How a spill sink encodes and schedules its writes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SpillConfig {
    /// On-disk encoding ([`TraceFormat::Jsonl`] or
    /// [`TraceFormat::Binary`]).
    pub format: TraceFormat,
    /// Ring capacity in frames. `0` keeps the classic synchronous path
    /// (encode + write on the emitting thread, no extra thread).
    pub ring_capacity: usize,
    /// The writer thread accumulates at least this many bytes before
    /// issuing a write (ring mode only).
    pub batch_bytes: usize,
    /// How long a partial batch may sit before being flushed anyway
    /// (ring mode only).
    pub flush_interval: Duration,
}

impl Default for SpillConfig {
    fn default() -> Self {
        SpillConfig {
            format: TraceFormat::Jsonl,
            ring_capacity: 0,
            batch_bytes: 64 * 1024,
            flush_interval: Duration::from_millis(2),
        }
    }
}

impl SpillConfig {
    /// A config with everything default except the format.
    pub fn with_format(format: TraceFormat) -> Self {
        SpillConfig {
            format,
            ..SpillConfig::default()
        }
    }

    /// Enables the ring with `capacity` frames (rounded up to a power
    /// of two by the ring itself).
    pub fn with_ring(mut self, capacity: usize) -> Self {
        self.ring_capacity = capacity;
        self
    }

    /// Sets the writer thread's batch threshold in bytes.
    pub fn with_batch_bytes(mut self, bytes: usize) -> Self {
        self.batch_bytes = bytes;
        self
    }

    /// Sets the writer thread's flush interval for partial batches.
    pub fn with_flush_interval(mut self, interval: Duration) -> Self {
        self.flush_interval = interval;
        self
    }
}

/// The spill-writer thread: drains encoded frames from the ring,
/// batches them, and keeps draining even after an I/O error so the
/// producer can never block forever on a dead disk.
fn drain_ring<W: Write>(
    mut out: W,
    mut frames: RingConsumer<Vec<u8>>,
    batch_bytes: usize,
    flush_interval: Duration,
) -> io::Result<()> {
    let batch_bytes = batch_bytes.max(1);
    let mut batch: Vec<u8> = Vec::with_capacity(batch_bytes * 2);
    let mut result: io::Result<()> = Ok(());
    let mut last_flush = Instant::now();
    loop {
        let mut progressed = false;
        while let Some(frame) = frames.pop() {
            progressed = true;
            if result.is_ok() {
                batch.extend_from_slice(&frame);
                if batch.len() >= batch_bytes {
                    result = out.write_all(&batch);
                    batch.clear();
                    last_flush = Instant::now();
                }
            }
        }
        if frames.is_disconnected() {
            break;
        }
        if !progressed {
            if result.is_ok() && !batch.is_empty() && last_flush.elapsed() >= flush_interval {
                result = out.write_all(&batch).and_then(|()| out.flush());
                batch.clear();
                last_flush = Instant::now();
            }
            thread::sleep(Duration::from_micros(50));
        }
    }
    if result.is_ok() && !batch.is_empty() {
        result = out.write_all(&batch);
    }
    result.and_then(|()| out.flush())
}

/// An [`EventSink`] that encodes on the emitting thread and writes on a
/// dedicated spill-writer thread, connected by a bounded SPSC ring.
///
/// Same latched-error discipline as [`SpillSink`]: I/O failures never
/// panic the instrumented program, they surface from
/// [`RingSpillSink::close`] after the run.
pub struct RingSpillSink {
    encoder: Option<TraceEncoder>,
    frames: Option<RingProducer<Vec<u8>>>,
    writer: Option<thread::JoinHandle<io::Result<()>>>,
    events: u64,
    bytes: u64,
    waits: u64,
    sealed: bool,
    error: Option<SpillError>,
}

impl RingSpillSink {
    /// Starts the writer thread and pushes the artifact header.
    ///
    /// `out` moves into the writer thread; the producer side only ever
    /// handles encoded bytes.
    pub fn spawn<W: Write + Send + 'static>(
        out: W,
        config: &SpillConfig,
    ) -> Result<Self, SpillError> {
        let (encoder, preamble) = TraceEncoder::new(config.format)?;
        let (producer, consumer) = spsc_ring::<Vec<u8>>(config.ring_capacity.max(1));
        let batch_bytes = config.batch_bytes;
        let flush_interval = config.flush_interval;
        let writer = thread::Builder::new()
            .name("df-spill-writer".to_string())
            .spawn(move || drain_ring(out, consumer, batch_bytes, flush_interval))
            .map_err(SpillError::Io)?;
        let bytes = preamble.len() as u64;
        let mut sink = RingSpillSink {
            encoder: Some(encoder),
            frames: Some(producer),
            writer: Some(writer),
            events: 0,
            bytes,
            waits: 0,
            sealed: false,
            error: None,
        };
        // A fresh producer can only fail if the writer thread died at
        // birth; latch that like any other I/O error.
        sink.push_frame(preamble);
        Ok(sink)
    }

    /// Whether the footer and seal have been written and flushed.
    pub fn is_sealed(&self) -> bool {
        self.sealed
    }

    /// Blocking-push episodes the emitting side has suffered so far —
    /// feed this into the `spill_backpressure_waits` counter.
    pub fn backpressure_waits(&self) -> u64 {
        match &self.frames {
            Some(p) => p.waits(),
            None => self.waits,
        }
    }

    /// Ends the spill: returns `(events_written, bytes_written)` or the
    /// first error encountered while streaming.
    pub fn close(&mut self) -> Result<(u64, u64), SpillError> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        if !self.sealed {
            return Err(SpillError::MissingFooter);
        }
        Ok((self.events, self.bytes))
    }

    fn push_frame(&mut self, frame: Vec<u8>) {
        if let Some(p) = self.frames.as_mut() {
            if p.push(frame).is_err() && self.error.is_none() {
                self.error = Some(writer_died());
            }
        }
    }

    /// Drops the producer (disconnecting the ring) and joins the
    /// writer thread, latching its I/O result.
    fn join_writer(&mut self) {
        if let Some(p) = self.frames.take() {
            self.waits = p.waits();
        }
        if let Some(handle) = self.writer.take() {
            match handle.join() {
                Ok(Ok(())) => {
                    if self.error.is_none() {
                        self.sealed = true;
                    }
                }
                Ok(Err(e)) => {
                    if self.error.is_none() {
                        self.error = Some(SpillError::Io(e));
                    }
                }
                Err(_) => {
                    if self.error.is_none() {
                        self.error = Some(writer_died());
                    }
                }
            }
        }
    }

    fn seal_with(&mut self, objects: &ObjectTable, thread_objs: BTreeMap<ThreadId, ObjId>) {
        let Some(mut encoder) = self.encoder.take() else {
            return;
        };
        let mut frame = Vec::with_capacity(256);
        match encoder.encode_finish(objects, thread_objs, &mut frame) {
            Ok(()) => {
                self.bytes += frame.len() as u64;
                self.push_frame(frame);
            }
            Err(e) => {
                if self.error.is_none() {
                    self.error = Some(e);
                }
            }
        }
        self.join_writer();
    }
}

fn writer_died() -> SpillError {
    SpillError::Io(io::Error::other("spill writer thread died"))
}

impl EventSink for RingSpillSink {
    fn on_event(&mut self, event: &Event) {
        if self.error.is_some() {
            return;
        }
        let Some(encoder) = self.encoder.as_mut() else {
            return;
        };
        let mut frame = Vec::with_capacity(96);
        match encoder.encode_event(event, &mut frame) {
            Ok(()) => {
                self.events += 1;
                self.bytes += frame.len() as u64;
                self.push_frame(frame);
            }
            Err(e) => self.error = Some(e),
        }
    }

    fn on_finish(&mut self, trace: &Trace) {
        if self.encoder.is_none() {
            return;
        }
        let thread_objs: BTreeMap<ThreadId, ObjId> = trace.thread_objs().collect();
        // Clone out of the borrow so seal_with can take &mut self.
        let objects = trace.objects().clone();
        self.seal_with(&objects, thread_objs);
    }
}

impl Drop for RingSpillSink {
    fn drop(&mut self) {
        // Dropped mid-stream (panic, early exit): still seal, so the
        // artifact on disk is structurally valid and analyzable. The
        // object table is empty — the events are what we managed to
        // save — but the writer thread joins and the footer + seal hit
        // the disk.
        if self.encoder.is_some() {
            self.seal_with(&ObjectTable::new(), BTreeMap::new());
        } else {
            self.join_writer();
        }
    }
}

/// A spill sink in either scheduling mode, chosen by
/// [`SpillConfig::ring_capacity`]: synchronous ([`SpillSink`]) or
/// ring-buffered with a writer thread ([`RingSpillSink`]).
pub enum AnySpillSink<W: Write + Send + 'static> {
    /// Encode + write on the emitting thread.
    Sync(SpillSink<W>),
    /// Encode on the emitting thread, write on the spill-writer thread.
    Ring(RingSpillSink),
}

impl<W: Write + Send + 'static> AnySpillSink<W> {
    /// Builds the sink `config` describes, writing into `out`.
    pub fn new(out: W, config: &SpillConfig) -> Result<Self, SpillError> {
        if config.ring_capacity == 0 {
            Ok(AnySpillSink::Sync(SpillSink::with_format(
                out,
                config.format,
            )?))
        } else {
            Ok(AnySpillSink::Ring(RingSpillSink::spawn(out, config)?))
        }
    }

    /// Whether the footer has been written.
    pub fn is_sealed(&self) -> bool {
        match self {
            AnySpillSink::Sync(s) => s.is_sealed(),
            AnySpillSink::Ring(s) => s.is_sealed(),
        }
    }

    /// Blocking-push episodes (always 0 in synchronous mode).
    pub fn backpressure_waits(&self) -> u64 {
        match self {
            AnySpillSink::Sync(_) => 0,
            AnySpillSink::Ring(s) => s.backpressure_waits(),
        }
    }

    /// Ends the spill: `(events_written, bytes_written)` or the first
    /// streaming error.
    pub fn close(&mut self) -> Result<(u64, u64), SpillError> {
        match self {
            AnySpillSink::Sync(s) => s.close(),
            AnySpillSink::Ring(s) => s.close(),
        }
    }
}

impl<W: Write + Send + 'static> EventSink for AnySpillSink<W> {
    fn on_event(&mut self, event: &Event) {
        match self {
            AnySpillSink::Sync(s) => s.on_event(event),
            AnySpillSink::Ring(s) => s.on_event(event),
        }
    }

    fn on_thread_bound(&mut self, thread: ThreadId, obj: ObjId) {
        match self {
            AnySpillSink::Sync(s) => s.on_thread_bound(thread, obj),
            AnySpillSink::Ring(s) => s.on_thread_bound(thread, obj),
        }
    }

    fn on_finish(&mut self, trace: &Trace) {
        match self {
            AnySpillSink::Sync(s) => s.on_finish(trace),
            AnySpillSink::Ring(s) => s.on_finish(trace),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spill::write_trace_as;
    use crate::{read_trace_bytes, EventKind, Label, ObjKind};
    use std::sync::{Arc, Mutex};

    /// A `Write` target the test can inspect after the writer thread
    /// has consumed it.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl SharedBuf {
        fn bytes(&self) -> Vec<u8> {
            self.0.lock().unwrap().clone()
        }
    }

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    /// A writer that dawdles, so a tiny ring actually fills.
    struct SlowBuf {
        inner: SharedBuf,
        delay: Duration,
    }

    impl Write for SlowBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            thread::sleep(self.delay);
            self.inner.write(buf)
        }
        fn flush(&mut self) -> io::Result<()> {
            self.inner.flush()
        }
    }

    fn sample_trace() -> Trace {
        let mut trace = Trace::new();
        let t0 = ThreadId::new(0);
        let obj = trace
            .objects_mut()
            .create(ObjKind::Thread, Label::new("<main>"), None, vec![]);
        trace.bind_thread(t0, obj);
        let lock = trace
            .objects_mut()
            .create(ObjKind::Lock, Label::new("w:3"), None, vec![]);
        trace.push(t0, EventKind::ThreadStart);
        for _ in 0..100 {
            trace.push(
                t0,
                EventKind::acquire(lock, Label::new("w:4"), vec![], vec![Label::new("w:4")]),
            );
            trace.push(t0, EventKind::release(lock, Label::new("w:5")));
        }
        trace.push(t0, EventKind::ThreadExit);
        trace
    }

    fn feed(sink: &mut dyn EventSink, trace: &Trace) {
        for (t, o) in trace.thread_objs() {
            sink.on_thread_bound(t, o);
        }
        for event in trace.events() {
            sink.on_event(event);
        }
        let mut skeleton = Trace::new();
        *skeleton.objects_mut() = trace.objects().clone();
        for (t, o) in trace.thread_objs() {
            skeleton.bind_thread(t, o);
        }
        sink.on_finish(&skeleton);
    }

    #[test]
    fn ring_spill_matches_synchronous_spill_byte_for_byte() {
        let trace = sample_trace();
        for format in [TraceFormat::Jsonl, TraceFormat::Binary] {
            let direct = write_trace_as(Vec::new(), &trace, format).unwrap();
            let buf = SharedBuf::default();
            let config = SpillConfig::with_format(format).with_ring(8);
            let mut sink = RingSpillSink::spawn(buf.clone(), &config).unwrap();
            feed(&mut sink, &trace);
            let (events, bytes) = sink.close().unwrap();
            assert!(sink.is_sealed());
            assert_eq!(events, trace.events().len() as u64);
            assert_eq!(buf.bytes(), direct, "format {format}");
            assert_eq!(bytes, direct.len() as u64);
        }
    }

    #[test]
    fn any_spill_sink_picks_mode_from_config() {
        let trace = sample_trace();
        let direct = write_trace_as(Vec::new(), &trace, TraceFormat::Binary).unwrap();
        // ring_capacity = 0: synchronous.
        let config = SpillConfig::with_format(TraceFormat::Binary);
        let mut sink = AnySpillSink::new(Vec::new(), &config).unwrap();
        assert!(matches!(sink, AnySpillSink::Sync(_)));
        feed(&mut sink, &trace);
        assert!(sink.is_sealed());
        assert_eq!(sink.backpressure_waits(), 0);
        sink.close().unwrap();
        // ring_capacity > 0: threaded.
        let buf = SharedBuf::default();
        let mut sink = AnySpillSink::new(buf.clone(), &config.with_ring(16)).unwrap();
        assert!(matches!(sink, AnySpillSink::Ring(_)));
        feed(&mut sink, &trace);
        sink.close().unwrap();
        assert_eq!(buf.bytes(), direct);
    }

    #[test]
    fn tiny_ring_with_slow_writer_counts_backpressure_waits() {
        let trace = sample_trace();
        let buf = SharedBuf::default();
        let slow = SlowBuf {
            inner: buf.clone(),
            delay: Duration::from_millis(1),
        };
        // batch_bytes 1: every frame is its own (slow) write.
        let config = SpillConfig::with_format(TraceFormat::Binary)
            .with_ring(2)
            .with_batch_bytes(1)
            .with_flush_interval(Duration::from_millis(1));
        let mut sink = RingSpillSink::spawn(slow, &config).unwrap();
        feed(&mut sink, &trace);
        let waits = sink.backpressure_waits();
        assert!(
            waits >= 1,
            "a 2-slot ring against a 1ms/write sink must stall, waits = {waits}"
        );
        sink.close().unwrap();
        let direct = write_trace_as(Vec::new(), &trace, TraceFormat::Binary).unwrap();
        assert_eq!(buf.bytes(), direct, "backpressure never loses frames");
    }

    #[test]
    fn dropping_mid_stream_still_seals_the_artifact() {
        let trace = sample_trace();
        for format in [TraceFormat::Jsonl, TraceFormat::Binary] {
            let buf = SharedBuf::default();
            let config = SpillConfig::with_format(format).with_ring(8);
            let mut sink = RingSpillSink::spawn(buf.clone(), &config).unwrap();
            for event in trace.events().iter().take(7) {
                sink.on_event(event);
            }
            drop(sink); // no on_finish: simulates a dying trial
            let back = read_trace_bytes(&buf.bytes()).expect("dropped spill still parses");
            assert_eq!(back.events().len(), 7);
            assert!(back.objects().is_empty(), "empty emergency footer");
        }
    }

    #[test]
    fn unsealed_ring_spill_reports_missing_footer() {
        // close() before on_finish: the sink latched nothing, but the
        // artifact is not sealed.
        let buf = SharedBuf::default();
        let config = SpillConfig::with_format(TraceFormat::Jsonl).with_ring(4);
        let mut sink = RingSpillSink::spawn(buf, &config).unwrap();
        assert!(matches!(sink.close(), Err(SpillError::MissingFooter)));
    }

    #[test]
    fn spill_config_builder_round_trip() {
        let c = SpillConfig::with_format(TraceFormat::Binary)
            .with_ring(1024)
            .with_batch_bytes(4096)
            .with_flush_interval(Duration::from_millis(7));
        assert_eq!(c.format, TraceFormat::Binary);
        assert_eq!(c.ring_capacity, 1024);
        assert_eq!(c.batch_bytes, 4096);
        assert_eq!(c.flush_interval, Duration::from_millis(7));
        assert_eq!(SpillConfig::default().ring_capacity, 0);
    }
}
