//! Shared event vocabulary for the `deadlock-fuzzer` toolchain.
//!
//! This crate defines the data that flows between the execution substrates
//! (`df-runtime`'s virtual threads and `df-realthread`'s instrumented real
//! threads) and the analyses (`df-igoodlock`, `df-abstraction`, `df-fuzzer`):
//!
//! * [`Label`] — an interned program location (the paper's statement label
//!   `c`), cheap to copy, compare and hash;
//! * [`ThreadId`] / [`ObjId`] — dynamic identities of threads and objects
//!   within *one* execution (the paper's "unique id");
//! * [`ObjectMeta`] / [`ObjectTable`] — per-object creation metadata captured
//!   at allocation time, from which every abstraction of Section 2.4 of the
//!   paper can be derived after the fact;
//! * [`Event`] / [`Trace`] — the dynamic instances of labeled statements from
//!   Section 2.1 (`Acquire`, `Release`, `Call`, `Return`, `new`, …) observed
//!   during an execution.
//!
//! # Example
//!
//! ```
//! use df_events::{Label, Trace, EventKind};
//!
//! let site = Label::new("MyThread.run:15");
//! assert_eq!(&*site.as_str(), "MyThread.run:15");
//! let trace = Trace::default();
//! assert_eq!(trace.events().len(), 0);
//! let _ = EventKind::Yield;
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod binary;
mod event;
mod ids;
mod intern;
mod label;
mod object;
mod ring;
mod sink;
mod spill;
mod trace;
mod writer;

pub use binary::{
    read_binary_trace, write_binary_trace, BinaryTraceWriter, TRACE_BINARY_FORMAT_VERSION,
    TRACE_BINARY_MAGIC, TRACE_BINARY_MIN_FORMAT_VERSION,
};
pub use event::{AcquireMode, Event, EventKind};
pub use ids::{ObjId, ObjKind, ThreadId};
pub use intern::DenseInterner;
pub use label::{caller_site, Label};
pub use object::{IndexFrame, ObjectMeta, ObjectTable};
pub use ring::{spsc_ring, RingConsumer, RingProducer, TryPush};
pub use sink::{EventSink, SinkHandle};
pub use spill::{
    read_trace, read_trace_bytes, write_trace, write_trace_as, SpillError, SpillSink, TraceFooter,
    TraceFormat, TraceHeader, TraceWriter, TRACE_FORMAT, TRACE_FORMAT_VERSION,
};
pub use trace::Trace;
pub use writer::{AnySpillSink, RingSpillSink, SpillConfig};

/// Constructs a [`Label`] from the current source location.
///
/// This is the Rust stand-in for the paper's statement labels: a stable
/// identifier for "the program location of this operation" that does not
/// change across executions.
///
/// # Example
///
/// ```
/// let l = df_events::site!();
/// assert!(l.as_str().contains("lib.rs") || l.as_str().contains("site"));
/// ```
#[macro_export]
macro_rules! site {
    () => {
        $crate::Label::new(concat!(file!(), ":", line!(), ":", column!()))
    };
    ($name:expr) => {
        $crate::Label::new(concat!($name, " (", file!(), ":", line!(), ")"))
    };
}
