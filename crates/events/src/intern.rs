//! Per-run dense interning of dynamic identities.
//!
//! Analyses that post-process one execution (iGoodlock's join, the
//! happens-before filter) want *dense* `0..n` indices for the handful of
//! threads and locks that actually appear in the run, so sets of them can
//! be bitsets and tables of them can be flat vectors. [`DenseInterner`]
//! provides that mapping. It is deliberately a per-run value — never a
//! process-global — so two runs (or two parallel campaign workers)
//! interning the same ids stay byte-for-byte independent; the ids it
//! hands out depend only on insertion order, which analyses derive from
//! the (deterministic) relation or trace they index.

use std::collections::HashMap;
use std::hash::Hash;

/// A dense `K → u32` index built per run: the first distinct key interns
/// to `0`, the next to `1`, and so on.
///
/// # Example
///
/// ```
/// use df_events::{DenseInterner, ObjId};
///
/// let mut locks = DenseInterner::new();
/// let a = locks.intern(ObjId::new(900));
/// let b = locks.intern(ObjId::new(17));
/// assert_eq!((a, b), (0, 1));
/// assert_eq!(locks.intern(ObjId::new(900)), 0); // stable
/// assert_eq!(locks.get(ObjId::new(17)), Some(1));
/// assert_eq!(locks.key(1), ObjId::new(17));
/// assert_eq!(locks.len(), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct DenseInterner<K> {
    ids: HashMap<K, u32>,
    keys: Vec<K>,
}

impl<K: Copy + Eq + Hash> DenseInterner<K> {
    /// An empty interner.
    pub fn new() -> Self {
        DenseInterner {
            ids: HashMap::new(),
            keys: Vec::new(),
        }
    }

    /// An empty interner with room for `n` distinct keys.
    pub fn with_capacity(n: usize) -> Self {
        DenseInterner {
            ids: HashMap::with_capacity(n),
            keys: Vec::with_capacity(n),
        }
    }

    /// The dense id of `key`, allocating the next id on first sight.
    pub fn intern(&mut self, key: K) -> u32 {
        if let Some(&id) = self.ids.get(&key) {
            return id;
        }
        let id = u32::try_from(self.keys.len()).expect("fewer than 2^32 distinct keys per run");
        self.ids.insert(key, id);
        self.keys.push(key);
        id
    }

    /// The dense id of `key`, if it has been interned.
    pub fn get(&self, key: K) -> Option<u32> {
        self.ids.get(&key).copied()
    }

    /// The key behind dense id `id` (reverse lookup).
    ///
    /// # Panics
    ///
    /// Panics if `id` was never handed out by this interner.
    pub fn key(&self, id: u32) -> K {
        self.keys[id as usize]
    }

    /// Number of distinct keys interned.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ObjId, ThreadId};

    #[test]
    fn ids_are_dense_and_insertion_ordered() {
        let mut i = DenseInterner::new();
        assert!(i.is_empty());
        assert_eq!(i.intern(ThreadId::new(40)), 0);
        assert_eq!(i.intern(ThreadId::new(2)), 1);
        assert_eq!(i.intern(ThreadId::new(40)), 0);
        assert_eq!(i.intern(ThreadId::new(7)), 2);
        assert_eq!(i.len(), 3);
        assert_eq!(i.key(2), ThreadId::new(7));
        assert_eq!(i.get(ThreadId::new(2)), Some(1));
        assert_eq!(i.get(ThreadId::new(99)), None);
    }

    #[test]
    fn independent_interners_do_not_share_state() {
        // The per-run property: the same keys interned in different
        // orders give different ids in different interners, and neither
        // instance observes the other.
        let mut a = DenseInterner::with_capacity(2);
        let mut b = DenseInterner::new();
        a.intern(ObjId::new(1));
        a.intern(ObjId::new(2));
        b.intern(ObjId::new(2));
        b.intern(ObjId::new(1));
        assert_eq!(a.get(ObjId::new(2)), Some(1));
        assert_eq!(b.get(ObjId::new(2)), Some(0));
    }
}
