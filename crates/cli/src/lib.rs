//! Library backing the `dfz` command-line tool.
//!
//! Everything the binary does is exposed as functions here so it can be
//! tested without spawning processes:
//!
//! * resolve a benchmark by name ([`resolve_program`]);
//! * run Phase I and render/serialize its cycles ([`cmd_phase1`]);
//! * dump a trace as JSON and analyze a dumped trace offline
//!   ([`cmd_trace`], [`analyze_trace_json`]);
//! * confirm cycles with Phase II trials ([`cmd_confirm`]);
//! * run the full pipeline ([`cmd_run`]).

#![deny(missing_docs)]
#![deny(unsafe_code)]

use std::fmt::Write as _;

use deadlock_fuzzer::{Config, DeadlockFuzzer, ProgramRef, Variant};
use df_abstraction::Abstractor;
use df_events::Trace;
use df_igoodlock::{igoodlock_filtered, HbFilter, IGoodlockOptions, LockDependencyRelation};

/// Names accepted by [`resolve_program`].
pub const BENCHMARKS: [&str; 15] = [
    "figure1",
    "figure1-three-threads",
    "section4",
    "cache4j",
    "sor",
    "hedc",
    "jspider",
    "jigsaw",
    "logging",
    "swing",
    "dbcp",
    "lists",
    "maps",
    "buffer",
    "account",
];

/// Resolves a benchmark/program model by name.
///
/// # Errors
///
/// Returns the list of valid names if `name` is unknown.
pub fn resolve_program(name: &str) -> Result<ProgramRef, String> {
    Ok(match name {
        "figure1" => df_benchmarks::figure1::program(false),
        "figure1-three-threads" => df_benchmarks::figure1::program(true),
        "section4" => df_benchmarks::section4::program(),
        "cache4j" => df_benchmarks::cache4j::program(),
        "sor" => df_benchmarks::sor::program(),
        "hedc" => df_benchmarks::hedc::program(),
        "jspider" => df_benchmarks::jspider::program(),
        "jigsaw" => df_benchmarks::jigsaw::program(),
        "logging" => df_benchmarks::logging::program(),
        "swing" => df_benchmarks::swing::program(),
        "dbcp" => df_benchmarks::dbcp::program(),
        "lists" => df_benchmarks::lists::program(),
        "maps" => df_benchmarks::maps::program(),
        "buffer" => df_benchmarks::buffer::program(),
        "account" => df_benchmarks::account::program(),
        other => {
            return Err(format!(
                "unknown benchmark '{other}'; expected one of: {}",
                BENCHMARKS.join(", ")
            ))
        }
    })
}

/// Resolves a Figure 2 variant by a short name.
///
/// # Errors
///
/// Returns the valid names if `name` is unknown.
pub fn resolve_variant(name: &str) -> Result<Variant, String> {
    Ok(match name {
        "kobject" => Variant::ContextKObject,
        "execindex" | "default" => Variant::ContextExecIndex,
        "trivial" => Variant::IgnoreAbstraction,
        "nocontext" => Variant::IgnoreContext,
        "noyields" => Variant::NoYields,
        other => {
            return Err(format!(
                "unknown variant '{other}'; expected kobject | execindex | trivial | nocontext | noyields"
            ))
        }
    })
}

/// Options shared by the commands.
#[derive(Clone, Debug)]
pub struct CliOptions {
    /// Phase I seed.
    pub seed: u64,
    /// Phase II trials per cycle.
    pub trials: u32,
    /// Figure 2 variant.
    pub variant: Variant,
    /// Enable the happens-before false-positive filter.
    pub hb: bool,
    /// Emit JSON instead of text.
    pub json: bool,
}

impl Default for CliOptions {
    fn default() -> Self {
        CliOptions {
            seed: 0,
            trials: 10,
            variant: Variant::ContextExecIndex,
            hb: false,
            json: false,
        }
    }
}

fn config_of(opts: &CliOptions) -> Config {
    Config::default()
        .with_variant(opts.variant)
        .with_phase1_seed(opts.seed)
        .with_confirm_trials(opts.trials)
        .with_hb_filter(opts.hb)
}

/// `dfz phase1 <benchmark>` — predict potential deadlock cycles.
pub fn cmd_phase1(name: &str, opts: &CliOptions) -> Result<String, String> {
    let program = resolve_program(name)?;
    let fuzzer = DeadlockFuzzer::from_ref(program, config_of(opts));
    let report = fuzzer.phase1();
    if opts.json {
        return serde_json::to_string_pretty(&report.abstract_cycles)
            .map_err(|e| e.to_string());
    }
    Ok(format!("{report}"))
}

/// `dfz trace <benchmark>` — run Phase I and dump the trace as JSON.
pub fn cmd_trace(name: &str, opts: &CliOptions) -> Result<String, String> {
    let program = resolve_program(name)?;
    let fuzzer = DeadlockFuzzer::from_ref(program, config_of(opts));
    // An observation run under the plain random scheduler.
    let report = fuzzer.phase2(
        &df_igoodlock::AbstractCycle::new(vec![]),
        opts.seed,
    );
    serde_json::to_string(&report.trace).map_err(|e| e.to_string())
}

/// `dfz analyze <trace.json>` — offline iGoodlock over a dumped trace.
///
/// # Errors
///
/// Returns a message if the JSON is not a valid trace.
pub fn analyze_trace_json(json: &str, opts: &CliOptions) -> Result<String, String> {
    let trace: Trace =
        serde_json::from_str(json).map_err(|e| format!("not a trace: {e}"))?;
    let relation = LockDependencyRelation::from_trace(&trace);
    let hb = opts.hb.then(|| HbFilter::from_trace(&trace));
    let (cycles, stats) =
        igoodlock_filtered(&relation, hb.as_ref(), &IGoodlockOptions::default());
    let mode = match opts.variant {
        Variant::ContextKObject => df_abstraction::AbstractionMode::KObject(10),
        Variant::IgnoreAbstraction => df_abstraction::AbstractionMode::Trivial,
        _ => df_abstraction::AbstractionMode::ExecIndex(10),
    };
    let abstractor = Abstractor::new(mode);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "offline analysis: {} dependency tuple(s), {} potential cycle(s){}",
        relation.len(),
        cycles.len(),
        if stats.pruned_by_hb > 0 {
            format!(" ({} pruned by happens-before)", stats.pruned_by_hb)
        } else {
            String::new()
        }
    );
    for (i, c) in cycles.iter().enumerate() {
        let _ = writeln!(
            out,
            "  cycle {}: {}",
            i + 1,
            c.abstract_with(trace.objects(), &abstractor)
        );
    }
    Ok(out)
}

/// `dfz confirm <benchmark>` — Phase II confirmation of one or all cycles.
pub fn cmd_confirm(
    name: &str,
    cycle_index: Option<usize>,
    opts: &CliOptions,
) -> Result<String, String> {
    let program = resolve_program(name)?;
    let fuzzer = DeadlockFuzzer::from_ref(program, config_of(opts));
    let phase1 = fuzzer.phase1();
    if phase1.abstract_cycles.is_empty() {
        return Ok("no potential deadlock cycles to confirm\n".to_string());
    }
    let indices: Vec<usize> = match cycle_index {
        Some(i) if i < phase1.abstract_cycles.len() => vec![i],
        Some(i) => {
            return Err(format!(
                "cycle {i} out of range (0..{})",
                phase1.abstract_cycles.len()
            ))
        }
        None => (0..phase1.abstract_cycles.len()).collect(),
    };
    let mut out = String::new();
    for i in indices {
        let prob = fuzzer.estimate_probability(&phase1.abstract_cycles[i], opts.trials);
        let _ = writeln!(
            out,
            "cycle {:>2}: {} — {}",
            i + 1,
            if prob.matched > 0 {
                "CONFIRMED"
            } else {
                "not reproduced"
            },
            prob
        );
    }
    Ok(out)
}

/// `dfz run <benchmark>` — the full two-phase pipeline.
pub fn cmd_run(name: &str, opts: &CliOptions) -> Result<String, String> {
    let program = resolve_program(name)?;
    let fuzzer = DeadlockFuzzer::from_ref(program, config_of(opts));
    let report = fuzzer.run();
    Ok(format!("{report}"))
}

/// `dfz races <benchmark>` — the RaceFuzzer sibling: predict data races
/// by lockset analysis, then confirm each with the active race
/// scheduler.
pub fn cmd_races(name: &str, opts: &CliOptions) -> Result<String, String> {
    use df_fuzzer::{predict_races, RaceStrategy, SimpleRandomChecker};
    use df_runtime::{RunConfig, VirtualRuntime};

    let program = resolve_program(name)?;
    let rt = VirtualRuntime::new(RunConfig::default());
    let p = program.clone();
    let observed = rt.run(
        Box::new(SimpleRandomChecker::with_seed(opts.seed)),
        move |ctx| p.run(ctx),
    );
    let candidates = predict_races(&observed.trace);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "lockset analysis predicts {} potential race(s)",
        candidates.len()
    );
    for (i, c) in candidates.iter().enumerate() {
        let mut hits = 0;
        for seed in 0..opts.trials as u64 {
            let (strategy, witness) = RaceStrategy::new(c.clone(), seed);
            let p = program.clone();
            let _ = rt.run(Box::new(strategy), move |ctx| p.run(ctx));
            let got = witness.lock().take();
            if got.is_some() {
                hits += 1;
            }
        }
        let _ = writeln!(
            out,
            "  race {}: {} — {c} ({hits}/{} biased runs)",
            i + 1,
            if hits > 0 { "CONFIRMED" } else { "not reproduced" },
            opts.trials
        );
    }
    Ok(out)
}

/// `dfz list` — the benchmark names.
pub fn cmd_list() -> String {
    let mut out = String::from("available benchmarks:\n");
    for b in BENCHMARKS {
        let _ = writeln!(out, "  {b}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_rejects_unknown_names() {
        assert!(resolve_program("figure1").is_ok());
        let err = match resolve_program("nope") {
            Err(e) => e,
            Ok(_) => panic!("'nope' must not resolve"),
        };
        assert!(err.contains("figure1"));
        assert!(resolve_variant("trivial").is_ok());
        assert!(resolve_variant("bogus").is_err());
    }

    #[test]
    fn phase1_command_renders_cycles() {
        let out = cmd_phase1("figure1", &CliOptions::default()).unwrap();
        assert!(out.contains("1 potential deadlock cycle"), "{out}");
        assert!(out.contains("MyThread.run:16"), "{out}");
    }

    #[test]
    fn phase1_json_is_parseable() {
        let opts = CliOptions {
            json: true,
            ..CliOptions::default()
        };
        let out = cmd_phase1("figure1", &opts).unwrap();
        let cycles: Vec<df_igoodlock::AbstractCycle> =
            serde_json::from_str(&out).unwrap();
        assert_eq!(cycles.len(), 1);
    }

    #[test]
    fn trace_dump_round_trips_through_offline_analysis() {
        let opts = CliOptions::default();
        let json = cmd_trace("figure1", &opts).unwrap();
        let out = analyze_trace_json(&json, &opts).unwrap();
        assert!(out.contains("1 potential cycle"), "{out}");
    }

    #[test]
    fn analyze_rejects_garbage() {
        assert!(analyze_trace_json("{not json", &CliOptions::default()).is_err());
    }

    #[test]
    fn confirm_reports_verdicts() {
        let opts = CliOptions {
            trials: 4,
            ..CliOptions::default()
        };
        let out = cmd_confirm("figure1", None, &opts).unwrap();
        assert!(out.contains("CONFIRMED"), "{out}");
        let err = cmd_confirm("figure1", Some(7), &opts).unwrap_err();
        assert!(err.contains("out of range"));
        let none = cmd_confirm("sor", None, &opts).unwrap();
        assert!(none.contains("no potential"), "{none}");
    }

    #[test]
    fn hb_flag_prunes_in_offline_analysis() {
        let opts = CliOptions::default();
        let json = cmd_trace("jigsaw", &opts).unwrap();
        let plain = analyze_trace_json(&json, &opts).unwrap();
        let hb_opts = CliOptions {
            hb: true,
            ..CliOptions::default()
        };
        let filtered = analyze_trace_json(&json, &hb_opts).unwrap();
        assert!(filtered.contains("pruned by happens-before"), "{filtered}");
        assert!(plain.contains("waitForRunner"));
        assert!(!filtered.contains("waitForRunner"));
    }

    #[test]
    fn list_names_everything() {
        let out = cmd_list();
        for b in BENCHMARKS {
            assert!(out.contains(b));
        }
    }
}
