//! Library backing the `dfz` command-line tool.
//!
//! Everything the binary does is exposed as functions here so it can be
//! tested without spawning processes:
//!
//! * resolve a benchmark by name ([`resolve_program`]);
//! * run Phase I and render/serialize its cycles ([`cmd_phase1`]);
//! * record a Phase I run to durable artifacts and analyze them later
//!   ([`cmd_record`], [`cmd_analyze`]);
//! * dump a trace as JSON and analyze a dumped trace offline
//!   ([`cmd_trace`], [`analyze_trace_json`]);
//! * confirm cycles with Phase II trials ([`cmd_confirm`]);
//! * run the full pipeline ([`cmd_run`]).
//!
//! Every command has the same shape — `Result<CmdOutput, CliError>` —
//! so `main` prints and exit-codes through a single path:
//! [`CmdOutput::code`] on success, [`CliError::exit_code`] on failure.

#![deny(missing_docs)]
#![deny(unsafe_code)]

use std::fmt::Write as _;

use deadlock_fuzzer::{Config, DeadlockFuzzer, ProgramRef, Report, Variant};
use df_abstraction::Abstractor;
#[cfg(test)]
use df_events::TraceFormat;
use df_events::{SpillConfig, Trace, TRACE_BINARY_MAGIC};
use df_igoodlock::{igoodlock_parallel, HbFilter, IGoodlockOptions, LockDependencyRelation};

/// Documented process exit codes for the verdict commands (`confirm`,
/// `run`). See README "Failure taxonomy & exit codes".
pub mod exit_code {
    /// A deadlock cycle was confirmed by a real witness.
    pub const CYCLE_CONFIRMED: i32 = 0;
    /// No cycle was predicted, or no prediction could be reproduced.
    pub const NO_CYCLE_FOUND: i32 = 1;
    /// Bad command line (unknown command, flag, or value).
    pub const USAGE: i32 = 2;
    /// The program under test panicked during trials (a bug in the
    /// program, not a deadlock and not a harness failure).
    pub const PROGRAM_PANIC: i32 = 3;
    /// The harness itself failed (invalid config, confirmation error,
    /// unreadable input).
    pub const INTERNAL_ERROR: i32 = 4;
    /// The online wait-for-graph detector of `df-lock` found a real
    /// deadlock in a natively-scheduled program and its `SealAndExit`
    /// handler terminated the process after sealing the spill.
    pub const LIVE_DEADLOCK: i32 = 5;
}

/// Rendered output of a command plus the process exit code `main` should
/// use.
#[derive(Clone, Debug)]
pub struct CmdOutput {
    /// Text for stdout.
    pub text: String,
    /// One of the [`exit_code`] constants.
    pub code: i32,
}

impl CmdOutput {
    /// Plain success output (informational commands).
    pub fn ok(text: String) -> Self {
        CmdOutput {
            text,
            code: exit_code::CYCLE_CONFIRMED,
        }
    }
}

/// Typed failure of a `dfz` command. Every command returns
/// `Result<CmdOutput, CliError>`, so `main` prints and exit-codes
/// through one path: [`CmdOutput::code`] on success,
/// [`CliError::exit_code`] on failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CliError {
    /// The user asked for something that does not exist: an unknown
    /// benchmark or variant, a cycle index out of range. Maps to
    /// [`exit_code::USAGE`].
    Usage(String),
    /// The harness itself failed: unreadable input, unwritable output,
    /// serialization or confirmation errors. Maps to
    /// [`exit_code::INTERNAL_ERROR`].
    Internal(String),
}

impl CliError {
    /// A usage-class error (`exit_code::USAGE`).
    pub fn usage(msg: impl Into<String>) -> Self {
        CliError::Usage(msg.into())
    }

    /// An internal-class error (`exit_code::INTERNAL_ERROR`).
    pub fn internal(msg: impl Into<String>) -> Self {
        CliError::Internal(msg.into())
    }

    /// The documented process exit code for this error class.
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Usage(_) => exit_code::USAGE,
            CliError::Internal(_) => exit_code::INTERNAL_ERROR,
        }
    }

    /// The human-readable message, without the class prefix.
    pub fn message(&self) -> &str {
        match self {
            CliError::Usage(m) | CliError::Internal(m) => m,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.message())
    }
}

impl std::error::Error for CliError {}

/// Maps a pipeline [`Report`] to its documented exit code: a confirmed
/// cycle wins, then a program panic seen in any trial, then a harness
/// failure, then "nothing found".
pub fn report_exit_code(report: &Report) -> i32 {
    if report.confirmations.iter().any(|c| c.confirmed) {
        return exit_code::CYCLE_CONFIRMED;
    }
    let phase1_panicked = matches!(
        report.phase1.run_outcome,
        deadlock_fuzzer::runtime::Outcome::ProgramPanic(_)
    );
    if phase1_panicked || report.trial_outcome_totals().panics > 0 {
        return exit_code::PROGRAM_PANIC;
    }
    if report.failed_count() > 0 {
        return exit_code::INTERNAL_ERROR;
    }
    exit_code::NO_CYCLE_FOUND
}

/// Names accepted by [`resolve_program`].
pub const BENCHMARKS: [&str; 19] = [
    "figure1",
    "figure1-three-threads",
    "dining-philosophers",
    "section4",
    "cache4j",
    "sor",
    "hedc",
    "jspider",
    "jigsaw",
    "logging",
    "swing",
    "dbcp",
    "lists",
    "maps",
    "buffer",
    "account",
    "producer-consumer",
    "read-mostly-cache",
    "writer-starvation",
];

/// Resolves a benchmark/program model by name.
///
/// # Errors
///
/// Returns a [`CliError::Usage`] listing the valid names if `name` is
/// unknown.
pub fn resolve_program(name: &str) -> Result<ProgramRef, CliError> {
    Ok(match name {
        "figure1" => df_benchmarks::figure1::program(false),
        "figure1-three-threads" => df_benchmarks::figure1::program(true),
        "dining-philosophers" => df_benchmarks::dining_philosophers::program(3),
        "section4" => df_benchmarks::section4::program(),
        "cache4j" => df_benchmarks::cache4j::program(),
        "sor" => df_benchmarks::sor::program(),
        "hedc" => df_benchmarks::hedc::program(),
        "jspider" => df_benchmarks::jspider::program(),
        "jigsaw" => df_benchmarks::jigsaw::program(),
        "logging" => df_benchmarks::logging::program(),
        "swing" => df_benchmarks::swing::program(),
        "dbcp" => df_benchmarks::dbcp::program(),
        "lists" => df_benchmarks::lists::program(),
        "maps" => df_benchmarks::maps::program(),
        "buffer" => df_benchmarks::buffer::program(),
        "account" => df_benchmarks::account::program(),
        "producer-consumer" => df_benchmarks::producer_consumer::program(),
        "read-mostly-cache" => df_benchmarks::read_mostly_cache::program(),
        "writer-starvation" => df_benchmarks::writer_starvation::program(3),
        other => {
            return Err(CliError::usage(format!(
                "unknown benchmark '{other}'; expected one of: {}",
                BENCHMARKS.join(", ")
            )))
        }
    })
}

/// Resolves a Figure 2 variant by a short name.
///
/// # Errors
///
/// Returns a [`CliError::Usage`] listing the valid names if `name` is
/// unknown.
pub fn resolve_variant(name: &str) -> Result<Variant, CliError> {
    Ok(match name {
        "kobject" => Variant::ContextKObject,
        "execindex" | "default" => Variant::ContextExecIndex,
        "trivial" => Variant::IgnoreAbstraction,
        "nocontext" => Variant::IgnoreContext,
        "noyields" => Variant::NoYields,
        other => {
            return Err(CliError::usage(format!(
                "unknown variant '{other}'; expected kobject | execindex | trivial | nocontext | noyields"
            )))
        }
    })
}

/// Options shared by the commands.
#[derive(Clone, Debug)]
pub struct CliOptions {
    /// Phase I seed.
    pub seed: u64,
    /// Phase II trials per cycle.
    pub trials: u32,
    /// Figure 2 variant.
    pub variant: Variant,
    /// Enable the happens-before false-positive filter.
    pub hb: bool,
    /// Score each predicted cycle's feasibility from the Phase I trace
    /// (the precision layer); verdicts ride the reports and
    /// `--metrics-out` gauges.
    pub feasibility: bool,
    /// Replace the uniform per-cycle campaign with the deterministic
    /// adaptive trial allocator (prunes `Infeasible` cycles, probes
    /// high-scoring ones first, stops each cycle at its first match).
    pub adaptive: bool,
    /// Campaign-wide cap on adaptive Phase II trials (`None` =
    /// uncapped).
    pub trial_budget: Option<u32>,
    /// Emit JSON instead of text.
    pub json: bool,
    /// Write campaign metrics (the `df-metrics-v1` schema) to this file.
    pub metrics_out: Option<std::path::PathBuf>,
    /// Stream scheduler-decision trace events (JSONL) to this file.
    pub trace_out: Option<std::path::PathBuf>,
    /// Inject a panic with this probability at each first acquisition
    /// (fault harness; drives the exit-code 3 path end to end).
    pub fault_panic: Option<f64>,
    /// Seed of the fault-injection RNG.
    pub fault_seed: u64,
    /// Worker threads for Phase II trial campaigns (`0` = one per
    /// available hardware thread, `1` = sequential).
    pub jobs: usize,
    /// Stream Phase I through the incremental relation builder instead
    /// of materializing the event vector.
    pub stream: bool,
    /// `dfz record`: write the event stream as a `df-trace` artifact to
    /// this file.
    pub out: Option<std::path::PathBuf>,
    /// `dfz record`: write the lock dependency relation as a
    /// `df-relation` artifact to this file.
    pub relation_out: Option<std::path::PathBuf>,
    /// `dfz record`: how the trace artifact is encoded and scheduled to
    /// disk — the shared [`SpillConfig`] that `--format`, `--spill-ring`,
    /// `--spill-batch-bytes` and `--spill-flush-ms` all map onto
    /// (`dfz analyze` sniffs the encoding, so the format only matters
    /// when writing). The same struct flows into
    /// [`Config::with_spill`] and `df_lock::Tracker::with_spill`.
    pub spill: SpillConfig,
}

impl Default for CliOptions {
    fn default() -> Self {
        CliOptions {
            seed: 0,
            trials: 10,
            variant: Variant::ContextExecIndex,
            hb: false,
            feasibility: false,
            adaptive: false,
            trial_budget: None,
            json: false,
            metrics_out: None,
            trace_out: None,
            fault_panic: None,
            fault_seed: 0,
            jobs: 0,
            stream: false,
            out: None,
            relation_out: None,
            spill: SpillConfig::default(),
        }
    }
}

/// Builds the pipeline [`Config`] the options describe and validates it,
/// so nonsense combinations (`--trials 0`, `--stream --hb`, fault
/// probabilities outside `[0, 1]`) die at the front door with exit
/// code 2 instead of degenerating mid-campaign.
///
/// # Errors
///
/// Returns a [`CliError::Usage`] carrying the [`Config::validate`]
/// rejection message.
pub fn config_of(opts: &CliOptions) -> Result<Config, CliError> {
    let mut config = Config::default()
        .with_variant(opts.variant)
        .with_phase1_seed(opts.seed)
        .with_confirm_trials(opts.trials)
        .with_hb_filter(opts.hb)
        .with_feasibility(opts.feasibility)
        .with_adaptive_trials(opts.adaptive)
        .with_trial_budget(opts.trial_budget)
        .with_jobs(opts.jobs)
        .with_phase1_jobs(opts.jobs)
        .with_stream_phase1(opts.stream)
        .with_spill(opts.spill);
    if let Some(p) = opts.fault_panic {
        config.run = config.run.with_fault_plan(
            deadlock_fuzzer::runtime::FaultPlan::new(opts.fault_seed).with_panic_on_acquire(p),
        );
    }
    config
        .validate()
        .map_err(|e| CliError::usage(e.to_string()))?;
    Ok(config)
}

/// Builds the observability handle the options ask for: a file-backed
/// trace sink when `--trace-out` was given, counters-only otherwise.
///
/// # Errors
///
/// Returns a [`CliError::Internal`] if the trace file cannot be created.
pub fn obs_of(opts: &CliOptions) -> Result<df_obs::Obs, CliError> {
    match &opts.trace_out {
        Some(path) => df_obs::Obs::with_file_sink(path)
            .map_err(|e| CliError::internal(format!("cannot open {}: {e}", path.display()))),
        None => Ok(df_obs::Obs::new()),
    }
}

/// Writes the metrics file if `--metrics-out` was given.
///
/// # Errors
///
/// Returns a [`CliError::Internal`] if the file cannot be written.
pub fn write_metrics(opts: &CliOptions, metrics: &df_obs::Metrics) -> Result<(), CliError> {
    if let Some(path) = &opts.metrics_out {
        std::fs::write(path, metrics.to_json_pretty())
            .map_err(|e| CliError::internal(format!("cannot write {}: {e}", path.display())))?;
    }
    Ok(())
}

/// `dfz phase1 <benchmark>` — predict potential deadlock cycles.
pub fn cmd_phase1(name: &str, opts: &CliOptions) -> Result<CmdOutput, CliError> {
    let program = resolve_program(name)?;
    let fuzzer = DeadlockFuzzer::from_ref(program, config_of(opts)?);
    let report = fuzzer.phase1();
    if opts.json {
        return serde_json::to_string_pretty(&report.abstract_cycles)
            .map(CmdOutput::ok)
            .map_err(|e| CliError::internal(e.to_string()));
    }
    Ok(CmdOutput::ok(format!("{report}")))
}

/// `dfz trace <benchmark>` — run Phase I and dump the trace as JSON.
pub fn cmd_trace(name: &str, opts: &CliOptions) -> Result<CmdOutput, CliError> {
    let program = resolve_program(name)?;
    let fuzzer = DeadlockFuzzer::from_ref(program, config_of(opts)?);
    // An observation run under the plain random scheduler.
    let report = fuzzer.phase2(&df_igoodlock::AbstractCycle::new(vec![]), opts.seed);
    serde_json::to_string(&report.trace)
        .map(CmdOutput::ok)
        .map_err(|e| CliError::internal(e.to_string()))
}

/// `dfz record <benchmark>` — run Phase I once and persist it as durable
/// artifacts: the event stream (`--out`, `df-trace` JSONL) and/or the
/// lock dependency relation (`--relation-out`, `df-relation` JSON). With
/// `--stream` the run never materializes the event vector — events flow
/// straight from the scheduler into the attached sinks.
///
/// # Errors
///
/// Returns a [`CliError::Usage`] when neither output flag was given or
/// the config is invalid, and a [`CliError::Internal`] when an artifact
/// cannot be created or sealed.
pub fn cmd_record(name: &str, opts: &CliOptions) -> Result<CmdOutput, CliError> {
    use std::sync::{Arc, Mutex};

    if opts.out.is_none() && opts.relation_out.is_none() {
        return Err(CliError::usage(
            "record needs --out <trace file> and/or --relation-out <relation file>",
        ));
    }
    let program = resolve_program(name)?;
    let obs = obs_of(opts)?;
    let config = config_of(opts)?;
    let spill_config = config.spill;
    let fuzzer = DeadlockFuzzer::from_ref(program, config.with_obs(obs.clone()));

    let mut handle = df_events::SinkHandle::none();
    let spill = match &opts.out {
        Some(path) => {
            let file = std::fs::File::create(path).map_err(|e| {
                CliError::internal(format!("cannot create {}: {e}", path.display()))
            })?;
            let sink = df_events::AnySpillSink::new(std::io::BufWriter::new(file), &spill_config)
                .map_err(|e| {
                CliError::internal(format!("cannot start {}: {e}", path.display()))
            })?;
            let sink = Arc::new(Mutex::new(sink));
            handle = handle.with(sink.clone());
            Some(sink)
        }
        None => None,
    };
    let builder = match &opts.relation_out {
        Some(_) => {
            let b = Arc::new(Mutex::new(df_igoodlock::RelationBuilder::new()));
            handle = handle.with(b.clone());
            Some(b)
        }
        None => None,
    };

    let result = fuzzer.observe(handle, !opts.stream);

    let mut out = String::new();
    let _ = writeln!(out, "recorded {name}: outcome {:?}", result.outcome);
    let _ = writeln!(
        out,
        "  events streamed: {}",
        obs.counters().snapshot().events_streamed
    );
    let _ = writeln!(
        out,
        "  peak trace bytes: {}",
        obs.counters().snapshot().peak_trace_bytes
    );
    if let (Some(sink), Some(path)) = (spill, &opts.out) {
        // Recover a poisoned sink mutex: even if a trial panicked inside
        // the program, the spill must still be harvested and sealed.
        let mut guard = sink
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let (events, bytes) = guard
            .close()
            .map_err(|e| CliError::internal(format!("sealing {}: {e}", path.display())))?;
        let waits = guard.backpressure_waits();
        drop(guard);
        obs.counters().add_spill_backpressure_waits(waits);
        let _ = writeln!(
            out,
            "  trace artifact: {} ({events} events, {bytes} bytes)",
            path.display()
        );
        let _ = writeln!(out, "  trace format: {}", spill_config.format);
        if spill_config.ring_capacity > 0 {
            let _ = writeln!(out, "  spill backpressure waits: {waits}");
        }
    }
    if let (Some(b), Some(path)) = (builder, &opts.relation_out) {
        let relation = b.lock().expect("relation builder sink").take();
        let file = std::fs::File::create(path)
            .map_err(|e| CliError::internal(format!("cannot create {}: {e}", path.display())))?;
        df_igoodlock::write_relation(std::io::BufWriter::new(file), &relation)
            .map_err(|e| CliError::internal(format!("writing {}: {e}", path.display())))?;
        let _ = writeln!(
            out,
            "  relation artifact: {} ({} dependency tuples)",
            path.display(),
            relation.len()
        );
    }
    obs.flush();
    write_metrics(opts, &obs.metrics(name))?;
    Ok(CmdOutput::ok(out))
}

/// The abstraction mode Phase I would use for `variant` — keeps
/// offline analysis output aligned with [`cmd_phase1`].
fn abstraction_of(variant: Variant) -> df_abstraction::AbstractionMode {
    match variant {
        Variant::ContextKObject => df_abstraction::AbstractionMode::KObject(10),
        Variant::IgnoreAbstraction => df_abstraction::AbstractionMode::Trivial,
        _ => df_abstraction::AbstractionMode::ExecIndex(10),
    }
}

/// Offline iGoodlock over an in-memory [`Trace`]: the shared engine
/// behind [`cmd_analyze`] (trace artifacts) and [`analyze_trace_json`].
/// With `--json` the output is the same pretty-printed abstract-cycle
/// array [`cmd_phase1`] prints, so a recorded run can be diffed
/// byte-for-byte against a live one.
fn analyze_trace(trace: &Trace, opts: &CliOptions) -> Result<CmdOutput, CliError> {
    let relation = LockDependencyRelation::from_trace(trace);
    let hb = opts.hb.then(|| HbFilter::from_trace(trace));
    let (cycles, stats, _) = igoodlock_parallel(
        &relation,
        hb.as_ref(),
        &IGoodlockOptions::default(),
        opts.jobs,
    );
    let abstractor = Abstractor::new(abstraction_of(opts.variant));
    let abstract_cycles: Vec<df_igoodlock::AbstractCycle> = cycles
        .iter()
        .map(|c| c.abstract_with(trace.objects(), &abstractor))
        .collect();
    if opts.json {
        return serde_json::to_string_pretty(&abstract_cycles)
            .map(CmdOutput::ok)
            .map_err(|e| CliError::internal(e.to_string()));
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "offline analysis: {} dependency tuple(s), {} potential cycle(s){}",
        relation.len(),
        cycles.len(),
        if stats.pruned_by_hb > 0 {
            format!(" ({} pruned by happens-before)", stats.pruned_by_hb)
        } else {
            String::new()
        }
    );
    for (i, c) in abstract_cycles.iter().enumerate() {
        let _ = writeln!(out, "  cycle {}: {c}", i + 1);
    }
    Ok(CmdOutput::ok(out))
}

/// Offline iGoodlock over a bare [`LockDependencyRelation`] (a
/// `df-relation` artifact): no trace means no object table, so cycles
/// are reported concretely rather than abstracted. With
/// `--metrics-out`, the join's wall-clock span is recorded through
/// [`df_obs::PhaseTimings`] and lands both as a `phase1_join` phase and
/// as a `phase1_join_ms` extra gauge in the metrics document.
fn analyze_relation(
    relation: &LockDependencyRelation,
    opts: &CliOptions,
) -> Result<CmdOutput, CliError> {
    let timings = df_obs::PhaseTimings::new();
    let (cycles, stats, pstats) = timings.time("phase1_join", || {
        igoodlock_parallel(relation, None, &IGoodlockOptions::default(), opts.jobs)
    });
    let mut metrics = df_obs::Metrics::new("analyze-relation");
    metrics.counters.dependency_edges = relation.len() as u64;
    metrics.counters.cycles_found = cycles.len() as u64;
    metrics.counters.join_candidates_examined = stats.join_candidates_examined;
    metrics.counters.join_chains_built = stats.chains_built;
    metrics.counters.join_tasks_executed = pstats.tasks_executed;
    metrics.counters.join_steal_waits = pstats.steal_waits;
    metrics.phases = timings.snapshot();
    if let Some(span) = metrics.phases.iter().find(|s| s.name == "phase1_join") {
        metrics
            .extra
            .insert("phase1_join_ms".to_string(), span.micros as f64 / 1000.0);
    }
    write_metrics(opts, &metrics)?;
    if opts.json {
        return serde_json::to_string_pretty(&cycles)
            .map(CmdOutput::ok)
            .map_err(|e| CliError::internal(e.to_string()));
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "offline analysis (relation artifact): {} dependency tuple(s), {} potential cycle(s)",
        relation.len(),
        cycles.len()
    );
    for (i, c) in cycles.iter().enumerate() {
        let _ = writeln!(out, "  cycle {}: {c}", i + 1);
    }
    Ok(CmdOutput::ok(out))
}

/// `dfz analyze <artifact>` — offline iGoodlock over a recorded
/// artifact, sniffing its format from the first bytes: `df-trace`
/// binary v2 (from `dfz record --format binary`), `df-trace` JSONL v1
/// (from `dfz record --out` or a sealed `df-lock` spill), `df-relation`
/// JSON (from `dfz record --relation-out`), or a legacy plain-trace
/// JSON dump (from `dfz trace`). Both trace encodings decode to the
/// same [`Trace`], so `--json` output is byte-identical regardless of
/// which one was recorded. `source` is the artifact's path (or other
/// provenance string), used verbatim in error messages.
///
/// # Errors
///
/// Returns a [`CliError::Usage`] for `--hb` over a relation artifact
/// (the filter's vector clocks need the events) and for a truncated or
/// corrupt artifact — the message names `source` and, when the failure
/// is tied to one line (JSONL) or frame (binary), its 1-based index.
/// Returns a [`CliError::Internal`] if the content parses as none of
/// the formats.
pub fn cmd_analyze(content: &[u8], source: &str, opts: &CliOptions) -> Result<CmdOutput, CliError> {
    if content.starts_with(&TRACE_BINARY_MAGIC) {
        let trace = df_events::read_trace_bytes(content)
            .map_err(|e| CliError::usage(format!("bad trace artifact {source}: {e}")))?;
        return analyze_trace(&trace, opts);
    }
    let content = std::str::from_utf8(content).map_err(|_| {
        CliError::internal(format!(
            "{source} is neither a df-trace binary artifact nor UTF-8 text"
        ))
    })?;
    let head = content.trim_start();
    if head.starts_with("{\"Header\"") {
        let trace = df_events::read_trace(content.as_bytes())
            .map_err(|e| CliError::usage(format!("bad trace artifact {source}: {e}")))?;
        return analyze_trace(&trace, opts);
    }
    if head.starts_with("{\"format\":\"df-relation\"") {
        if opts.hb {
            return Err(CliError::usage(
                "--hb needs the event stream; a relation artifact has none (record with --out)",
            ));
        }
        let relation = df_igoodlock::read_relation(content.as_bytes())
            .map_err(|e| CliError::usage(format!("bad relation artifact {source}: {e}")))?;
        return analyze_relation(&relation, opts);
    }
    analyze_trace_json(content, opts)
}

/// `dfz analyze` over a legacy plain-trace JSON dump (`dfz trace`).
///
/// # Errors
///
/// Returns a [`CliError::Internal`] if the JSON is not a valid trace.
pub fn analyze_trace_json(json: &str, opts: &CliOptions) -> Result<CmdOutput, CliError> {
    let trace: Trace =
        serde_json::from_str(json).map_err(|e| CliError::internal(format!("not a trace: {e}")))?;
    analyze_trace(&trace, opts)
}

/// `dfz confirm <benchmark>` — Phase II confirmation of one or all cycles.
///
/// The returned [`CmdOutput::code`] follows the [`exit_code`] taxonomy:
/// confirmed beats program-panic beats no-cycle-found.
pub fn cmd_confirm(
    name: &str,
    cycle_index: Option<usize>,
    opts: &CliOptions,
) -> Result<CmdOutput, CliError> {
    let program = resolve_program(name)?;
    let fuzzer = DeadlockFuzzer::from_ref(program, config_of(opts)?);
    let phase1 = fuzzer.phase1();
    if phase1.abstract_cycles.is_empty() {
        return Ok(CmdOutput {
            text: "no potential deadlock cycles to confirm\n".to_string(),
            code: exit_code::NO_CYCLE_FOUND,
        });
    }
    let mut out = String::new();
    let mut confirmed = false;
    let mut panicked = false;
    let mut failed = false;
    match cycle_index {
        Some(i) if i < phase1.abstract_cycles.len() => {
            let prob = fuzzer
                .estimate_probability(&phase1.abstract_cycles[i], opts.trials)
                .map_err(|e| CliError::internal(e.to_string()))?;
            confirmed = prob.matched > 0;
            panicked = prob.outcomes.panics > 0;
            let _ = write!(
                out,
                "cycle {:>2}: {} — {}",
                i + 1,
                if prob.matched > 0 {
                    "CONFIRMED"
                } else {
                    "not reproduced"
                },
                prob
            );
            if let Some(judgement) = phase1.feasibility.get(i) {
                let _ = write!(out, " [predicted {judgement}]");
            }
            out.push('\n');
        }
        Some(i) => {
            return Err(CliError::usage(format!(
                "cycle {i} out of range (0..{})",
                phase1.abstract_cycles.len()
            )))
        }
        None => {
            for c in fuzzer.confirm_all(&phase1) {
                confirmed |= c.confirmed;
                panicked |= c.probability.outcomes.panics > 0;
                let pruned = c.error.is_none()
                    && c.probability.trials == 0
                    && matches!(
                        c.feasibility.as_ref().map(|j| j.verdict),
                        Some(df_igoodlock::FeasibilityVerdict::Infeasible)
                    );
                let _ = write!(out, "cycle {:>2}: ", c.cycle_index + 1);
                if let Some(e) = &c.error {
                    failed = true;
                    let _ = write!(out, "FAILED — {e}");
                } else if pruned {
                    let _ = write!(out, "pruned — no trials spent");
                } else {
                    let _ = write!(
                        out,
                        "{} — {}",
                        if c.confirmed {
                            "CONFIRMED"
                        } else {
                            "not reproduced"
                        },
                        c.probability
                    );
                }
                if let Some(judgement) = &c.feasibility {
                    let _ = write!(out, " [predicted {judgement}]");
                }
                out.push('\n');
            }
        }
    }
    let code = if confirmed {
        exit_code::CYCLE_CONFIRMED
    } else if panicked {
        exit_code::PROGRAM_PANIC
    } else if failed {
        exit_code::INTERNAL_ERROR
    } else {
        exit_code::NO_CYCLE_FOUND
    };
    Ok(CmdOutput { text: out, code })
}

/// `dfz run <benchmark>` — the full two-phase pipeline.
///
/// The returned [`CmdOutput::code`] is [`report_exit_code`] of the
/// pipeline report.
pub fn cmd_run(name: &str, opts: &CliOptions) -> Result<CmdOutput, CliError> {
    let program = resolve_program(name)?;
    let obs = obs_of(opts)?;
    let fuzzer = DeadlockFuzzer::from_ref(program, config_of(opts)?.with_obs(obs.clone()));
    let report = fuzzer.run();
    obs.flush();
    write_metrics(opts, &report.metrics(&obs))?;
    Ok(CmdOutput {
        code: report_exit_code(&report),
        text: format!("{report}"),
    })
}

/// `dfz races <benchmark>` — the RaceFuzzer sibling: predict data races
/// by lockset analysis, then confirm each with the active race
/// scheduler.
pub fn cmd_races(name: &str, opts: &CliOptions) -> Result<CmdOutput, CliError> {
    use df_fuzzer::{predict_races, RaceStrategy, SimpleRandomChecker};
    use df_runtime::{RunConfig, VirtualRuntime};

    let program = resolve_program(name)?;
    let rt = VirtualRuntime::new(RunConfig::default());
    let p = program.clone();
    let observed = rt.run(
        Box::new(SimpleRandomChecker::with_seed(opts.seed)),
        move |ctx| p.run(ctx),
    );
    let candidates = predict_races(&observed.trace);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "lockset analysis predicts {} potential race(s)",
        candidates.len()
    );
    for (i, c) in candidates.iter().enumerate() {
        let mut hits = 0;
        for seed in 0..opts.trials as u64 {
            let (strategy, witness) = RaceStrategy::new(c.clone(), seed);
            let p = program.clone();
            let _ = rt.run(Box::new(strategy), move |ctx| p.run(ctx));
            let got = witness.lock().take();
            if got.is_some() {
                hits += 1;
            }
        }
        let _ = writeln!(
            out,
            "  race {}: {} — {c} ({hits}/{} biased runs)",
            i + 1,
            if hits > 0 {
                "CONFIRMED"
            } else {
                "not reproduced"
            },
            opts.trials
        );
    }
    Ok(CmdOutput::ok(out))
}

/// `dfz list` — the benchmark names.
pub fn cmd_list() -> String {
    let mut out = String::from("available benchmarks:\n");
    for b in BENCHMARKS {
        let _ = writeln!(out, "  {b}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_rejects_unknown_names() {
        assert!(resolve_program("figure1").is_ok());
        let err = match resolve_program("nope") {
            Err(e) => e,
            Ok(_) => panic!("'nope' must not resolve"),
        };
        assert!(err.message().contains("figure1"));
        assert_eq!(err.exit_code(), exit_code::USAGE);
        assert!(resolve_variant("trivial").is_ok());
        assert!(resolve_variant("bogus").is_err());
    }

    #[test]
    fn errors_carry_their_exit_code_class() {
        let usage = CliError::usage("bad flag");
        assert_eq!(usage.exit_code(), exit_code::USAGE);
        assert_eq!(usage.to_string(), "bad flag");
        let internal = CliError::internal("disk on fire");
        assert_eq!(internal.exit_code(), exit_code::INTERNAL_ERROR);
        assert_eq!(internal.message(), "disk on fire");
        assert_ne!(usage, internal);
    }

    #[test]
    fn phase1_command_renders_cycles() {
        let out = cmd_phase1("figure1", &CliOptions::default()).unwrap();
        assert_eq!(out.code, exit_code::CYCLE_CONFIRMED);
        assert!(
            out.text.contains("1 potential deadlock cycle"),
            "{}",
            out.text
        );
        assert!(out.text.contains("MyThread.run:16"), "{}", out.text);
    }

    #[test]
    fn phase1_json_is_parseable() {
        let opts = CliOptions {
            json: true,
            ..CliOptions::default()
        };
        let out = cmd_phase1("figure1", &opts).unwrap();
        let cycles: Vec<df_igoodlock::AbstractCycle> = serde_json::from_str(&out.text).unwrap();
        assert_eq!(cycles.len(), 1);
    }

    #[test]
    fn trace_dump_round_trips_through_offline_analysis() {
        let opts = CliOptions::default();
        let json = cmd_trace("figure1", &opts).unwrap().text;
        let out = analyze_trace_json(&json, &opts).unwrap().text;
        assert!(out.contains("1 potential cycle"), "{out}");
    }

    #[test]
    fn analyze_rejects_garbage() {
        let err = analyze_trace_json("{not json", &CliOptions::default()).unwrap_err();
        assert_eq!(err.exit_code(), exit_code::INTERNAL_ERROR);
        assert!(err.message().contains("not a trace"));
    }

    #[test]
    fn confirm_reports_verdicts() {
        let opts = CliOptions {
            trials: 4,
            ..CliOptions::default()
        };
        let out = cmd_confirm("figure1", None, &opts).unwrap();
        assert!(out.text.contains("CONFIRMED"), "{}", out.text);
        assert_eq!(out.code, exit_code::CYCLE_CONFIRMED);
        let err = cmd_confirm("figure1", Some(7), &opts).unwrap_err();
        assert!(err.message().contains("out of range"));
        assert_eq!(err.exit_code(), exit_code::USAGE);
        let none = cmd_confirm("sor", None, &opts).unwrap();
        assert!(none.text.contains("no potential"), "{}", none.text);
        assert_eq!(none.code, exit_code::NO_CYCLE_FOUND);
    }

    #[test]
    fn precision_flags_surface_verdicts_and_stay_jobs_invariant() {
        let base = CliOptions {
            trials: 6,
            feasibility: true,
            adaptive: true,
            jobs: 1,
            ..CliOptions::default()
        };
        let out = cmd_confirm("figure1", None, &base).unwrap();
        assert!(out.text.contains("CONFIRMED"), "{}", out.text);
        assert!(out.text.contains("[predicted Feasible"), "{}", out.text);
        assert!(out.text.contains("truncated"), "{}", out.text);
        let par = cmd_confirm(
            "figure1",
            None,
            &CliOptions {
                jobs: 4,
                ..base.clone()
            },
        )
        .unwrap();
        assert_eq!(out.text, par.text, "adaptive allocation drifted with jobs");
        assert_eq!(out.code, par.code);
    }

    #[test]
    fn adaptive_with_stop_on_first_style_misuse_is_a_usage_error() {
        let opts = CliOptions {
            adaptive: true,
            trial_budget: Some(0),
            ..CliOptions::default()
        };
        let err = cmd_confirm("figure1", None, &opts).unwrap_err();
        assert_eq!(err.exit_code(), exit_code::USAGE);
        assert!(err.message().contains("trial_budget"), "{err}");
    }

    #[test]
    fn jobs_do_not_change_command_output() {
        let seq = CliOptions {
            trials: 4,
            jobs: 1,
            ..CliOptions::default()
        };
        let par = CliOptions {
            jobs: 4,
            ..seq.clone()
        };
        let a = cmd_confirm("figure1", None, &seq).unwrap();
        let b = cmd_confirm("figure1", None, &par).unwrap();
        assert_eq!(a.text, b.text);
        assert_eq!(a.code, b.code);
    }

    #[test]
    fn run_exit_codes_distinguish_found_from_not_found() {
        let opts = CliOptions {
            trials: 3,
            ..CliOptions::default()
        };
        let hit = cmd_run("figure1", &opts).unwrap();
        assert_eq!(hit.code, exit_code::CYCLE_CONFIRMED, "{}", hit.text);
        let miss = cmd_run("sor", &opts).unwrap();
        assert_eq!(miss.code, exit_code::NO_CYCLE_FOUND, "{}", miss.text);
    }

    #[test]
    fn program_panic_maps_to_its_own_exit_code() {
        // Inject unconditional acquire panics so every trial dies in
        // program code; the report must map to PROGRAM_PANIC, not
        // CONFIRMED or INTERNAL_ERROR.
        use deadlock_fuzzer::runtime::FaultPlan;
        let program = resolve_program("figure1").unwrap();
        let mut cfg = Config::default()
            .with_confirm_trials(2)
            .with_trial_retries(0);
        cfg.run.fault_plan = Some(FaultPlan::new(7).with_panic_on_acquire(1.0));
        let fuzzer = DeadlockFuzzer::from_ref(program, cfg);
        let report = fuzzer.run();
        assert_eq!(report_exit_code(&report), exit_code::PROGRAM_PANIC);
    }

    #[test]
    fn exit_codes_are_distinct_and_documented() {
        let codes = [
            exit_code::CYCLE_CONFIRMED,
            exit_code::NO_CYCLE_FOUND,
            exit_code::USAGE,
            exit_code::PROGRAM_PANIC,
            exit_code::INTERNAL_ERROR,
            exit_code::LIVE_DEADLOCK,
        ];
        for (i, a) in codes.iter().enumerate() {
            for b in &codes[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn hb_flag_prunes_in_offline_analysis() {
        let opts = CliOptions::default();
        let json = cmd_trace("jigsaw", &opts).unwrap().text;
        let plain = analyze_trace_json(&json, &opts).unwrap().text;
        let hb_opts = CliOptions {
            hb: true,
            ..CliOptions::default()
        };
        let filtered = analyze_trace_json(&json, &hb_opts).unwrap().text;
        assert!(filtered.contains("pruned by happens-before"), "{filtered}");
        assert!(plain.contains("waitForRunner"));
        assert!(!filtered.contains("waitForRunner"));
    }

    #[test]
    fn list_names_everything() {
        let out = cmd_list();
        for b in BENCHMARKS {
            assert!(out.contains(b));
        }
    }

    #[test]
    fn invalid_config_is_a_usage_error() {
        let opts = CliOptions {
            trials: 0,
            ..CliOptions::default()
        };
        let err = cmd_phase1("figure1", &opts).unwrap_err();
        assert_eq!(err.exit_code(), exit_code::USAGE);
        assert!(err.message().contains("confirm_trials"), "{err}");

        let streamed_hb = CliOptions {
            stream: true,
            hb: true,
            ..CliOptions::default()
        };
        let err = cmd_phase1("figure1", &streamed_hb).unwrap_err();
        assert_eq!(err.exit_code(), exit_code::USAGE);

        let bad_fault = CliOptions {
            fault_panic: Some(1.5),
            ..CliOptions::default()
        };
        let err = cmd_run("figure1", &bad_fault).unwrap_err();
        assert_eq!(err.exit_code(), exit_code::USAGE);
    }

    /// A scratch path that dies with the test.
    struct TempPath(std::path::PathBuf);
    impl TempPath {
        fn new(name: &str) -> Self {
            TempPath(
                std::env::temp_dir().join(format!("dfz-cli-test-{}-{name}", std::process::id())),
            )
        }
    }
    impl Drop for TempPath {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    #[test]
    fn record_requires_an_output_flag() {
        let err = cmd_record("figure1", &CliOptions::default()).unwrap_err();
        assert_eq!(err.exit_code(), exit_code::USAGE);
        assert!(err.message().contains("--out"), "{err}");
    }

    #[test]
    fn record_then_analyze_matches_live_phase1() {
        let trace_path = TempPath::new("trace.jsonl");
        let relation_path = TempPath::new("relation.json");
        let opts = CliOptions {
            out: Some(trace_path.0.clone()),
            relation_out: Some(relation_path.0.clone()),
            json: true,
            ..CliOptions::default()
        };
        let recorded = cmd_record("figure1", &opts).unwrap();
        assert!(
            recorded.text.contains("trace artifact"),
            "{}",
            recorded.text
        );
        assert!(
            recorded.text.contains("relation artifact"),
            "{}",
            recorded.text
        );

        let live = cmd_phase1("figure1", &opts).unwrap();
        let content = std::fs::read(&trace_path.0).unwrap();
        let offline = cmd_analyze(&content, "trace.jsonl", &opts).unwrap();
        assert_eq!(offline.text, live.text, "recorded analysis must match live");

        let relation_content = std::fs::read(&relation_path.0).unwrap();
        let from_relation = cmd_analyze(&relation_content, "relation.json", &opts).unwrap();
        let cycles: Vec<df_igoodlock::Cycle> = serde_json::from_str(&from_relation.text).unwrap();
        assert_eq!(cycles.len(), 1, "{}", from_relation.text);
    }

    #[test]
    fn streamed_record_keeps_peak_at_zero() {
        let trace_path = TempPath::new("streamed.jsonl");
        let opts = CliOptions {
            out: Some(trace_path.0.clone()),
            stream: true,
            ..CliOptions::default()
        };
        let out = cmd_record("figure1", &opts).unwrap();
        assert!(out.text.contains("peak trace bytes: 0"), "{}", out.text);
        assert!(!out.text.contains("events streamed: 0"), "{}", out.text);

        // The streamed artifact still analyzes like a recorded one.
        let content = std::fs::read(&trace_path.0).unwrap();
        let offline = cmd_analyze(&content, "streamed.jsonl", &CliOptions::default()).unwrap();
        assert!(
            offline.text.contains("1 potential cycle"),
            "{}",
            offline.text
        );
    }

    #[test]
    fn binary_record_analyzes_byte_identically_to_jsonl() {
        let jsonl_path = TempPath::new("trace-v1.jsonl");
        let bin_path = TempPath::new("trace-v2.bin");
        let jsonl_opts = CliOptions {
            out: Some(jsonl_path.0.clone()),
            json: true,
            ..CliOptions::default()
        };
        let bin_opts = CliOptions {
            out: Some(bin_path.0.clone()),
            spill: SpillConfig::with_format(TraceFormat::Binary).with_ring(256),
            json: true,
            ..CliOptions::default()
        };
        let v1 = cmd_record("figure1", &jsonl_opts).unwrap();
        assert!(v1.text.contains("trace format: jsonl"), "{}", v1.text);
        let v2 = cmd_record("figure1", &bin_opts).unwrap();
        assert!(v2.text.contains("trace format: binary"), "{}", v2.text);
        assert!(v2.text.contains("spill backpressure waits:"), "{}", v2.text);

        let jsonl_bytes = std::fs::read(&jsonl_path.0).unwrap();
        let bin_bytes = std::fs::read(&bin_path.0).unwrap();
        assert!(bin_bytes.starts_with(&TRACE_BINARY_MAGIC));
        assert!(
            bin_bytes.len() < jsonl_bytes.len(),
            "binary ({}) must be denser than JSONL ({})",
            bin_bytes.len(),
            jsonl_bytes.len()
        );

        // Same run, either encoding: the --json analysis must be
        // byte-identical.
        let from_jsonl = cmd_analyze(&jsonl_bytes, "v1", &jsonl_opts).unwrap();
        let from_bin = cmd_analyze(&bin_bytes, "v2", &bin_opts).unwrap();
        assert_eq!(from_jsonl.text, from_bin.text);
        assert_eq!(
            from_jsonl.text,
            cmd_phase1("figure1", &jsonl_opts).unwrap().text
        );
    }

    #[test]
    fn analyze_names_path_and_frame_for_corrupt_binary_artifacts() {
        let bin_path = TempPath::new("corrupt-v2.bin");
        let opts = CliOptions {
            out: Some(bin_path.0.clone()),
            spill: SpillConfig::with_format(TraceFormat::Binary),
            ..CliOptions::default()
        };
        cmd_record("figure1", &opts).unwrap();
        let bytes = std::fs::read(&bin_path.0).unwrap();
        let plain = CliOptions::default();

        // Truncated mid-frame: usage error naming the source.
        let err = cmd_analyze(&bytes[..bytes.len() - 1], "runs/cut.bin", &plain).unwrap_err();
        assert_eq!(err.exit_code(), exit_code::USAGE);
        assert!(err.message().contains("runs/cut.bin"), "{err}");
        assert!(err.message().contains("frame"), "{err}");

        // Seal frame sliced off: reported as a truncation.
        let err = cmd_analyze(&bytes[..bytes.len() - 2], "runs/unsealed.bin", &plain).unwrap_err();
        assert_eq!(err.exit_code(), exit_code::USAGE);
        assert!(err.message().contains("truncated"), "{err}");

        // An unknown frame tag spliced in before the seal.
        let mut patched = bytes[..bytes.len() - 2].to_vec();
        patched.extend_from_slice(&[1, 99]);
        patched.extend_from_slice(&bytes[bytes.len() - 2..]);
        let err = cmd_analyze(&patched, "runs/badtag.bin", &plain).unwrap_err();
        assert_eq!(err.exit_code(), exit_code::USAGE);
        assert!(err.message().contains("frame"), "{err}");

        // Magic alone is not an artifact.
        let err = cmd_analyze(&bytes[..4], "runs/magic.bin", &plain).unwrap_err();
        assert_eq!(err.exit_code(), exit_code::USAGE);
    }

    #[test]
    fn degenerate_spill_settings_are_usage_errors() {
        let opts = CliOptions {
            spill: SpillConfig::default().with_batch_bytes(0),
            ..CliOptions::default()
        };
        let err = cmd_phase1("figure1", &opts).unwrap_err();
        assert_eq!(err.exit_code(), exit_code::USAGE);
        assert!(err.message().contains("batch_bytes"), "{err}");
        let opts = CliOptions {
            spill: SpillConfig::default().with_flush_interval(std::time::Duration::ZERO),
            ..CliOptions::default()
        };
        let err = cmd_phase1("figure1", &opts).unwrap_err();
        assert_eq!(err.exit_code(), exit_code::USAGE);
        assert!(err.message().contains("flush_interval"), "{err}");
    }

    #[test]
    fn analyze_rejects_hb_over_relation_artifacts() {
        let relation_path = TempPath::new("hb-relation.json");
        let opts = CliOptions {
            relation_out: Some(relation_path.0.clone()),
            ..CliOptions::default()
        };
        cmd_record("figure1", &opts).unwrap();
        let content = std::fs::read(&relation_path.0).unwrap();
        let err = cmd_analyze(
            &content,
            "hb-relation.json",
            &CliOptions {
                hb: true,
                ..CliOptions::default()
            },
        )
        .unwrap_err();
        assert_eq!(err.exit_code(), exit_code::USAGE);
        assert!(err.message().contains("--hb"), "{err}");
    }

    #[test]
    fn analyze_relation_writes_join_timing_metrics() {
        let relation_path = TempPath::new("timed-relation.json");
        let metrics_path = TempPath::new("relation-metrics.json");
        let record_opts = CliOptions {
            relation_out: Some(relation_path.0.clone()),
            ..CliOptions::default()
        };
        cmd_record("figure1", &record_opts).unwrap();
        let content = std::fs::read(&relation_path.0).unwrap();
        let opts = CliOptions {
            metrics_out: Some(metrics_path.0.clone()),
            jobs: 2,
            ..CliOptions::default()
        };
        let out = cmd_analyze(&content, "timed-relation.json", &opts).unwrap();
        assert!(out.text.contains("1 potential cycle"), "{}", out.text);
        let metrics =
            df_obs::Metrics::from_json(&std::fs::read_to_string(&metrics_path.0).unwrap()).unwrap();
        assert_eq!(metrics.program, "analyze-relation");
        assert!(metrics.extra.contains_key("phase1_join_ms"), "{metrics:?}");
        assert!(
            metrics.phases.iter().any(|s| s.name == "phase1_join"),
            "{metrics:?}"
        );
        assert_eq!(metrics.counters.cycles_found, 1);
        assert!(metrics.counters.dependency_edges > 0);
    }

    #[test]
    fn offline_analysis_is_jobs_invariant() {
        let trace_path = TempPath::new("jobs-trace.jsonl");
        cmd_record(
            "dining-philosophers",
            &CliOptions {
                out: Some(trace_path.0.clone()),
                ..CliOptions::default()
            },
        )
        .unwrap();
        let content = std::fs::read(&trace_path.0).unwrap();
        let analyze = |jobs| {
            let opts = CliOptions {
                json: true,
                jobs,
                ..CliOptions::default()
            };
            cmd_analyze(&content, "jobs-trace.jsonl", &opts)
                .unwrap()
                .text
        };
        let seq = analyze(1);
        for jobs in [0, 2, 4] {
            assert_eq!(seq, analyze(jobs), "jobs={jobs}");
        }
    }

    #[test]
    fn analyze_names_path_and_line_for_corrupt_artifacts() {
        let trace_path = TempPath::new("corrupt.jsonl");
        let opts = CliOptions {
            out: Some(trace_path.0.clone()),
            ..CliOptions::default()
        };
        cmd_record("figure1", &opts).unwrap();
        let content = std::fs::read_to_string(&trace_path.0).unwrap();

        // Corrupt the fourth line mid-JSON, as a crashed writer would.
        let mut lines: Vec<String> = content.lines().map(str::to_string).collect();
        let half = lines[3].len() / 2;
        lines[3].truncate(half);
        let corrupt: String = lines.iter().map(|l| format!("{l}\n")).collect();
        let err = cmd_analyze(
            corrupt.as_bytes(),
            "runs/corrupt.jsonl",
            &CliOptions::default(),
        )
        .unwrap_err();
        assert_eq!(err.exit_code(), exit_code::USAGE);
        assert!(err.message().contains("runs/corrupt.jsonl"), "{err}");
        assert!(err.message().contains("line 4"), "{err}");

        // A truncated artifact (no footer) is also a usage error naming
        // the file.
        let truncated: String = content
            .lines()
            .filter(|l| !l.starts_with("{\"Footer\""))
            .map(|l| format!("{l}\n"))
            .collect();
        let err = cmd_analyze(
            truncated.as_bytes(),
            "runs/truncated.jsonl",
            &CliOptions::default(),
        )
        .unwrap_err();
        assert_eq!(err.exit_code(), exit_code::USAGE);
        assert!(err.message().contains("runs/truncated.jsonl"), "{err}");
        assert!(err.message().contains("truncated"), "{err}");
    }
}
