//! `dfz` — DeadlockFuzzer command line.
//!
//! ```text
//! dfz list
//! dfz phase1  <benchmark> [--seed N] [--hb] [--json] [--variant V] [--stream]
//! dfz record  <benchmark> [--seed N] [--stream] --out F [--relation-out F.json]
//!             [--format jsonl|binary] [--spill-ring N]
//!             [--spill-batch-bytes N] [--spill-flush-ms N]
//! dfz trace   <benchmark> [--seed N]            # dump a trace as JSON to stdout
//! dfz analyze <artifact>  [--hb] [--variant V] [--json] [--jobs N]
//!             [--metrics-out F]                 # offline iGoodlock
//! dfz confirm <benchmark> [--cycle I] [--trials N] [--variant V] [--jobs N]
//!             [--feasibility] [--adaptive] [--trial-budget N]
//! dfz run     <benchmark> [--trials N] [--variant V] [--hb] [--jobs N]
//!             [--feasibility] [--adaptive] [--trial-budget N]
//!             [--metrics-out F] [--trace-out F] [--fault-panic P] [--fault-seed N]
//! dfz races   <benchmark> [--trials N] [--seed N]  # the RaceFuzzer checker
//! ```
//!
//! `analyze` accepts any recorded artifact: a `df-trace` binary v2
//! stream (`record --format binary`), a `df-trace` JSONL stream
//! (`record --out`), a `df-relation` JSON envelope (`record
//! --relation-out`), or the plain trace dump of `dfz trace`. A leading
//! flag implies `run`, so `dfz --benchmark figure1 --metrics-out m.json`
//! is the observability one-liner.

use df_cli::{
    cmd_analyze, cmd_confirm, cmd_list, cmd_phase1, cmd_races, cmd_record, cmd_run, cmd_trace,
    resolve_variant, CliError, CliOptions, CmdOutput,
};

fn usage() -> ! {
    eprintln!(
        "usage: dfz <list | phase1 | record | trace | analyze | confirm | run | races> [args]\n\
         a leading flag implies `run` (e.g. dfz --benchmark figure1 --metrics-out m.json)\n\
         parallelism: --jobs <n> (0 = one worker per core, 1 = sequential;\n\
         \x20    drives Phase II trial workers and the Phase I parallel join)\n\
         observability: --metrics-out <file> --trace-out <file.jsonl>\n\
         recording: --out <trace file> --relation-out <relation.json> --stream\n\
         \x20    --format <jsonl|binary> --spill-ring <frames> (0 = synchronous)\n\
         \x20    --spill-batch-bytes <n> --spill-flush-ms <n>\n\
         precision: --feasibility (score cycles from the Phase I trace)\n\
         \x20    --adaptive (feasibility-seeded adaptive trial allocation)\n\
         \x20    --trial-budget <n> (campaign-wide cap on adaptive trials)\n\
         fault injection: --fault-panic <prob> --fault-seed <n>\n\
         run `dfz list` for benchmark names\n\
         exit codes: 0 cycle confirmed / success, 1 no cycle found,\n\
         2 usage, 3 program under test panicked, 4 internal error,\n\
         5 live deadlock detected (df-lock SealAndExit handler)"
    );
    std::process::exit(df_cli::exit_code::USAGE);
}

fn main() {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.is_empty() {
        usage();
    }
    // Flags-first invocation implies the full pipeline.
    if raw[0].starts_with('-') {
        raw.insert(0, "run".to_string());
    }
    let mut args = raw.into_iter();
    let Some(command) = args.next() else { usage() };
    let mut positional: Vec<String> = Vec::new();
    let mut opts = CliOptions::default();
    let mut cycle: Option<usize> = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => {
                opts.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--trials" => {
                opts.trials = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--cycle" => {
                cycle = args.next().and_then(|v| v.parse().ok());
                if cycle.is_none() {
                    usage();
                }
            }
            "--variant" => {
                let name = args.next().unwrap_or_else(|| usage());
                match resolve_variant(&name) {
                    Ok(v) => opts.variant = v,
                    Err(e) => {
                        eprintln!("error: {e}");
                        std::process::exit(e.exit_code());
                    }
                }
            }
            "--jobs" => {
                opts.jobs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--benchmark" => {
                positional.push(args.next().unwrap_or_else(|| usage()));
            }
            "--metrics-out" => {
                opts.metrics_out = Some(args.next().unwrap_or_else(|| usage()).into());
            }
            "--trace-out" => {
                opts.trace_out = Some(args.next().unwrap_or_else(|| usage()).into());
            }
            "--fault-panic" => {
                let p: f64 = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                if !(0.0..=1.0).contains(&p) {
                    usage();
                }
                opts.fault_panic = Some(p);
            }
            "--fault-seed" => {
                opts.fault_seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--out" => {
                opts.out = Some(args.next().unwrap_or_else(|| usage()).into());
            }
            "--relation-out" => {
                opts.relation_out = Some(args.next().unwrap_or_else(|| usage()).into());
            }
            "--format" => {
                let v = args.next().unwrap_or_else(|| usage());
                match v.parse::<df_events::TraceFormat>() {
                    Ok(f) => opts.spill.format = f,
                    Err(e) => {
                        eprintln!("error: {e}");
                        std::process::exit(df_cli::exit_code::USAGE);
                    }
                }
            }
            "--spill-ring" => {
                opts.spill.ring_capacity = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--spill-batch-bytes" => {
                opts.spill.batch_bytes = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--spill-flush-ms" => {
                opts.spill.flush_interval = args
                    .next()
                    .and_then(|v| v.parse().ok().map(std::time::Duration::from_millis))
                    .unwrap_or_else(|| usage());
            }
            "--trial-budget" => {
                let budget: u32 = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                opts.trial_budget = Some(budget);
            }
            "--stream" => opts.stream = true,
            "--hb" => opts.hb = true,
            "--feasibility" => opts.feasibility = true,
            "--adaptive" => opts.adaptive = true,
            "--json" => opts.json = true,
            other if !other.starts_with('-') => positional.push(other.to_string()),
            _ => usage(),
        }
    }

    // Every command funnels into one Result<CmdOutput, CliError>, so
    // printing and exit-coding happen in exactly one place below.
    let result: Result<CmdOutput, CliError> = match command.as_str() {
        "list" => Ok(CmdOutput::ok(cmd_list())),
        "phase1" => match positional.first() {
            Some(name) => cmd_phase1(name, &opts),
            None => usage(),
        },
        "record" => match positional.first() {
            Some(name) => cmd_record(name, &opts),
            None => usage(),
        },
        "trace" => match positional.first() {
            Some(name) => cmd_trace(name, &opts),
            None => usage(),
        },
        "analyze" => match positional.first() {
            Some(path) => std::fs::read(path)
                .map_err(|e| CliError::internal(format!("cannot read {path}: {e}")))
                .and_then(|content| cmd_analyze(&content, path, &opts)),
            None => usage(),
        },
        "confirm" => match positional.first() {
            Some(name) => cmd_confirm(name, cycle.map(|c| c.saturating_sub(1)), &opts),
            None => usage(),
        },
        "run" => match positional.first() {
            Some(name) => cmd_run(name, &opts),
            None => usage(),
        },
        "races" => match positional.first() {
            Some(name) => cmd_races(name, &opts),
            None => usage(),
        },
        _ => usage(),
    };
    match result {
        Ok(out) => {
            print!("{}", out.text);
            std::process::exit(out.code);
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(e.exit_code());
        }
    }
}
