//! `dfz` — DeadlockFuzzer command line.
//!
//! ```text
//! dfz list
//! dfz phase1  <benchmark> [--seed N] [--hb] [--json] [--variant V]
//! dfz trace   <benchmark> [--seed N]            # dump a trace as JSON to stdout
//! dfz analyze <trace.json> [--hb] [--variant V] # offline iGoodlock
//! dfz confirm <benchmark> [--cycle I] [--trials N] [--variant V]
//! dfz run     <benchmark> [--trials N] [--variant V] [--hb]
//! dfz races   <benchmark> [--trials N] [--seed N]  # the RaceFuzzer checker
//! ```

use df_cli::{
    analyze_trace_json, cmd_confirm, cmd_list, cmd_phase1, cmd_races, cmd_run, cmd_trace,
    exit_code, resolve_variant, CliOptions, CmdOutput,
};

fn usage() -> ! {
    eprintln!(
        "usage: dfz <list | phase1 | trace | analyze | confirm | run | races> [args]\n\
         run `dfz list` for benchmark names\n\
         exit codes: 0 cycle confirmed / success, 1 no cycle found,\n\
         2 usage, 3 program under test panicked, 4 internal error"
    );
    std::process::exit(exit_code::USAGE);
}

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(command) = args.next() else { usage() };
    let mut positional: Vec<String> = Vec::new();
    let mut opts = CliOptions::default();
    let mut cycle: Option<usize> = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => {
                opts.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--trials" => {
                opts.trials = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--cycle" => {
                cycle = args.next().and_then(|v| v.parse().ok());
                if cycle.is_none() {
                    usage();
                }
            }
            "--variant" => {
                let name = args.next().unwrap_or_else(|| usage());
                match resolve_variant(&name) {
                    Ok(v) => opts.variant = v,
                    Err(e) => {
                        eprintln!("{e}");
                        std::process::exit(exit_code::USAGE);
                    }
                }
            }
            "--hb" => opts.hb = true,
            "--json" => opts.json = true,
            other if !other.starts_with('-') => positional.push(other.to_string()),
            _ => usage(),
        }
    }

    let result: Result<CmdOutput, String> = match command.as_str() {
        "list" => Ok(CmdOutput::ok(cmd_list())),
        "phase1" => match positional.first() {
            Some(name) => cmd_phase1(name, &opts).map(CmdOutput::ok),
            None => usage(),
        },
        "trace" => match positional.first() {
            Some(name) => cmd_trace(name, &opts).map(CmdOutput::ok),
            None => usage(),
        },
        "analyze" => match positional.first() {
            Some(path) => std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read {path}: {e}"))
                .and_then(|json| analyze_trace_json(&json, &opts))
                .map(CmdOutput::ok),
            None => usage(),
        },
        "confirm" => match positional.first() {
            Some(name) => cmd_confirm(name, cycle.map(|c| c.saturating_sub(1)), &opts),
            None => usage(),
        },
        "run" => match positional.first() {
            Some(name) => cmd_run(name, &opts),
            None => usage(),
        },
        "races" => match positional.first() {
            Some(name) => cmd_races(name, &opts).map(CmdOutput::ok),
            None => usage(),
        },
        _ => usage(),
    };
    match result {
        Ok(out) => {
            print!("{}", out.text);
            std::process::exit(out.code);
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(exit_code::INTERNAL_ERROR);
        }
    }
}
