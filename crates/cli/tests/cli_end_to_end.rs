//! End-to-end tests of the `dfz` binary: the exit-code taxonomy and the
//! observability flags, exercised through a real process spawn.

use std::path::PathBuf;
use std::process::{Command, Output};

fn dfz(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dfz"))
        .args(args)
        .output()
        .expect("dfz spawns")
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dfz-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir.join(name)
}

#[test]
fn confirmed_cycle_exits_zero_and_emits_schema_valid_metrics() {
    let metrics = scratch("figure1-metrics.json");
    let trace = scratch("figure1-trace.jsonl");
    let out = dfz(&[
        "--benchmark",
        "figure1",
        "--trials",
        "3",
        "--metrics-out",
        metrics.to_str().unwrap(),
        "--trace-out",
        trace.to_str().unwrap(),
    ]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("CONFIRMED"), "{stdout}");

    let m = df_obs::Metrics::from_json(&std::fs::read_to_string(&metrics).expect("metrics file"))
        .expect("schema-valid metrics");
    assert_eq!(m.schema, df_obs::METRICS_SCHEMA);
    assert!(m.counters.acquires_observed > 0);
    assert!(m.counters.threads_paused > 0);
    assert!(m.phases.iter().any(|p| p.name == "phase1"));
    assert!(m.phases.iter().any(|p| p.name == "phase2"));

    let t = std::fs::read_to_string(&trace).expect("trace file");
    let first = t.lines().next().expect("nonempty trace");
    assert!(first.contains("PhaseStart"), "{first}");
    assert!(t.contains("CheckRealDeadlock"), "trace records verdicts");
}

#[test]
fn deadlock_free_benchmark_exits_one() {
    let out = dfz(&["run", "sor"]);
    assert_eq!(
        out.status.code(),
        Some(1),
        "stdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn usage_errors_exit_two() {
    assert_eq!(dfz(&["frobnicate", "figure1"]).status.code(), Some(2));
    assert_eq!(dfz(&[]).status.code(), Some(2));
    // Out-of-range fault probability is a usage error, not a crash.
    assert_eq!(
        dfz(&["run", "figure1", "--fault-panic", "2.0"])
            .status
            .code(),
        Some(2)
    );
}

#[test]
fn injected_program_panic_exits_three() {
    let out = dfz(&[
        "--benchmark",
        "figure1",
        "--trials",
        "2",
        "--fault-panic",
        "1.0",
        "--fault-seed",
        "7",
    ]);
    assert_eq!(
        out.status.code(),
        Some(3),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}
