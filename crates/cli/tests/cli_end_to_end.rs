//! End-to-end tests of the `dfz` binary: the exit-code taxonomy and the
//! observability flags, exercised through a real process spawn.

use std::path::PathBuf;
use std::process::{Command, Output};

fn dfz(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dfz"))
        .args(args)
        .output()
        .expect("dfz spawns")
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dfz-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir.join(name)
}

#[test]
fn confirmed_cycle_exits_zero_and_emits_schema_valid_metrics() {
    let metrics = scratch("figure1-metrics.json");
    let trace = scratch("figure1-trace.jsonl");
    let out = dfz(&[
        "--benchmark",
        "figure1",
        "--trials",
        "3",
        "--metrics-out",
        metrics.to_str().unwrap(),
        "--trace-out",
        trace.to_str().unwrap(),
    ]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("CONFIRMED"), "{stdout}");

    let m = df_obs::Metrics::from_json(&std::fs::read_to_string(&metrics).expect("metrics file"))
        .expect("schema-valid metrics");
    assert_eq!(m.schema, df_obs::METRICS_SCHEMA);
    assert!(m.counters.acquires_observed > 0);
    assert!(m.counters.threads_paused > 0);
    assert!(m.phases.iter().any(|p| p.name == "phase1"));
    assert!(m.phases.iter().any(|p| p.name == "phase2"));

    let t = std::fs::read_to_string(&trace).expect("trace file");
    let first = t.lines().next().expect("nonempty trace");
    assert!(first.contains("PhaseStart"), "{first}");
    assert!(t.contains("CheckRealDeadlock"), "trace records verdicts");
}

#[test]
fn deadlock_free_benchmark_exits_one() {
    let out = dfz(&["run", "sor"]);
    assert_eq!(
        out.status.code(),
        Some(1),
        "stdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn usage_errors_exit_two() {
    assert_eq!(dfz(&["frobnicate", "figure1"]).status.code(), Some(2));
    assert_eq!(dfz(&[]).status.code(), Some(2));
    // Out-of-range fault probability is a usage error, not a crash.
    assert_eq!(
        dfz(&["run", "figure1", "--fault-panic", "2.0"])
            .status
            .code(),
        Some(2)
    );
}

#[test]
fn unknown_names_are_usage_errors_not_internal() {
    let out = dfz(&["run", "no-such-benchmark"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown benchmark"), "{stderr}");
    assert_eq!(
        dfz(&["run", "figure1", "--variant", "bogus"]).status.code(),
        Some(2)
    );
    assert_eq!(
        dfz(&["confirm", "figure1", "--cycle", "99"]).status.code(),
        Some(2)
    );
}

#[test]
fn parallel_jobs_reproduce_the_sequential_run() {
    let run = |jobs: &str, tag: &str| {
        let metrics = scratch(&format!("jobs{tag}-metrics.json"));
        let trace = scratch(&format!("jobs{tag}-trace.jsonl"));
        let out = dfz(&[
            "run",
            "figure1",
            "--trials",
            "4",
            "--jobs",
            jobs,
            "--metrics-out",
            metrics.to_str().unwrap(),
            "--trace-out",
            trace.to_str().unwrap(),
        ]);
        assert_eq!(
            out.status.code(),
            Some(0),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        (
            out.stdout,
            std::fs::read_to_string(&trace).expect("trace file"),
            df_obs::Metrics::from_json(&std::fs::read_to_string(&metrics).expect("metrics file"))
                .expect("schema-valid metrics"),
        )
    };
    let (stdout1, trace1, m1) = run("1", "1");
    let (stdout4, trace4, m4) = run("4", "4");
    // The verdicts, the logical trace bytes, and every campaign counter
    // must be identical — only wall-clock fields may differ (the
    // iGoodlock summary line ends with its elapsed time, so that suffix
    // is normalized away before comparing).
    let verdicts = |bytes: &[u8]| {
        String::from_utf8_lossy(bytes)
            .lines()
            .map(|l| l.split(" in ").next().unwrap_or(l).to_string())
            .collect::<Vec<_>>()
    };
    assert_eq!(verdicts(&stdout1), verdicts(&stdout4));
    assert_eq!(trace1, trace4);
    assert_eq!(m1.counters, m4.counters);
}

#[test]
fn injected_program_panic_exits_three() {
    let out = dfz(&[
        "--benchmark",
        "figure1",
        "--trials",
        "2",
        "--fault-panic",
        "1.0",
        "--fault-seed",
        "7",
    ]);
    assert_eq!(
        out.status.code(),
        Some(3),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}
