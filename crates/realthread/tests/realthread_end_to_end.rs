//! End-to-end tests: DeadlockFuzzer over real OS threads.
//!
//! The program under test must be the *same code* in the record and fuzz
//! runs (site labels identify program locations), so each test program is
//! a single function run against different sessions.

use std::sync::Arc;

use df_abstraction::AbstractionMode;
use df_events::site;
use df_igoodlock::{AbstractCycle, IGoodlockOptions};
use df_realthread::{DfMutex, FuzzConfig, FuzzOutcome, Session};

/// The Figure 1 program on real threads: t1 sleeps (long-running
/// methods), then locks (a, b); t2 locks (b, a) immediately.
fn figure1(session: &Session) {
    let a = Arc::new(DfMutex::new(session, (), site!("fig1 new a")));
    let b = Arc::new(DfMutex::new(session, (), site!("fig1 new b")));
    let (a1, b1) = (Arc::clone(&a), Arc::clone(&b));
    let t1 = session.spawn(site!("fig1 spawn t1"), "t1", move || {
        std::thread::sleep(std::time::Duration::from_millis(30));
        let ga = a1.lock(site!("t1 locks a"));
        let gb = b1.lock(site!("t1 locks b"));
        drop((gb, ga));
    });
    let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
    let t2 = session.spawn(site!("fig1 spawn t2"), "t2", move || {
        let gb = b2.lock(site!("t2 locks b"));
        let ga = a2.lock(site!("t2 locks a"));
        drop((ga, gb));
    });
    t1.join();
    t2.join();
}

fn record_figure1() -> AbstractCycle {
    let session = Session::record();
    figure1(&session);
    let report = session.analyze(&IGoodlockOptions::default());
    assert_eq!(report.cycles.len(), 1, "one (a,b) cycle");
    report.abstract_cycles(AbstractionMode::default()).remove(0)
}

#[test]
fn record_phase_predicts_figure1_cycle() {
    let cycle = record_figure1();
    assert_eq!(cycle.len(), 2);
    let text = cycle.to_string();
    assert!(text.contains("t1 locks b"), "cycle: {text}");
    assert!(text.contains("t2 locks a"), "cycle: {text}");
}

#[test]
fn fuzz_phase_creates_the_real_deadlock() {
    let cycle = record_figure1();
    let trials = 5;
    for seed in 0..trials {
        let session = Session::fuzz(FuzzConfig::new(cycle.clone()).with_seed(seed));
        figure1(&session);
        match session.finish() {
            FuzzOutcome::Deadlock(w) => assert_eq!(w.len(), 2),
            other => panic!("seed {seed}: expected deadlock, got {other:?}"),
        }
    }
}

/// A program with a consistent lock order (no deadlock possible).
fn consistent_order(session: &Session) {
    let a = Arc::new(DfMutex::new(session, (), site!("co new a")));
    let b = Arc::new(DfMutex::new(session, (), site!("co new b")));
    let mut handles = Vec::new();
    for i in 0..2 {
        let (a, b) = (Arc::clone(&a), Arc::clone(&b));
        handles.push(session.spawn(site!("co spawn"), &format!("c{i}"), move || {
            let ga = a.lock(site!("c locks a"));
            let gb = b.lock(site!("c locks b"));
            drop((gb, ga));
        }));
    }
    for h in handles {
        h.join();
    }
}

#[test]
fn fuzz_phase_completes_on_consistent_order() {
    // Feed the figure-1 cycle to a program that cannot produce it: the
    // monitor must release any pauses and the program completes.
    let cycle = record_figure1();
    let session = Session::fuzz(FuzzConfig::new(cycle));
    consistent_order(&session);
    assert_eq!(session.finish(), FuzzOutcome::Completed);
}

#[test]
fn record_phase_counts_multiple_contexts() {
    // Two different nesting sites over the same pair → two cycles, like
    // the DBCP model.
    let session = Session::record();
    let a = Arc::new(DfMutex::new(&session, (), site!("m new a")));
    let b = Arc::new(DfMutex::new(&session, (), site!("m new b")));
    let (a1, b1) = (Arc::clone(&a), Arc::clone(&b));
    let t1 = session.spawn(site!("spawn w1"), "w1", move || {
        std::thread::sleep(std::time::Duration::from_millis(20));
        {
            let ga = a1.lock(site!("w1 path1 a"));
            let gb = b1.lock(site!("w1 path1 b"));
            drop((gb, ga));
        }
        {
            let ga = a1.lock(site!("w1 path2 a"));
            let gb = b1.lock(site!("w1 path2 b"));
            drop((gb, ga));
        }
    });
    let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
    let t2 = session.spawn(site!("spawn w2"), "w2", move || {
        let gb = b2.lock(site!("w2 b"));
        let ga = a2.lock(site!("w2 a"));
        drop((ga, gb));
    });
    t1.join();
    t2.join();
    let report = session.analyze(&IGoodlockOptions::default());
    assert_eq!(report.cycles.len(), 2, "one per w1 context");
}

/// Both threads rush into opposite nesting; a barrier guarantees the
/// overlap, so the deadlock happens without any steering.
fn guaranteed_deadlock(session: &Session) {
    let a = Arc::new(DfMutex::new(session, (), site!("gd new a")));
    let b = Arc::new(DfMutex::new(session, (), site!("gd new b")));
    let barrier = Arc::new(std::sync::Barrier::new(2));
    let (a1, b1, bar1) = (Arc::clone(&a), Arc::clone(&b), Arc::clone(&barrier));
    let t1 = session.spawn(site!("gd spawn d1"), "d1", move || {
        let ga = a1.lock(site!("d1 a"));
        bar1.wait();
        let gb = b1.lock(site!("d1 b"));
        drop((gb, ga));
    });
    let (a2, b2, bar2) = (Arc::clone(&a), Arc::clone(&b), Arc::clone(&barrier));
    let t2 = session.spawn(site!("gd spawn d2"), "d2", move || {
        let gb = b2.lock(site!("d2 b"));
        bar2.wait();
        let ga = a2.lock(site!("d2 a"));
        drop((ga, gb));
    });
    t1.join();
    t2.join();
}

#[test]
fn deadlocked_threads_are_unwound_not_stuck() {
    // Even with an empty target cycle (nothing to steer), the session
    // detects the naturally-occurring deadlock, unwinds the threads and
    // the process does not hang.
    let session = Session::fuzz(FuzzConfig::new(AbstractCycle::new(vec![])));
    guaranteed_deadlock(&session);
    let outcome = session.finish();
    let w = outcome.deadlock().expect("cycle detected");
    assert_eq!(w.len(), 2);
}

#[test]
fn stats_expose_pauses() {
    let cycle = record_figure1();
    let session = Session::fuzz(FuzzConfig::new(cycle));
    figure1(&session);
    let (pauses, _thrashes, _monitor) = session.stats();
    assert!(pauses >= 1, "steering must pause at least one thread");
    assert!(session.finish().deadlock().is_some());
}

#[test]
fn noise_injection_is_a_weak_baseline() {
    // ConTest-style noise (the paper's §6 related work) rarely creates
    // Figure 1's deadlock — its sleeps "can only advise the scheduler …
    // cannot pause a thread as long as required" — while the active
    // scheduler creates it every time
    // (`fuzz_phase_creates_the_real_deadlock`). Figure 1's 30 ms prefix
    // dwarfs the ≤8 ms noise sleeps, so noise essentially never aligns
    // the threads.
    use df_realthread::NoiseConfig;
    let mut noise_hits = 0;
    let trials = 4;
    for seed in 0..trials {
        let session = Session::noise(NoiseConfig {
            seed,
            ..NoiseConfig::default()
        });
        figure1(&session);
        if session.finish().deadlock().is_some() {
            noise_hits += 1;
        }
    }
    assert!(
        noise_hits < trials,
        "noise must not be as reliable as active scheduling: {noise_hits}/{trials}"
    );
}

#[test]
fn monitor_wait_notify_handshake_on_real_threads() {
    let session = Session::record();
    let m = Arc::new(DfMutex::new(&session, Vec::<u32>::new(), site!("wn queue")));
    let m2 = Arc::clone(&m);
    let consumer = session.spawn(site!("wn spawn c"), "consumer", move || {
        let mut g = m2.lock(site!("wn c lock"));
        while g.is_empty() {
            g = g.wait(site!("wn c wait"));
        }
        assert_eq!(g.pop(), Some(7));
    });
    let m3 = Arc::clone(&m);
    let producer = session.spawn(site!("wn spawn p"), "producer", move || {
        std::thread::sleep(std::time::Duration::from_millis(15));
        let mut g = m3.lock(site!("wn p lock"));
        g.push(7);
        m3.notify(site!("wn p notify"));
        drop(g);
    });
    consumer.join();
    producer.join();
    // Wait/notify events made it into the trace.
    let trace = session.trace();
    let kinds: Vec<_> = trace.events().iter().map(|e| &e.kind).collect();
    assert!(kinds
        .iter()
        .any(|k| matches!(k, df_events::EventKind::Wait { .. })));
    assert!(kinds
        .iter()
        .any(|k| matches!(k, df_events::EventKind::Notify { .. })));
}

#[test]
fn wait_released_monitor_is_acquirable_by_others() {
    // While the consumer waits, the producer can take the same monitor —
    // proof the wait actually released it.
    let session = Session::record();
    let m = Arc::new(DfMutex::new(&session, 0u32, site!("rel monitor")));
    let m2 = Arc::clone(&m);
    let waiter = session.spawn(site!("rel spawn w"), "waiter", move || {
        let mut g = m2.lock(site!("rel w lock"));
        while *g == 0 {
            g = g.wait(site!("rel w wait"));
        }
    });
    let m3 = Arc::clone(&m);
    let setter = session.spawn(site!("rel spawn s"), "setter", move || {
        std::thread::sleep(std::time::Duration::from_millis(10));
        let mut g = m3.lock(site!("rel s lock"));
        *g = 1;
        m3.notify_all(site!("rel s notify"));
        drop(g);
    });
    waiter.join();
    setter.join();
}

#[test]
fn scopes_distinguish_loop_allocations_in_abstractions() {
    use df_abstraction::{AbstractionMode, Abstractor};
    let session = Session::record();
    let mut ids = Vec::new();
    for _ in 0..2 {
        let m = session.scope(site!("sc init"), || {
            Arc::new(DfMutex::new(&session, (), site!("sc newLock")))
        });
        ids.push(m.id());
    }
    let trace = session.trace();
    let a = Abstractor::new(AbstractionMode::ExecIndex(10));
    let abs0 = a.abs(trace.objects(), ids[0]);
    let abs1 = a.abs(trace.objects(), ids[1]);
    assert_ne!(abs0, abs1, "loop iterations differ by call-frame counter");
    let site = Abstractor::new(AbstractionMode::Site);
    assert_eq!(
        site.abs(trace.objects(), ids[0]),
        site.abs(trace.objects(), ids[1]),
        "same allocation site"
    );
}

#[test]
fn never_notified_wait_times_out_instead_of_hanging() {
    // A fuzz-mode session with a short hang timeout; the thread waits on
    // a monitor nobody notifies — a communication deadlock. The watchdog
    // must unwind it and finish() must say Timeout, not Completed.
    let mut cfg = FuzzConfig::new(AbstractCycle::new(vec![]));
    cfg.hang_timeout = std::time::Duration::from_millis(150);
    let session = Session::fuzz(cfg);
    let m = Arc::new(DfMutex::new(&session, 0u32, site!("to monitor")));
    let m2 = Arc::clone(&m);
    let waiter = session.spawn(site!("to spawn"), "waiter", move || {
        let mut g = m2.lock(site!("to lock"));
        while *g == 0 {
            g = g.wait(site!("to wait (never notified)"));
        }
    });
    waiter.join();
    assert_eq!(session.finish(), FuzzOutcome::Timeout);
}

#[test]
fn deadlock_witness_names_the_threads() {
    // Witnesses print spawn names, not just numeric thread ids.
    let cycle = record_figure1();
    let session = Session::fuzz(FuzzConfig::new(cycle));
    figure1(&session);
    let outcome = session.finish();
    let text = outcome.deadlock().expect("deadlock").to_string();
    assert!(text.contains("\"t1\""), "witness: {text}");
    assert!(text.contains("\"t2\""), "witness: {text}");
}

#[test]
fn program_panic_is_classified_not_swallowed() {
    // A thread that dies for a reason other than the session abort is a
    // program bug, not a deadlock: try_join reports it without panicking
    // the harness, and finish() classifies the session.
    let session = Session::fuzz(FuzzConfig::new(AbstractCycle::new(vec![])));
    let h = session.spawn(site!("pp spawn"), "worker", || {
        panic!("injected program bug");
    });
    let err = h.try_join().expect_err("panic surfaces as Err");
    assert!(err.contains("injected program bug"), "{err}");
    match session.finish() {
        FuzzOutcome::ProgramPanic(m) => assert!(m.contains("injected program bug"), "{m}"),
        other => panic!("expected ProgramPanic, got {other:?}"),
    }
}

#[test]
fn session_deadline_bounds_a_busy_program() {
    // The spinner makes steady progress forever, so the progress-based
    // hang watchdog never fires; the hard wall-clock deadline must end
    // the session anyway, and try_join must treat the abort as success.
    use std::time::{Duration, Instant};
    let cfg = FuzzConfig::new(AbstractCycle::new(vec![])).with_deadline(Duration::from_millis(150));
    let session = Session::fuzz(cfg);
    let m = Arc::new(DfMutex::new(&session, (), site!("dl lock")));
    let m2 = Arc::clone(&m);
    let started = Instant::now();
    let spinner = session.spawn(site!("dl spawn"), "spinner", move || loop {
        let g = m2.lock(site!("dl acquire"));
        drop(g);
    });
    spinner.try_join().expect("session abort is not a failure");
    assert!(
        started.elapsed() < Duration::from_secs(3),
        "deadline must cut the spinner short"
    );
    assert_eq!(session.finish(), FuzzOutcome::DeadlineExceeded);
}

#[test]
fn over_matching_abstraction_forces_thrashing() {
    // Under the trivial ("ignore") abstraction every acquisition matches
    // the target cycle, so the fuzzer pauses threads that can never
    // deadlock. Once every live thread sits paused, the watchdog must
    // thrash — un-pause a random victim — instead of waiting out the
    // pause timeout (the paper's motivation for counting thrashes).
    let cycle = {
        let session = Session::record();
        figure1(&session);
        let report = session.analyze(&IGoodlockOptions::default());
        report.abstract_cycles(AbstractionMode::Trivial).remove(0)
    };
    let mut cfg = FuzzConfig::new(cycle).with_mode(AbstractionMode::Trivial);
    cfg.use_context = false;
    cfg.pause_timeout = std::time::Duration::from_millis(400);
    let session = Session::fuzz(cfg);
    let a = Arc::new(DfMutex::new(&session, (), site!("th new a")));
    let b = Arc::new(DfMutex::new(&session, (), site!("th new b")));
    let b2 = Arc::clone(&b);
    let child = session.spawn(site!("th spawn"), "child", move || {
        let g = b2.lock(site!("th child b"));
        drop(g);
    });
    let g = a.lock(site!("th main a")); // main pauses here as well
    drop(g);
    child.join();
    let (_pauses, thrashes, _monitor) = session.stats();
    assert!(thrashes >= 1, "all-paused state must trigger a thrash");
    let _ = session.finish();
}

#[test]
fn fuzz_session_reports_observability_counters_and_trace() {
    let cycle = record_figure1();
    let obs = df_obs::Obs::with_memory_sink();
    let session = Session::fuzz(FuzzConfig::new(cycle).with_obs(obs.clone()));
    figure1(&session);
    let outcome = session.finish();
    assert!(outcome.deadlock().is_some(), "got {outcome:?}");
    let counters = obs.counters().snapshot();
    assert!(counters.acquires_observed >= 1, "{counters:?}");
    assert!(counters.threads_paused >= 1, "{counters:?}");
    let trace = obs.trace_contents().expect("memory sink");
    assert!(trace.contains("Pause"), "trace: {trace}");
    assert!(
        trace.contains("CheckRealDeadlock") && trace.contains("\"verdict\":true"),
        "trace: {trace}"
    );
}
