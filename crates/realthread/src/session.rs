//! The real-thread DeadlockFuzzer session: shared state, pausing,
//! thrashing and deadlock detection for OS threads.

use std::collections::HashMap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

use df_abstraction::{AbstractionMode, Abstractor};
use df_events::{EventKind, Label, ObjId, ObjKind, ThreadId, Trace};
use df_igoodlock::{igoodlock, AbstractCycle, Cycle, IGoodlockOptions, LockDependencyRelation};
use df_runtime::{DeadlockWitness, Detector, WaitForGraph, WitnessComponent};
use parking_lot::{Condvar, Mutex};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::tls;

/// Panic payload used to unwind program threads when the session aborts
/// (deadlock found or timeout).
struct RtAbort;

/// What a session does with the acquisitions it intercepts.
#[derive(Clone, Debug)]
pub enum SessionMode {
    /// Phase I: record the trace for iGoodlock.
    Record,
    /// Phase II: bias the schedule toward a target cycle.
    Fuzz(FuzzConfig),
    /// ConTest-style noise injection (the paper's §6 related work):
    /// random short sleeps before acquisitions, hoping to shake a
    /// deadlock loose. Unlike the active scheduler it "cannot pause a
    /// thread as long as required", so it serves as the baseline the
    /// paper argues against.
    Noise(NoiseConfig),
}

/// Configuration of the noise-injection baseline.
#[derive(Clone, Debug)]
pub struct NoiseConfig {
    /// RNG seed.
    pub seed: u64,
    /// Probability of injecting a sleep before an acquisition.
    pub probability: f64,
    /// Maximum injected sleep.
    pub max_sleep: Duration,
    /// Abort the session after this long without progress (a noise run
    /// that deadlocks for real must still terminate).
    pub hang_timeout: Duration,
}

impl Default for NoiseConfig {
    fn default() -> Self {
        NoiseConfig {
            seed: 0,
            probability: 0.3,
            max_sleep: Duration::from_millis(8),
            hang_timeout: Duration::from_secs(2),
        }
    }
}

impl NoiseConfig {
    /// Checks the knobs for nonsense, returning the reason a session
    /// must not be started with them. Out-of-range probabilities used to
    /// be clamped silently deep in the acquisition path; rejecting them
    /// up front keeps a typo'd `1.3` from quietly running as `1.0`.
    pub fn validate(&self) -> Result<(), String> {
        if !self.probability.is_finite() || !(0.0..=1.0).contains(&self.probability) {
            return Err(format!(
                "noise probability must be within [0, 1], got {}",
                self.probability
            ));
        }
        if self.max_sleep.is_zero() {
            return Err("noise max_sleep must be positive".to_string());
        }
        if self.hang_timeout.is_zero() {
            return Err("noise hang_timeout must be positive".to_string());
        }
        Ok(())
    }
}

/// Phase II configuration for real threads.
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    /// The target cycle (from a recorded session's [`RecordReport`]).
    pub cycle: AbstractCycle,
    /// Abstraction mode the cycle was abstracted with.
    pub mode: AbstractionMode,
    /// RNG seed for thrash victim selection.
    pub seed: u64,
    /// Honor acquisition contexts in the membership test.
    pub use_context: bool,
    /// §5 monitor: un-pause a thread paused longer than this.
    pub pause_timeout: Duration,
    /// Abort the whole session after this long without progress.
    pub hang_timeout: Duration,
    /// Hard wall-clock deadline for the whole session, enforced even
    /// while the program makes steady progress (unlike `hang_timeout`,
    /// which only fires when progress stops). `None` (the default) means
    /// unbounded. Exceeding it unwinds the program threads and
    /// [`Session::finish`] reports [`FuzzOutcome::DeadlineExceeded`].
    pub deadline: Option<Duration>,
    /// Observability handle: acquire/pause/thrash counters and the
    /// optional scheduler-decision trace for this session.
    pub obs: df_obs::Obs,
}

impl FuzzConfig {
    /// Default knobs for a target cycle (exec-indexing abstraction,
    /// contexts honored).
    pub fn new(cycle: AbstractCycle) -> Self {
        FuzzConfig {
            cycle,
            mode: AbstractionMode::default(),
            seed: 0,
            use_context: true,
            pause_timeout: Duration::from_millis(500),
            hang_timeout: Duration::from_secs(5),
            deadline: None,
            obs: df_obs::Obs::default(),
        }
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the abstraction mode.
    pub fn with_mode(mut self, mode: AbstractionMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the hard session deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Attaches an observability handle.
    pub fn with_obs(mut self, obs: df_obs::Obs) -> Self {
        self.obs = obs;
        self
    }
}

/// Terminal outcome of a fuzzing session.
#[derive(Clone, Debug, PartialEq)]
pub enum FuzzOutcome {
    /// Program finished without creating the deadlock.
    Completed,
    /// A real deadlock was created and witnessed; the program's threads
    /// were unwound instead of leaving the process stuck.
    Deadlock(DeadlockWitness),
    /// The watchdog aborted the session (no progress).
    Timeout,
    /// The session's hard wall-clock deadline
    /// ([`FuzzConfig::deadline`]) elapsed while the program was still
    /// making progress.
    DeadlineExceeded,
    /// A program thread panicked for a reason other than the session
    /// abort — a bug in the program under test, not a deadlock. Carries
    /// the panic message.
    ProgramPanic(String),
}

impl FuzzOutcome {
    /// The witness, if a deadlock was created.
    pub fn deadlock(&self) -> Option<&DeadlockWitness> {
        match self {
            FuzzOutcome::Deadlock(w) => Some(w),
            _ => None,
        }
    }

    /// Whether the session ended without a verdict about the target
    /// cycle (timed out, hit the deadline, or the program broke) — the
    /// caller may want to retry with a different seed.
    pub fn is_degraded(&self) -> bool {
        matches!(
            self,
            FuzzOutcome::Timeout | FuzzOutcome::DeadlineExceeded | FuzzOutcome::ProgramPanic(_)
        )
    }
}

/// Result of analyzing a recorded session.
#[derive(Clone, Debug)]
pub struct RecordReport {
    /// The recorded trace (owning the object table).
    pub trace: Trace,
    /// Size of the deduplicated lock dependency relation.
    pub relation_size: usize,
    /// Potential deadlock cycles.
    pub cycles: Vec<Cycle>,
}

impl RecordReport {
    /// The cycles in abstract, execution-independent form under `mode`.
    pub fn abstract_cycles(&self, mode: AbstractionMode) -> Vec<AbstractCycle> {
        let abstractor = Abstractor::new(mode);
        self.cycles
            .iter()
            .map(|c| c.abstract_with(self.trace.objects(), &abstractor))
            .collect()
    }
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum ThreadStatus {
    Running,
    /// Blocked inside an acquisition of a lock held by another thread.
    Blocked(ObjId, Label),
    /// Paused by the fuzzer just before an acquisition.
    Paused(ObjId, Label),
    Finished,
}

struct ThreadState {
    obj: ObjId,
    /// The spawn name, for human-readable witnesses.
    name: String,
    status: ThreadStatus,
    lock_stack: Vec<ObjId>,
    context_stack: Vec<Label>,
    /// Light-weight execution indexing (§2.4.2).
    call_stack: Vec<df_events::IndexFrame>,
    counters: Vec<HashMap<Label, u32>>,
    /// Pause-exemption after a thrash/monitor release.
    released: bool,
}

impl ThreadState {
    fn new(obj: ObjId, name: String) -> Self {
        ThreadState {
            obj,
            name,
            status: ThreadStatus::Running,
            lock_stack: Vec::new(),
            context_stack: Vec::new(),
            call_stack: Vec::new(),
            counters: vec![HashMap::new()],
            released: false,
        }
    }

    fn bump_counter(&mut self, site: Label) -> u32 {
        let d = self.call_stack.len();
        if self.counters.len() <= d {
            self.counters.resize_with(d + 1, HashMap::new);
        }
        let c = self.counters[d].entry(site).or_insert(0);
        *c += 1;
        *c
    }

    fn alloc_index(&mut self, site: Label) -> Vec<df_events::IndexFrame> {
        let q = self.bump_counter(site);
        let mut index = self.call_stack.clone();
        index.push(df_events::IndexFrame::new(site, q));
        index
    }

    fn enter_call(&mut self, site: Label) {
        let q = self.bump_counter(site);
        self.call_stack.push(df_events::IndexFrame::new(site, q));
        let d = self.call_stack.len();
        if self.counters.len() <= d {
            self.counters.resize_with(d + 1, HashMap::new);
        }
        self.counters[d].clear();
    }

    fn exit_call(&mut self) {
        self.call_stack.pop();
    }
}

#[derive(Default)]
struct LockCore {
    owner: Option<ThreadId>,
    /// Threads parked in `wait()` on this monitor, FIFO.
    wait_set: Vec<ThreadId>,
}

pub(crate) struct State {
    trace: Trace,
    /// Sequence number of the next event, counted even when the session
    /// does not materialize the trace, so streaming sinks observe the
    /// exact seq numbers a recorded trace would carry.
    event_seq: u64,
    threads: HashMap<ThreadId, ThreadState>,
    locks: HashMap<ObjId, LockCore>,
    next_thread: u32,
    aborting: bool,
    timed_out: bool,
    deadline_hit: bool,
    program_panic: Option<String>,
    witness: Option<DeadlockWitness>,
    progress: u64,
    paused_since: HashMap<ThreadId, Instant>,
    thrashes: u64,
    pauses: u64,
    monitor_releases: u64,
    rng: ChaCha8Rng,
}

/// Session internals shared with lock wrappers and the watchdog.
pub(crate) struct Inner {
    pub(crate) state: Mutex<State>,
    pub(crate) cond: Condvar,
    mode: SessionMode,
    /// Observability handle (from [`FuzzConfig::obs`] in fuzz mode, a
    /// no-op default otherwise).
    obs: df_obs::Obs,
    /// Streaming event observers (Phase I online analysis / spill).
    sink: df_events::SinkHandle,
    /// Whether events are appended to the in-memory trace. Streaming
    /// sessions turn this off; the object table and thread bindings are
    /// still kept (they are O(allocation sites), not O(events)).
    record_events: bool,
    /// When the session was created — the anchor for the hard deadline.
    created: Instant,
}

impl Inner {
    /// Records one event: appends it to the in-memory trace (when the
    /// session materializes one) and streams it to the attached sinks.
    /// Both happen under the state lock, so sinks observe events in
    /// trace order; sinks must not call back into the session.
    fn emit(&self, st: &mut State, thread: ThreadId, kind: EventKind) {
        let seq = st.event_seq;
        st.event_seq += 1;
        if !self.sink.is_attached() {
            if self.record_events {
                st.trace.push(thread, kind);
            }
            return;
        }
        if self.record_events {
            let pushed = st.trace.push(thread, kind.clone());
            debug_assert_eq!(pushed, seq, "trace and streamed sequences agree");
        }
        self.sink.emit(&df_events::Event::new(seq, thread, kind));
        self.obs.counters().add_events_streamed(1);
    }
}

/// A DeadlockFuzzer session over real OS threads.
///
/// See the [crate docs](crate) for the two-phase workflow.
pub struct Session {
    inner: Arc<Inner>,
}

/// Join handle for a thread spawned through [`Session::spawn`].
///
/// Unlike `std::thread::JoinHandle`, joining a thread that was unwound by
/// a session abort succeeds (the abort is control flow, not a failure);
/// genuine program panics are propagated.
pub struct JoinHandle {
    handle: std::thread::JoinHandle<()>,
}

impl JoinHandle {
    /// Waits for the thread to finish.
    ///
    /// # Panics
    ///
    /// Propagates the thread's panic if it panicked for a reason other
    /// than the session abort.
    pub fn join(self) {
        if let Err(payload) = self.handle.join() {
            panic::resume_unwind(payload);
        }
    }

    /// Waits for the thread to finish without ever panicking.
    ///
    /// A session abort counts as success (the abort is control flow, not
    /// a failure); a genuine program panic is returned as `Err` with the
    /// panic message. Harness code that must stay alive under injected
    /// faults should prefer this over [`JoinHandle::join`].
    pub fn try_join(self) -> Result<(), String> {
        match self.handle.join() {
            Ok(()) => Ok(()),
            Err(payload) if payload.downcast_ref::<RtAbort>().is_some() => Ok(()),
            Err(payload) => Err(panic_message(payload.as_ref())),
        }
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "program thread panicked".to_string())
}

impl Session {
    fn new(mode: SessionMode) -> Self {
        let obs = match &mode {
            SessionMode::Fuzz(cfg) => cfg.obs.clone(),
            _ => df_obs::Obs::default(),
        };
        Session::build(
            mode,
            df_events::SinkHandle::none(),
            true,
            obs,
            Instant::now(),
        )
    }

    fn build(
        mode: SessionMode,
        sink: df_events::SinkHandle,
        record_events: bool,
        obs: df_obs::Obs,
        created: Instant,
    ) -> Self {
        let seed = match &mode {
            SessionMode::Fuzz(cfg) => cfg.seed,
            SessionMode::Noise(cfg) => cfg.seed,
            SessionMode::Record => 0,
        };
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                trace: Trace::new(),
                event_seq: 0,
                threads: HashMap::new(),
                locks: HashMap::new(),
                next_thread: 0,
                aborting: false,
                timed_out: false,
                deadline_hit: false,
                program_panic: None,
                witness: None,
                progress: 0,
                paused_since: HashMap::new(),
                thrashes: 0,
                pauses: 0,
                monitor_releases: 0,
                rng: ChaCha8Rng::seed_from_u64(seed),
            }),
            cond: Condvar::new(),
            mode,
            obs,
            sink,
            record_events,
            created,
        });
        let session = Session { inner };
        session.register_current("main", Label::new("<main>"), Vec::new());
        if matches!(
            session.inner.mode,
            SessionMode::Fuzz(_) | SessionMode::Noise(_)
        ) {
            session.start_watchdog();
        }
        install_quiet_hook();
        session
    }

    /// Starts a Phase I (recording) session and registers the calling
    /// thread as `main`.
    pub fn record() -> Self {
        Session::new(SessionMode::Record)
    }

    /// Starts a Phase I session that records the trace *and* streams
    /// every event to `sink` in trace order as it happens.
    pub fn record_with_sink(sink: df_events::SinkHandle, obs: df_obs::Obs) -> Self {
        Session::build(SessionMode::Record, sink, true, obs, Instant::now())
    }

    /// Starts a Phase I session that streams every event to `sink`
    /// without ever materializing the event vector — the object table
    /// and thread bindings are still kept (they grow with allocation
    /// sites, not events) and are delivered to the sinks by
    /// [`Session::seal`]. Attach a [`df_igoodlock::RelationBuilder`] to
    /// run iGoodlock over an execution in O(relation) memory.
    pub fn record_streaming(sink: df_events::SinkHandle, obs: df_obs::Obs) -> Self {
        Session::build(SessionMode::Record, sink, false, obs, Instant::now())
    }

    /// Starts a Phase II (fuzzing) session targeting `config.cycle`.
    pub fn fuzz(config: FuzzConfig) -> Self {
        Session::new(SessionMode::Fuzz(config))
    }

    /// Starts a ConTest-style noise-injection session (the related-work
    /// baseline): no steering, just random sleeps before acquisitions.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`NoiseConfig::validate`] — check first
    /// when the knobs come from user input.
    pub fn noise(config: NoiseConfig) -> Self {
        if let Err(reason) = config.validate() {
            panic!("invalid NoiseConfig: {reason}");
        }
        Session::new(SessionMode::Noise(config))
    }

    fn register_current(&self, name: &str, site: Label, index: Vec<df_events::IndexFrame>) {
        let mut st = self.inner.state.lock();
        let id = ThreadId::new(st.next_thread);
        st.next_thread += 1;
        let obj = st.trace.objects_mut().create_named(
            ObjKind::Thread,
            site,
            None,
            index,
            Some(name.to_string()),
        );
        st.threads
            .insert(id, ThreadState::new(obj, name.to_string()));
        st.trace.bind_thread(id, obj);
        drop(st);
        self.inner.sink.thread_bound(id, obj);
        tls::bind(Arc::downgrade(&self.inner), id);
    }

    /// Spawns a program thread registered with this session.
    ///
    /// `site` is the spawn statement's label — the allocation site of the
    /// thread object, used by the abstractions.
    pub fn spawn<F>(&self, site: Label, name: &str, f: F) -> JoinHandle
    where
        F: FnOnce() + Send + 'static,
    {
        let inner = Arc::clone(&self.inner);
        let (child, child_obj) = {
            let me = tls::current(&Arc::downgrade(&self.inner));
            let mut st = self.inner.state.lock();
            let id = ThreadId::new(st.next_thread);
            st.next_thread += 1;
            let index = st
                .threads
                .get_mut(&me)
                .expect("registered")
                .alloc_index(site);
            let obj = st.trace.objects_mut().create_named(
                ObjKind::Thread,
                site,
                None,
                index,
                Some(name.to_string()),
            );
            st.threads
                .insert(id, ThreadState::new(obj, name.to_string()));
            st.trace.bind_thread(id, obj);
            self.inner.emit(
                &mut st,
                me,
                EventKind::Spawn {
                    child: id,
                    child_obj: obj,
                },
            );
            st.progress += 1;
            (id, obj)
        };
        self.inner.sink.thread_bound(child, child_obj);
        let handle = std::thread::Builder::new()
            .name(format!("df-{name}"))
            .spawn(move || {
                tls::bind(Arc::downgrade(&inner), child);
                {
                    let mut st = inner.state.lock();
                    inner.emit(&mut st, child, EventKind::ThreadStart);
                }
                let result = panic::catch_unwind(AssertUnwindSafe(f));
                {
                    let mut st = inner.state.lock();
                    if let Some(ts) = st.threads.get_mut(&child) {
                        ts.status = ThreadStatus::Finished;
                    }
                    if let Err(payload) = &result {
                        // Record genuine program panics (not the session
                        // abort) so `finish()` can classify the session
                        // even if the caller used `try_join`.
                        if payload.downcast_ref::<RtAbort>().is_none() && st.program_panic.is_none()
                        {
                            st.program_panic = Some(panic_message(payload.as_ref()));
                        }
                    }
                    inner.emit(&mut st, child, EventKind::ThreadExit);
                    st.progress += 1;
                    inner.cond.notify_all();
                }
                if let Err(payload) = result {
                    if payload.downcast_ref::<RtAbort>().is_none() {
                        panic::resume_unwind(payload);
                    }
                }
            })
            .expect("failed to spawn thread");
        JoinHandle { handle }
    }

    /// Seals the streaming side of the session: delivers the end-of-run
    /// notification (with the object table and thread bindings) to the
    /// attached sinks and records the in-memory trace high-water mark —
    /// zero for a [`Session::record_streaming`] session, which is the
    /// assertion behind `dfz record --stream`. Call after joining all
    /// program threads; [`Session::analyze`] calls it for you.
    pub fn seal(&self) {
        let st = self.inner.state.lock();
        self.inner
            .obs
            .counters()
            .record_peak_trace_bytes(st.trace.approx_event_bytes());
        self.inner.sink.finish(&st.trace);
    }

    /// Finishes a recording session and runs iGoodlock on the trace.
    ///
    /// Call after joining all program threads.
    pub fn analyze(&self, options: &IGoodlockOptions) -> RecordReport {
        self.seal();
        let st = self.inner.state.lock();
        let relation = LockDependencyRelation::from_trace(&st.trace);
        let cycles = igoodlock(&relation, options);
        RecordReport {
            trace: st.trace.clone(),
            relation_size: relation.len(),
            cycles,
        }
    }

    /// Finishes a fuzzing session and returns its outcome. Call after
    /// joining all program threads.
    ///
    /// Classification precedence: a witnessed deadlock beats everything
    /// (it is the verdict Phase II exists to produce), then a program
    /// panic, then the deadline, then the progress watchdog.
    pub fn finish(&self) -> FuzzOutcome {
        let mut st = self.inner.state.lock();
        st.aborting = true; // stop the watchdog
        self.inner.cond.notify_all();
        match st.witness.take() {
            Some(w) => FuzzOutcome::Deadlock(w),
            None => match st.program_panic.take() {
                Some(m) => FuzzOutcome::ProgramPanic(m),
                None if st.deadline_hit => FuzzOutcome::DeadlineExceeded,
                None if st.timed_out => FuzzOutcome::Timeout,
                None => FuzzOutcome::Completed,
            },
        }
    }

    /// Enters a method scope at call site `site` for §2.4.2 execution
    /// indexing: allocations inside `f` (locks via [`crate::DfMutex::new`],
    /// threads via [`Session::spawn`]) carry the call frame in their
    /// index, so loop iterations and distinct call paths stay
    /// distinguishable in abstractions.
    ///
    /// # Example
    ///
    /// ```
    /// use df_events::site;
    /// use df_realthread::{DfMutex, Session};
    ///
    /// let session = Session::record();
    /// let m = session.scope(site!("Service.init"), || {
    ///     DfMutex::new(&session, 0u32, site!("Service.newLock"))
    /// });
    /// drop(m);
    /// ```
    pub fn scope<R>(&self, site: Label, f: impl FnOnce() -> R) -> R {
        let me = tls::current(&Arc::downgrade(&self.inner));
        {
            let mut st = self.inner.state.lock();
            self.inner.emit(&mut st, me, EventKind::Call { site });
            if let Some(ts) = st.threads.get_mut(&me) {
                ts.enter_call(site);
            }
        }
        let r = f();
        {
            let mut st = self.inner.state.lock();
            self.inner.emit(&mut st, me, EventKind::Return);
            if let Some(ts) = st.threads.get_mut(&me) {
                ts.exit_call();
            }
        }
        r
    }

    /// Statistics: (pauses, thrashes, monitor releases).
    pub fn stats(&self) -> (u64, u64, u64) {
        let st = self.inner.state.lock();
        (st.pauses, st.thrashes, st.monitor_releases)
    }

    /// The trace recorded so far (both modes record).
    pub fn trace(&self) -> Trace {
        self.inner.state.lock().trace.clone()
    }

    pub(crate) fn inner(&self) -> &Arc<Inner> {
        &self.inner
    }

    /// The watchdog implements thrashing and the §5 monitor with real
    /// time instead of schedule points: if every live thread is blocked
    /// or paused, un-pause a random one; if a thread has been paused too
    /// long, release it; if nothing progresses for `hang_timeout`, abort.
    fn start_watchdog(&self) {
        let weak: Weak<Inner> = Arc::downgrade(&self.inner);
        let (pause_timeout, hang_timeout, deadline) = match &self.inner.mode {
            SessionMode::Fuzz(cfg) => (cfg.pause_timeout, cfg.hang_timeout, cfg.deadline),
            SessionMode::Noise(cfg) => (cfg.hang_timeout, cfg.hang_timeout, None),
            SessionMode::Record => unreachable!("watchdog only in fuzz/noise mode"),
        };
        // Adaptive backoff: pause timeouts and thrash detection need the
        // fine 5ms resolution, but only while some thread is actually
        // paused; otherwise the hang/deadline checks tolerate a coarser
        // poll, keeping the watchdog off the scheduler's back.
        let fine = Duration::from_millis(5);
        let coarse = (hang_timeout / 10).clamp(fine, Duration::from_millis(50));
        // The deadline is anchored to session creation, not to whenever
        // the watchdog thread happens to get scheduled: a slow spawn
        // under load must not silently extend the session's budget.
        let started = self.inner.created;
        std::thread::Builder::new()
            .name("df-watchdog".into())
            .spawn(move || {
                let mut last_progress = 0u64;
                let mut last_change = Instant::now();
                let mut poll = fine;
                loop {
                    std::thread::sleep(poll);
                    let Some(inner) = weak.upgrade() else { return };
                    let mut st = inner.state.lock();
                    if st.aborting {
                        return;
                    }
                    if deadline.is_some_and(|d| started.elapsed() > d) {
                        st.aborting = true;
                        st.deadline_hit = true;
                        inner.cond.notify_all();
                        return;
                    }
                    if st.progress != last_progress {
                        last_progress = st.progress;
                        last_change = Instant::now();
                    } else if last_change.elapsed() > hang_timeout {
                        st.aborting = true;
                        st.timed_out = true;
                        inner.cond.notify_all();
                        return;
                    }
                    // §5 monitor: pause timeout.
                    let mut expired: Vec<ThreadId> = st
                        .paused_since
                        .iter()
                        .filter(|&(_, at)| at.elapsed() > pause_timeout)
                        .map(|(&t, _)| t)
                        .collect();
                    expired.sort();
                    for t in expired {
                        st.paused_since.remove(&t);
                        if let Some(ts) = st.threads.get_mut(&t) {
                            ts.released = true;
                        }
                        st.monitor_releases += 1;
                        st.progress += 1;
                        if inner.obs.traces() {
                            let name = st
                                .threads
                                .get(&t)
                                .map_or_else(String::new, |ts| ts.name.clone());
                            inner.obs.emit(&df_obs::TraceEvent::Unpause {
                                step: st.progress,
                                thread: t,
                                name,
                            });
                        }
                        inner.cond.notify_all();
                    }
                    // Thrashing: every live thread blocked or paused.
                    let live: Vec<ThreadId> = st
                        .threads
                        .iter()
                        .filter(|(_, ts)| ts.status != ThreadStatus::Finished)
                        .map(|(&t, _)| t)
                        .collect();
                    let all_stuck = !live.is_empty()
                        && live.iter().all(|t| {
                            matches!(
                                st.threads[t].status,
                                ThreadStatus::Blocked(..) | ThreadStatus::Paused(..)
                            )
                        });
                    let mut paused: Vec<ThreadId> = st.paused_since.keys().copied().collect();
                    paused.sort();
                    if all_stuck && !paused.is_empty() {
                        let victim = paused[st.rng.gen_range(0..paused.len())];
                        st.paused_since.remove(&victim);
                        if let Some(ts) = st.threads.get_mut(&victim) {
                            ts.released = true;
                        }
                        st.thrashes += 1;
                        inner.obs.counters().add_thrash_events(1);
                        st.progress += 1;
                        if inner.obs.traces() {
                            let name = st
                                .threads
                                .get(&victim)
                                .map_or_else(String::new, |ts| ts.name.clone());
                            inner.obs.emit(&df_obs::TraceEvent::Thrash {
                                step: st.progress,
                                thread: victim,
                                name,
                            });
                        }
                        inner.cond.notify_all();
                    }
                    poll = if st.paused_since.is_empty() {
                        coarse
                    } else {
                        fine
                    };
                }
            })
            .expect("failed to spawn watchdog");
    }
}

/// Builds the wait-for graph over the current state (held locks + blocked
/// and paused intents + optionally the candidate's intent) and extracts a
/// witness if there is a cycle — Algorithm 4 over real threads.
fn check_cycle(
    st: &State,
    candidate: ThreadId,
    lock: ObjId,
    site: Label,
) -> Option<DeadlockWitness> {
    let mut graph = WaitForGraph::new();
    for (&t, ts) in &st.threads {
        for &held in &ts.lock_stack {
            graph.add_holds(t, held);
        }
        if t == candidate {
            graph.add_waits(t, lock);
            continue;
        }
        match ts.status {
            ThreadStatus::Blocked(l, _) | ThreadStatus::Paused(l, _) => {
                let held_by_other = st
                    .locks
                    .get(&l)
                    .and_then(|c| c.owner)
                    .map(|o| o != t)
                    .unwrap_or(false);
                if held_by_other {
                    graph.add_waits(t, l);
                }
            }
            _ => {}
        }
    }
    let cycle = graph.find_cycle()?;
    let components = cycle
        .iter()
        .map(|&t| {
            let ts = &st.threads[&t];
            let waiting_for = graph.waiting_for(t).expect("cycle thread waits");
            let blocked_site = if t == candidate {
                Some(site)
            } else {
                match ts.status {
                    ThreadStatus::Blocked(_, s) | ThreadStatus::Paused(_, s) => Some(s),
                    _ => None,
                }
            };
            let mut context = ts.context_stack.clone();
            if let Some(s) = blocked_site {
                context.push(s);
            }
            WitnessComponent::exclusive(
                t,
                ts.obj,
                Some(ts.name.clone()),
                ts.lock_stack.clone(),
                waiting_for,
                context,
            )
        })
        .collect();
    Some(DeadlockWitness {
        components,
        detected_by: Detector::Strategy,
    })
}

/// Samples the noise injector's pre-acquisition sleep: `None` when the
/// probability coin says no noise, otherwise a duration uniform over the
/// full `0..=max_sleep` range at microsecond resolution. (An earlier cut
/// truncated `max_sleep` to whole milliseconds and sampled an exclusive
/// upper bound, so sub-millisecond budgets collapsed to "never sleep at
/// all" and the configured maximum itself was never drawn.)
fn noise_sleep(rng: &mut ChaCha8Rng, cfg: &NoiseConfig) -> Option<Duration> {
    if !rng.gen_bool(cfg.probability) {
        return None;
    }
    let max_us = cfg.max_sleep.as_micros().min(u64::MAX as u128) as u64;
    Some(Duration::from_micros(rng.gen_range(0..=max_us)))
}

/// Lock acquisition: the interception point (what CalFuzzer instruments
/// at the bytecode level). Called by [`crate::DfMutex::lock`].
pub(crate) fn acquire(inner: &Arc<Inner>, lock: ObjId, site: Label) {
    let me = tls::current(&Arc::downgrade(inner));
    // Noise baseline: maybe sleep before the acquisition (outside the
    // state mutex).
    if let SessionMode::Noise(cfg) = &inner.mode {
        let sleep = {
            let mut st = inner.state.lock();
            noise_sleep(&mut st.rng, cfg)
        };
        if let Some(d) = sleep {
            std::thread::sleep(d);
        }
    }
    let mut st = inner.state.lock();
    st.progress += 1;
    // Phase II: pause if this acquisition matches a target component.
    if let SessionMode::Fuzz(cfg) = &inner.mode {
        let released = st.threads[&me].released;
        if !released {
            let abstractor = Abstractor::new(cfg.mode);
            let thread_abs = abstractor.abs(st.trace.objects(), st.threads[&me].obj);
            let lock_abs = abstractor.abs(st.trace.objects(), lock);
            let matches = if cfg.use_context {
                let mut context = st.threads[&me].context_stack.clone();
                context.push(site);
                cfg.cycle
                    .find_component(&thread_abs, &lock_abs, &context)
                    .is_some()
            } else {
                cfg.cycle
                    .components()
                    .iter()
                    .any(|c| c.thread == thread_abs && c.lock == lock_abs)
            };
            if matches {
                // checkRealDeadlock before pausing (Algorithm 3 line 11).
                let verdict = check_cycle(&st, me, lock, site);
                if inner.obs.traces() {
                    inner.obs.emit(&df_obs::TraceEvent::CheckRealDeadlock {
                        step: st.progress,
                        verdict: verdict.is_some(),
                        cycle_len: verdict.as_ref().map_or(0, |w| w.components.len()),
                    });
                }
                if let Some(w) = verdict {
                    st.witness = Some(w);
                    st.aborting = true;
                    inner.cond.notify_all();
                    drop(st);
                    panic::panic_any(RtAbort);
                }
                if inner.obs.traces() {
                    inner.obs.emit(&df_obs::TraceEvent::Pause {
                        step: st.progress,
                        thread: me,
                        name: st.threads[&me].name.clone(),
                        lock: lock_abs.to_string(),
                        site: site.to_string(),
                    });
                }
                st.threads
                    .get_mut(&me)
                    .expect("acquiring thread is registered with the session")
                    .status = ThreadStatus::Paused(lock, site);
                st.paused_since.insert(me, Instant::now());
                st.pauses += 1;
                inner.obs.counters().add_threads_paused(1);
                inner.cond.notify_all();
                while st.paused_since.contains_key(&me) && !st.aborting {
                    inner.cond.wait(&mut st);
                }
                st.threads
                    .get_mut(&me)
                    .expect("paused thread stays registered while parked")
                    .status = ThreadStatus::Running;
                if st.aborting {
                    drop(st);
                    panic::panic_any(RtAbort);
                }
            }
        }
    }
    // The acquisition proper: block (abortably) while held by another.
    loop {
        if st.aborting {
            drop(st);
            panic::panic_any(RtAbort);
        }
        let owner = st.locks.entry(lock).or_default().owner;
        match owner {
            None => break,
            Some(o) if o == me => {
                panic!("DfMutex is not re-entrant: thread already holds this lock (acquired at {site})")
            }
            Some(_) => {
                // About to block: run checkRealDeadlock (the cycle may
                // close right here).
                if let Some(w) = check_cycle(&st, me, lock, site) {
                    if inner.obs.traces() {
                        inner.obs.emit(&df_obs::TraceEvent::CheckRealDeadlock {
                            step: st.progress,
                            verdict: true,
                            cycle_len: w.components.len(),
                        });
                    }
                    st.witness = Some(w);
                    st.aborting = true;
                    inner.cond.notify_all();
                    drop(st);
                    panic::panic_any(RtAbort);
                }
                st.threads
                    .get_mut(&me)
                    .expect("blocking thread is registered with the session")
                    .status = ThreadStatus::Blocked(lock, site);
                inner.emit(&mut st, me, EventKind::blocked(lock));
                inner.cond.wait(&mut st);
                st.threads
                    .get_mut(&me)
                    .expect("blocked thread stays registered while parked")
                    .status = ThreadStatus::Running;
                inner.emit(&mut st, me, EventKind::Unblocked { lock });
            }
        }
    }
    st.locks
        .get_mut(&lock)
        .expect("lock core created by the entry() above")
        .owner = Some(me);
    let ts = st
        .threads
        .get_mut(&me)
        .expect("acquiring thread is registered with the session");
    ts.released = false; // exemption consumed by the actual acquisition
    let held = ts.lock_stack.clone();
    let mut context = ts.context_stack.clone();
    context.push(site);
    ts.lock_stack.push(lock);
    ts.context_stack.push(site);
    inner.emit(&mut st, me, EventKind::acquire(lock, site, held, context));
    inner.obs.counters().add_acquires_observed(1);
    st.progress += 1;
}

/// Lock release (from guard drop). Never panics: it may run during an
/// abort unwind.
pub(crate) fn release(inner: &Arc<Inner>, lock: ObjId, site: Label) {
    let me = tls::current(&Arc::downgrade(inner));
    let mut st = inner.state.lock();
    if let Some(core) = st.locks.get_mut(&lock) {
        if core.owner == Some(me) {
            core.owner = None;
        }
    }
    if let Some(ts) = st.threads.get_mut(&me) {
        if let Some(pos) = ts.lock_stack.iter().rposition(|&l| l == lock) {
            ts.lock_stack.remove(pos);
            ts.context_stack.remove(pos);
        }
    }
    inner.emit(&mut st, me, EventKind::release(lock, site));
    st.progress += 1;
    inner.cond.notify_all();
}

/// Java-style `Object.wait()` on a held monitor: release it, park in the
/// wait set until notified, then re-acquire (blocking plainly; the
/// re-acquisition is not a fuzz pause point). Unwinds on session abort.
pub(crate) fn monitor_wait(inner: &Arc<Inner>, lock: ObjId, site: Label) {
    let me = tls::current(&Arc::downgrade(inner));
    let mut st = inner.state.lock();
    match st.locks.get_mut(&lock) {
        Some(core) if core.owner == Some(me) => {
            core.owner = None;
            core.wait_set.push(me);
        }
        _ => panic!("wait() on a DfMutex this thread does not hold (at {site})"),
    }
    if let Some(ts) = st.threads.get_mut(&me) {
        if let Some(pos) = ts.lock_stack.iter().rposition(|&l| l == lock) {
            ts.lock_stack.remove(pos);
            ts.context_stack.remove(pos);
        }
        ts.status = ThreadStatus::Blocked(lock, site);
    }
    inner.emit(&mut st, me, EventKind::Wait { lock, site });
    st.progress += 1;
    inner.cond.notify_all();
    // Park until a notify removes us from the wait set.
    loop {
        if st.aborting {
            drop(st);
            panic::panic_any(RtAbort);
        }
        let parked = st
            .locks
            .get(&lock)
            .map(|c| c.wait_set.contains(&me))
            .unwrap_or(false);
        if !parked {
            break;
        }
        inner.cond.wait(&mut st);
    }
    // Re-acquire the monitor (plain blocking).
    loop {
        if st.aborting {
            drop(st);
            panic::panic_any(RtAbort);
        }
        let owner = st.locks.entry(lock).or_default().owner;
        match owner {
            None => break,
            Some(o) if o == me => break,
            Some(_) => inner.cond.wait(&mut st),
        }
    }
    st.locks
        .get_mut(&lock)
        .expect("lock core created by the entry() above")
        .owner = Some(me);
    if let Some(ts) = st.threads.get_mut(&me) {
        ts.status = ThreadStatus::Running;
        ts.lock_stack.push(lock);
        ts.context_stack.push(site);
    }
    st.progress += 1;
    inner.cond.notify_all();
}

/// `Object.notify()`/`notifyAll()` on a held monitor.
pub(crate) fn monitor_notify(inner: &Arc<Inner>, lock: ObjId, site: Label, all: bool) {
    let me = tls::current(&Arc::downgrade(inner));
    let mut st = inner.state.lock();
    match st.locks.get_mut(&lock) {
        Some(core) if core.owner == Some(me) => {
            if all {
                core.wait_set.clear();
            } else if !core.wait_set.is_empty() {
                core.wait_set.remove(0);
            }
        }
        _ => panic!("notify() on a DfMutex this thread does not hold (at {site})"),
    }
    inner.emit(&mut st, me, EventKind::Notify { lock, site, all });
    st.progress += 1;
    inner.cond.notify_all();
}

/// Registers a new lock object (from [`crate::DfMutex::new`]).
pub(crate) fn register_lock(inner: &Arc<Inner>, site: Label) -> ObjId {
    let me = tls::current(&Arc::downgrade(inner));
    let mut st = inner.state.lock();
    let index = st
        .threads
        .get_mut(&me)
        .expect("registered thread")
        .alloc_index(site);
    let obj = st
        .trace
        .objects_mut()
        .create(ObjKind::Lock, site, None, index);
    inner.emit(&mut st, me, EventKind::New { obj });
    st.progress += 1;
    obj
}

fn install_quiet_hook() {
    use std::sync::Once;
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<RtAbort>().is_some() {
                return;
            }
            prev(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DfMutex;
    use df_events::site;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn noise_sleep_covers_the_full_range_at_microsecond_resolution() {
        let cfg = NoiseConfig {
            probability: 1.0,
            max_sleep: Duration::from_micros(2_500),
            ..NoiseConfig::default()
        };
        let mut r = rng(7);
        let samples: Vec<Duration> = (0..4_000)
            .map(|_| noise_sleep(&mut r, &cfg).expect("probability 1.0 always sleeps"))
            .collect();
        let max = samples.iter().max().expect("non-empty");
        assert!(samples.iter().all(|d| *d <= cfg.max_sleep));
        // The old sampler truncated to whole milliseconds with an
        // exclusive bound: every draw was quantized and the top of the
        // range unreachable. At microsecond resolution the empirical max
        // must get close to the budget...
        assert!(
            *max > cfg.max_sleep.mul_f64(0.9),
            "max sample {max:?} never approaches the {:?} budget",
            cfg.max_sleep
        );
        // ...and draws must not all sit on millisecond boundaries.
        assert!(
            samples.iter().any(|d| d.subsec_micros() % 1_000 != 0),
            "samples are still millisecond-quantized"
        );
    }

    #[test]
    fn noise_sleep_honors_sub_millisecond_budgets() {
        // A 300µs budget used to collapse to `gen_range(0..1ms) = 0`:
        // the baseline silently never slept.
        let cfg = NoiseConfig {
            probability: 1.0,
            max_sleep: Duration::from_micros(300),
            ..NoiseConfig::default()
        };
        let mut r = rng(11);
        let samples: Vec<Duration> = (0..500)
            .map(|_| noise_sleep(&mut r, &cfg).expect("always sleeps"))
            .collect();
        assert!(samples.iter().all(|d| *d <= cfg.max_sleep));
        assert!(samples.iter().any(|d| !d.is_zero()));
    }

    #[test]
    fn noise_sleep_upper_bound_is_inclusive() {
        let cfg = NoiseConfig {
            probability: 1.0,
            max_sleep: Duration::from_micros(3),
            ..NoiseConfig::default()
        };
        let mut r = rng(13);
        let hit_max =
            (0..200).any(|_| noise_sleep(&mut r, &cfg).expect("always sleeps") == cfg.max_sleep);
        assert!(hit_max, "the configured maximum is never drawn");
    }

    #[test]
    fn noise_sleep_probability_zero_never_sleeps() {
        let cfg = NoiseConfig {
            probability: 0.0,
            ..NoiseConfig::default()
        };
        let mut r = rng(17);
        assert!((0..100).all(|_| noise_sleep(&mut r, &cfg).is_none()));
    }

    #[test]
    fn noise_config_validation_rejects_nonsense() {
        let bad_probability = NoiseConfig {
            probability: 1.3,
            ..NoiseConfig::default()
        };
        assert!(bad_probability.validate().is_err());
        let nan = NoiseConfig {
            probability: f64::NAN,
            ..NoiseConfig::default()
        };
        assert!(nan.validate().is_err());
        let zero_sleep = NoiseConfig {
            max_sleep: Duration::ZERO,
            ..NoiseConfig::default()
        };
        assert!(zero_sleep.validate().is_err());
        let zero_watchdog = NoiseConfig {
            hang_timeout: Duration::ZERO,
            ..NoiseConfig::default()
        };
        assert!(zero_watchdog.validate().is_err());
        assert!(NoiseConfig::default().validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid NoiseConfig")]
    fn noise_session_refuses_an_invalid_config() {
        let _ = Session::noise(NoiseConfig {
            probability: 2.0,
            ..NoiseConfig::default()
        });
    }

    #[test]
    fn deadline_is_anchored_to_session_creation_not_watchdog_spawn() {
        // Backdate the session: from the session's point of view its 1s
        // deadline expired long ago, even though the watchdog thread is
        // brand new. The regression measured the deadline from watchdog
        // spawn and would report `Completed` here.
        let created = Instant::now()
            .checked_sub(Duration::from_secs(2))
            .expect("system uptime exceeds two seconds");
        let cfg = FuzzConfig::new(AbstractCycle::new(vec![])).with_deadline(Duration::from_secs(1));
        let session = Session::build(
            SessionMode::Fuzz(cfg),
            df_events::SinkHandle::none(),
            true,
            df_obs::Obs::default(),
            created,
        );
        std::thread::sleep(Duration::from_millis(400));
        assert_eq!(session.finish(), FuzzOutcome::DeadlineExceeded);
    }

    #[derive(Default)]
    struct CapturingSink {
        events: Vec<df_events::Event>,
        bindings: Vec<(ThreadId, ObjId)>,
        finished: bool,
    }

    impl df_events::EventSink for CapturingSink {
        fn on_event(&mut self, event: &df_events::Event) {
            self.events.push(event.clone());
        }

        fn on_thread_bound(&mut self, thread: ThreadId, obj: ObjId) {
            self.bindings.push((thread, obj));
        }

        fn on_finish(&mut self, _trace: &Trace) {
            self.finished = true;
        }
    }

    fn capturing_handle() -> (Arc<std::sync::Mutex<CapturingSink>>, df_events::SinkHandle) {
        let cap = Arc::new(std::sync::Mutex::new(CapturingSink::default()));
        let handle = df_events::SinkHandle::single(cap.clone());
        (cap, handle)
    }

    /// A deterministic single-threaded locking program (no interleaving
    /// nondeterminism, so two sessions running it produce identical
    /// traces).
    fn run_locking_program(session: &Session) {
        let a = DfMutex::new(session, 0u8, site!("prog.newA"));
        let b = DfMutex::new(session, 0u8, site!("prog.newB"));
        session.scope(site!("prog.work"), || {
            let ga = a.lock(site!("prog.lockA"));
            let gb = b.lock(site!("prog.lockB"));
            drop(gb);
            drop(ga);
        });
    }

    #[test]
    fn sink_observes_the_exact_recorded_stream() {
        let (cap, handle) = capturing_handle();
        let obs = df_obs::Obs::default();
        let session = Session::record_with_sink(handle, obs.clone());
        run_locking_program(&session);
        session.seal();
        let trace = session.trace();
        let cap = cap.lock().expect("sink mutex");
        assert!(!trace.events().is_empty());
        assert_eq!(cap.events.as_slice(), trace.events());
        assert!(cap.finished);
        for (thread, obj) in trace.thread_objs() {
            assert!(cap.bindings.contains(&(thread, obj)));
        }
        let snap = obs.counters().snapshot();
        assert_eq!(snap.events_streamed, trace.events().len() as u64);
        assert_eq!(snap.peak_trace_bytes, trace.approx_event_bytes());
        assert!(snap.peak_trace_bytes > 0);
    }

    /// Regression for the sink-poisoning hazard: a sink whose callback
    /// panics mid-trial poisons its own `std::sync::Mutex`, but the
    /// fan-out handle recovers the guard — so a [`df_events::SpillSink`]
    /// sharing the handle still receives the rest of the stream and the
    /// end-of-run seal, and the panicking trial leaves an *analyzable*
    /// trace behind instead of a truncated one.
    #[test]
    fn panicking_sink_trial_still_seals_an_analyzable_spill() {
        use std::io::Write;

        /// A `Write` target the test can read back after the spill
        /// sink (which owns its writer) is done with it.
        #[derive(Clone, Default)]
        struct SharedBuf(Arc<std::sync::Mutex<Vec<u8>>>);
        impl Write for SharedBuf {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().expect("buffer mutex").extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        /// Panics on the first `Release` it sees, once.
        #[derive(Default)]
        struct ExplodingSink {
            exploded: bool,
        }
        impl df_events::EventSink for ExplodingSink {
            fn on_event(&mut self, event: &df_events::Event) {
                if !self.exploded && matches!(event.kind, EventKind::Release { .. }) {
                    self.exploded = true;
                    panic!("sink exploded on first release");
                }
            }
        }

        let buf = SharedBuf::default();
        let spill = Arc::new(std::sync::Mutex::new(
            df_events::SpillSink::new(buf.clone()).expect("start spill"),
        ));
        let exploder: Arc<std::sync::Mutex<dyn df_events::EventSink>> =
            Arc::new(std::sync::Mutex::new(ExplodingSink::default()));
        // Spill first: it must see each event before the exploder gets
        // a chance to panic the emitting thread.
        let handle = df_events::SinkHandle::single(spill.clone()).with(exploder);

        let session = Session::record_with_sink(handle, df_obs::Obs::default());
        let trial = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_locking_program(&session);
        }));
        assert!(trial.is_err(), "the exploding sink panicked the trial");

        session.seal();
        let (events, _bytes) = spill
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .close()
            .expect("panicking trial still seals the spill");
        assert!(events > 0);

        let bytes = buf.0.lock().expect("buffer mutex").clone();
        let trace = df_events::read_trace(std::io::BufReader::new(bytes.as_slice()))
            .expect("sealed spill parses as a df-trace artifact");
        assert_eq!(trace.events().len() as u64, events);
        // Both releases made it out: the one that blew up the sink and
        // the one emitted while unwinding the outer guard.
        let releases = trace
            .events()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Release { .. }))
            .count();
        assert_eq!(releases, 2);
    }

    /// The ring-buffered binary spill path survives the same panicking
    /// trial: encoded frames cross the SPSC ring to the writer thread,
    /// the seal frame lands after the panic, and the v2 artifact decodes
    /// to the same events a synchronous JSONL spill would have captured.
    #[test]
    fn panicking_trial_seals_a_ring_buffered_binary_spill() {
        use std::io::Write;

        #[derive(Clone, Default)]
        struct SharedBuf(Arc<std::sync::Mutex<Vec<u8>>>);
        impl Write for SharedBuf {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().expect("buffer mutex").extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let buf = SharedBuf::default();
        let config =
            df_events::SpillConfig::with_format(df_events::TraceFormat::Binary).with_ring(128);
        let spill = Arc::new(std::sync::Mutex::new(
            df_events::AnySpillSink::new(buf.clone(), &config).expect("start spill"),
        ));
        let handle = df_events::SinkHandle::single(spill.clone());

        let session = Session::record_with_sink(handle, df_obs::Obs::default());
        let trial = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_locking_program(&session);
            panic!("trial dies after the program ran");
        }));
        assert!(trial.is_err());

        session.seal();
        let (events, bytes_written) = spill
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .close()
            .expect("panicking trial still seals the ring spill");
        assert!(events > 0);

        let bytes = buf.0.lock().expect("buffer mutex").clone();
        assert_eq!(bytes.len() as u64, bytes_written);
        assert!(bytes.starts_with(&df_events::TRACE_BINARY_MAGIC));
        let trace = df_events::read_trace_bytes(&bytes)
            .expect("sealed ring spill parses as a df-trace v2 artifact");
        assert_eq!(trace.events().len() as u64, events);
        assert!(trace.thread_objs().count() > 0, "bindings survive the seal");
    }

    #[test]
    fn streaming_session_sees_the_same_events_at_zero_peak() {
        let (recorded_cap, recorded_handle) = capturing_handle();
        let recorded = Session::record_with_sink(recorded_handle, df_obs::Obs::default());
        run_locking_program(&recorded);
        recorded.seal();
        drop(recorded);

        let (cap, handle) = capturing_handle();
        let obs = df_obs::Obs::default();
        let session = Session::record_streaming(handle, obs.clone());
        run_locking_program(&session);
        session.seal();
        assert!(
            session.trace().events().is_empty(),
            "streaming session must not materialize the event vector"
        );
        let cap = cap.lock().expect("sink mutex");
        let recorded_cap = recorded_cap.lock().expect("sink mutex");
        assert_eq!(cap.events, recorded_cap.events);
        let snap = obs.counters().snapshot();
        assert_eq!(snap.events_streamed, cap.events.len() as u64);
        assert_eq!(snap.peak_trace_bytes, 0);
    }
}
