//! Per-OS-thread registration.

use std::cell::RefCell;
use std::sync::Weak;

use df_events::ThreadId;

use crate::session::Inner;

thread_local! {
    static CURRENT: RefCell<Option<(Weak<Inner>, ThreadId)>> = const { RefCell::new(None) };
}

/// Binds the current OS thread to `session` as virtual thread `id`,
/// replacing any previous binding (sessions are used one at a time per
/// thread).
pub(crate) fn bind(session: Weak<Inner>, id: ThreadId) {
    CURRENT.with(|c| *c.borrow_mut() = Some((session, id)));
}

/// The current thread's id within `session`.
///
/// # Panics
///
/// Panics if the thread was not registered with this session (spawn
/// threads through [`crate::Session::spawn`]).
pub(crate) fn current(session: &Weak<Inner>) -> ThreadId {
    CURRENT.with(|c| {
        let borrow = c.borrow();
        match borrow.as_ref() {
            Some((bound, id)) if Weak::ptr_eq(bound, session) => *id,
            _ => panic!(
                "this thread is not registered with the DeadlockFuzzer session; \
                 spawn program threads via Session::spawn"
            ),
        }
    })
}
