//! DeadlockFuzzer for **real** `std::thread` programs, via instrumented
//! lock wrappers.
//!
//! The virtual-thread runtime (`df-runtime`) gives the analyses total
//! schedule control, but requires programs to be written against its
//! `TCtx` API. This crate is the complementary substrate the paper's
//! Java implementation corresponds to more directly: ordinary OS threads
//! and a lock type ([`DfMutex`]) that *intercepts* acquisitions — the Rust
//! equivalent of CalFuzzer's bytecode instrumentation, since
//! `std::sync::Mutex` itself cannot be intercepted.
//!
//! A [`Session`] runs in one of two modes:
//!
//! * [`Session::record`] — Phase I: every acquisition is logged with its
//!   held-lock set and context; [`Session::analyze`] runs iGoodlock on the
//!   observed trace and returns abstract potential deadlock cycles.
//! * [`Session::fuzz`] — Phase II: a thread about to perform an
//!   acquisition matching a component of the target cycle is *paused* (on
//!   a condvar, like CalFuzzer's parked threads); `checkRealDeadlock`
//!   fires when the cycle closes. A watchdog thread implements thrashing
//!   (un-pausing a random thread when nothing can run) and the §5 pause
//!   monitor. When a deadlock is detected the session *aborts*: blocked
//!   and paused acquisitions unwind their threads instead of deadlocking
//!   the host process, so the program's threads remain joinable.
//!
//! # Example
//!
//! ```
//! use df_events::site;
//! use df_igoodlock::IGoodlockOptions;
//! use df_realthread::{DfMutex, Session};
//! use std::sync::Arc;
//!
//! // Phase I: record an execution of a two-lock program.
//! let session = Session::record();
//! let a = Arc::new(DfMutex::new(&session, 0u32, site!("new a")));
//! let b = Arc::new(DfMutex::new(&session, 0u32, site!("new b")));
//! let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
//! let h = session.spawn(site!("spawn t"), "t", move || {
//!     let ga = a2.lock(site!("t locks a"));
//!     let gb = b2.lock(site!("t locks b"));
//!     drop((gb, ga));
//! });
//! h.join();
//! let gb = b.lock(site!("main locks b"));
//! let ga = a.lock(site!("main locks a"));
//! drop((ga, gb));
//! let report = session.analyze(&IGoodlockOptions::default());
//! assert_eq!(report.cycles.len(), 1); // opposite lock orders
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod mutex;
mod session;
mod tls;

pub use mutex::{DfMutex, DfMutexGuard};
pub use session::{
    FuzzConfig, FuzzOutcome, JoinHandle, NoiseConfig, RecordReport, Session, SessionMode,
};
