//! The instrumented mutex.

use std::sync::Arc;

use df_events::{Label, ObjId};
use parking_lot::{Mutex, MutexGuard};

use crate::session::{self, Inner, Session};

/// An instrumented mutex — the interception point DeadlockFuzzer needs,
/// since `std::sync::Mutex` cannot be hooked.
///
/// Semantics: a non-re-entrant mutual-exclusion lock protecting `T`.
/// Every acquisition reports to the owning [`Session`]: in record mode it
/// is logged for iGoodlock; in fuzz mode the acquiring thread may be
/// paused (to steer the program into a target deadlock cycle), and
/// acquisitions that would close a lock cycle are detected and reported
/// instead of wedging the process.
///
/// # Panics
///
/// Re-acquiring a `DfMutex` the current thread already holds panics with
/// a diagnostic (with `std::sync::Mutex` this would be an undetected
/// self-deadlock).
///
/// # Example
///
/// ```
/// use df_events::site;
/// use df_realthread::{DfMutex, Session};
///
/// let session = Session::record();
/// let m = DfMutex::new(&session, 41, site!());
/// *m.lock(site!()) += 1;
/// assert_eq!(*m.lock(site!()), 42);
/// ```
pub struct DfMutex<T> {
    session: Arc<Inner>,
    id: ObjId,
    data: Mutex<T>,
}

impl<T> DfMutex<T> {
    /// Creates an instrumented mutex owned by `session`, allocated at
    /// `site` (the abstraction's allocation site).
    pub fn new(session: &Session, data: T, site: Label) -> Self {
        let inner = Arc::clone(session.inner());
        let id = session::register_lock(&inner, site);
        DfMutex {
            session: inner,
            id,
            data: Mutex::new(data),
        }
    }

    /// The lock's dynamic object id within its session.
    pub fn id(&self) -> ObjId {
        self.id
    }

    /// Acquires the lock at `site`, blocking while another thread holds
    /// it.
    ///
    /// # Panics
    ///
    /// * if the current thread already holds the lock (non-re-entrant);
    /// * with an internal abort payload if the session detected a
    ///   deadlock or timed out while this thread was blocked or paused —
    ///   the session's thread wrapper catches that payload.
    pub fn lock(&self, site: Label) -> DfMutexGuard<'_, T> {
        session::acquire(&self.session, self.id, site);
        let data = self
            .data
            .try_lock()
            .expect("session granted ownership, data lock must be free");
        DfMutexGuard {
            mutex: self,
            site,
            data: Some(data),
            defused: false,
        }
    }

    /// Wakes one thread parked in this monitor's wait set (FIFO), like
    /// `Object.notify()`.
    ///
    /// # Panics
    ///
    /// Panics (as a program error) if this thread does not hold the lock.
    pub fn notify(&self, site: Label) {
        session::monitor_notify(&self.session, self.id, site, false);
    }

    /// Wakes every thread parked in this monitor's wait set, like
    /// `Object.notifyAll()`.
    ///
    /// # Panics
    ///
    /// Panics (as a program error) if this thread does not hold the lock.
    pub fn notify_all(&self, site: Label) {
        session::monitor_notify(&self.session, self.id, site, true);
    }
}

/// RAII guard for [`DfMutex`]; releases the lock (and reports the release
/// to the session) on drop.
pub struct DfMutexGuard<'a, T> {
    mutex: &'a DfMutex<T>,
    site: Label,
    data: Option<MutexGuard<'a, T>>,
    /// Set when ownership was handed off (e.g. into a `wait`): drop must
    /// not release again.
    defused: bool,
}

impl<'a, T> DfMutexGuard<'a, T> {
    /// Java-style `Object.wait()`: releases the monitor entirely, parks
    /// this thread in its wait set until [`DfMutex::notify`] /
    /// [`DfMutex::notify_all`], re-acquires it, and returns a fresh
    /// guard. Use in a predicate loop:
    ///
    /// ```
    /// # use df_events::site;
    /// # use df_realthread::{DfMutex, Session};
    /// # let session = Session::record();
    /// # let m = DfMutex::new(&session, 1u32, site!());
    /// let mut g = m.lock(site!());
    /// while *g == 0 {
    ///     g = g.wait(site!());
    /// }
    /// # drop(g);
    /// ```
    pub fn wait(mut self, site: Label) -> DfMutexGuard<'a, T> {
        let mutex = self.mutex;
        // Hand the monitor to the session's wait protocol; this guard
        // must not release on drop.
        self.data.take();
        self.defused = true;
        session::monitor_wait(&mutex.session, mutex.id, site);
        let data = mutex
            .data
            .try_lock()
            .expect("monitor reacquired, data lock must be free");
        DfMutexGuard {
            mutex,
            site,
            data: Some(data),
            defused: false,
        }
    }
}

impl<T> std::ops::Deref for DfMutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.data.as_ref().expect("guard live")
    }
}

impl<T> std::ops::DerefMut for DfMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.data.as_mut().expect("guard live")
    }
}

impl<T> Drop for DfMutexGuard<'_, T> {
    fn drop(&mut self) {
        if self.defused {
            return;
        }
        // Release the data lock first so the next owner can take it.
        self.data.take();
        session::release(&self.mutex.session, self.mutex.id, self.site);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_events::site;

    #[test]
    fn lock_guards_data() {
        let session = Session::record();
        let m = DfMutex::new(&session, vec![1, 2], site!());
        m.lock(site!()).push(3);
        assert_eq!(*m.lock(site!()), vec![1, 2, 3]);
    }

    #[test]
    fn reentry_panics_with_diagnostic() {
        let session = Session::record();
        let m = DfMutex::new(&session, (), site!());
        let _g = m.lock(site!());
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g2 = m.lock(site!());
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("not re-entrant"), "got: {msg}");
    }
}
