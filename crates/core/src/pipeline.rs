//! The two-phase DeadlockFuzzer pipeline.

use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;

use df_abstraction::Abstractor;
use df_fuzzer::{ActiveConfig, ActiveStrategy, SimpleRandomChecker};
use df_igoodlock::{
    igoodlock_parallel, AbstractComponent, AbstractCycle, FeasibilityAnalysis, FeasibilityVerdict,
    HbFilter, LockDependencyRelation, RelationBuilder,
};
use df_runtime::{Outcome, RunResult, VirtualRuntime};

use crate::allocate::{allocate_trials, trials_saved, BatchResult, CycleBudget};
use crate::config::Config;
use crate::error::DfError;
use crate::pool::TrialPool;
use crate::program::{Program, ProgramRef};
use crate::report::{
    CycleConfirmation, Phase1Report, Phase2Report, ProbabilityReport, Report, TrialOutcome,
    TrialOutcomes,
};

/// Offset between the seeds of successive retry attempts of one trial.
/// Chosen large and odd so rotated seeds never collide with the dense
/// `phase2_seed_base + trial` sequence of first attempts.
const RETRY_SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// The distilled result of one confirmation trial as it crosses back
/// from a pool worker: the final attempt's classification plus the
/// worker's observability shard (absorbed in trial order by the
/// aggregator). The full [`Phase2Report`] (with its trace) stays on the
/// worker — campaigns only need the tallies.
struct TrialRun {
    outcome: TrialOutcome,
    deadlocked: bool,
    matched: bool,
    thrashes: u64,
    pauses: u64,
    yields: u64,
    steps: u64,
    duration: std::time::Duration,
    retries: u32,
    shard: df_obs::Obs,
}

/// Folds a campaign's trial results into a [`ProbabilityReport`],
/// absorbing each trial's observability shard into `obs` in trial order.
/// `requested` is the per-cycle trial ceiling the campaign aimed for and
/// `stopped_early` whether the campaign was allowed to cut itself short
/// (stop-on-first or an adaptive allocation) — together they decide the
/// report's `truncated` flag, the marker that keeps biased estimates out
/// of downstream consumers.
///
/// # Errors
///
/// Returns [`DfError::EmptyCampaign`] when `results` is empty: with zero
/// trials every per-trial average is a division by zero, so no estimate
/// exists.
/// Best-effort text of a caught confirmation panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "confirmation panicked".to_string())
}

fn aggregate_trials(
    results: Vec<TrialRun>,
    requested: u32,
    stopped_early: bool,
    obs: &df_obs::Obs,
) -> Result<ProbabilityReport, DfError> {
    if results.is_empty() {
        return Err(DfError::EmptyCampaign);
    }
    let ran = u32::try_from(results.len()).expect("ran <= trials");
    let mut deadlocks = 0u32;
    let mut matched = 0u32;
    let mut thrashes = 0u64;
    let mut pauses = 0u64;
    let mut yields = 0u64;
    let mut steps = 0u64;
    let mut total_duration = std::time::Duration::ZERO;
    let mut outcomes = TrialOutcomes::default();
    let mut retries = 0u32;
    for t in &results {
        obs.absorb(&t.shard);
        outcomes.record(t.outcome);
        if t.deadlocked {
            deadlocks += 1;
        }
        if t.matched {
            matched += 1;
        }
        thrashes += t.thrashes;
        pauses += t.pauses;
        yields += t.yields;
        steps += t.steps;
        total_duration += t.duration;
        retries += t.retries;
    }
    Ok(ProbabilityReport {
        trials: ran,
        deadlocks,
        matched,
        probability: f64::from(matched) / f64::from(ran),
        deadlock_rate: f64::from(deadlocks) / f64::from(ran),
        truncated: stopped_early && ran < requested,
        avg_thrashes: thrashes as f64 / f64::from(ran),
        avg_pauses: pauses as f64 / f64::from(ran),
        avg_yields: yields as f64 / f64::from(ran),
        avg_steps: steps as f64 / f64::from(ran),
        avg_duration: total_duration / ran,
        outcomes,
        retries,
    })
}

/// The DeadlockFuzzer tool: Phase I prediction + Phase II active random
/// confirmation for one program.
///
/// # Example
///
/// ```
/// use deadlock_fuzzer::{Config, DeadlockFuzzer};
/// use df_events::site;
/// use df_runtime::TCtx;
///
/// // A program with a consistent lock order: no deadlock predicted.
/// let fuzzer = DeadlockFuzzer::with_config(
///     |ctx: &TCtx| {
///         let a = ctx.new_lock(site!());
///         let _g = ctx.lock(&a, site!());
///     },
///     Config::default(),
/// );
/// let report = fuzzer.run();
/// assert_eq!(report.potential_count(), 0);
/// ```
pub struct DeadlockFuzzer {
    program: ProgramRef,
    config: Config,
}

impl DeadlockFuzzer {
    /// Creates a fuzzer with the default configuration (the paper's best
    /// variant: execution indexing + context + yields).
    pub fn new(program: impl Program) -> Self {
        Self::with_config(program, Config::default())
    }

    /// Creates a fuzzer with an explicit configuration.
    pub fn with_config(program: impl Program, config: Config) -> Self {
        DeadlockFuzzer {
            program: Arc::new(program),
            config,
        }
    }

    /// Creates a fuzzer from an already-shared program handle.
    pub fn from_ref(program: ProgramRef, config: Config) -> Self {
        DeadlockFuzzer { program, config }
    }

    /// The configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// Runs the program once under `strategy`. `seed` doubles as the
    /// program seed ([`df_runtime::RunConfig::program_seed`]): program
    /// models that vary run to run derive the variation from it, which
    /// keeps every (strategy seed, program) pair replayable — the
    /// property that makes parallel campaigns order-independent.
    fn execute(&self, strategy: Box<dyn df_runtime::Strategy>, seed: u64) -> RunResult {
        let program = Arc::clone(&self.program);
        let mut run = self.config.run.clone().with_program_seed(seed);
        if run.deadline.is_none() {
            run.deadline = self.config.trial_deadline;
        }
        VirtualRuntime::new(run).run(strategy, move |ctx| program.run(ctx))
    }

    /// Runs the program once under the Phase I simple random scheduler
    /// (seeded with [`Config::phase1_seed`]) with `sink` attached —
    /// the engine behind `dfz record`. With `record_trace` false the
    /// event vector is never materialized: the sinks (e.g. a
    /// [`df_events::SpillSink`] writing the on-disk trace format, or a
    /// [`RelationBuilder`]) are the only consumers of the stream, and
    /// the returned result's trace carries just the object table and
    /// thread bindings.
    pub fn observe(&self, sink: df_events::SinkHandle, record_trace: bool) -> RunResult {
        let program = Arc::clone(&self.program);
        let mut run = self
            .config
            .run
            .clone()
            .with_program_seed(self.config.phase1_seed)
            .with_record_trace(record_trace)
            .with_event_sink(sink);
        if run.deadline.is_none() {
            run.deadline = self.config.trial_deadline;
        }
        VirtualRuntime::new(run).run(
            Box::new(SimpleRandomChecker::with_seed(self.config.phase1_seed)),
            move |ctx| program.run(ctx),
        )
    }

    /// A clone of this fuzzer reporting into `obs` instead of the
    /// configured handle — how one parallel worker gets a private
    /// observability shard (the virtual-runtime config, including any
    /// fault plan, is cloned per worker along the way).
    fn with_obs_shard(&self, obs: df_obs::Obs) -> DeadlockFuzzer {
        DeadlockFuzzer {
            program: Arc::clone(&self.program),
            config: self.config.clone().with_obs(obs),
        }
    }

    /// The trial pool sized by [`Config::jobs`].
    fn pool(&self) -> TrialPool {
        TrialPool::new(self.config.jobs)
    }

    /// Phase I: observe one execution under the simple random scheduler
    /// (Algorithm 2), compute the lock dependency relation, and run
    /// iGoodlock (Algorithm 1).
    ///
    /// With [`Config::stream_phase1`] the relation is built online by a
    /// [`df_igoodlock::RelationBuilder`] attached to the runtime as an
    /// event sink, and the event vector is never materialized; the
    /// builder is the same code the offline path delegates to, so the
    /// report's cycles are identical either way.
    pub fn phase1(&self) -> Phase1Report {
        if self.config.stream_phase1 {
            return self.phase1_streamed();
        }
        let start = Instant::now();
        let obs = self.config.obs().clone();
        obs.emit(&df_obs::TraceEvent::PhaseStart {
            phase: "phase1".to_string(),
        });
        let result = self.execute(
            Box::new(SimpleRandomChecker::with_seed(self.config.phase1_seed)),
            self.config.phase1_seed,
        );
        let relation = LockDependencyRelation::from_trace(&result.trace);
        let hb = self
            .config
            .hb_filter
            .then(|| HbFilter::from_trace(&result.trace));
        let (cycles, stats, pstats) = igoodlock_parallel(
            &relation,
            hb.as_ref(),
            &self.config.igoodlock,
            self.config.phase1_jobs,
        );
        let abstractor = Abstractor::new(self.config.mode);
        let abstract_cycles = cycles
            .iter()
            .map(|c| c.abstract_with(result.trace.objects(), &abstractor))
            .collect();
        let feasibility = if self.config.feasibility {
            FeasibilityAnalysis::new(&result.trace, &relation).score_cycles(&cycles)
        } else {
            Vec::new()
        };
        obs.counters().add_dependency_edges(relation.len() as u64);
        obs.counters().add_cycles_found(cycles.len() as u64);
        obs.counters()
            .add_join_candidates_examined(stats.join_candidates_examined);
        obs.counters().add_join_chains_built(stats.chains_built);
        obs.counters()
            .add_join_tasks_executed(pstats.tasks_executed);
        obs.counters().add_join_steal_waits(pstats.steal_waits);
        obs.timings().record("phase1", start.elapsed());
        obs.emit(&df_obs::TraceEvent::PhaseEnd {
            phase: "phase1".to_string(),
        });
        Phase1Report {
            cycles,
            abstract_cycles,
            feasibility,
            stats,
            relation_size: relation.len(),
            acquires_observed: relation.raw_count,
            duration: start.elapsed(),
            run_outcome: result.outcome,
            trace: result.trace,
        }
    }

    /// The streaming Phase I path: run once with `record_trace` off and
    /// a [`RelationBuilder`] sink attached, then run iGoodlock over the
    /// incrementally built relation. The returned report's trace is
    /// empty of events (it still owns the object table the abstractions
    /// need); [`Config::hb_filter`] cannot apply here — its vector
    /// clocks need the full trace — and [`Config::validate`] rejects the
    /// combination up front.
    fn phase1_streamed(&self) -> Phase1Report {
        debug_assert!(
            !self.config.hb_filter,
            "validate() rejects stream_phase1 + hb_filter"
        );
        let start = Instant::now();
        let obs = self.config.obs().clone();
        obs.emit(&df_obs::TraceEvent::PhaseStart {
            phase: "phase1".to_string(),
        });
        let builder = Arc::new(std::sync::Mutex::new(RelationBuilder::new()));
        let program = Arc::clone(&self.program);
        let mut run = self
            .config
            .run
            .clone()
            .with_program_seed(self.config.phase1_seed)
            .with_record_trace(false)
            .with_event_sink(df_events::SinkHandle::single(builder.clone()));
        if run.deadline.is_none() {
            run.deadline = self.config.trial_deadline;
        }
        let result = VirtualRuntime::new(run).run(
            Box::new(SimpleRandomChecker::with_seed(self.config.phase1_seed)),
            move |ctx| program.run(ctx),
        );
        let relation = builder.lock().expect("relation builder sink").take();
        let (cycles, stats, pstats) = igoodlock_parallel(
            &relation,
            None,
            &self.config.igoodlock,
            self.config.phase1_jobs,
        );
        let abstractor = Abstractor::new(self.config.mode);
        let abstract_cycles = cycles
            .iter()
            .map(|c| c.abstract_with(result.trace.objects(), &abstractor))
            .collect();
        obs.counters().add_dependency_edges(relation.len() as u64);
        obs.counters().add_cycles_found(cycles.len() as u64);
        obs.counters()
            .add_join_candidates_examined(stats.join_candidates_examined);
        obs.counters().add_join_chains_built(stats.chains_built);
        obs.counters()
            .add_join_tasks_executed(pstats.tasks_executed);
        obs.counters().add_join_steal_waits(pstats.steal_waits);
        obs.timings().record("phase1", start.elapsed());
        obs.emit(&df_obs::TraceEvent::PhaseEnd {
            phase: "phase1".to_string(),
        });
        Phase1Report {
            cycles,
            abstract_cycles,
            // Streaming discards the event timeline the feasibility
            // analysis scores from, so every cycle would come back
            // `Unknown`; report none instead of noise.
            feasibility: Vec::new(),
            stats,
            relation_size: relation.len(),
            acquires_observed: relation.raw_count,
            duration: start.elapsed(),
            run_outcome: result.outcome,
            trace: result.trace,
        }
    }

    /// Phase II: one active-random execution biased toward `cycle`
    /// (Algorithm 3) with the given seed.
    pub fn phase2(&self, cycle: &AbstractCycle, seed: u64) -> Phase2Report {
        let start = Instant::now();
        let active = ActiveConfig {
            cycle: cycle.clone(),
            mode: self.config.mode,
            seed,
            use_context: self.config.use_context,
            yield_optimization: self.config.yield_optimization,
            pause_budget: self.config.pause_budget,
            yield_budget: self.config.yield_budget,
            obs: self.config.obs().clone(),
        };
        let result = self.execute(Box::new(ActiveStrategy::new(active)), seed);
        let witness = result.outcome.deadlock().cloned();
        let matched_target = witness
            .as_ref()
            .map(|w| {
                let abstractor = Abstractor::new(self.config.mode);
                let witness_cycle = AbstractCycle::new(
                    w.components
                        .iter()
                        .map(|c| AbstractComponent {
                            thread: abstractor.abs(result.trace.objects(), c.thread_obj),
                            lock: abstractor.abs(result.trace.objects(), c.waiting_for),
                            context: c.context.clone(),
                            mode: c.waiting_mode,
                        })
                        .collect(),
                );
                cycle.matches(&witness_cycle)
            })
            .unwrap_or(false);
        self.config
            .obs()
            .timings()
            .record("phase2", start.elapsed());
        Phase2Report {
            outcome: result.outcome,
            witness,
            matched_target,
            thrashes: result.stats.thrashes,
            pauses: result.stats.pauses,
            yields: result.stats.yields,
            steps: result.steps,
            duration: start.elapsed(),
            trace: result.trace,
        }
    }

    /// Runs `trials` Phase II executions for `cycle` (seeds
    /// `phase2_seed_base..phase2_seed_base + trials`) and aggregates the
    /// empirical reproduction probability — Table 1 columns 8–10.
    ///
    /// Trials fan out across [`Config::jobs`] workers through a
    /// [`TrialPool`]; each keeps its deterministic index-based seed and
    /// records into a private observability shard that is folded back
    /// in trial order, so any `jobs` value yields the same report (and
    /// the same trace bytes) modulo wall-clock fields.
    ///
    /// Each trial is classified into a [`crate::TrialOutcome`]; trials that
    /// end without a verdict (program panic, timeout, internal error) are
    /// retried up to [`Config::trial_retries`] times with a rotated seed,
    /// and the final attempt's outcome is what counts. With
    /// [`Config::stop_on_first`], the campaign reports exactly the trials
    /// up to and including the first one that matched the target —
    /// in-flight later trials are cancelled and never tallied.
    ///
    /// # Errors
    ///
    /// Returns [`DfError::InvalidConfig`] when `trials` is zero.
    pub fn estimate_probability(
        &self,
        cycle: &AbstractCycle,
        trials: u32,
    ) -> Result<ProbabilityReport, DfError> {
        if trials == 0 {
            return Err(DfError::InvalidConfig(
                "at least one trial required".to_string(),
            ));
        }
        let obs = self.config.obs().clone();
        let results = self.pool().run_trials(
            trials,
            |i| self.run_confirmation_trial(cycle, i, &obs),
            |t| self.config.stop_on_first && t.matched,
        );
        aggregate_trials(results, trials, self.config.stop_on_first, &obs)
    }

    /// One confirmation trial (`phase2` plus the bounded seed-rotating
    /// retry loop), recording into a private shard of `obs` so trials on
    /// different workers never interleave their counters or trace lines.
    fn run_confirmation_trial(
        &self,
        cycle: &AbstractCycle,
        trial: u32,
        obs: &df_obs::Obs,
    ) -> TrialRun {
        let shard = obs.fork_shard();
        let runner = self.with_obs_shard(shard.clone());
        let base_seed = self.config.phase2_seed_base + u64::from(trial);
        let mut attempt = 0u32;
        let r = loop {
            let seed = base_seed.wrapping_add(u64::from(attempt).wrapping_mul(RETRY_SEED_STRIDE));
            let r = runner.phase2(cycle, seed);
            if r.trial_outcome().is_retryable() && attempt < self.config.trial_retries {
                shard.counters().add_trial_retries(1);
                shard.emit(&df_obs::TraceEvent::TrialRetry {
                    trial,
                    attempt,
                    outcome: r.trial_outcome().to_string(),
                });
                attempt += 1;
                continue;
            }
            break r;
        };
        TrialRun {
            outcome: r.trial_outcome(),
            deadlocked: r.deadlocked(),
            matched: r.matched_target,
            thrashes: r.thrashes,
            pauses: r.pauses,
            yields: r.yields,
            steps: r.steps,
            duration: r.duration,
            retries: attempt,
            shard,
        }
    }

    /// The full tool: Phase I, then Phase II confirmation of every
    /// reported cycle via [`DeadlockFuzzer::confirm_all`].
    ///
    /// `run` never panics on a failed confirmation: each cycle's campaign
    /// is isolated, and an error or panic while confirming one cycle is
    /// recorded in that cycle's [`CycleConfirmation::error`] while the
    /// remaining cycles are still confirmed.
    pub fn run(&self) -> Report {
        let phase1 = self.phase1();
        let confirmations = self.confirm_all(&phase1);
        Report {
            program: self.program.name().to_string(),
            phase1,
            confirmations,
        }
    }

    /// Phase II confirmation of every cycle in `phase1`.
    ///
    /// With [`Config::adaptive_trials`] off, every cycle gets a uniform
    /// campaign of [`Config::confirm_trials`] trials. With it on, trials
    /// are handed out by the deterministic bandit loop of
    /// [`crate::allocate_trials`], seeded from the Phase I feasibility
    /// scores: `Infeasible` cycles are pruned outright, hot cycles are
    /// probed first and retired at their first match, and an optional
    /// [`Config::trial_budget`] caps the campaign-wide spend. Either way
    /// the trial at index `i` of a cycle uses seed
    /// `phase2_seed_base + i`, so adaptive campaigns confirm exactly the
    /// cycles a uniform (uncapped) campaign would, and the allocation is
    /// identical at any [`Config::jobs`] value.
    pub fn confirm_all(&self, phase1: &Phase1Report) -> Vec<CycleConfirmation> {
        if self.config.adaptive_trials {
            self.confirm_all_adaptive(phase1)
        } else {
            phase1
                .abstract_cycles
                .iter()
                .enumerate()
                .map(|(i, cycle)| self.confirm_cycle(i, cycle, phase1.feasibility.get(i).cloned()))
                .collect()
        }
    }

    /// The adaptive confirmation campaign behind
    /// [`DeadlockFuzzer::confirm_all`]. The allocator itself is pure
    /// sequential logic; each batch it requests runs through the trial
    /// pool with a stop-at-first-match predicate, whose deterministic
    /// sequential-prefix semantics keep the whole allocation
    /// jobs-invariant.
    fn confirm_all_adaptive(&self, phase1: &Phase1Report) -> Vec<CycleConfirmation> {
        let obs = self.config.obs().clone();
        let cycles = &phase1.abstract_cycles;
        let budgets: Vec<CycleBudget> = (0..cycles.len())
            .map(|i| match phase1.feasibility.get(i) {
                Some(judgement) => CycleBudget {
                    cycle_index: i,
                    score: judgement.score,
                    infeasible: judgement.verdict == FeasibilityVerdict::Infeasible,
                },
                // Unscored (feasibility off or streamed Phase I): a flat
                // uninformative prior, never pruned.
                None => CycleBudget {
                    cycle_index: i,
                    score: 0.5,
                    infeasible: false,
                },
            })
            .collect();
        let mut runs: Vec<Vec<TrialRun>> = (0..cycles.len()).map(|_| Vec::new()).collect();
        let mut errors: Vec<Option<String>> = vec![None; cycles.len()];
        let outcomes = allocate_trials(
            &budgets,
            self.config.confirm_trials,
            self.config.trial_budget,
            |slot, start, len| {
                if errors[slot].is_some() {
                    // The cycle's campaign already failed; report the
                    // batch as spent-without-a-match so the allocator
                    // retires the cycle instead of retrying it forever.
                    return BatchResult {
                        ran: len,
                        matched: 0,
                    };
                }
                let attempt = panic::catch_unwind(AssertUnwindSafe(|| {
                    self.pool().run_trials(
                        len,
                        |i| self.run_confirmation_trial(&cycles[slot], start + i, &obs),
                        |t| t.matched,
                    )
                }));
                match attempt {
                    Ok(results) => {
                        let ran = u32::try_from(results.len()).expect("ran <= len");
                        let matched = u32::try_from(results.iter().filter(|t| t.matched).count())
                            .expect("matched <= len");
                        runs[slot].extend(results);
                        BatchResult { ran, matched }
                    }
                    Err(payload) => {
                        errors[slot] = Some(
                            DfError::Confirmation {
                                cycle_index: slot,
                                message: panic_message(payload),
                            }
                            .to_string(),
                        );
                        BatchResult {
                            ran: len,
                            matched: 0,
                        }
                    }
                }
            },
        );
        obs.counters()
            .add_trials_saved(trials_saved(&outcomes, self.config.confirm_trials));
        let mut confirmations = Vec::with_capacity(cycles.len());
        for (i, (outcome, trial_runs)) in outcomes.iter().zip(runs).enumerate() {
            let feasibility = phase1.feasibility.get(i).cloned();
            let cycle = cycles[i].clone();
            if outcome.pruned_infeasible {
                obs.counters().add_cycles_pruned_infeasible(1);
                confirmations.push(CycleConfirmation {
                    cycle_index: i,
                    cycle,
                    confirmed: false,
                    probability: ProbabilityReport::default(),
                    error: None,
                    feasibility,
                });
                continue;
            }
            if let Some(message) = errors[i].take() {
                confirmations.push(CycleConfirmation {
                    cycle_index: i,
                    cycle,
                    confirmed: false,
                    probability: ProbabilityReport::default(),
                    error: Some(message),
                    feasibility,
                });
                continue;
            }
            // Adaptive campaigns stop at the first match, so a confirmed
            // cycle's estimate is flagged truncated just like a
            // stop-on-first one. A cycle the budget starved of any trial
            // aggregates to EmptyCampaign and is recorded as an error.
            match aggregate_trials(trial_runs, self.config.confirm_trials, true, &obs) {
                Ok(probability) => confirmations.push(CycleConfirmation {
                    cycle_index: i,
                    cycle,
                    confirmed: probability.matched > 0,
                    probability,
                    error: None,
                    feasibility,
                }),
                Err(e) => confirmations.push(CycleConfirmation {
                    cycle_index: i,
                    cycle,
                    confirmed: false,
                    probability: ProbabilityReport::default(),
                    error: Some(e.to_string()),
                    feasibility,
                }),
            }
        }
        confirmations
    }

    /// Confirms one cycle, converting any error or panic into a recorded
    /// [`CycleConfirmation::error`] instead of aborting the campaign.
    fn confirm_cycle(
        &self,
        index: usize,
        cycle: &AbstractCycle,
        feasibility: Option<df_igoodlock::CycleFeasibility>,
    ) -> CycleConfirmation {
        let attempt = panic::catch_unwind(AssertUnwindSafe(|| {
            self.estimate_probability(cycle, self.config.confirm_trials)
        }));
        let outcome: Result<ProbabilityReport, DfError> = match attempt {
            Ok(result) => result,
            Err(payload) => Err(DfError::Confirmation {
                cycle_index: index,
                message: panic_message(payload),
            }),
        };
        match outcome {
            Ok(probability) => CycleConfirmation {
                cycle_index: index,
                cycle: cycle.clone(),
                confirmed: probability.matched > 0,
                probability,
                error: None,
                feasibility,
            },
            Err(e) => CycleConfirmation {
                cycle_index: index,
                cycle: cycle.clone(),
                confirmed: false,
                probability: ProbabilityReport::default(),
                error: Some(e.to_string()),
                feasibility,
            },
        }
    }

    /// Replays a recorded schedule (e.g. the trace of a Phase II run
    /// that deadlocked) deterministically — the debugging workflow for a
    /// confirmed witness.
    ///
    /// # Example
    ///
    /// ```
    /// # use deadlock_fuzzer::{Config, DeadlockFuzzer};
    /// # use df_events::site;
    /// # use df_runtime::TCtx;
    /// # let fuzzer = DeadlockFuzzer::with_config(
    /// #     |ctx: &TCtx| { let a = ctx.new_lock(site!()); let _g = ctx.lock(&a, site!()); },
    /// #     Config::default(),
    /// # );
    /// let phase1 = fuzzer.phase1();
    /// // ... after a deadlocking phase2 run r: fuzzer.replay(&r_trace)
    /// ```
    pub fn replay(&self, trace: &df_events::Trace) -> RunResult {
        self.execute(
            Box::new(df_runtime::strategy::ReplayStrategy::from_trace(trace)),
            self.config.run.program_seed,
        )
    }

    /// Baseline: `trials` uninstrumented-equivalent runs under the plain
    /// random scheduler, counting how many deadlock (the paper's "ran each
    /// program normally 100 times" control) and measuring their mean
    /// duration for the overhead columns of Table 1. Runs fan out across
    /// [`Config::jobs`] workers like confirmation trials do.
    ///
    /// # Errors
    ///
    /// Returns [`DfError::InvalidConfig`] when `trials` is zero.
    pub fn baseline(&self, trials: u32) -> Result<(u32, std::time::Duration), DfError> {
        if trials == 0 {
            return Err(DfError::InvalidConfig(
                "at least one trial required".to_string(),
            ));
        }
        let obs = self.config.obs().clone();
        let results = self.pool().run_trials(
            trials,
            |i| {
                let shard = obs.fork_shard();
                let runner = self.with_obs_shard(shard.clone());
                let start = Instant::now();
                let seed = self.config.phase2_seed_base + u64::from(i);
                let r = runner.execute(Box::new(SimpleRandomChecker::with_seed(seed)), seed);
                (
                    matches!(r.outcome, Outcome::Deadlock(_)),
                    start.elapsed(),
                    shard,
                )
            },
            |_| false,
        );
        let mut deadlocks = 0;
        let mut total = std::time::Duration::ZERO;
        for (deadlocked, duration, shard) in &results {
            obs.absorb(shard);
            total += *duration;
            if *deadlocked {
                deadlocks += 1;
            }
        }
        Ok((deadlocks, total / trials))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Named;
    use df_events::site;
    use df_runtime::{LockRef, TCtx};

    /// Figure 1 of the paper as a reusable program.
    fn figure1() -> Named<impl Program> {
        Named::new("figure1", |ctx: &TCtx| {
            let o1 = ctx.new_lock(site!("fig1 main:22"));
            let o2 = ctx.new_lock(site!("fig1 main:23"));
            let body = |l1: LockRef, l2: LockRef, slow: bool| {
                move |ctx: &TCtx| {
                    if slow {
                        ctx.work(8);
                    }
                    ctx.acquire(&l1, site!("fig1 run:15"));
                    ctx.acquire(&l2, site!("fig1 run:16"));
                    ctx.release(&l2, site!("fig1 run:17"));
                    ctx.release(&l1, site!("fig1 run:18"));
                }
            };
            let t1 = ctx.spawn(site!("fig1 main:25"), "t1", body(o1, o2, true));
            let t2 = ctx.spawn(site!("fig1 main:26"), "t2", body(o2, o1, false));
            ctx.join(&t1, site!());
            ctx.join(&t2, site!());
        })
    }

    #[test]
    fn full_pipeline_confirms_figure1() {
        let fuzzer =
            DeadlockFuzzer::with_config(figure1(), Config::default().with_confirm_trials(10));
        let report = fuzzer.run();
        assert_eq!(report.program, "figure1");
        assert_eq!(report.potential_count(), 1);
        assert_eq!(report.confirmed_count(), 1);
        let conf = &report.confirmations[0];
        assert!((conf.probability.probability - 1.0).abs() < f64::EPSILON);
        assert_eq!(conf.probability.matched, 10);
        let text = report.to_string();
        assert!(text.contains("CONFIRMED"), "report text: {text}");
    }

    /// Two independent opposite-order lock pairs on four threads: two
    /// predicted cycles, and while Phase II targets one of them the other
    /// pair keeps deadlocking on its own — the program where `matched`
    /// and `deadlocks` (and so `probability` and `deadlock_rate`) differ.
    fn two_cycles() -> Named<impl Program> {
        Named::new("two_cycles", |ctx: &TCtx| {
            let a = ctx.new_lock(site!("tc main:a"));
            let b = ctx.new_lock(site!("tc main:b"));
            let c = ctx.new_lock(site!("tc main:c"));
            let d = ctx.new_lock(site!("tc main:d"));
            let pair = |l1: LockRef, l2: LockRef| {
                move |ctx: &TCtx| {
                    ctx.acquire(&l1, site!("tc pair:outer"));
                    ctx.acquire(&l2, site!("tc pair:inner"));
                    ctx.release(&l2, site!("tc pair:rel2"));
                    ctx.release(&l1, site!("tc pair:rel1"));
                }
            };
            let t1 = ctx.spawn(site!("tc main:s1"), "t1", pair(a, b));
            let t2 = ctx.spawn(site!("tc main:s2"), "t2", pair(b, a));
            let t3 = ctx.spawn(site!("tc main:s3"), "t3", pair(c, d));
            let t4 = ctx.spawn(site!("tc main:s4"), "t4", pair(d, c));
            ctx.join(&t1, site!());
            ctx.join(&t2, site!());
            ctx.join(&t3, site!());
            ctx.join(&t4, site!());
        })
    }

    /// Opposite lock orders that can never overlap: the second thread is
    /// spawned only after the first is joined, so iGoodlock (without the
    /// hb filter) predicts a cycle no execution can realize.
    fn ordered_pair() -> Named<impl Program> {
        Named::new("ordered_pair", |ctx: &TCtx| {
            let a = ctx.new_lock(site!("op main:a"));
            let b = ctx.new_lock(site!("op main:b"));
            let t1 = ctx.spawn(site!("op main:s1"), "t1", move |ctx: &TCtx| {
                ctx.acquire(&a, site!("op t1:a"));
                ctx.acquire(&b, site!("op t1:b"));
                ctx.release(&b, site!("op t1:rb"));
                ctx.release(&a, site!("op t1:ra"));
            });
            ctx.join(&t1, site!());
            let t2 = ctx.spawn(site!("op main:s2"), "t2", move |ctx: &TCtx| {
                ctx.acquire(&b, site!("op t2:b"));
                ctx.acquire(&a, site!("op t2:a"));
                ctx.release(&a, site!("op t2:ra"));
                ctx.release(&b, site!("op t2:rb"));
            });
            ctx.join(&t2, site!());
        })
    }

    #[test]
    fn baseline_rarely_deadlocks_on_figure1() {
        let fuzzer = DeadlockFuzzer::new(figure1());
        let (deadlocks, _avg) = fuzzer.baseline(20).expect("trials > 0");
        assert!(
            deadlocks <= 6,
            "baseline should rarely deadlock: {deadlocks}/20"
        );
    }

    #[test]
    fn streamed_phase1_matches_offline_without_materializing_events() {
        let offline = DeadlockFuzzer::new(figure1()).phase1();
        let obs = df_obs::Obs::default();
        let streamed = DeadlockFuzzer::with_config(
            figure1(),
            Config::default()
                .with_stream_phase1(true)
                .with_obs(obs.clone()),
        )
        .phase1();
        assert_eq!(offline.relation_size, streamed.relation_size);
        assert_eq!(offline.acquires_observed, streamed.acquires_observed);
        let render = |r: &Phase1Report| {
            r.abstract_cycles
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
        };
        assert_eq!(render(&offline), render(&streamed));
        assert!(!offline.trace.events().is_empty());
        assert!(
            streamed.trace.events().is_empty(),
            "streaming must not materialize the event vector"
        );
        let snap = obs.counters().snapshot();
        assert_eq!(snap.peak_trace_bytes, 0, "no trace was ever held");
        assert!(snap.events_streamed > 0);
        assert_eq!(snap.dependency_edges, streamed.relation_size as u64);
    }

    #[test]
    fn observe_streams_the_run_into_custom_sinks() {
        let fuzzer = DeadlockFuzzer::new(figure1());
        let builder = Arc::new(std::sync::Mutex::new(RelationBuilder::new()));
        let result = fuzzer.observe(df_events::SinkHandle::single(builder.clone()), false);
        assert!(result.trace.events().is_empty());
        let relation = builder.lock().expect("sink").take();
        let offline = fuzzer.phase1();
        assert_eq!(relation.len(), offline.relation_size);
    }

    #[test]
    fn phase2_reports_match_flag() {
        let fuzzer = DeadlockFuzzer::new(figure1());
        let p1 = fuzzer.phase1();
        assert_eq!(p1.cycle_count(), 1);
        assert!(p1.run_outcome.is_completed() || p1.run_outcome.is_deadlock());
        let r = fuzzer.phase2(&p1.abstract_cycles[0], 42);
        assert!(r.deadlocked());
        assert!(r.matched_target);
        assert!(r.steps > 0);
    }

    #[test]
    fn replay_of_a_deadlocking_phase2_run_reproduces_it() {
        let fuzzer = DeadlockFuzzer::new(figure1());
        let p1 = fuzzer.phase1();
        let r = fuzzer.phase2(&p1.abstract_cycles[0], 3);
        let w1 = r.witness.clone().expect("phase 2 deadlocks");
        let replayed = fuzzer.replay(&r.trace);
        let w2 = replayed
            .deadlock()
            .expect("replay lands in the same deadlock");
        assert_eq!(w1.threads(), w2.threads());
        assert_eq!(w1.locks(), w2.locks());
    }

    #[test]
    fn no_lock_program_yields_empty_report() {
        let fuzzer = DeadlockFuzzer::new(Named::new("lockless", |ctx: &TCtx| {
            ctx.work(3);
        }));
        let report = fuzzer.run();
        assert_eq!(report.potential_count(), 0);
        assert!(report.confirmations.is_empty());
        assert_eq!(report.phase1.relation_size, 0);
    }

    #[test]
    fn estimate_probability_counts_trials() {
        let fuzzer = DeadlockFuzzer::new(figure1());
        let p1 = fuzzer.phase1();
        let prob = fuzzer
            .estimate_probability(&p1.abstract_cycles[0], 5)
            .expect("trials > 0");
        assert_eq!(prob.trials, 5);
        assert_eq!(prob.deadlocks, 5);
        assert!(prob.avg_steps > 0.0);
        assert_eq!(prob.outcomes.deadlocks, 5);
        assert_eq!(prob.outcomes.total(), 5);
        assert_eq!(prob.retries, 0);
    }

    #[test]
    fn estimate_probability_rejects_zero_trials() {
        let fuzzer = DeadlockFuzzer::new(figure1());
        let p1 = fuzzer.phase1();
        let cycle = p1
            .abstract_cycles
            .first()
            .cloned()
            .unwrap_or_else(|| AbstractCycle::new(vec![]));
        let result = fuzzer.estimate_probability(&cycle, 0);
        assert!(
            matches!(result, Err(DfError::InvalidConfig(_))),
            "{result:?}"
        );
        assert!(matches!(fuzzer.baseline(0), Err(DfError::InvalidConfig(_))));
    }

    #[test]
    fn injected_panics_are_classified_and_retried_not_fatal() {
        use df_runtime::FaultPlan;
        // Predict the cycle with a clean fuzzer, then confirm it under a
        // plan that panics on every first acquire.
        let clean = DeadlockFuzzer::new(figure1());
        let cycle = clean.phase1().abstract_cycles[0].clone();
        let mut config = Config::default().with_trial_retries(1);
        config.run = config
            .run
            .with_fault_plan(FaultPlan::new(7).with_panic_on_acquire(1.0));
        let faulty = DeadlockFuzzer::with_config(figure1(), config);
        let prob = faulty.estimate_probability(&cycle, 4).expect("trials > 0");
        assert_eq!(prob.trials, 4);
        assert_eq!(prob.deadlocks, 0);
        assert_eq!(prob.outcomes.panics, 4, "{:?}", prob.outcomes);
        assert_eq!(prob.retries, 4, "each trial retried once");
        let s = prob.to_string();
        assert!(s.contains("4 panic"), "{s}");
    }

    #[test]
    fn fuzzer_state_is_shareable_across_pool_workers() {
        fn assert_sync<T: Sync>() {}
        fn assert_send<T: Send>() {}
        // The pool shares `&DeadlockFuzzer` across workers and moves
        // per-trial results (built from RunResult) back; fault plans ride
        // along inside the cloned RunConfig.
        assert_sync::<DeadlockFuzzer>();
        assert_send::<df_runtime::RunConfig>();
        assert_send::<df_runtime::FaultPlan>();
        assert_send::<RunResult>();
    }

    #[test]
    fn parallel_and_sequential_campaigns_agree() {
        let run = |jobs| {
            let fuzzer = DeadlockFuzzer::with_config(figure1(), Config::default().with_jobs(jobs));
            let p1 = fuzzer.phase1();
            fuzzer
                .estimate_probability(&p1.abstract_cycles[0], 6)
                .expect("trials > 0")
        };
        let seq = run(1);
        let par = run(4);
        assert_eq!(seq.trials, par.trials);
        assert_eq!(seq.deadlocks, par.deadlocks);
        assert_eq!(seq.matched, par.matched);
        assert_eq!(seq.outcomes, par.outcomes);
        assert_eq!(seq.retries, par.retries);
        assert_eq!(seq.avg_steps, par.avg_steps);
        assert_eq!(seq.avg_thrashes, par.avg_thrashes);
    }

    #[test]
    fn stop_on_first_reports_only_the_confirming_prefix() {
        for jobs in [1, 4] {
            let fuzzer = DeadlockFuzzer::with_config(
                figure1(),
                Config::default().with_stop_on_first(true).with_jobs(jobs),
            );
            let p1 = fuzzer.phase1();
            let prob = fuzzer
                .estimate_probability(&p1.abstract_cycles[0], 10)
                .expect("trials > 0");
            // Figure 1 confirms on every seed, so the deterministic stop
            // point is trial 0 — later trials must never be tallied even
            // if a parallel worker had already started them.
            assert_eq!(prob.trials, 1, "jobs={jobs}");
            assert_eq!(prob.matched, 1, "jobs={jobs}");
            assert_eq!(prob.outcomes.total(), 1, "jobs={jobs}");
            assert!((prob.probability - 1.0).abs() < f64::EPSILON);
        }
    }

    #[test]
    fn aggregate_of_zero_trials_is_an_empty_campaign_error() {
        let obs = df_obs::Obs::default();
        let result = aggregate_trials(Vec::new(), 5, false, &obs);
        assert!(matches!(result, Err(DfError::EmptyCampaign)), "{result:?}");
    }

    #[test]
    fn probability_counts_target_matches_not_all_deadlocks() {
        // Regression for the historical bug where `probability` was
        // computed as deadlocks/ran: four deadlocking trials of which two
        // matched the target must report probability 0.5 (matched/ran)
        // and deadlock_rate 1.0.
        let obs = df_obs::Obs::default();
        let trial = |matched: bool| TrialRun {
            outcome: TrialOutcome::Deadlock,
            deadlocked: true,
            matched,
            thrashes: 1,
            pauses: 0,
            yields: 0,
            steps: 10,
            duration: std::time::Duration::from_millis(1),
            retries: 0,
            shard: obs.fork_shard(),
        };
        let report = aggregate_trials(
            vec![trial(true), trial(false), trial(true), trial(false)],
            4,
            false,
            &obs,
        )
        .expect("non-empty campaign");
        assert_eq!(report.matched, 2);
        assert_eq!(report.deadlocks, 4);
        assert!(
            (report.probability - 0.5).abs() < f64::EPSILON,
            "{report:?}"
        );
        assert!(
            (report.deadlock_rate - 1.0).abs() < f64::EPSILON,
            "{report:?}"
        );
        assert!(!report.truncated);
    }

    #[test]
    fn unmatched_deadlocks_raise_deadlock_rate_above_probability() {
        // End-to-end version of the accounting regression on a two-cycle
        // trace: targeting cycle 0, the untargeted pair's deadlocks count
        // toward deadlock_rate but not probability.
        let fuzzer = DeadlockFuzzer::new(two_cycles());
        let p1 = fuzzer.phase1();
        assert_eq!(p1.cycle_count(), 2);
        let prob = fuzzer
            .estimate_probability(&p1.abstract_cycles[0], 12)
            .expect("trials > 0");
        assert!(prob.matched > 0, "{prob:?}");
        assert!(prob.deadlocks > prob.matched, "{prob:?}");
        assert!(prob.deadlock_rate > prob.probability, "{prob:?}");
    }

    #[test]
    fn feasibility_judgements_ride_the_report() {
        let fuzzer = DeadlockFuzzer::with_config(
            two_cycles(),
            Config::default()
                .with_feasibility(true)
                .with_confirm_trials(3),
        );
        let report = fuzzer.run();
        assert_eq!(report.phase1.feasibility.len(), 2);
        for (conf, judgement) in report.confirmations.iter().zip(&report.phase1.feasibility) {
            assert_eq!(
                conf.feasibility.as_ref(),
                Some(judgement),
                "confirmation carries its cycle's judgement"
            );
            assert_eq!(
                judgement.verdict,
                df_igoodlock::FeasibilityVerdict::Feasible,
                "both pairs run concurrently"
            );
        }
        let metrics = report.metrics(&df_obs::Obs::default());
        assert!(
            metrics.extra.contains_key("feasibility_score_cycle_0"),
            "{:?}",
            metrics.extra.keys().collect::<Vec<_>>()
        );
    }

    #[test]
    fn adaptive_campaign_matches_uniform_verdicts_with_fewer_trials() {
        let uniform = DeadlockFuzzer::with_config(
            two_cycles(),
            Config::default()
                .with_feasibility(true)
                .with_confirm_trials(8),
        )
        .run();
        let obs = df_obs::Obs::default();
        let adaptive = DeadlockFuzzer::with_config(
            two_cycles(),
            Config::default()
                .with_feasibility(true)
                .with_adaptive_trials(true)
                .with_confirm_trials(8)
                .with_obs(obs.clone()),
        )
        .run();
        let verdicts = |r: &Report| {
            r.confirmations
                .iter()
                .map(|c| (c.cycle_index, c.confirmed))
                .collect::<Vec<_>>()
        };
        assert_eq!(verdicts(&uniform), verdicts(&adaptive));
        let spent = |r: &Report| {
            r.confirmations
                .iter()
                .map(|c| c.probability.trials)
                .sum::<u32>()
        };
        let (uniform_spent, adaptive_spent) = (spent(&uniform), spent(&adaptive));
        assert!(
            adaptive_spent < uniform_spent,
            "adaptive must confirm with fewer trials: {adaptive_spent} vs {uniform_spent}"
        );
        let snap = obs.counters().snapshot();
        assert_eq!(snap.trials_saved, u64::from(uniform_spent - adaptive_spent));
        for c in &adaptive.confirmations {
            if c.confirmed && c.probability.trials < 8 {
                assert!(
                    c.probability.truncated,
                    "an early-stopped estimate must be flagged: {c:?}"
                );
            }
        }
    }

    #[test]
    fn provably_infeasible_cycles_are_pruned_without_trials() {
        let obs = df_obs::Obs::default();
        let fuzzer = DeadlockFuzzer::with_config(
            ordered_pair(),
            Config::default()
                .with_feasibility(true)
                .with_adaptive_trials(true)
                .with_obs(obs.clone()),
        );
        let report = fuzzer.run();
        assert_eq!(
            report.potential_count(),
            1,
            "with the hb filter off the ordered cycle is still predicted"
        );
        let conf = &report.confirmations[0];
        let judgement = conf.feasibility.as_ref().expect("cycle was scored");
        assert_eq!(
            judgement.verdict,
            df_igoodlock::FeasibilityVerdict::Infeasible
        );
        assert!(!conf.confirmed);
        assert!(conf.error.is_none(), "pruning is not a failure: {conf:?}");
        assert_eq!(conf.probability.trials, 0);
        let snap = obs.counters().snapshot();
        assert_eq!(snap.cycles_pruned_infeasible, 1);
        assert_eq!(
            snap.trials_saved,
            u64::from(Config::default().confirm_trials),
            "the whole uniform budget of the pruned cycle is saved"
        );
    }

    #[test]
    fn trial_budget_caps_the_adaptive_campaign() {
        let fuzzer = DeadlockFuzzer::with_config(
            two_cycles(),
            Config::default()
                .with_feasibility(true)
                .with_adaptive_trials(true)
                .with_confirm_trials(50)
                .with_trial_budget(Some(6)),
        );
        let report = fuzzer.run();
        let spent: u32 = report
            .confirmations
            .iter()
            .map(|c| c.probability.trials)
            .sum();
        assert!(spent <= 6, "budget overrun: {spent}");
    }

    #[test]
    fn campaign_failure_is_recorded_not_fatal() {
        // confirm_trials = 0 makes every confirmation campaign fail with
        // InvalidConfig; run() must record it and finish, not panic.
        let fuzzer =
            DeadlockFuzzer::with_config(figure1(), Config::default().with_confirm_trials(0));
        let report = fuzzer.run();
        assert_eq!(report.potential_count(), 1);
        assert_eq!(report.confirmed_count(), 0);
        assert_eq!(report.failed_count(), 1);
        let conf = &report.confirmations[0];
        assert!(!conf.confirmed);
        assert!(
            conf.error
                .as_deref()
                .unwrap_or("")
                .contains("at least one trial"),
            "{:?}",
            conf.error
        );
        assert_eq!(conf.probability.trials, 0);
        let text = report.to_string();
        assert!(text.contains("FAILED"), "{text}");
    }

    #[test]
    fn trial_deadline_bounds_programs_that_spin_forever() {
        use std::time::Duration;
        let mut config = Config::default().with_trial_deadline(Some(Duration::from_millis(200)));
        config.run = config
            .run
            .with_max_steps(u64::MAX)
            .with_hang_timeout(Duration::from_secs(60));
        let fuzzer = DeadlockFuzzer::with_config(
            Named::new("spinner", |ctx: &TCtx| loop {
                ctx.yield_now();
            }),
            config,
        );
        let start = Instant::now();
        let report = fuzzer.run();
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "deadline must bound the campaign"
        );
        assert_eq!(report.phase1.run_outcome, Outcome::DeadlineExceeded);
    }

    #[test]
    fn chaos_campaign_still_terminates_with_a_report() {
        use df_runtime::FaultPlan;
        use std::time::Duration;
        let mut config = Config::default()
            .with_confirm_trials(3)
            .with_trial_retries(1)
            .with_trial_deadline(Some(Duration::from_secs(5)));
        config.run = config.run.with_max_steps(20_000).with_fault_plan(
            FaultPlan::new(11)
                .with_panic_on_acquire(0.05)
                .with_leak_release(0.05)
                .with_spurious_wakeup(0.1)
                .with_runaway_spawn(0.2),
        );
        let fuzzer = DeadlockFuzzer::with_config(figure1(), config);
        let report = fuzzer.run();
        // Whatever the faults did, every campaign finished with every
        // trial classified.
        for conf in &report.confirmations {
            if conf.error.is_none() {
                assert_eq!(conf.probability.outcomes.total(), 3);
            }
        }
        let _ = report.to_string();
    }
}
