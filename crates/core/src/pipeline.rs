//! The two-phase DeadlockFuzzer pipeline.

use std::sync::Arc;
use std::time::Instant;

use df_abstraction::Abstractor;
use df_fuzzer::{ActiveConfig, ActiveStrategy, SimpleRandomChecker};
use df_igoodlock::{
    igoodlock_filtered, AbstractComponent, AbstractCycle, HbFilter, LockDependencyRelation,
};
use df_runtime::{Outcome, RunResult, VirtualRuntime};

use crate::config::Config;
use crate::program::{Program, ProgramRef};
use crate::report::{CycleConfirmation, Phase1Report, Phase2Report, ProbabilityReport, Report};

/// The DeadlockFuzzer tool: Phase I prediction + Phase II active random
/// confirmation for one program.
///
/// # Example
///
/// ```
/// use deadlock_fuzzer::{Config, DeadlockFuzzer};
/// use df_events::site;
/// use df_runtime::TCtx;
///
/// // A program with a consistent lock order: no deadlock predicted.
/// let fuzzer = DeadlockFuzzer::with_config(
///     |ctx: &TCtx| {
///         let a = ctx.new_lock(site!());
///         let _g = ctx.lock(&a, site!());
///     },
///     Config::default(),
/// );
/// let report = fuzzer.run();
/// assert_eq!(report.potential_count(), 0);
/// ```
pub struct DeadlockFuzzer {
    program: ProgramRef,
    config: Config,
}

impl DeadlockFuzzer {
    /// Creates a fuzzer with the default configuration (the paper's best
    /// variant: execution indexing + context + yields).
    pub fn new(program: impl Program) -> Self {
        Self::with_config(program, Config::default())
    }

    /// Creates a fuzzer with an explicit configuration.
    pub fn with_config(program: impl Program, config: Config) -> Self {
        DeadlockFuzzer {
            program: Arc::new(program),
            config,
        }
    }

    /// Creates a fuzzer from an already-shared program handle.
    pub fn from_ref(program: ProgramRef, config: Config) -> Self {
        DeadlockFuzzer { program, config }
    }

    /// The configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }

    fn execute(&self, strategy: Box<dyn df_runtime::Strategy>) -> RunResult {
        let program = Arc::clone(&self.program);
        VirtualRuntime::new(self.config.run.clone()).run(strategy, move |ctx| program.run(ctx))
    }

    /// Phase I: observe one execution under the simple random scheduler
    /// (Algorithm 2), compute the lock dependency relation, and run
    /// iGoodlock (Algorithm 1).
    pub fn phase1(&self) -> Phase1Report {
        let start = Instant::now();
        let result = self.execute(Box::new(SimpleRandomChecker::with_seed(
            self.config.phase1_seed,
        )));
        let relation = LockDependencyRelation::from_trace(&result.trace);
        let hb = self
            .config
            .hb_filter
            .then(|| HbFilter::from_trace(&result.trace));
        let (cycles, stats) =
            igoodlock_filtered(&relation, hb.as_ref(), &self.config.igoodlock);
        let abstractor = Abstractor::new(self.config.mode);
        let abstract_cycles = cycles
            .iter()
            .map(|c| c.abstract_with(result.trace.objects(), &abstractor))
            .collect();
        Phase1Report {
            cycles,
            abstract_cycles,
            stats,
            relation_size: relation.len(),
            acquires_observed: relation.raw_count,
            duration: start.elapsed(),
            run_outcome: result.outcome,
            trace: result.trace,
        }
    }

    /// Phase II: one active-random execution biased toward `cycle`
    /// (Algorithm 3) with the given seed.
    pub fn phase2(&self, cycle: &AbstractCycle, seed: u64) -> Phase2Report {
        let start = Instant::now();
        let active = ActiveConfig {
            cycle: cycle.clone(),
            mode: self.config.mode,
            seed,
            use_context: self.config.use_context,
            yield_optimization: self.config.yield_optimization,
            pause_budget: self.config.pause_budget,
            yield_budget: self.config.yield_budget,
        };
        let result = self.execute(Box::new(ActiveStrategy::new(active)));
        let witness = result.outcome.deadlock().cloned();
        let matched_target = witness
            .as_ref()
            .map(|w| {
                let abstractor = Abstractor::new(self.config.mode);
                let witness_cycle = AbstractCycle::new(
                    w.components
                        .iter()
                        .map(|c| AbstractComponent {
                            thread: abstractor.abs(result.trace.objects(), c.thread_obj),
                            lock: abstractor.abs(result.trace.objects(), c.waiting_for),
                            context: c.context.clone(),
                        })
                        .collect(),
                );
                cycle.matches(&witness_cycle)
            })
            .unwrap_or(false);
        Phase2Report {
            outcome: result.outcome,
            witness,
            matched_target,
            thrashes: result.stats.thrashes,
            pauses: result.stats.pauses,
            yields: result.stats.yields,
            steps: result.steps,
            duration: start.elapsed(),
            trace: result.trace,
        }
    }

    /// Runs `trials` Phase II executions for `cycle` (seeds
    /// `phase2_seed_base..phase2_seed_base + trials`) and aggregates the
    /// empirical reproduction probability — Table 1 columns 8–10.
    pub fn estimate_probability(&self, cycle: &AbstractCycle, trials: u32) -> ProbabilityReport {
        assert!(trials > 0, "at least one trial required");
        let mut deadlocks = 0u32;
        let mut matched = 0u32;
        let mut thrashes = 0u64;
        let mut steps = 0u64;
        let mut total_duration = std::time::Duration::ZERO;
        for i in 0..trials {
            let r = self.phase2(cycle, self.config.phase2_seed_base + u64::from(i));
            if r.deadlocked() {
                deadlocks += 1;
            }
            if r.matched_target {
                matched += 1;
            }
            thrashes += r.thrashes;
            steps += r.steps;
            total_duration += r.duration;
        }
        ProbabilityReport {
            trials,
            deadlocks,
            matched,
            probability: f64::from(deadlocks) / f64::from(trials),
            avg_thrashes: thrashes as f64 / f64::from(trials),
            avg_steps: steps as f64 / f64::from(trials),
            avg_duration: total_duration / trials,
        }
    }

    /// The full tool: Phase I, then Phase II confirmation of every
    /// reported cycle with [`Config::confirm_trials`] trials each.
    pub fn run(&self) -> Report {
        let phase1 = self.phase1();
        let confirmations = phase1
            .abstract_cycles
            .iter()
            .enumerate()
            .map(|(i, cycle)| {
                let probability = self.estimate_probability(cycle, self.config.confirm_trials);
                CycleConfirmation {
                    cycle_index: i,
                    cycle: cycle.clone(),
                    confirmed: probability.matched > 0,
                    probability,
                }
            })
            .collect();
        Report {
            program: self.program.name().to_string(),
            phase1,
            confirmations,
        }
    }

    /// Replays a recorded schedule (e.g. the trace of a Phase II run
    /// that deadlocked) deterministically — the debugging workflow for a
    /// confirmed witness.
    ///
    /// # Example
    ///
    /// ```
    /// # use deadlock_fuzzer::{Config, DeadlockFuzzer};
    /// # use df_events::site;
    /// # use df_runtime::TCtx;
    /// # let fuzzer = DeadlockFuzzer::with_config(
    /// #     |ctx: &TCtx| { let a = ctx.new_lock(site!()); let _g = ctx.lock(&a, site!()); },
    /// #     Config::default(),
    /// # );
    /// let phase1 = fuzzer.phase1();
    /// // ... after a deadlocking phase2 run r: fuzzer.replay(&r_trace)
    /// ```
    pub fn replay(&self, trace: &df_events::Trace) -> RunResult {
        self.execute(Box::new(df_runtime::strategy::ReplayStrategy::from_trace(
            trace,
        )))
    }

    /// Baseline: `trials` uninstrumented-equivalent runs under the plain
    /// random scheduler, counting how many deadlock (the paper's "ran each
    /// program normally 100 times" control) and measuring their mean
    /// duration for the overhead columns of Table 1.
    pub fn baseline(&self, trials: u32) -> (u32, std::time::Duration) {
        assert!(trials > 0, "at least one trial required");
        let mut deadlocks = 0;
        let mut total = std::time::Duration::ZERO;
        for i in 0..trials {
            let start = Instant::now();
            let r = self.execute(Box::new(SimpleRandomChecker::with_seed(
                self.config.phase2_seed_base + u64::from(i),
            )));
            total += start.elapsed();
            if matches!(r.outcome, Outcome::Deadlock(_)) {
                deadlocks += 1;
            }
        }
        (deadlocks, total / trials)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Named;
    use df_events::site;
    use df_runtime::{LockRef, TCtx};

    /// Figure 1 of the paper as a reusable program.
    fn figure1() -> Named<impl Program> {
        Named::new("figure1", |ctx: &TCtx| {
            let o1 = ctx.new_lock(site!("fig1 main:22"));
            let o2 = ctx.new_lock(site!("fig1 main:23"));
            let body = |l1: LockRef, l2: LockRef, slow: bool| {
                move |ctx: &TCtx| {
                    if slow {
                        ctx.work(8);
                    }
                    ctx.acquire(&l1, site!("fig1 run:15"));
                    ctx.acquire(&l2, site!("fig1 run:16"));
                    ctx.release(&l2, site!("fig1 run:17"));
                    ctx.release(&l1, site!("fig1 run:18"));
                }
            };
            let t1 = ctx.spawn(site!("fig1 main:25"), "t1", body(o1, o2, true));
            let t2 = ctx.spawn(site!("fig1 main:26"), "t2", body(o2, o1, false));
            ctx.join(&t1, site!());
            ctx.join(&t2, site!());
        })
    }

    #[test]
    fn full_pipeline_confirms_figure1() {
        let fuzzer = DeadlockFuzzer::with_config(
            figure1(),
            Config::default().with_confirm_trials(10),
        );
        let report = fuzzer.run();
        assert_eq!(report.program, "figure1");
        assert_eq!(report.potential_count(), 1);
        assert_eq!(report.confirmed_count(), 1);
        let conf = &report.confirmations[0];
        assert!((conf.probability.probability - 1.0).abs() < f64::EPSILON);
        assert_eq!(conf.probability.matched, 10);
        let text = report.to_string();
        assert!(text.contains("CONFIRMED"), "report text: {text}");
    }

    #[test]
    fn baseline_rarely_deadlocks_on_figure1() {
        let fuzzer = DeadlockFuzzer::new(figure1());
        let (deadlocks, _avg) = fuzzer.baseline(20);
        assert!(deadlocks <= 6, "baseline should rarely deadlock: {deadlocks}/20");
    }

    #[test]
    fn phase2_reports_match_flag() {
        let fuzzer = DeadlockFuzzer::new(figure1());
        let p1 = fuzzer.phase1();
        assert_eq!(p1.cycle_count(), 1);
        assert!(p1.run_outcome.is_completed() || p1.run_outcome.is_deadlock());
        let r = fuzzer.phase2(&p1.abstract_cycles[0], 42);
        assert!(r.deadlocked());
        assert!(r.matched_target);
        assert!(r.steps > 0);
    }

    #[test]
    fn replay_of_a_deadlocking_phase2_run_reproduces_it() {
        let fuzzer = DeadlockFuzzer::new(figure1());
        let p1 = fuzzer.phase1();
        let r = fuzzer.phase2(&p1.abstract_cycles[0], 3);
        let w1 = r.witness.clone().expect("phase 2 deadlocks");
        let replayed = fuzzer.replay(&r.trace);
        let w2 = replayed.deadlock().expect("replay lands in the same deadlock");
        assert_eq!(w1.threads(), w2.threads());
        assert_eq!(w1.locks(), w2.locks());
    }

    #[test]
    fn no_lock_program_yields_empty_report() {
        let fuzzer = DeadlockFuzzer::new(Named::new("lockless", |ctx: &TCtx| {
            ctx.work(3);
        }));
        let report = fuzzer.run();
        assert_eq!(report.potential_count(), 0);
        assert!(report.confirmations.is_empty());
        assert_eq!(report.phase1.relation_size, 0);
    }

    #[test]
    fn estimate_probability_counts_trials() {
        let fuzzer = DeadlockFuzzer::new(figure1());
        let p1 = fuzzer.phase1();
        let prob = fuzzer.estimate_probability(&p1.abstract_cycles[0], 5);
        assert_eq!(prob.trials, 5);
        assert_eq!(prob.deadlocks, 5);
        assert!(prob.avg_steps > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn estimate_probability_rejects_zero_trials() {
        let fuzzer = DeadlockFuzzer::new(figure1());
        let p1 = fuzzer.phase1();
        let cycle = p1
            .abstract_cycles
            .first()
            .cloned()
            .unwrap_or_else(|| AbstractCycle::new(vec![]));
        fuzzer.estimate_probability(&cycle, 0);
    }
}
