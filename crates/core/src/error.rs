//! Structured errors for the pipeline's library entry points.

use std::fmt;

/// An error from a `deadlock-fuzzer` entry point.
///
/// Library entry points return `DfError` instead of panicking, so a single
/// bad input or failed confirmation degrades gracefully inside
/// [`crate::DeadlockFuzzer::run`] rather than aborting the whole campaign.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DfError {
    /// A configuration value makes the requested operation meaningless
    /// (e.g. zero trials).
    InvalidConfig(String),
    /// Confirming one cycle failed internally; the message carries the
    /// panic or error text.
    Confirmation {
        /// Index of the cycle whose confirmation failed.
        cycle_index: usize,
        /// What went wrong.
        message: String,
    },
    /// A trial campaign produced zero results, so no probability (or any
    /// other per-trial average) can be computed from it.
    EmptyCampaign,
}

impl fmt::Display for DfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DfError::InvalidConfig(m) => write!(f, "invalid configuration: {m}"),
            DfError::Confirmation {
                cycle_index,
                message,
            } => write!(f, "confirmation of cycle {cycle_index} failed: {message}"),
            DfError::EmptyCampaign => {
                write!(f, "trial campaign produced no results to estimate from")
            }
        }
    }
}

impl std::error::Error for DfError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = DfError::InvalidConfig("at least one trial required".into());
        assert!(e.to_string().contains("at least one trial"));
        let e = DfError::Confirmation {
            cycle_index: 3,
            message: "strategy panicked".into(),
        };
        assert!(e.to_string().contains("cycle 3"));
        assert!(e.to_string().contains("strategy panicked"));
        let e = DfError::EmptyCampaign;
        assert!(e.to_string().contains("no results"));
    }

    #[test]
    fn implements_std_error() {
        fn takes_error(_: &dyn std::error::Error) {}
        takes_error(&DfError::InvalidConfig("x".into()));
    }
}
