//! Pipeline configuration and the paper's experimental variants.

use crate::error::DfError;
use df_abstraction::AbstractionMode;
use df_events::SpillConfig;
use df_igoodlock::IGoodlockOptions;
use df_runtime::RunConfig;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::Duration;

/// The five DeadlockFuzzer variants evaluated in Figure 2 of the paper.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Variant {
    /// Variant 1: context information + k-object-sensitive abstraction.
    ContextKObject,
    /// Variant 2 (the default / best performer): context information +
    /// light-weight execution-indexing abstraction.
    ContextExecIndex,
    /// Variant 3: trivial abstraction ("ignore abstraction").
    IgnoreAbstraction,
    /// Variant 4: abstraction without acquisition contexts
    /// ("ignore context").
    IgnoreContext,
    /// Variant 5: the §4 yield optimization disabled ("no yields").
    NoYields,
}

impl Variant {
    /// All five variants, in the paper's order.
    pub const ALL: [Variant; 5] = [
        Variant::ContextKObject,
        Variant::ContextExecIndex,
        Variant::IgnoreAbstraction,
        Variant::IgnoreContext,
        Variant::NoYields,
    ];

    /// The paper's legend label.
    pub fn label(&self) -> &'static str {
        match self {
            Variant::ContextKObject => "Context + 1st Abstraction",
            Variant::ContextExecIndex => "Context + 2nd Abstraction",
            Variant::IgnoreAbstraction => "Ignore Abstraction",
            Variant::IgnoreContext => "Ignore Context",
            Variant::NoYields => "No Yields",
        }
    }

    /// Applies the variant's knobs to a configuration.
    pub fn apply(&self, mut config: Config) -> Config {
        match self {
            Variant::ContextKObject => {
                config.mode = AbstractionMode::KObject(10);
                config.use_context = true;
                config.yield_optimization = true;
            }
            Variant::ContextExecIndex => {
                config.mode = AbstractionMode::ExecIndex(10);
                config.use_context = true;
                config.yield_optimization = true;
            }
            Variant::IgnoreAbstraction => {
                config.mode = AbstractionMode::Trivial;
                config.use_context = true;
                config.yield_optimization = true;
            }
            Variant::IgnoreContext => {
                config.mode = AbstractionMode::ExecIndex(10);
                config.use_context = false;
                config.yield_optimization = true;
            }
            Variant::NoYields => {
                config.mode = AbstractionMode::ExecIndex(10);
                config.use_context = true;
                config.yield_optimization = false;
            }
        }
        config
    }
}

impl fmt::Display for Variant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Configuration of the full two-phase pipeline.
#[derive(Clone, Debug)]
pub struct Config {
    /// Object abstraction used to report and match cycles.
    pub mode: AbstractionMode,
    /// Honor acquisition contexts when matching cycle components.
    pub use_context: bool,
    /// Enable the §4 yield optimization.
    pub yield_optimization: bool,
    /// Seed of the Phase I (simple random) execution.
    pub phase1_seed: u64,
    /// Base seed of Phase II executions (trial `i` uses
    /// `phase2_seed_base + i`).
    pub phase2_seed_base: u64,
    /// iGoodlock bounds.
    pub igoodlock: IGoodlockOptions,
    /// Prune Phase I cycles whose hold windows are ordered by fork/join
    /// happens-before (they can never manifest — e.g. the paper's §5.4
    /// Jigsaw false positives). Off by default: the paper's iGoodlock
    /// deliberately ignores happens-before to keep its predictive power;
    /// this is the extension explored by the generalized-Goodlock line of
    /// work.
    pub hb_filter: bool,
    /// Virtual-runtime bounds for each execution.
    pub run: RunConfig,
    /// Livelock-monitor budget for paused threads (§5).
    pub pause_budget: u64,
    /// §4 yield gate: maximum scheduling decisions a gated thread is
    /// deferred per site.
    pub yield_budget: u32,
    /// Trials per cycle used by [`crate::DeadlockFuzzer::run`] to confirm
    /// cycles (the paper uses 100 for Table 1's probability column).
    pub confirm_trials: u32,
    /// Per-trial wall-clock deadline, applied on top of the step budget:
    /// each Phase II (and baseline) execution is bounded by this much real
    /// time even while it makes steady progress. Copied into
    /// [`RunConfig::deadline`] unless that is already set. `None` disables
    /// the deadline.
    pub trial_deadline: Option<Duration>,
    /// How many times a retryable trial (program panic, timeout, internal
    /// error — see [`crate::TrialOutcome::is_retryable`]) is re-run with a
    /// rotated seed before its outcome is accepted. `0` disables retries.
    pub trial_retries: u32,
    /// Worker threads for Phase II confirmation, probability-estimation
    /// and baseline trials ([`crate::TrialPool`]). `0` (the default)
    /// means one worker per available hardware thread; `1` runs trials
    /// sequentially on the calling thread. Per-trial seeding is
    /// index-based, so any `jobs` value produces the same report modulo
    /// wall-clock fields.
    pub jobs: usize,
    /// Worker threads for the Phase I iGoodlock chain join
    /// ([`df_igoodlock::igoodlock_parallel`]). `1` (the default) runs
    /// the sequential indexed join; `0` means one worker per available
    /// hardware thread. The parallel join's merge is deterministic, so
    /// any value produces byte-identical cycle reports and identical
    /// join statistics — only wall-clock and the scheduling counters
    /// (`join_tasks_executed`, `join_steal_waits`) vary.
    pub phase1_jobs: usize,
    /// Score every Phase I cycle with the sync-preserving partial-order
    /// feasibility check ([`df_igoodlock::FeasibilityAnalysis`]): each
    /// cycle gets a `Feasible`/`Infeasible`/`Unknown` verdict and a
    /// numeric score in the report. Layered on top of the ±[`Config::hb_filter`]
    /// choice — the filter *removes* provably-impossible cycles, the
    /// scorer *ranks* the survivors (and still marks provably-impossible
    /// ones `Infeasible` when the filter is off). Requires the recorded
    /// trace, so streamed Phase I reports no verdicts.
    pub feasibility: bool,
    /// Replace the uniform `confirm_trials`-per-cycle Phase II campaign
    /// of [`crate::DeadlockFuzzer::run`] with the deterministic adaptive
    /// allocator ([`crate::allocate_trials`]): trials go first to the
    /// cycles feasibility scored highest, running estimates reorder the
    /// queue between rounds, confirmed cycles stop immediately, and
    /// `Infeasible`-scored cycles are skipped outright. Per-cycle trial
    /// seeding is unchanged (trial `i` of a cycle still uses
    /// `phase2_seed_base + i`), so allocation is jobs-invariant.
    /// Incompatible with [`Config::stop_on_first`], whose truncated
    /// estimates would bias the allocator.
    pub adaptive_trials: bool,
    /// Optional cap on the *total* Phase II trials an adaptive campaign
    /// may spend across all cycles. `None` (the default) lets every
    /// unconfirmed, non-infeasible cycle reach `confirm_trials`, which
    /// guarantees the adaptive campaign confirms exactly the cycles a
    /// uniform one would. Ignored when [`Config::adaptive_trials`] is
    /// off.
    pub trial_budget: Option<u32>,
    /// Stop a confirmation campaign at the first trial that reproduces
    /// the target cycle: the campaign reports exactly the trials up to
    /// and including the first matching one (in trial-index order, at
    /// any `jobs`), never trials started after the confirmation. Off by
    /// default — the paper's probability columns need every trial.
    pub stop_on_first: bool,
    /// Build the Phase I lock dependency relation online, streaming
    /// events into a [`df_igoodlock::RelationBuilder`] as the execution
    /// produces them instead of materializing the full event vector
    /// first. The resulting relation (and therefore every reported
    /// cycle) is byte-identical to the offline path; memory drops from
    /// O(events) to O(relation). Incompatible with
    /// [`Config::hb_filter`], whose vector clocks need the whole trace.
    pub stream_phase1: bool,
    /// How recorded traces are spilled to disk: the artifact encoding
    /// (JSONL v1 or binary v2) and the optional SPSC ring that moves
    /// serialization off the emitting threads onto a dedicated writer
    /// thread (`ring_capacity` of 0 writes synchronously).
    pub spill: SpillConfig,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            mode: AbstractionMode::default(),
            use_context: true,
            yield_optimization: true,
            phase1_seed: 0,
            phase2_seed_base: 1_000,
            igoodlock: IGoodlockOptions::default(),
            hb_filter: false,
            run: RunConfig::default(),
            pause_budget: 5_000,
            yield_budget: 8,
            confirm_trials: 20,
            trial_deadline: Some(Duration::from_secs(30)),
            trial_retries: 2,
            jobs: 0,
            phase1_jobs: 1,
            feasibility: false,
            adaptive_trials: false,
            trial_budget: None,
            stop_on_first: false,
            stream_phase1: false,
            spill: SpillConfig::default(),
        }
    }
}

impl Config {
    /// Default configuration (variant 2 of the paper).
    pub fn new() -> Self {
        Self::default()
    }

    /// Applies a Figure 2 variant.
    pub fn with_variant(self, variant: Variant) -> Self {
        variant.apply(self)
    }

    /// Sets the abstraction mode.
    pub fn with_mode(mut self, mode: AbstractionMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the Phase I seed.
    pub fn with_phase1_seed(mut self, seed: u64) -> Self {
        self.phase1_seed = seed;
        self
    }

    /// Sets the Phase II base seed.
    pub fn with_phase2_seed_base(mut self, seed: u64) -> Self {
        self.phase2_seed_base = seed;
        self
    }

    /// Sets the number of confirmation trials per cycle.
    pub fn with_confirm_trials(mut self, trials: u32) -> Self {
        self.confirm_trials = trials;
        self
    }

    /// Sets context matching.
    pub fn with_context(mut self, use_context: bool) -> Self {
        self.use_context = use_context;
        self
    }

    /// Sets the yield optimization.
    pub fn with_yields(mut self, yields: bool) -> Self {
        self.yield_optimization = yields;
        self
    }

    /// Enables/disables the happens-before false-positive filter.
    pub fn with_hb_filter(mut self, on: bool) -> Self {
        self.hb_filter = on;
        self
    }

    /// Sets the per-trial wall-clock deadline (`None` disables it).
    pub fn with_trial_deadline(mut self, deadline: Option<Duration>) -> Self {
        self.trial_deadline = deadline;
        self
    }

    /// Sets the retry budget for retryable trial outcomes.
    pub fn with_trial_retries(mut self, retries: u32) -> Self {
        self.trial_retries = retries;
        self
    }

    /// Sets the trial worker count (`0` = one per hardware thread,
    /// `1` = sequential).
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Sets the Phase I join worker count (`1` = sequential, `0` = one
    /// per hardware thread; see [`Config::phase1_jobs`]).
    pub fn with_phase1_jobs(mut self, jobs: usize) -> Self {
        self.phase1_jobs = jobs;
        self
    }

    /// Enables/disables feasibility scoring of Phase I cycles.
    pub fn with_feasibility(mut self, on: bool) -> Self {
        self.feasibility = on;
        self
    }

    /// Enables/disables the adaptive Phase II trial allocator.
    pub fn with_adaptive_trials(mut self, on: bool) -> Self {
        self.adaptive_trials = on;
        self
    }

    /// Caps the total trials of an adaptive campaign (`None` = let every
    /// unconfirmed cycle reach `confirm_trials`).
    pub fn with_trial_budget(mut self, budget: Option<u32>) -> Self {
        self.trial_budget = budget;
        self
    }

    /// Stops confirmation campaigns at the first matching trial.
    pub fn with_stop_on_first(mut self, stop: bool) -> Self {
        self.stop_on_first = stop;
        self
    }

    /// Builds the Phase I relation online instead of from a recorded
    /// trace (see [`Config::stream_phase1`]).
    pub fn with_stream_phase1(mut self, stream: bool) -> Self {
        self.stream_phase1 = stream;
        self
    }

    /// Sets the trace-spill configuration (artifact format and ring
    /// buffering; see [`SpillConfig`]).
    pub fn with_spill(mut self, spill: SpillConfig) -> Self {
        self.spill = spill;
        self
    }

    /// Sets the livelock-monitor pause budget (§5).
    pub fn with_pause_budget(mut self, budget: u64) -> Self {
        self.pause_budget = budget;
        self
    }

    /// Sets the §4 yield gate budget.
    pub fn with_yield_budget(mut self, budget: u32) -> Self {
        self.yield_budget = budget;
        self
    }

    /// Sets the iGoodlock search bounds.
    pub fn with_igoodlock(mut self, options: IGoodlockOptions) -> Self {
        self.igoodlock = options;
        self
    }

    /// Replaces the per-execution virtual-runtime configuration.
    pub fn with_run(mut self, run: RunConfig) -> Self {
        self.run = run;
        self
    }

    /// Attaches an observability handle; counters, phase timings and the
    /// optional trace sink are shared by every execution of the pipeline.
    pub fn with_obs(mut self, obs: df_obs::Obs) -> Self {
        self.run = self.run.with_obs(obs);
        self
    }

    /// The observability handle carried by the runtime configuration.
    pub fn obs(&self) -> &df_obs::Obs {
        &self.run.obs
    }

    /// Checks the configuration for values that make a campaign
    /// meaningless, returning the first problem found.
    ///
    /// The pipeline used to accept nonsense silently — zero trials only
    /// surfaced as a failed confirmation deep inside [`crate::DeadlockFuzzer::run`],
    /// and out-of-range probabilities were clamped where they were used.
    /// Front doors (the `dfz` CLI rejects invalid configurations with
    /// exit code 2) should call this before starting any work.
    ///
    /// # Errors
    ///
    /// Returns [`DfError::InvalidConfig`] describing the offending field.
    pub fn validate(&self) -> Result<(), DfError> {
        let invalid = |m: String| Err(DfError::InvalidConfig(m));
        if self.confirm_trials == 0 {
            return invalid("confirm_trials must be at least 1".to_string());
        }
        if self.run.max_steps == 0 {
            return invalid("run.max_steps must be at least 1".to_string());
        }
        if self.run.hang_timeout.is_zero() {
            return invalid("run.hang_timeout must be positive".to_string());
        }
        if self.trial_deadline.is_some_and(|d| d.is_zero()) {
            return invalid("trial_deadline must be positive (use None to disable it)".to_string());
        }
        if self.igoodlock.max_cycles == 0 {
            return invalid("igoodlock.max_cycles must be at least 1".to_string());
        }
        if self.igoodlock.max_open_chains == 0 {
            return invalid("igoodlock.max_open_chains must be at least 1".to_string());
        }
        if self.phase1_jobs > 1024 {
            return invalid(format!(
                "phase1_jobs must be at most 1024 (0 = one worker per core), got {}",
                self.phase1_jobs
            ));
        }
        if self.stream_phase1 && self.hb_filter {
            return invalid(
                "stream_phase1 is incompatible with hb_filter: the happens-before \
                 filter's vector clocks need the full trace in memory"
                    .to_string(),
            );
        }
        if self.trial_budget == Some(0) {
            return invalid(
                "trial_budget must be at least 1 (use None for an uncapped campaign)".to_string(),
            );
        }
        if self.adaptive_trials && self.stop_on_first {
            return invalid(
                "adaptive_trials is incompatible with stop_on_first: truncated \
                 campaigns produce biased estimates the allocator must not consume"
                    .to_string(),
            );
        }
        if self.spill.batch_bytes == 0 {
            return invalid("spill.batch_bytes must be at least 1".to_string());
        }
        if self.spill.flush_interval.is_zero() {
            return invalid("spill.flush_interval must be positive".to_string());
        }
        if let Some(plan) = &self.run.fault_plan {
            for (name, p) in [
                ("panic_on_acquire", plan.panic_on_acquire),
                ("leak_release", plan.leak_release),
                ("spurious_wakeup", plan.spurious_wakeup),
                ("runaway_spawn", plan.runaway_spawn),
            ] {
                if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                    return invalid(format!(
                        "fault probability {name} must be within [0, 1], got {p}"
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_variant_two() {
        let c = Config::default();
        assert_eq!(c.mode, AbstractionMode::ExecIndex(10));
        assert!(c.use_context);
        assert!(c.yield_optimization);
    }

    #[test]
    fn variants_toggle_the_right_knobs() {
        let base = Config::default();
        let v1 = base.clone().with_variant(Variant::ContextKObject);
        assert_eq!(v1.mode, AbstractionMode::KObject(10));
        let v3 = base.clone().with_variant(Variant::IgnoreAbstraction);
        assert_eq!(v3.mode, AbstractionMode::Trivial);
        assert!(v3.use_context);
        let v4 = base.clone().with_variant(Variant::IgnoreContext);
        assert!(!v4.use_context);
        assert_eq!(v4.mode, AbstractionMode::ExecIndex(10));
        let v5 = base.clone().with_variant(Variant::NoYields);
        assert!(!v5.yield_optimization);
        assert!(v5.use_context);
    }

    #[test]
    fn labels_match_figure_2_legend() {
        assert_eq!(
            Variant::ContextExecIndex.label(),
            "Context + 2nd Abstraction"
        );
        assert_eq!(Variant::ALL.len(), 5);
        assert_eq!(Variant::NoYields.to_string(), "No Yields");
    }

    #[test]
    fn builders_apply() {
        let c = Config::new()
            .with_phase1_seed(5)
            .with_phase2_seed_base(77)
            .with_confirm_trials(3)
            .with_context(false)
            .with_yields(false)
            .with_mode(AbstractionMode::Site)
            .with_trial_deadline(Some(Duration::from_secs(5)))
            .with_trial_retries(1)
            .with_jobs(4)
            .with_phase1_jobs(2)
            .with_stop_on_first(true)
            .with_pause_budget(99)
            .with_yield_budget(3)
            .with_igoodlock(IGoodlockOptions::default())
            .with_run(RunConfig::default().with_max_steps(123));
        assert_eq!(c.phase1_seed, 5);
        assert_eq!(c.phase2_seed_base, 77);
        assert_eq!(c.confirm_trials, 3);
        assert!(!c.use_context);
        assert!(!c.yield_optimization);
        assert_eq!(c.mode, AbstractionMode::Site);
        assert_eq!(c.trial_deadline, Some(Duration::from_secs(5)));
        assert_eq!(c.trial_retries, 1);
        assert_eq!(c.jobs, 4);
        assert_eq!(c.phase1_jobs, 2);
        assert!(c.stop_on_first);
        assert_eq!(c.pause_budget, 99);
        assert_eq!(c.yield_budget, 3);
        assert_eq!(c.run.max_steps, 123);
    }

    #[test]
    fn default_jobs_are_auto_and_campaigns_run_every_trial() {
        let c = Config::default();
        assert_eq!(c.jobs, 0, "0 = one worker per hardware thread");
        assert!(!c.stop_on_first, "paper probabilities need all trials");
    }

    #[test]
    fn default_campaign_is_bounded() {
        let c = Config::default();
        assert!(c.trial_deadline.is_some(), "trials must be time-bounded");
        assert!(c.trial_retries > 0);
    }

    #[test]
    fn default_config_validates() {
        assert!(Config::default().validate().is_ok());
        assert!(Config::default()
            .with_stream_phase1(true)
            .validate()
            .is_ok());
    }

    fn rejection(c: &Config) -> String {
        match c.validate() {
            Err(DfError::InvalidConfig(m)) => m,
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn validate_rejects_zero_confirm_trials() {
        let c = Config::default().with_confirm_trials(0);
        assert!(rejection(&c).contains("confirm_trials"));
    }

    #[test]
    fn validate_rejects_zero_max_steps() {
        let mut c = Config::default();
        c.run = c.run.with_max_steps(0);
        assert!(rejection(&c).contains("max_steps"));
    }

    #[test]
    fn validate_rejects_zero_hang_timeout() {
        let mut c = Config::default();
        c.run = c.run.with_hang_timeout(Duration::ZERO);
        assert!(rejection(&c).contains("hang_timeout"));
    }

    #[test]
    fn validate_rejects_zero_trial_deadline_but_allows_none() {
        let c = Config::default().with_trial_deadline(Some(Duration::ZERO));
        assert!(rejection(&c).contains("trial_deadline"));
        assert!(Config::default()
            .with_trial_deadline(None)
            .validate()
            .is_ok());
    }

    #[test]
    fn validate_rejects_degenerate_igoodlock_bounds() {
        let mut c = Config::default();
        c.igoodlock.max_cycles = 0;
        assert!(rejection(&c).contains("max_cycles"));
        let mut c = Config::default();
        c.igoodlock.max_open_chains = 0;
        assert!(rejection(&c).contains("max_open_chains"));
    }

    #[test]
    fn validate_bounds_phase1_jobs() {
        let c = Config::default().with_phase1_jobs(2000);
        assert!(rejection(&c).contains("phase1_jobs"));
        assert!(Config::default().with_phase1_jobs(0).validate().is_ok());
        assert!(Config::default().with_phase1_jobs(1024).validate().is_ok());
        assert_eq!(
            Config::default().phase1_jobs,
            1,
            "Phase I is sequential by default"
        );
    }

    #[test]
    fn validate_rejects_streaming_combined_with_hb_filter() {
        let c = Config::default()
            .with_stream_phase1(true)
            .with_hb_filter(true);
        assert!(rejection(&c).contains("hb_filter"));
        // Each knob is fine on its own.
        assert!(Config::default().with_hb_filter(true).validate().is_ok());
    }

    #[test]
    fn validate_rejects_degenerate_precision_settings() {
        let c = Config::default().with_trial_budget(Some(0));
        assert!(rejection(&c).contains("trial_budget"));
        assert!(Config::default()
            .with_trial_budget(Some(1))
            .validate()
            .is_ok());
        let c = Config::default()
            .with_adaptive_trials(true)
            .with_stop_on_first(true);
        assert!(rejection(&c).contains("stop_on_first"));
        // Each knob is fine on its own, and the precision pair composes.
        assert!(Config::default()
            .with_stop_on_first(true)
            .validate()
            .is_ok());
        assert!(Config::default()
            .with_feasibility(true)
            .with_adaptive_trials(true)
            .with_trial_budget(Some(100))
            .validate()
            .is_ok());
    }

    #[test]
    fn precision_knobs_default_off() {
        let c = Config::default();
        assert!(!c.feasibility);
        assert!(!c.adaptive_trials);
        assert_eq!(c.trial_budget, None);
    }

    #[test]
    fn validate_rejects_degenerate_spill_settings() {
        use df_events::TraceFormat;
        let c = Config::default().with_spill(SpillConfig::default().with_batch_bytes(0));
        assert!(rejection(&c).contains("batch_bytes"));
        let c = Config::default()
            .with_spill(SpillConfig::default().with_flush_interval(Duration::ZERO));
        assert!(rejection(&c).contains("flush_interval"));
        let c = Config::default().with_spill(
            SpillConfig::with_format(TraceFormat::Binary)
                .with_ring(1024)
                .with_batch_bytes(4096),
        );
        assert!(c.validate().is_ok());
        assert_eq!(c.spill.format, TraceFormat::Binary);
        assert!(c.spill.ring_capacity >= 1);
    }

    #[test]
    fn validate_rejects_out_of_range_fault_probabilities() {
        use df_runtime::FaultPlan;
        let mut c = Config::default();
        c.run = c
            .run
            .with_fault_plan(FaultPlan::new(1).with_leak_release(1.5));
        assert!(rejection(&c).contains("leak_release"));
        let mut c = Config::default();
        c.run = c
            .run
            .with_fault_plan(FaultPlan::new(1).with_panic_on_acquire(f64::NAN));
        assert!(rejection(&c).contains("panic_on_acquire"));
        let mut c = Config::default();
        c.run = c
            .run
            .with_fault_plan(FaultPlan::new(1).with_leak_release(1.0));
        assert!(c.validate().is_ok(), "boundary probabilities are legal");
    }
}
