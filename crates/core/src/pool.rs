//! Work-sharing parallel trial engine.
//!
//! Phase II of DeadlockFuzzer is embarrassingly parallel: every
//! confirmation, probability-estimation, and baseline trial is an
//! independent seeded re-execution of the program under the virtual
//! runtime. [`TrialPool`] fans a campaign of such trials out across a
//! fixed set of worker threads while keeping the campaign's *results*
//! bit-for-bit identical to a sequential run:
//!
//! * trial `i` always computes the same value regardless of which worker
//!   runs it (seeding is per-index, never per-worker);
//! * results come back in trial order;
//! * early cancellation (`stop`) reports exactly the trials a sequential
//!   loop with the same stop condition would have run — the prefix up to
//!   and including the first stopping trial in index order — discarding
//!   any speculatively started later trials.
//!
//! The pool is built on `std::thread::scope` and a shared atomic work
//! counter (a work-*sharing* queue: idle workers pull the next index),
//! so it adds no dependencies and nothing to `Drop`-manage.

use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;

/// A fixed-width pool that runs indexed trials across worker threads.
///
/// # Example
///
/// ```
/// use deadlock_fuzzer::TrialPool;
///
/// let pool = TrialPool::new(4);
/// let squares = pool.run_trials(5, |i| i * i, |_| false);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16]);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct TrialPool {
    jobs: usize,
}

impl TrialPool {
    /// A pool with `jobs` workers; `0` means one worker per available
    /// hardware thread.
    pub fn new(jobs: usize) -> Self {
        let jobs = if jobs == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            jobs
        };
        TrialPool { jobs }
    }

    /// The resolved worker count (never zero).
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Runs `job(0..trials)` across the workers and returns the results
    /// in index order.
    ///
    /// `stop` is consulted on every completed trial; if it returns
    /// `true` for trial `i`, no trial with index `> i` is reported: the
    /// returned vector is truncated to `0..=k` where `k` is the
    /// *lowest* stopping index among the trials that ran — exactly the
    /// prefix a sequential loop would have produced. Workers that
    /// already started a later trial finish it, but its result (and any
    /// side channel keyed off it, e.g. an observability shard) is
    /// discarded by the caller simply because it is not returned.
    ///
    /// If a job panics, the panic is re-raised on the calling thread
    /// after all in-flight trials finish; when several jobs panic, the
    /// lowest trial index wins, so the propagated payload is
    /// deterministic.
    pub fn run_trials<T, F, S>(&self, trials: u32, job: F, stop: S) -> Vec<T>
    where
        T: Send,
        F: Fn(u32) -> T + Sync,
        S: Fn(&T) -> bool + Sync,
    {
        if trials == 0 {
            return Vec::new();
        }
        let workers = self.jobs.min(trials as usize);
        if workers == 1 {
            // Sequential fast path: identical semantics, no threads.
            let mut results = Vec::with_capacity(trials as usize);
            for i in 0..trials {
                let r = job(i);
                let done = stop(&r);
                results.push(r);
                if done {
                    break;
                }
            }
            return results;
        }

        // `bound` is the exclusive upper limit of trials worth running;
        // confirming trial `i` lowers it to `i + 1`. Indices are handed
        // out in increasing order, so every index below the final bound
        // was started before the bound could drop beneath it — the
        // returned prefix is always fully populated.
        let next = AtomicU32::new(0);
        let bound = AtomicU32::new(trials);
        let slots: Vec<Mutex<Option<T>>> = (0..trials).map(|_| Mutex::new(None)).collect();
        let panics: Mutex<Vec<(u32, Box<dyn std::any::Any + Send>)>> = Mutex::new(Vec::new());

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= trials || i >= bound.load(Ordering::Acquire) {
                        break;
                    }
                    match panic::catch_unwind(AssertUnwindSafe(|| job(i))) {
                        Ok(result) => {
                            if stop(&result) {
                                bound.fetch_min(i + 1, Ordering::AcqRel);
                            }
                            *slots[i as usize].lock().expect("slot lock") = Some(result);
                        }
                        Err(payload) => {
                            // Stop handing out further work and remember
                            // the payload; the lowest index is re-raised
                            // after the scope joins.
                            bound.fetch_min(i, Ordering::AcqRel);
                            panics.lock().expect("panic lock").push((i, payload));
                        }
                    }
                });
            }
        });

        let mut panics = panics.into_inner().expect("panic lock");
        if !panics.is_empty() {
            panics.sort_by_key(|(i, _)| *i);
            let (_, payload) = panics.remove(0);
            panic::resume_unwind(payload);
        }

        let final_bound = bound.load(Ordering::Acquire).min(trials) as usize;
        slots
            .into_iter()
            .take(final_bound)
            .map(|slot| {
                slot.into_inner()
                    .expect("slot lock")
                    .expect("every trial below the bound completed")
            })
            .collect()
    }
}

impl Default for TrialPool {
    /// One worker per available hardware thread.
    fn default() -> Self {
        TrialPool::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn zero_jobs_resolves_to_available_parallelism() {
        assert!(TrialPool::new(0).jobs() >= 1);
        assert_eq!(TrialPool::new(3).jobs(), 3);
        assert!(TrialPool::default().jobs() >= 1);
    }

    #[test]
    fn results_come_back_in_index_order() {
        let pool = TrialPool::new(4);
        // Stagger completion so later indices tend to finish first.
        let out = pool.run_trials(
            16,
            |i| {
                std::thread::sleep(std::time::Duration::from_micros(u64::from(16 - i)));
                i * 10
            },
            |_| false,
        );
        assert_eq!(out, (0..16).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn zero_trials_yield_an_empty_vec() {
        assert!(TrialPool::new(4).run_trials(0, |i| i, |_| false).is_empty());
    }

    #[test]
    fn stop_reports_the_sequential_prefix() {
        // Trials 3 and 7 would stop; the sequential answer is 0..=3.
        for jobs in [1, 2, 4, 8] {
            let out = TrialPool::new(jobs).run_trials(10, |i| i, |&i| i == 3 || i == 7);
            assert_eq!(out, vec![0, 1, 2, 3], "jobs={jobs}");
        }
    }

    #[test]
    fn stop_on_the_first_trial_cancels_everything_else() {
        let started = AtomicUsize::new(0);
        let out = TrialPool::new(1).run_trials(
            100,
            |i| {
                started.fetch_add(1, Ordering::Relaxed);
                i
            },
            |_| true,
        );
        assert_eq!(out, vec![0]);
        assert_eq!(started.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn worker_panics_propagate_the_lowest_index_payload() {
        for jobs in [1, 4] {
            let err = panic::catch_unwind(AssertUnwindSafe(|| {
                TrialPool::new(jobs).run_trials(
                    8,
                    |i| {
                        if i >= 2 {
                            panic!("trial {i} exploded");
                        }
                        i
                    },
                    |_| false,
                )
            }))
            .expect_err("must panic");
            let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
            assert_eq!(msg, "trial 2 exploded", "jobs={jobs}");
        }
    }

    #[test]
    fn more_workers_than_trials_is_fine() {
        let out = TrialPool::new(64).run_trials(3, |i| i + 1, |_| false);
        assert_eq!(out, vec![1, 2, 3]);
    }
}
