//! `deadlock-fuzzer` — a Rust reproduction of **DeadlockFuzzer** (Joshi,
//! Park, Sen, Naik: *A Randomized Dynamic Program Analysis Technique for
//! Detecting Real Deadlocks*, PLDI 2009).
//!
//! DeadlockFuzzer finds **real** deadlocks in multi-threaded programs in
//! two phases:
//!
//! 1. **Phase I — iGoodlock** ([`DeadlockFuzzer::phase1`]): observe one
//!    execution under a random scheduler and predict *potential* deadlock
//!    cycles from the lock dependency relation. Imprecise (may report
//!    false positives) but highly predictive.
//! 2. **Phase II — active random scheduling**
//!    ([`DeadlockFuzzer::phase2`]): re-execute the program under a
//!    scheduler biased to *create* a reported cycle: threads about to
//!    acquire a lock matching a cycle component `(abs(t), abs(l), C)` are
//!    paused until the whole cycle can close. A created deadlock is a
//!    *witness* — never a false positive.
//!
//! Threads and locks are correlated across the two executions by **object
//! abstractions** ([`df_abstraction::AbstractionMode`]):
//! k-object-sensitivity or light-weight execution indexing.
//!
//! Programs under test are written against the virtual-thread runtime's
//! [`df_runtime::TCtx`] handle (the Rust stand-in for the paper's bytecode
//! instrumentation — `std::sync` locks cannot be intercepted).
//!
//! # Quickstart
//!
//! ```
//! use deadlock_fuzzer::{Config, DeadlockFuzzer};
//! use df_events::site;
//! use df_runtime::TCtx;
//!
//! // Two threads acquiring two locks in opposite orders — but the child
//! // first runs long computations (Figure 1 of the paper), so ordinary
//! // random testing almost never trips the deadlock.
//! let fuzzer = DeadlockFuzzer::with_config(
//!     |ctx: &TCtx| {
//!         let a = ctx.new_lock(site!());
//!         let b = ctx.new_lock(site!());
//!         let t = ctx.spawn(site!(), "t", move |ctx| {
//!             ctx.work(8); // long-running methods f1()..f4()
//!             let _g1 = ctx.lock(&a, site!());
//!             let _g2 = ctx.lock(&b, site!());
//!         });
//!         let _g2 = ctx.lock(&b, site!());
//!         let _g1 = ctx.lock(&a, site!());
//!         drop(_g1);
//!         drop(_g2);
//!         ctx.join(&t, site!());
//!     },
//!     Config::default().with_confirm_trials(3),
//! );
//! let report = fuzzer.run();
//! assert_eq!(report.potential_count(), 1);
//! assert_eq!(report.confirmed_count(), 1); // a real deadlock, witnessed
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod allocate;
mod config;
mod error;
mod pipeline;
mod pool;
mod program;
mod report;

pub use allocate::{allocate_trials, trials_saved, AllocationOutcome, BatchResult, CycleBudget};
pub use config::{Config, Variant};
pub use error::DfError;
pub use pipeline::DeadlockFuzzer;
pub use pool::TrialPool;
pub use program::{Named, Program, ProgramRef};
pub use report::{
    CycleConfirmation, Phase1Report, Phase2Report, ProbabilityReport, Report, TrialOutcome,
    TrialOutcomes,
};

// Re-export the sub-crates so downstream users need only one dependency.
pub use df_abstraction as abstraction;
pub use df_events as events;
pub use df_fuzzer as fuzzer;
pub use df_igoodlock as igoodlock;
pub use df_lock as lock;
pub use df_runtime as runtime;

/// Everything a program-under-test and its harness need, in one import:
/// the pipeline types, the virtual-runtime vocabulary (including the
/// mode-aware [`df_events::AcquireMode`] and condvar refs), and the
/// drop-in tracked locks of `df-lock`.
///
/// ```
/// use deadlock_fuzzer::prelude::*;
///
/// let fuzzer = DeadlockFuzzer::with_config(
///     |ctx: &TCtx| {
///         let a = ctx.new_lock(site!());
///         let _g = ctx.lock(&a, site!());
///     },
///     Config::default().with_jobs(2),
/// );
/// assert_eq!(fuzzer.run().potential_count(), 0);
///
/// // The tracked (native-thread) surface comes along too.
/// let cache = TrackedRwLock::new(0u32);
/// assert_eq!(*cache.read().unwrap(), 0);
/// assert_eq!(AcquireMode::default(), AcquireMode::Exclusive);
/// ```
pub mod prelude {
    pub use crate::{
        Config, CycleConfirmation, DeadlockFuzzer, DfError, Named, Phase1Report, Phase2Report,
        ProbabilityReport, Program, ProgramRef, Report, TrialOutcome, TrialOutcomes, TrialPool,
        Variant,
    };
    pub use df_events::{site, AcquireMode, Label};
    pub use df_lock::{
        DeadlockHandler, DeadlockWitness, TrackedCondvar, TrackedMutex, TrackedRwLock, Tracker,
        TrackerConfig,
    };
    pub use df_runtime::{CondvarRef, LockRef, RunConfig, TCtx};
}
